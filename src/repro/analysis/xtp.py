"""The X^t_p recurrence of Lemma 6 (the corrected Baswana–Sen analysis).

``X^t_p`` is the maximum expected number of spanner edges a single vertex
contributes over ``t`` calls to ``Expand`` with sampling probability ``p``,
against an adversary who chooses how many live clusters the vertex touches
at each call.  The paper proves

    X^t_p <= p^{-1} (ln(t + 1) - gamma) + t,   gamma = ln 2 - 1/e,

correcting Baswana–Sen's claimed O(kn + n^{1+1/k}) size to
O(kn + log k * n^{1+1/k}).  Experiment E10 validates the recurrence, the
closed form, and a Monte-Carlo simulation against each other.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.analysis.theory import GAMMA
from repro.util.rng import SeedLike, ensure_rng


def x_tp(p: float, t: int, q_max: Optional[int] = None) -> float:
    """Exact X^t_p by dynamic programming over the recurrence (Eq. 2):

    X^t_p = max_{q >= 0} [ X^{t-1}_p + (1-p) + (q - 1 - X^{t-1}_p)(1-p)^{q+1} ]

    The maximizing q is about p^{-1} + X^{t-1}_p + 1 (the paper takes the
    derivative), so scanning q up to a few multiples of that is exact.
    """
    if not 0 < p < 1:
        raise ValueError("p must be in (0, 1)")
    if t < 0:
        raise ValueError("t must be >= 0")
    x = 0.0
    one_minus_p = 1.0 - p
    for _ in range(t):
        cap = q_max if q_max is not None else int(4 * (1 / p + x + 2)) + 4
        best = 0.0
        factor = one_minus_p  # (1-p)^{q+1} for q = 0
        for q in range(cap + 1):
            value = x + one_minus_p + (q - 1 - x) * factor
            if value > best:
                best = value
            factor *= one_minus_p
        x = best
    return x


def x_tp_closed_form(p: float, t: int) -> float:
    """Lemma 6's closed-form bound p^{-1}(ln(t+1) - gamma) + t."""
    if not 0 < p < 1:
        raise ValueError("p must be in (0, 1)")
    return (math.log(t + 1) - GAMMA) / p + t


def worst_case_q_schedule(p: float, t: int) -> List[int]:
    """The adversary's (approximately) optimal q_1 .. q_t sequence.

    At step i (with X^{t-i}_p remaining expectation x) the maximizer is
    q ~= p^{-1} + x + 1; we recompute x backwards and return the schedule
    front-to-back as the Monte-Carlo simulation consumes it.
    """
    xs = [0.0]
    for i in range(1, t + 1):
        xs.append(x_tp(p, i))
    schedule = []
    for i in range(t):
        remaining = xs[t - i - 1]
        schedule.append(max(0, round(1 / p + remaining + 1)))
    return schedule


def monte_carlo_vertex_contribution(
    p: float,
    q_schedule: Sequence[int],
    trials: int = 1000,
    seed: SeedLike = None,
) -> float:
    """Simulate E[Y_p(q_1, ..., q_t)] (Lemma 6's vertex contribution).

    Per call: the vertex's own cluster is sampled with probability ``p``
    (contributes 0, stays alive); otherwise if any of the ``q`` adjacent
    clusters is sampled it contributes 1 edge and stays alive; otherwise
    it contributes ``q`` edges and dies.
    """
    rng = ensure_rng(seed)
    total = 0
    for _ in range(trials):
        for q in q_schedule:
            if rng.random() < p:  # own cluster sampled
                continue
            neighbor_sampled = any(rng.random() < p for _ in range(q))
            if neighbor_sampled:
                total += 1
                continue
            total += q
            break  # vertex dies
    return total / trials
