"""Closed-form theory bounds, the X^t_p recurrence, and table formatting."""

from repro.analysis.theory import (
    GAMMA,
    PHI,
    fib,
    fib_sampling_probabilities,
    fibonacci_size_bound,
    fibonacci_spanner_order_max,
    golden_ratio_exponent,
    lemma9_recurrences,
    lemma10_c_bound,
    lemma10_i_bound,
    log_star,
    s_sequence,
    skeleton_distortion_bound,
    skeleton_size_bound,
    theorem7_distortion_bound,
)
from repro.analysis.xtp import (
    monte_carlo_vertex_contribution,
    x_tp,
    x_tp_closed_form,
)
from repro.analysis.tables import format_table
from repro.analysis.report import (
    PhaseBudgetRow,
    phase_budget_report,
    render_phase_budget,
)

__all__ = [
    "GAMMA",
    "PHI",
    "fib",
    "fib_sampling_probabilities",
    "fibonacci_size_bound",
    "fibonacci_spanner_order_max",
    "golden_ratio_exponent",
    "lemma9_recurrences",
    "lemma10_c_bound",
    "lemma10_i_bound",
    "log_star",
    "s_sequence",
    "skeleton_distortion_bound",
    "skeleton_size_bound",
    "theorem7_distortion_bound",
    "monte_carlo_vertex_contribution",
    "x_tp",
    "x_tp_closed_form",
    "format_table",
    "PhaseBudgetRow",
    "phase_budget_report",
    "render_phase_budget",
]
