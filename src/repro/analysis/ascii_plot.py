"""Dependency-free ASCII plotting for examples and bench output.

Terminal-friendly scatter/curve rendering: the Fibonacci stage curve,
size-vs-n scaling, and similar bench artifacts can be *seen* without any
plotting stack (the library has zero runtime dependencies).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


def ascii_curve(
    points: Sequence[Tuple[float, float]],
    width: int = 60,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    marker: str = "o",
    y_floor: Optional[float] = None,
) -> str:
    """Render (x, y) points as an ASCII scatter plot.

    Axes are linearly scaled to the data range; ``y_floor`` forces the
    y-axis to start at a given value (e.g. 1.0 for stretch curves).
    """
    pts = [(float(x), float(y)) for x, y in points
           if y == y and y not in (float("inf"), float("-inf"))]
    if not pts:
        return "(no data)"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo = min(ys) if y_floor is None else min(y_floor, min(ys))
    y_hi = max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid: List[List[str]] = [
        [" "] * width for _ in range(height)
    ]
    for x, y in pts:
        col = round((x - x_lo) / x_span * (width - 1))
        row = round((y - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    y_hi_text = f"{y_hi:.3g}"
    y_lo_text = f"{y_lo:.3g}"
    pad = max(len(y_hi_text), len(y_lo_text))
    for i, row_chars in enumerate(grid):
        if i == 0:
            prefix = y_hi_text.rjust(pad)
        elif i == height - 1:
            prefix = y_lo_text.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(row_chars)}")
    lines.append(" " * pad + " +" + "-" * width)
    x_lo_text = f"{x_lo:.3g}"
    x_hi_text = f"{x_hi:.3g}"
    gap = width - len(x_lo_text) - len(x_hi_text)
    lines.append(
        " " * (pad + 2) + x_lo_text + " " * max(1, gap) + x_hi_text
    )
    lines.append(" " * (pad + 2) + f"[{x_label} -> ; {y_label} ^]")
    return "\n".join(lines)


def ascii_histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 40,
    title: str = "",
) -> str:
    """Render a histogram of ``values`` with one text row per bin."""
    data = [float(v) for v in values if v == v]
    if not data:
        return "(no data)"
    lo, hi = min(data), max(data)
    span = (hi - lo) or 1.0
    counts = [0] * bins
    for v in data:
        idx = min(bins - 1, int((v - lo) / span * bins))
        counts[idx] += 1
    top = max(counts)
    lines = [title] if title else []
    for i, count in enumerate(counts):
        left = lo + span * i / bins
        right = lo + span * (i + 1) / bins
        bar = "#" * round(count / top * width) if top else ""
        lines.append(f"[{left:8.3g}, {right:8.3g}) {count:>6} {bar}")
    return "\n".join(lines)
