"""Compatibility shim: the closed-form bounds moved to ``repro.core.theory``.

The bounds are pure math with no dependencies, and ``core/`` (the
sequential reference implementations they describe) imports them at
module level — which made ``core`` depend on ``analysis`` and inverted
the layer DAG (REP011).  The functions now live at
:mod:`repro.core.theory`; this module re-exports them so existing
imports (tests, benches, examples, docs references) keep working.
Import from ``repro.core.theory`` in new code.
"""

from repro.core.theory import (
    GAMMA,
    PHI,
    additive2_size_bound,
    baswana_sen_size_bound,
    corollary2_betas,
    critical_edge_discard_probability,
    deterministic_phase_count,
    deterministic_radius_bound,
    deterministic_size_bound,
    deterministic_stretch_bound,
    deterministic_threshold,
    elkin_zhang_beta,
    fib,
    fib_sampling_probabilities,
    fibonacci_size_bound,
    fibonacci_spanner_order_max,
    golden_ratio_exponent,
    lemma9_recurrences,
    lemma10_c_bound,
    lemma10_i_bound,
    log_star,
    num_phases,
    protocol_size_budget,
    protocol_stretch_budget,
    s_sequence,
    skeleton_distortion_bound,
    skeleton_size_bound,
    skeleton_time_bound,
    theorem3_expected_stretch,
    theorem5_time_lower_bound,
    theorem6_time_lower_bound,
    theorem7_distortion_bound,
)

__all__ = [
    "GAMMA",
    "PHI",
    "additive2_size_bound",
    "baswana_sen_size_bound",
    "corollary2_betas",
    "critical_edge_discard_probability",
    "deterministic_phase_count",
    "deterministic_radius_bound",
    "deterministic_size_bound",
    "deterministic_stretch_bound",
    "deterministic_threshold",
    "elkin_zhang_beta",
    "fib",
    "fib_sampling_probabilities",
    "fibonacci_size_bound",
    "fibonacci_spanner_order_max",
    "golden_ratio_exponent",
    "lemma9_recurrences",
    "lemma10_c_bound",
    "lemma10_i_bound",
    "log_star",
    "num_phases",
    "protocol_size_budget",
    "protocol_stretch_budget",
    "s_sequence",
    "skeleton_distortion_bound",
    "skeleton_size_bound",
    "skeleton_time_bound",
    "theorem3_expected_stretch",
    "theorem5_time_lower_bound",
    "theorem6_time_lower_bound",
    "theorem7_distortion_bound",
]
