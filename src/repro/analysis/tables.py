"""Plain-text table formatting for the benchmark harness.

Every bench prints its paper artifact as an aligned ASCII table via
:func:`format_table`, so ``pytest benchmarks/ --benchmark-only -s`` shows
the reproduced rows next to the paper's claims.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows: List[List[str]] = [[_cell(x) for x in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
