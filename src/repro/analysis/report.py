"""Programmatic Fig. 1 report generation.

``fig1_report(graph)`` runs every implemented construction on one host
and returns the measured comparison rows — the same data bench E1
renders, packaged for library users (and the ``python -m repro`` CLI).

``phase_budget_report(events)`` turns a recorded trace (see
:mod:`repro.obs`) into the per-phase round/message accounting the
paper's theorems are stated at, annotated with each phase's analytic
round budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List

from repro.analysis.tables import format_table
from repro.graphs.graph import Graph
from repro.util.rng import SeedLike, ensure_rng


@dataclass
class AlgorithmRow:
    """One measured Fig. 1 row."""

    name: str
    size: int
    size_per_n: float
    max_stretch: float
    mean_stretch: float
    rounds: str
    max_message_words: str

    def as_tuple(self):
        return (
            self.name, self.size, round(self.size_per_n, 2),
            self.max_stretch, round(self.mean_stretch, 3),
            self.rounds, self.max_message_words,
        )


def fig1_report(
    graph: Graph,
    seed: SeedLike = None,
    num_sources: int = 30,
    include_distributed: bool = True,
) -> List[AlgorithmRow]:
    """Measure every implemented construction on ``graph``.

    ``include_distributed=False`` runs only the sequential builders
    (faster; round columns become analytic).
    """
    rng = ensure_rng(seed)

    def measure(name, spanner, rounds, width):
        stats = spanner.stretch(num_sources=num_sources, seed=rng.random())
        return AlgorithmRow(
            name=name,
            size=spanner.size,
            size_per_n=spanner.size / max(1, graph.n),
            max_stretch=stats.max_multiplicative,
            mean_stretch=stats.mean_multiplicative,
            rounds=str(rounds),
            max_message_words=str(width),
        )

    rows: List[AlgorithmRow] = []
    if include_distributed:
        from repro.distributed import (
            distributed_baswana_sen,
            distributed_fibonacci_spanner,
            distributed_skeleton,
        )

        sk = distributed_skeleton(graph, D=4, seed=rng.getrandbits(32))
        st = sk.metadata["network_stats"]
        rows.append(measure("skeleton (Thm 2)", sk,
                            sk.metadata["budgeted_rounds"],
                            st.max_message_words))
        fib = distributed_fibonacci_spanner(
            graph, order=2, eps=0.5, seed=rng.getrandbits(32)
        )
        st = fib.metadata["network_stats"]
        rows.append(measure("fibonacci (Thm 8)", fib, st.rounds,
                            st.max_message_words))
        bs = distributed_baswana_sen(graph, k=3, seed=rng.getrandbits(32))
        st = bs.metadata["network_stats"]
        rows.append(measure("baswana-sen k=3", bs, st.rounds,
                            st.max_message_words))
    else:
        from repro.baselines import baswana_sen_spanner
        from repro.core import build_fibonacci_spanner, build_skeleton

        rows.append(measure(
            "skeleton (Thm 2)",
            build_skeleton(graph, D=4, seed=rng.getrandbits(32)),
            "O(t + log n)", "O(log^eps n)",
        ))
        rows.append(measure(
            "fibonacci (Thm 8)",
            build_fibonacci_spanner(graph, order=2,
                                    seed=rng.getrandbits(32)),
            "O(ell^(o+t))", "O(n^(1/t))",
        ))
        rows.append(measure(
            "baswana-sen k=3",
            baswana_sen_spanner(graph, 3, seed=rng.getrandbits(32)),
            "O(k^2)", "1",
        ))

    from repro.baselines import (
        additive2_spanner,
        bfs_forest,
        elkin_zhang_spanner,
        girth_skeleton,
    )
    from repro.baselines.girth_skeleton import required_neighborhood_radius

    rows.append(measure(
        "elkin-zhang (1+eps,beta)",
        elkin_zhang_spanner(graph, eps=0.5, levels=3,
                            seed=rng.getrandbits(32)),
        "O(beta)", "O(n^(1/t))",
    ))
    rows.append(measure(
        "girth skeleton [18]", girth_skeleton(graph),
        f"~{required_neighborhood_radius(graph.n)} survey", "unbounded",
    ))
    rows.append(measure(
        "additive-2 [3]",
        additive2_spanner(graph, seed=rng.getrandbits(32)),
        "Omega(n^(1/4)) (Thm 5)", "-",
    ))
    rows.append(measure("bfs forest", bfs_forest(graph), "O(diam)", "-"))
    return rows


def render_fig1(rows: List[AlgorithmRow], title: str = "") -> str:
    """Render report rows as the Fig. 1-style ASCII table."""
    return format_table(
        ["algorithm", "size", "size/n", "max stretch", "mean stretch",
         "rounds", "max msg words"],
        [r.as_tuple() for r in rows],
        title=title,
    )


# ----------------------------------------------------------------------
# Per-phase round budgets (from traces)
# ----------------------------------------------------------------------

#: analytic per-call round budget of each (protocol, phase family); the
#: ``[i]`` index of repeated phases is stripped before lookup.  These
#: are the bounds the theorems charge each phase with — the report puts
#: the measured rounds next to them.
PHASE_ROUND_BUDGETS: Dict[Any, str] = {
    ("skeleton", "exchange"): "2",
    ("skeleton", "converge"): "r_i + pipe + 2",
    ("skeleton", "decide"): "r_i + pipe + 2",
    ("skeleton", "contract"): "2",
    ("baswana_sen", "phase"): "2",
    ("baswana_sen_weighted", "phase"): "2",
    ("additive", "exchange"): "3",
    ("additive", "trees"): "O(diam + |D|/W)",
    ("fibonacci", "forest"): "ell^(i-1)",
    ("fibonacci", "cutoff"): "ell^i + 1",
    ("fibonacci", "ball"): "ell^i",
    ("fibonacci", "detect"): "ell^i",
    ("fibonacci", "fallback"): "ell^i",
    ("fibonacci", "retrace"): "ell^i",
    ("survey", "survey"): "r",
}


@dataclass
class PhaseBudgetRow:
    """Measured cost of one (protocol, phase) next to its analytic budget."""

    protocol: str
    phase: str
    calls: int
    rounds: int
    messages: int
    words: int
    round_share: float
    budget: str

    def as_tuple(self):
        return (
            self.protocol, self.phase, self.calls, self.rounds,
            self.messages, self.words, f"{100 * self.round_share:.1f}%",
            self.budget,
        )


def _phase_family(name: str) -> str:
    return name.split("[", 1)[0]


def phase_budget_report(
    events: Iterable[Dict[str, Any]],
) -> List[PhaseBudgetRow]:
    """Per-phase accounting of a recorded trace.

    ``events`` is a trace event list (from
    :class:`repro.obs.TraceRecorder` or :func:`repro.obs.load_events`);
    returns one row per (protocol, phase) with the measured
    rounds/messages/words, the phase's share of all measured rounds and
    its analytic per-call round budget from :data:`PHASE_ROUND_BUDGETS`.
    """
    from repro.obs.replay import summarize

    summary = summarize(events)
    total_rounds = max(1, sum(p.rounds for p in summary.phases))
    return [
        PhaseBudgetRow(
            protocol=p.protocol,
            phase=p.phase,
            calls=p.calls,
            rounds=p.rounds,
            messages=p.messages,
            words=p.words,
            round_share=p.rounds / total_rounds,
            budget=PHASE_ROUND_BUDGETS.get(
                (p.protocol, _phase_family(p.phase)), "-"
            ),
        )
        for p in summary.phases
    ]


def render_phase_budget(rows: List[PhaseBudgetRow], title: str = "") -> str:
    """Render :func:`phase_budget_report` rows as an ASCII table."""
    return format_table(
        ["protocol", "phase", "calls", "rounds", "msgs", "words",
         "share", "budget/call"],
        [r.as_tuple() for r in rows],
        title=title,
    )
