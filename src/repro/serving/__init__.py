"""Spanner-as-a-service: the async query-serving tier.

The paper's artifacts — ultrasparse spanners, Thorup–Zwick distance
oracles, compact routing tables, distance labelings — are exactly what
a planet-scale routing or nearest-neighbor service *precomputes* in
batch and ships to serving.  This package is that serving half:

* :mod:`repro.serving.artifact` — versioned, checksummed on-disk
  bundles with a byte-identical build→save→load round trip;
* :mod:`repro.serving.server` — an asyncio server (newline-delimited
  JSON over TCP or a unix socket) answering stretch-bounded
  ``dist`` / ``route`` / ``label`` queries with an LRU + landmark
  cache and event-loop-tick request batching;
* :mod:`repro.serving.loadgen` — a deterministic seeded load
  generator (closed/open loop, uniform/zipf mixes) and the service
  benchmark driver behind ``BENCH_service.json``.

See ``docs/serving.md`` for the architecture and the artifact format
specification.
"""

from repro.serving.artifact import (
    ARTIFACT_SCHEMA,
    ArtifactBundle,
    ArtifactError,
    build_bundle,
    dumps_bundle,
    load_bundle,
    loads_bundle,
    save_bundle,
)
from repro.serving.loadgen import (
    LoadgenSummary,
    make_queries,
    run_loadgen,
    run_service_benchmark,
)
from repro.serving.server import QueryService, ServiceError, SpannerServer

__all__ = [
    "ARTIFACT_SCHEMA",
    "ArtifactBundle",
    "ArtifactError",
    "LoadgenSummary",
    "QueryService",
    "ServiceError",
    "SpannerServer",
    "build_bundle",
    "dumps_bundle",
    "load_bundle",
    "loads_bundle",
    "make_queries",
    "run_loadgen",
    "run_service_benchmark",
    "save_bundle",
]
