"""The asyncio query server over a loaded artifact bundle.

Wire protocol: newline-delimited JSON, over TCP or a unix socket.
One request per line, one response per line, matched by ``id``::

    -> {"id": 7, "op": "dist",  "u": 3, "v": 19}
    <- {"id": 7, "ok": true, "value": 4}

Operations: ``ping``, ``dist``, ``route``, ``label``, ``stats``, and
``shutdown`` (graceful: the server answers, finishes the in-flight
batch, then stops accepting and closes).  Unreachable pairs answer
``null`` — never ``Infinity``, which is not JSON.  Malformed lines
answer ``{"ok": false, "error": ...}`` rather than killing the
connection.

Two layers:

* :class:`QueryService` — the synchronous query core: bundle +
  two-tier cache (exact LRU over unordered vertex pairs, plus a
  *landmark* tier of precomputed answers for the oracle's top-level
  sampled vertices, whose clusters span their whole component) and
  deterministic hit/miss accounting.  Cache on and cache off return
  byte-identical answers — both tiers store exactly what
  ``DistanceOracle.query`` would compute.
* :class:`SpannerServer` — the asyncio shell: every connection feeds
  one shared queue; a single drainer task collects whatever arrived
  by the current event-loop tick and serves it as one batch
  (amortizing writes and keeping single-connection streams in strict
  arrival order, which is what makes bench counts replayable).

Metrics land in a :class:`repro.obs.metrics.MetricsRegistry`
(``serving_requests``, ``serving_cache_events``,
``serving_batch_size``, ``serving_service_us``) — the ``stats`` op
snapshots them for clients.
"""

from __future__ import annotations

import asyncio
import json
from collections import OrderedDict
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.serving.artifact import ArtifactBundle

__all__ = ["QueryService", "ServiceError", "SpannerServer"]

INF = float("inf")


class ServiceError(ValueError):
    """A request the service refuses (unknown op, unknown vertex...)."""


def _encode_dist(value: float) -> Optional[int]:
    """JSON-safe distance: unreachable becomes ``None`` (wire null)."""
    return None if value == INF else int(value)


class QueryService:
    """Synchronous query core: loaded bundle + two-tier answer cache.

    ``cache_size=0`` disables the LRU tier and ``landmarks=0`` the
    landmark tier; answers are identical either way (test-enforced),
    only the hit accounting changes.
    """

    def __init__(
        self,
        bundle: ArtifactBundle,
        cache_size: int = 4096,
        landmarks: int = 8,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if landmarks < 0:
            raise ValueError("landmarks must be >= 0")
        self.bundle = bundle
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache_size = cache_size
        self._dist_cache: "OrderedDict[Tuple[int, int], Optional[int]]" = (
            OrderedDict()
        )
        self._route_cache: (
            "OrderedDict[Tuple[int, int], Optional[List[int]]]"
        ) = OrderedDict()
        # Deterministic plain-int accounting (mirrored into metrics):
        # the bench gate pins these, so they must not depend on wall
        # time or interleaving across reps.
        self.requests = 0
        self.hits_lru = 0
        self.hits_landmark = 0
        self.misses = 0

        # Landmark tier: the most elite non-empty sampled level of the
        # oracle.  Those vertices' clusters are unbounded, so they are
        # the natural hot set — every vertex's bunch contains its
        # component's top-level pivots.  Answers are precomputed with
        # the same oracle walk a miss would run, so the tier can never
        # change an answer, only its cost.
        oracle = bundle.oracle
        elite: List[int] = []
        for level in reversed(oracle.levels):
            if level:
                elite = sorted(level)
                break
        self.landmarks: Tuple[int, ...] = tuple(elite[:landmarks])
        self._landmark_dist: Dict[int, Dict[int, Optional[int]]] = {}
        for w in self.landmarks:
            self._landmark_dist[w] = {
                v: _encode_dist(oracle.query(w, v))
                for v in sorted(bundle.graph.vertices())
            }

    # ------------------------------------------------------------------
    # Query operations
    # ------------------------------------------------------------------
    def _check_vertex(self, v: int) -> int:
        if not self.bundle.graph.has_vertex(v):
            raise ServiceError(f"unknown vertex: {v}")
        return v

    def _cache_event(self, tier: str) -> None:
        self.metrics.counter("serving_cache_events", tier=tier).inc()

    def _lru_put(
        self,
        cache: "OrderedDict[Tuple[int, int], Any]",
        key: Tuple[int, int],
        value: Any,
    ) -> None:
        if self.cache_size == 0:
            return
        cache[key] = value
        if len(cache) > self.cache_size:
            cache.popitem(last=False)

    def dist(self, u: int, v: int) -> Optional[int]:
        """Stretch-(2k-1) distance estimate; ``None`` if disconnected."""
        self._check_vertex(u)
        self._check_vertex(v)
        self.requests += 1
        if u == v:
            return 0
        key = (u, v) if u < v else (v, u)
        cache = self._dist_cache
        if key in cache:
            cache.move_to_end(key)
            self.hits_lru += 1
            self._cache_event("lru")
            return cache[key]
        if u in self._landmark_dist:
            self.hits_landmark += 1
            self._cache_event("landmark")
            return self._landmark_dist[u][v]
        if v in self._landmark_dist:
            self.hits_landmark += 1
            self._cache_event("landmark")
            return self._landmark_dist[v][u]
        self.misses += 1
        self._cache_event("miss")
        value = _encode_dist(self.bundle.oracle.query(u, v))
        self._lru_put(cache, key, value)
        return value

    def route(self, u: int, v: int) -> Optional[List[int]]:
        """The routing scheme's vertex path (``None`` if disconnected).

        Routes are cached under the unordered pair in canonical
        orientation — valid because ``CompactRouter.route(u, v)`` is
        by construction the reverse of ``route(v, u)``.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        self.requests += 1
        if u == v:
            return [u]
        key = (u, v) if u < v else (v, u)
        cache = self._route_cache
        if key in cache:
            cache.move_to_end(key)
            self.hits_lru += 1
            self._cache_event("lru")
            path = cache[key]
        else:
            self.misses += 1
            self._cache_event("miss")
            path = self.bundle.router.route(key[0], key[1])
            self._lru_put(cache, key, path)
        if path is None:
            return None
        return list(path) if u == key[0] else path[::-1]

    def label(self, v: int) -> Dict[str, Any]:
        """The vertex's distance label, as canonical plain data."""
        self._check_vertex(v)
        self.requests += 1
        label = self.bundle.labeling.label(v)
        return {
            "vertex": label.vertex,
            "pivots": [
                None if p is None else [p[0], int(p[1])]
                for p in label.pivots
            ],
            "bunch": sorted(
                [w, int(d)] for w, d in label.bunch.items()
            ),
            "size_words": label.size_words,
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        return self.hits_lru + self.hits_landmark

    @property
    def hit_rate(self) -> float:
        probes = self.hits + self.misses
        return self.hits / probes if probes else 0.0

    def stats(self) -> Dict[str, Any]:
        """Server-side snapshot served by the ``stats`` op."""
        bundle = self.bundle
        return {
            "n": bundle.graph.n,
            "m": bundle.graph.m,
            "k": bundle.k,
            "spanner_edges": bundle.spanner.size,
            "oracle_entries": bundle.oracle.size,
            "recipe": dict(sorted(bundle.recipe.items())),
            "requests": self.requests,
            "cache": {
                "size": self.cache_size,
                "entries": len(self._dist_cache) + len(self._route_cache),
                "landmarks": list(self.landmarks),
                "hits_lru": self.hits_lru,
                "hits_landmark": self.hits_landmark,
                "misses": self.misses,
                "hit_rate": round(self.hit_rate, 6),
            },
        }

    # ------------------------------------------------------------------
    # Request dispatch (shared by the server and in-process callers)
    # ------------------------------------------------------------------
    def handle_request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Answer one decoded request; never raises."""
        rid = request.get("id")
        op = request.get("op")
        started = perf_counter()
        try:
            value: Any
            if op == "ping":
                value = "pong"
            elif op == "dist":
                value = self.dist(int(request["u"]), int(request["v"]))
            elif op == "route":
                value = self.route(int(request["u"]), int(request["v"]))
            elif op == "label":
                value = self.label(int(request["v"]))
            elif op == "stats":
                value = self.stats()
            else:
                raise ServiceError(f"unknown op: {op!r}")
        except ServiceError as exc:
            self._count_op(op, ok=False)
            return {"id": rid, "ok": False, "error": str(exc)}
        except (KeyError, TypeError, ValueError) as exc:
            self._count_op(op, ok=False)
            return {"id": rid, "ok": False, "error": f"bad request: {exc}"}
        self._count_op(op, ok=True)
        self.metrics.histogram("serving_service_us").observe(
            (perf_counter() - started) * 1e6
        )
        return {"id": rid, "ok": True, "value": value}

    def _count_op(self, op: Any, ok: bool) -> None:
        self.metrics.counter(
            "serving_requests", op=str(op), ok=str(ok).lower()
        ).inc()


class SpannerServer:
    """Asyncio shell: connections feed one queue, one task drains it.

    Construct, then ``await start()``; ``await wait_closed()`` blocks
    until a ``shutdown`` op, ``max_requests``, or ``await close()``.
    With ``port=0`` the kernel picks a free port (read it back from
    :attr:`address`) — the pattern the in-process bench and the tests
    use.
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
        max_requests: Optional[int] = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.max_requests = max_requests
        self.address: Optional[Tuple[str, int]] = None
        self._served = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: List[asyncio.StreamWriter] = []
        # Queue and event are created in start(): on Python 3.9 they
        # bind the loop current at *construction* time, which would be
        # the wrong one when the server object is built outside
        # asyncio.run().
        self._queue: Optional[
            "asyncio.Queue[Tuple[bytes, asyncio.StreamWriter]]"
        ] = None
        self._drainer: Optional["asyncio.Task[None]"] = None
        self._closed: Optional[asyncio.Event] = None
        self._shutting_down = False

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._queue = asyncio.Queue()
        self._closed = asyncio.Event()
        if self.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._on_connect, path=self.unix_path
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connect, host=self.host, port=self.port
            )
            sockets = self._server.sockets or []
            if sockets:
                sockname = sockets[0].getsockname()
                self.address = (str(sockname[0]), int(sockname[1]))
        self._drainer = asyncio.ensure_future(self._drain_loop())

    async def _on_connect(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        assert self._queue is not None  # start() ran before accepting
        self._writers.append(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                except asyncio.CancelledError:
                    # Teardown closed us mid-read; exit quietly rather
                    # than let the streams callback log the cancel.
                    break
                if not line:
                    break
                await self._queue.put((line, writer))
        finally:
            if writer in self._writers:
                self._writers.remove(writer)
            try:
                if not writer.is_closing():
                    writer.close()
            except ConnectionError:  # pragma: no cover - teardown race
                pass

    async def _drain_loop(self) -> None:
        """Serve batches: everything queued by this tick is one batch."""
        assert self._queue is not None
        while not self._shutting_down:
            first = await self._queue.get()
            batch = [first]
            while True:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            self.service.metrics.histogram("serving_batch_size").observe(
                len(batch)
            )
            touched: List[asyncio.StreamWriter] = []
            for line, writer in batch:
                response = self._serve_line(line)
                if not writer.is_closing():
                    writer.write(
                        json.dumps(
                            response, sort_keys=True, allow_nan=False
                        ).encode()
                        + b"\n"
                    )
                    if writer not in touched:
                        touched.append(writer)
                self._served += 1
                if (
                    self.max_requests is not None
                    and self._served >= self.max_requests
                ):
                    self._shutting_down = True
            for writer in touched:
                try:
                    await writer.drain()
                except ConnectionError:  # pragma: no cover - client gone
                    pass
        await self._finish()

    def _serve_line(self, line: bytes) -> Dict[str, Any]:
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            return {"id": None, "ok": False, "error": f"bad JSON: {exc}"}
        if not isinstance(request, dict):
            return {"id": None, "ok": False, "error": "request not an object"}
        if request.get("op") == "shutdown":
            self._shutting_down = True
            return {"id": request.get("id"), "ok": True, "value": "bye"}
        return self.service.handle_request(request)

    async def _finish(self) -> None:
        if self._server is not None:
            self._server.close()
        # Close lingering connections so their handler tasks see EOF
        # and exit before the event loop is torn down.
        for writer in list(self._writers):
            try:
                if not writer.is_closing():
                    writer.close()
            except ConnectionError:  # pragma: no cover - client gone
                pass
        if self._server is not None:
            await self._server.wait_closed()
        if self._closed is not None:
            self._closed.set()

    # ------------------------------------------------------------------
    async def wait_closed(self) -> None:
        """Block until the server has fully shut down."""
        assert self._closed is not None, "start() must run first"
        await self._closed.wait()

    async def close(self) -> None:
        """Graceful external shutdown (flushes nothing mid-batch)."""
        self._shutting_down = True
        if self._drainer is not None and not self._drainer.done():
            self._drainer.cancel()
            try:
                await self._drainer
            except asyncio.CancelledError:
                pass
        await self._finish()
