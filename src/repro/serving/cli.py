"""CLI entry points for the serving tier.

Three subcommands of ``python -m repro``::

    python -m repro build-artifact OUT [--graph K] [--scale S]
                                       [--seed N] [--k K] [--D D]
    python -m repro serve BUNDLE [--port P | --unix PATH]
                                 [--cache-size N] [--landmarks N]
                                 [--max-requests N]
    python -m repro loadgen --bundle BUNDLE [--connect HOST:PORT |
                                 --unix PATH] [--requests N] [--mix M]
                                 [--seed N] [--mode closed|open]
                                 [--concurrency C] [--pipeline W]
                                 [--rate R] [--shutdown] [--json PATH]

``loadgen`` always needs ``--bundle`` (the query stream is generated
from the bundle's vertex set); without ``--connect``/``--unix`` it
spins up an in-process server on an ephemeral port — the one-command
smoke test.  With a target address it drives an external server, and
``--shutdown`` sends the graceful-stop op afterwards (how the CI
smoke job stops the background server).
"""

from __future__ import annotations

import argparse
import asyncio
import json
from typing import List, Optional

from repro.graphs.zoo import GRAPH_KINDS, HOST_SCALES
from repro.serving.artifact import build_bundle, load_bundle, save_bundle
from repro.serving.loadgen import (
    MIXES,
    make_queries,
    run_loadgen,
    run_service_benchmark,
)
from repro.serving.server import QueryService, SpannerServer

__all__ = ["build_artifact_main", "loadgen_main", "serve_main"]


def build_artifact_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro build-artifact",
        description="Build and save a servable spanner/oracle bundle.",
    )
    parser.add_argument("out", help="output bundle path (canonical JSON)")
    parser.add_argument("--graph", choices=GRAPH_KINDS, default="er",
                        help="host graph kind (default er)")
    parser.add_argument("--scale", choices=HOST_SCALES, default="smoke",
                        help="host scale row (default smoke)")
    parser.add_argument("--seed", type=int, default=1,
                        help="bench-matrix seed (host uses 1000+seed)")
    parser.add_argument("--k", type=int, default=2,
                        help="oracle levels: stretch 2k-1 (default 2)")
    parser.add_argument("--D", type=int, default=4,
                        help="skeleton spanner parameter (default 4)")
    args = parser.parse_args(argv)

    bundle = build_bundle(
        args.graph, args.scale, args.seed, k=args.k, D=args.D
    )
    checksum = save_bundle(bundle, args.out)
    print(
        f"{args.out}: {args.graph}/{args.scale} seed={args.seed} "
        f"k={args.k} n={bundle.graph.n} m={bundle.graph.m} "
        f"spanner_edges={bundle.spanner.size} {checksum}"
    )
    return 0


def serve_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve dist/route/label queries from a bundle "
        "(newline-delimited JSON over TCP or a unix socket).",
    )
    parser.add_argument("bundle", help="bundle file from build-artifact")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 = ephemeral; default)")
    parser.add_argument("--unix", dest="unix_path", default=None,
                        help="serve on this unix socket instead of TCP")
    parser.add_argument("--cache-size", type=int, default=4096,
                        help="LRU entries per answer cache (0 disables)")
    parser.add_argument("--landmarks", type=int, default=8,
                        help="precomputed landmark vertices (0 disables)")
    parser.add_argument("--max-requests", type=int, default=None,
                        help="stop after serving N requests")
    args = parser.parse_args(argv)

    bundle = load_bundle(args.bundle)

    async def _run() -> None:
        service = QueryService(
            bundle,
            cache_size=args.cache_size,
            landmarks=args.landmarks,
        )
        server = SpannerServer(
            service,
            host=args.host,
            port=args.port,
            unix_path=args.unix_path,
            max_requests=args.max_requests,
        )
        await server.start()
        recipe = bundle.recipe
        where = (
            args.unix_path
            if args.unix_path is not None
            else "{}:{}".format(*(server.address or (args.host, args.port)))
        )
        print(
            f"serving {recipe.get('graph_kind')}/{recipe.get('scale')} "
            f"(n={bundle.graph.n}, k={bundle.k}) on {where}",
            flush=True,
        )
        await server.wait_closed()
        stats = service.stats()
        print(
            f"served {stats['requests']} requests, cache hit rate "
            f"{stats['cache']['hit_rate']:.1%}"
        )

    asyncio.run(_run())
    return 0


def _parse_connect(value: str) -> "tuple[str, str, int]":
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"--connect wants HOST:PORT, got {value!r}"
        )
    return ("tcp", host, int(port))


def loadgen_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro loadgen",
        description="Drive a deterministic seeded query stream at a "
        "spanner server and report latency/throughput/cache stats.",
    )
    parser.add_argument("--bundle", required=True,
                        help="bundle file (query universe; also the "
                        "in-process server when no target is given)")
    parser.add_argument("--connect", type=_parse_connect, default=None,
                        metavar="HOST:PORT",
                        help="drive an external TCP server")
    parser.add_argument("--unix", dest="unix_path", default=None,
                        help="drive an external unix-socket server")
    parser.add_argument("--requests", type=int, default=400)
    parser.add_argument("--mix", choices=MIXES, default="uniform")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--mode", choices=("closed", "open"),
                        default="closed")
    parser.add_argument("--concurrency", type=int, default=1)
    parser.add_argument("--pipeline", type=int, default=16,
                        help="closed-loop in-flight window per client")
    parser.add_argument("--rate", type=float, default=None,
                        help="open-loop injection rate (req/s, total)")
    parser.add_argument("--shutdown", action="store_true",
                        help="send the graceful-stop op when done")
    parser.add_argument("--json", dest="json_out", default=None,
                        help="also write the summary as JSON")
    args = parser.parse_args(argv)

    bundle = load_bundle(args.bundle)
    if args.connect is not None and args.unix_path is not None:
        parser.error("--connect and --unix are mutually exclusive")

    if args.connect is None and args.unix_path is None:
        summary = run_service_benchmark(
            bundle,
            requests=args.requests,
            mix=args.mix,
            seed=args.seed,
            mode=args.mode,
            concurrency=args.concurrency,
            pipeline=args.pipeline,
            rate=args.rate,
        )
    else:
        address = (
            args.connect
            if args.connect is not None
            else ("unix", args.unix_path, 0)
        )
        queries = make_queries(
            sorted(bundle.graph.vertices()),
            args.requests,
            mix=args.mix,
            seed=args.seed,
        )
        summary = asyncio.run(
            run_loadgen(
                address,
                queries,
                mode=args.mode,
                concurrency=args.concurrency,
                pipeline=args.pipeline,
                rate=args.rate,
                mix=args.mix,
                seed=args.seed,
                collect_stats=True,
                shutdown=args.shutdown,
            )
        )
    print(summary.render())
    if args.json_out is not None:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(summary.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 1 if summary.errors else 0
