"""Deterministic seeded load generation against the serving tier.

The query *stream* is a pure function of ``(vertex set, count, mix,
ops, seed)`` — two loadgen runs at the same seed issue the identical
request sequence, which is what lets the service bench gate on cache
hit counts the way the simulator bench gates on message counts.  Only
the measured latencies vary run to run.

Two traffic shapes:

* ``closed`` loop — each connection keeps a fixed window of
  ``pipeline`` requests in flight and sends the next request the
  moment a response lands (throughput-seeking; the bench mode);
* ``open`` loop — requests are injected at a fixed ``rate`` per
  second regardless of completions (latency-under-load; queueing
  delay shows up in the percentiles).

Two vertex popularity mixes: ``uniform``, and ``zipf`` (rank-``r``
weight ``r**-alpha`` over the sorted vertex ids — the classic skewed
fan-in of a real service, and what gives an LRU cache something to
do).
"""

from __future__ import annotations

import asyncio
import json
import math
from bisect import bisect_right
from dataclasses import asdict, dataclass
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.serving.artifact import ArtifactBundle
from repro.serving.server import QueryService, SpannerServer
from repro.util.rng import SeedLike, ensure_rng

__all__ = [
    "LoadgenSummary",
    "MIXES",
    "make_queries",
    "percentile",
    "run_loadgen",
    "run_service_benchmark",
]

MIXES: Tuple[str, ...] = ("uniform", "zipf")

#: default operation mix: distance-heavy, like a routing front end.
_DEFAULT_OPS: Tuple[Tuple[str, int], ...] = (
    ("dist", 8),
    ("route", 1),
    ("label", 1),
)

_ZIPF_ALPHA = 1.1

#: an address the loadgen can dial: ("tcp", host, port) or
#: ("unix", path, 0).
Address = Tuple[str, str, int]


@dataclass
class LoadgenSummary:
    """One loadgen run: latency/throughput plus server cache counters."""

    requests: int
    answered: int
    errors: int
    wall_s: float
    qps: float
    p50_ms: float
    p99_ms: float
    mean_ms: float
    mode: str
    mix: str
    concurrency: int
    pipeline: int
    seed: int
    cache_hits_lru: int = 0
    cache_hits_landmark: int = 0
    cache_misses: int = 0
    hit_rate: float = 0.0
    server_stats: Optional[Dict[str, Any]] = None

    @property
    def cache_hits(self) -> int:
        return self.cache_hits_lru + self.cache_hits_landmark

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["cache_hits"] = self.cache_hits
        return data

    def render(self) -> str:
        return (
            f"{self.answered}/{self.requests} answered "
            f"({self.errors} errors) in {self.wall_s:.3f}s — "
            f"{self.qps:.0f} qps, p50 {self.p50_ms:.3f}ms, "
            f"p99 {self.p99_ms:.3f}ms, cache hit rate "
            f"{self.hit_rate:.1%}"
        )


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """The q-th percentile (nearest-rank) of an ascending sequence.

    Nearest-rank: the smallest value with at least ``q``% of the data
    at or below it, i.e. element ``ceil(n * q / 100)`` (1-indexed),
    clamped to the ends.  ``math.ceil`` with a small tolerance rather
    than ``-(-n * q // 100)``: float division makes the negated floor
    overshoot (``1000 * 99.9 / 100`` is ``999.0000000000001``, whose
    ceiling must be 999, not 1000).
    """
    if not sorted_values:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    n = len(sorted_values)
    rank = math.ceil(n * q / 100 - 1e-9)
    return sorted_values[min(max(rank - 1, 0), n - 1)]


def _zipf_cumulative(count: int) -> List[float]:
    weights: List[float] = []
    total = 0.0
    for rank in range(1, count + 1):
        total += rank ** -_ZIPF_ALPHA
        weights.append(total)
    return weights


def make_queries(
    vertices: Sequence[int],
    count: int,
    mix: str = "uniform",
    ops: Sequence[Tuple[str, int]] = _DEFAULT_OPS,
    seed: SeedLike = 0,
) -> List[Dict[str, Any]]:
    """The deterministic request stream (decoded request dicts).

    ``mix`` picks vertex popularity (``uniform`` or ``zipf`` over the
    sorted vertex ids); ``ops`` is a weighted operation table.  The
    ``id`` field numbers requests 0..count-1 in issue order.
    """
    if mix not in MIXES:
        raise ValueError(f"unknown mix: {mix!r} (choose from {MIXES})")
    if count < 0:
        raise ValueError("count must be >= 0")
    universe = sorted(vertices)
    if not universe:
        raise ValueError("empty vertex universe")
    rng = ensure_rng(seed)
    cumulative = _zipf_cumulative(len(universe)) if mix == "zipf" else []

    def draw_vertex() -> int:
        if mix == "uniform":
            return universe[rng.randrange(len(universe))]
        index = bisect_right(cumulative, rng.random() * cumulative[-1])
        return universe[min(index, len(universe) - 1)]

    op_names = [name for name, _ in ops]
    op_cumulative: List[int] = []
    op_total = 0
    for _, weight in ops:
        op_total += weight
        op_cumulative.append(op_total)

    queries: List[Dict[str, Any]] = []
    for rid in range(count):
        pick = bisect_right(op_cumulative, rng.random() * op_total)
        op = op_names[min(pick, len(op_names) - 1)]
        request: Dict[str, Any] = {"id": rid, "op": op}
        if op == "label":
            request["v"] = draw_vertex()
        else:
            request["u"] = draw_vertex()
            request["v"] = draw_vertex()
        queries.append(request)
    return queries


async def _open(address: Address) -> Tuple[
    asyncio.StreamReader, asyncio.StreamWriter
]:
    family, host, port = address
    if family == "unix":
        return await asyncio.open_unix_connection(host)
    if family == "tcp":
        return await asyncio.open_connection(host, port)
    raise ValueError(f"unknown address family: {family!r}")


def _encode(request: Dict[str, Any]) -> bytes:
    return json.dumps(request, sort_keys=True).encode() + b"\n"


async def _closed_client(
    address: Address,
    queries: Sequence[Dict[str, Any]],
    pipeline: int,
    latencies: List[float],
) -> int:
    """One closed-loop connection; returns its error count."""
    if not queries:
        return 0
    reader, writer = await _open(address)
    errors = 0
    pending: Dict[Any, float] = {}
    next_index = 0
    window = max(1, min(pipeline, len(queries)))
    for _ in range(window):
        request = queries[next_index]
        pending[request["id"]] = perf_counter()
        writer.write(_encode(request))
        next_index += 1
    await writer.drain()
    answered = 0
    while answered < len(queries):
        line = await reader.readline()
        if not line:
            raise ConnectionError("server closed mid-run")
        now = perf_counter()
        response = json.loads(line)
        started = pending.pop(response.get("id"), None)
        if started is not None:
            latencies.append(now - started)
        if not response.get("ok"):
            errors += 1
        answered += 1
        if next_index < len(queries):
            request = queries[next_index]
            pending[request["id"]] = perf_counter()
            writer.write(_encode(request))
            await writer.drain()
            next_index += 1
    writer.close()
    return errors


async def _open_client(
    address: Address,
    queries: Sequence[Dict[str, Any]],
    rate: float,
    latencies: List[float],
) -> int:
    """One open-loop connection injecting at ``rate`` req/s."""
    if not queries:
        return 0
    if rate <= 0:
        raise ValueError("open-loop mode needs rate > 0")
    reader, writer = await _open(address)
    pending: Dict[Any, float] = {}
    interval = 1.0 / rate

    async def sender() -> None:
        for request in queries:
            pending[request["id"]] = perf_counter()
            writer.write(_encode(request))
            await writer.drain()
            await asyncio.sleep(interval)

    errors = 0
    send_task = asyncio.ensure_future(sender())
    answered = 0
    try:
        while answered < len(queries):
            line = await reader.readline()
            if not line:
                raise ConnectionError("server closed mid-run")
            now = perf_counter()
            response = json.loads(line)
            started = pending.pop(response.get("id"), None)
            if started is not None:
                latencies.append(now - started)
            if not response.get("ok"):
                errors += 1
            answered += 1
    finally:
        if not send_task.done():
            send_task.cancel()
            try:
                await send_task
            except asyncio.CancelledError:
                pass
    writer.close()
    return errors


async def _control_request(
    address: Address, op: str
) -> Optional[Dict[str, Any]]:
    reader, writer = await _open(address)
    writer.write(_encode({"id": f"ctl-{op}", "op": op}))
    await writer.drain()
    line = await reader.readline()
    writer.close()
    if not line:
        return None
    response: Dict[str, Any] = json.loads(line)
    return response


async def run_loadgen(
    address: Address,
    queries: Sequence[Dict[str, Any]],
    mode: str = "closed",
    concurrency: int = 1,
    pipeline: int = 16,
    rate: Optional[float] = None,
    mix: str = "uniform",
    seed: int = 0,
    collect_stats: bool = True,
    shutdown: bool = False,
) -> LoadgenSummary:
    """Drive ``queries`` at the server and summarize the run.

    ``collect_stats`` asks the server for its cache counters after the
    last response; ``shutdown`` then sends the graceful-stop op (used
    by the CI smoke job and the in-process bench).
    """
    if mode not in ("closed", "open"):
        raise ValueError(f"unknown mode: {mode!r}")
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    shards: List[List[Dict[str, Any]]] = [[] for _ in range(concurrency)]
    for index, query in enumerate(queries):
        shards[index % concurrency].append(query)
    latencies: List[float] = []
    started = perf_counter()
    if mode == "closed":
        errors = sum(
            await asyncio.gather(
                *(
                    _closed_client(address, shard, pipeline, latencies)
                    for shard in shards
                )
            )
        )
    else:
        per_rate = (rate or 200.0) / concurrency
        errors = sum(
            await asyncio.gather(
                *(
                    _open_client(address, shard, per_rate, latencies)
                    for shard in shards
                )
            )
        )
    wall = perf_counter() - started

    stats: Optional[Dict[str, Any]] = None
    if collect_stats:
        response = await _control_request(address, "stats")
        if response is not None and response.get("ok"):
            stats = response["value"]
    if shutdown:
        await _control_request(address, "shutdown")

    latencies.sort()
    cache = (stats or {}).get("cache", {})
    return LoadgenSummary(
        requests=len(queries),
        answered=len(latencies),
        errors=errors,
        wall_s=round(wall, 6),
        qps=round(len(latencies) / wall, 1) if wall > 0 else 0.0,
        p50_ms=round(percentile(latencies, 50) * 1000, 4),
        p99_ms=round(percentile(latencies, 99) * 1000, 4),
        mean_ms=round(
            sum(latencies) / len(latencies) * 1000, 4
        ) if latencies else 0.0,
        mode=mode,
        mix=mix,
        concurrency=concurrency,
        pipeline=pipeline,
        seed=seed,
        cache_hits_lru=int(cache.get("hits_lru", 0)),
        cache_hits_landmark=int(cache.get("hits_landmark", 0)),
        cache_misses=int(cache.get("misses", 0)),
        hit_rate=float(cache.get("hit_rate", 0.0)),
        server_stats=stats,
    )


def run_service_benchmark(
    bundle: ArtifactBundle,
    requests: int = 400,
    mix: str = "uniform",
    seed: int = 1,
    mode: str = "closed",
    concurrency: int = 1,
    pipeline: int = 16,
    rate: Optional[float] = None,
    cache_size: int = 4096,
    landmarks: int = 8,
) -> LoadgenSummary:
    """One self-contained serving measurement, in process.

    Starts a fresh server on an ephemeral localhost port, drives the
    seeded query stream through real sockets, gracefully stops the
    server, and returns the summary.  A fresh server per call means
    fresh caches, so the cache-hit counters are a pure function of the
    query stream — the property the ``BENCH_service.json`` count gate
    relies on (single connection keeps arrival order deterministic).
    """
    queries = make_queries(
        sorted(bundle.graph.vertices()), requests, mix=mix, seed=seed
    )

    async def _run() -> LoadgenSummary:
        service = QueryService(
            bundle, cache_size=cache_size, landmarks=landmarks
        )
        server = SpannerServer(service, port=0)
        await server.start()
        assert server.address is not None
        host, port = server.address
        summary = await run_loadgen(
            ("tcp", host, port),
            queries,
            mode=mode,
            concurrency=concurrency,
            pipeline=pipeline,
            rate=rate,
            mix=mix,
            seed=seed,
            collect_stats=True,
            shutdown=True,
        )
        await server.wait_closed()
        return summary

    return asyncio.run(_run())
