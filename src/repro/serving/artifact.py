"""Versioned artifact bundles: spanner + oracle structures on disk.

A bundle is the hand-off point between the batch half of the system
(spanner/oracle construction, hours of precompute in a real service)
and the serving half (:mod:`repro.serving.server`).  The format is a
single canonical JSON document::

    {
      "format":   "repro-artifact",
      "schema":   1,
      "checksum": "sha256:<hex of the canonical payload bytes>",
      "payload":  { "recipe": ..., "graph": ..., "spanner": ...,
                    "oracle": ... }
    }

Canonicalization rules (the whole point of the format):

* every mapping serializes as a key-sorted pair list (see
  :meth:`repro.applications.DistanceOracle.to_state`), every set as a
  sorted list, and the JSON encoder runs with ``sort_keys`` and
  compact separators — so *building the same artifacts from the same
  seed twice yields byte-identical files*, and the checksum doubles
  as a build fingerprint;
* the oracle structure is stored **once**; the compact router and the
  distance labeling are canonical projections of it and are
  re-derived on load (``CompactRouter.from_oracle`` /
  ``DistanceLabeling.from_oracle``), answer-for-answer identical to
  the in-memory originals;
* all stored distances are unweighted BFS distances (ints);
  unreachable entries are absent, never ``inf`` (``allow_nan=False``
  enforces this at encode time).

Loading verifies the checksum and the format/schema header and raises
:class:`ArtifactError` on any mismatch — a serving process never
answers queries from a truncated or stale bundle.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, Tuple, Union

from repro.applications.compact_routing import CompactRouter
from repro.applications.distance_oracle import DistanceOracle
from repro.applications.labeling import DistanceLabeling
from repro.core.skeleton import build_skeleton
from repro.graphs.graph import Graph
from repro.graphs.zoo import build_host, host_params
from repro.spanner.spanner import Spanner

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_SCHEMA",
    "ArtifactBundle",
    "ArtifactError",
    "build_bundle",
    "dumps_bundle",
    "load_bundle",
    "loads_bundle",
    "save_bundle",
]

ARTIFACT_FORMAT = "repro-artifact"
ARTIFACT_SCHEMA = 1

#: JSON-primitive types allowed into the serialized spanner metadata.
_PRIMITIVES = (str, int, float, bool, type(None))


class ArtifactError(ValueError):
    """A bundle failed validation (checksum, format, or schema)."""


@dataclass
class ArtifactBundle:
    """A loaded (or freshly built) set of servable artifacts."""

    graph: Graph
    spanner: Spanner
    oracle: DistanceOracle
    router: CompactRouter
    labeling: DistanceLabeling
    #: how the bundle was built: graph kind/scale/seed, k, D, host row.
    recipe: Dict[str, Any]

    @property
    def k(self) -> int:
        return self.oracle.k


def _canonical_dumps(obj: Any) -> str:
    """The one true JSON encoding (sorted keys, compact, no NaN/inf)."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def _checksum(payload: Dict[str, Any]) -> str:
    digest = hashlib.sha256(_canonical_dumps(payload).encode()).hexdigest()
    return f"sha256:{digest}"


def _scrub_metadata(metadata: Dict[str, Any]) -> Dict[str, Any]:
    """The JSON-primitive subset of spanner metadata, key-sorted."""
    return {
        key: value
        for key, value in sorted(metadata.items())
        if isinstance(value, _PRIMITIVES)
    }


def build_bundle(
    graph_kind: str,
    scale: str,
    seed: int,
    k: int = 2,
    D: int = 4,
) -> ArtifactBundle:
    """Run the batch side: build host, skeleton spanner, and oracle.

    The host comes from the shared graph zoo at ``graph_seed = 1000 +
    seed`` (the bench-matrix convention, so a service cell and a
    simulator cell at the same seed share their host); the skeleton
    spanner and the Thorup–Zwick oracle are both driven by ``seed``
    directly.  Everything downstream of this call is deterministic.
    """
    recipe: Dict[str, Any] = {
        "graph_kind": graph_kind,
        "scale": scale,
        "seed": seed,
        "graph_seed": 1000 + seed,
        "k": k,
        "D": D,
        "host": host_params(graph_kind, scale),
    }
    graph = build_host(graph_kind, scale, 1000 + seed)
    spanner = build_skeleton(graph, D=D, seed=seed)
    oracle = DistanceOracle(graph, k, seed=seed)
    return ArtifactBundle(
        graph=graph,
        spanner=spanner,
        oracle=oracle,
        router=CompactRouter.from_oracle(oracle),
        labeling=DistanceLabeling.from_oracle(oracle),
        recipe=recipe,
    )


def _graph_section(graph: Graph) -> Dict[str, Any]:
    return {
        "vertices": sorted(graph.vertices()),
        "edges": sorted(graph.edges()),
    }


def bundle_payload(bundle: ArtifactBundle) -> Dict[str, Any]:
    """The checksummed payload section, as canonical plain data."""
    return {
        "recipe": dict(sorted(bundle.recipe.items())),
        "graph": _graph_section(bundle.graph),
        "spanner": {
            "edges": sorted(bundle.spanner.edges),
            "metadata": _scrub_metadata(bundle.spanner.metadata),
        },
        "oracle": bundle.oracle.to_state(),
    }


def _document(bundle: ArtifactBundle) -> Tuple[str, str]:
    """``(canonical text, checksum)`` of the full bundle document."""
    payload = bundle_payload(bundle)
    checksum = _checksum(payload)
    document = {
        "format": ARTIFACT_FORMAT,
        "schema": ARTIFACT_SCHEMA,
        "checksum": checksum,
        "payload": payload,
    }
    return _canonical_dumps(document) + "\n", checksum


def dumps_bundle(bundle: ArtifactBundle) -> str:
    """Serialize to the canonical bundle document (newline-terminated)."""
    return _document(bundle)[0]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ArtifactError(message)


def loads_bundle(text: str) -> ArtifactBundle:
    """Parse, verify and materialize a bundle document.

    Raises :class:`ArtifactError` on malformed JSON, a foreign or
    future format header, or a checksum mismatch.
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"bundle is not valid JSON: {exc}") from exc
    _require(isinstance(document, dict), "bundle document is not an object")
    _require(
        document.get("format") == ARTIFACT_FORMAT,
        f"not a {ARTIFACT_FORMAT} file "
        f"(format={document.get('format')!r})",
    )
    _require(
        document.get("schema") == ARTIFACT_SCHEMA,
        f"unsupported artifact schema {document.get('schema')!r} "
        f"(this build reads schema {ARTIFACT_SCHEMA})",
    )
    payload = document.get("payload")
    _require(isinstance(payload, dict), "bundle payload is not an object")
    expected = _checksum(payload)
    _require(
        document.get("checksum") == expected,
        f"checksum mismatch: header {document.get('checksum')!r} "
        f"!= payload {expected!r}",
    )

    graph_section = payload["graph"]
    graph = Graph(
        vertices=[int(v) for v in graph_section["vertices"]],
        edges=[(int(u), int(v)) for u, v in graph_section["edges"]],
    )
    spanner_section = payload["spanner"]
    spanner = Spanner(
        graph,
        [(int(u), int(v)) for u, v in spanner_section["edges"]],
        metadata=dict(spanner_section.get("metadata", {})),
    )
    oracle = DistanceOracle.from_state(graph, payload["oracle"])
    return ArtifactBundle(
        graph=graph,
        spanner=spanner,
        oracle=oracle,
        router=CompactRouter.from_oracle(oracle),
        labeling=DistanceLabeling.from_oracle(oracle),
        recipe=dict(payload.get("recipe", {})),
    )


_PathLike = Union[str, "os.PathLike[str]"]


def save_bundle(bundle: ArtifactBundle, path: _PathLike) -> str:
    """Write the canonical document to ``path``; returns the checksum."""
    text, checksum = _document(bundle)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return checksum


def load_bundle(path: _PathLike) -> ArtifactBundle:
    """Read and verify a bundle file (see :func:`loads_bundle`)."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads_bundle(handle.read())
