"""Girth-based linear-size skeleton (the classical approach).

"The standard method for obtaining a linear-size spanner or skeleton is to
construct a subgraph that has girth Omega(log n)" (Sect. 2) — the strategy
of Althöfer et al. [4] sequentially and Dubhashi et al. [18] distributively.
We realize it with the greedy spanner at stretch 2 ceil(log2 n) - 1: the
output has girth > 2 log n, hence O(n) edges, and O(log n) distortion.

The catch the paper emphasizes: any distributed version must survey
Theta(log n)-neighborhoods, which needs messages "linear in the size of the
graph".  :func:`required_neighborhood_radius` reports that radius so the
Fig. 1 bench can show the cost next to the skeleton algorithm's.
"""

from __future__ import annotations

import math

from repro.baselines.greedy import greedy_spanner
from repro.graphs.graph import Graph
from repro.spanner.spanner import Spanner


def girth_skeleton(graph: Graph) -> Spanner:
    """Linear-size O(log n)-spanner via girth > 2 log n."""
    n = max(2, graph.n)
    stretch = 2 * math.ceil(math.log2(n)) - 1
    spanner = greedy_spanner(graph, stretch)
    spanner.metadata.update(
        {
            "algorithm": "girth-skeleton",
            "stretch": stretch,
            "required_neighborhood_radius": required_neighborhood_radius(n),
        }
    )
    return spanner


def required_neighborhood_radius(n: int) -> int:
    """The Theta(log n) survey radius a distributed variant would need."""
    return 2 * math.ceil(math.log2(max(2, n))) - 1
