"""Baseline spanner constructions the paper compares against (Fig. 1)."""

from repro.baselines.baswana_sen import baswana_sen_spanner
from repro.baselines.greedy import greedy_spanner
from repro.baselines.girth_skeleton import girth_skeleton
from repro.baselines.additive_spanner import additive2_spanner
from repro.baselines.bfs_tree import bfs_forest
from repro.baselines.streaming import DynamicSpanner, StreamingSpanner
from repro.baselines.deterministic_skeleton import sequential_deterministic
from repro.baselines.elkin_zhang import elkin_zhang_spanner, measured_beta
from repro.baselines.baswana_sen_weighted import baswana_sen_weighted

__all__ = [
    "baswana_sen_spanner",
    "greedy_spanner",
    "girth_skeleton",
    "additive2_spanner",
    "bfs_forest",
    "DynamicSpanner",
    "StreamingSpanner",
    "elkin_zhang_spanner",
    "measured_beta",
    "baswana_sen_weighted",
    "sequential_deterministic",
]
