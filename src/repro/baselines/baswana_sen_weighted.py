"""Weighted Baswana–Sen (2k-1)-spanner.

The weighted algorithm of [10] — the one Fig. 1 calls "optimal in all
respects, save for a factor of k in the spanner size".  Identical cluster
dance to the unweighted version, except every per-cluster edge choice
takes the *least-weight* incident edge (ties by endpoint id), which is
what makes the (2k-1) stretch argument go through under weights.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.graphs.graph import canonical_edge
from repro.graphs.weighted import WeightedGraph
from repro.util.rng import SeedLike, ensure_rng

Edge = Tuple[int, int]


def baswana_sen_weighted(
    graph: WeightedGraph, k: int, seed: SeedLike = None
) -> Set[Edge]:
    """Return the edge set of a weighted (2k-1)-spanner of ``graph``."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if k == 1:
        return {(u, v) for u, v, _ in graph.edges()}
    rng = ensure_rng(seed)
    n = graph.n
    if n == 0:
        return set()
    sample_p = n ** (-1.0 / k)

    spanner: Set[Edge] = set()
    cluster_of: Dict[int, int] = {v: v for v in graph.vertices()}
    active: Set[int] = set(graph.vertices())

    def best_edge_per_cluster(v: int) -> Dict[int, Tuple[float, int]]:
        """cluster -> (weight, neighbor) of v's lightest edge into it."""
        best: Dict[int, Tuple[float, int]] = {}
        for u, w in graph.neighbors(v).items():
            if u not in active:
                continue
            c = cluster_of[u]
            if c == cluster_of[v]:
                continue
            cand = (w, u)
            if c not in best or cand < best[c]:
                best[c] = cand
        return best

    for _ in range(k - 1):
        centers = sorted({cluster_of[v] for v in active})
        sampled = {c for c in centers if rng.random() < sample_p}
        new_cluster_of: Dict[int, int] = {}
        removed: List[int] = []
        for v in sorted(active):
            if cluster_of[v] in sampled:
                new_cluster_of[v] = cluster_of[v]
                continue
            best = best_edge_per_cluster(v)
            sampled_options = [
                (w, u, c) for c, (w, u) in best.items() if c in sampled
            ]
            if sampled_options:
                # Join via the overall least-weight edge to any sampled
                # cluster; also keep every strictly lighter edge to the
                # other clusters (the weighted filtering rule of [10]).
                w_star, u_star, c_star = min(sampled_options)
                spanner.add(canonical_edge(v, u_star))
                new_cluster_of[v] = c_star
                for c, (w, u) in best.items():
                    if c != c_star and (w, u) < (w_star, u_star):
                        spanner.add(canonical_edge(v, u))
            else:
                for c, (w, u) in sorted(best.items()):
                    spanner.add(canonical_edge(v, u))
                removed.append(v)
        for v in removed:
            active.discard(v)
        cluster_of = new_cluster_of

    for v in sorted(active):
        for c, (w, u) in sorted(best_edge_per_cluster(v).items()):
            spanner.add(canonical_edge(v, u))

    return spanner
