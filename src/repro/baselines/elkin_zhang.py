"""A superclustering (1+eps, beta)-spanner in the Elkin–Zhang style.

Fig. 1 compares against Elkin and Zhang's (1+eps, beta)-spanners [24]
(see also Elkin–Peleg [19, 23]).  This is a simplified but real
implementation of the superclustering template those constructions share:

* level 0: every vertex is a singleton cluster (its own center);
* at level i, each live cluster is *sampled* with probability q_i.
  An unsampled cluster whose center sees a sampled center within the
  join radius d_i merges into the nearest one (the connecting shortest
  path enters the spanner, keeping every cluster spanned by a tree);
  an unsampled cluster with no sampled center nearby is *finalized*:
  its center connects by shortest paths to every live center within the
  interconnection radius ell_i ~ d_i / eps (plus, as a connectivity
  safety net, to its single nearest center beyond that radius);
* survivors of the last level interconnect pairwise.

Far pairs cross finalized levels through interconnection paths whose
detours are an eps-fraction of the distance travelled — the (1 + eps)
term — while near pairs pay at most the accumulated cluster radii — the
beta term.  The paper's point (reproduced in bench E15) is that the
Fibonacci spanner achieves a much better beta at comparable size; this
module supplies the comparison target.  DESIGN.md documents the
simplifications relative to [24].
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set

from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.graphs.properties import bfs_parents, multi_source_bfs
from repro.spanner.spanner import Spanner
from repro.util.rng import SeedLike, ensure_rng


def _add_parent_path(
    parent: Dict[int, Optional[int]],
    start: int,
    spanner: Set[Edge],
) -> None:
    """Add the tree path from ``start`` to its root to the spanner."""
    node = start
    while parent.get(node) is not None:
        spanner.add(canonical_edge(node, parent[node]))
        node = parent[node]


def _interconnect(
    graph: Graph,
    center: int,
    targets: Set[int],
    radius: float,
    spanner: Set[Edge],
    nearest_fallback: bool,
) -> None:
    """Connect ``center`` to every target within ``radius`` by shortest
    paths; with ``nearest_fallback``, also to the nearest target beyond."""
    dist, parent = bfs_parents(graph, center)
    reached = [
        (d, v) for v, d in dist.items() if v in targets and v != center
    ]
    added_any = False
    for d, v in sorted(reached):
        if d <= radius:
            _add_parent_path(parent, v, spanner)
            added_any = True
    if nearest_fallback and not added_any and reached:
        _, nearest = min(reached)
        _add_parent_path(parent, nearest, spanner)


def elkin_zhang_spanner(
    graph: Graph,
    eps: float = 0.5,
    levels: int = 3,
    seed: SeedLike = None,
    sample_probabilities: Optional[List[float]] = None,
) -> Spanner:
    """Build a (1+eps, beta)-spanner by iterated superclustering.

    ``levels`` controls the trade: more levels -> sparser but larger
    beta (the EZ signature).  Default sampling probabilities are
    q_i = n^{-1/2^{levels-i}} — high at low levels (so almost every
    cluster joins rather than finalizing while interconnection is still
    expensive) and low at the top (so few survivors remain for the final
    pairwise interconnection).
    """
    if not 0 < eps <= 1:
        raise ValueError("eps must be in (0, 1]")
    if levels < 1:
        raise ValueError("need at least one level")
    rng = ensure_rng(seed)
    n = max(2, graph.n)
    if sample_probabilities is None:
        sample_probabilities = [
            n ** (-1.0 / 2 ** (levels - i)) for i in range(levels)
        ]
    if len(sample_probabilities) != levels:
        raise ValueError("need one probability per level")

    spanner: Set[Edge] = set()
    centers: Set[int] = set(graph.vertices())
    radius = 0.0
    level_stats = []

    for i in range(levels):
        q = sample_probabilities[i]
        sampled = {c for c in sorted(centers) if rng.random() < q}
        # Join radius: merging may not inflate distances beyond an
        # eps-fraction later, so it scales with the current radius.
        join_radius = math.ceil((2 * radius + 1) / 1.0)
        interconnect_radius = math.ceil(4 * (radius + 1) / eps)

        if sampled:
            dist, root, parent = multi_source_bfs(
                graph, sampled, cutoff=join_radius
            )
        else:
            dist, root, parent = {}, {}, {}

        joined = finalized = 0
        next_centers: Set[int] = set(sampled)
        live_targets = centers
        for c in sorted(centers - sampled):
            if c in dist:  # a sampled center is within the join radius
                _add_parent_path(parent, c, spanner)
                joined += 1
            else:
                _interconnect(
                    graph, c, live_targets, interconnect_radius,
                    spanner, nearest_fallback=True,
                )
                finalized += 1
        radius = radius + join_radius + radius  # Lemma 2-style doubling
        level_stats.append(
            {"level": i, "sampled": len(sampled), "joined": joined,
             "finalized": finalized, "q": q}
        )
        centers = next_centers
        if not centers:
            break

    # Survivors interconnect pairwise (they are few by construction).
    for c in sorted(centers):
        _interconnect(
            graph, c, centers, float("inf"), spanner,
            nearest_fallback=False,
        )

    return Spanner(
        graph,
        spanner,
        {
            "algorithm": "elkin-zhang-spanner",
            "eps": eps,
            "levels": levels,
            "survivors": len(centers),
            "level_stats": level_stats,
        },
    )


def measured_beta(
    graph: Graph,
    spanner: Spanner,
    eps: float,
    num_sources: int = 25,
    seed: SeedLike = None,
) -> float:
    """The empirical beta: max over measured pairs of
    delta_S(u, v) - (1 + eps) * delta(u, v), floored at 0."""
    from repro.graphs.properties import bfs_distances
    from repro.spanner.stretch import _pick_sources

    sub = spanner.subgraph()
    beta = 0.0
    for s in _pick_sources(graph, num_sources, seed):
        dist_g = bfs_distances(graph, s)
        dist_s = bfs_distances(sub, s)
        for v, d in dist_g.items():
            if v == s:
                continue
            excess = dist_s.get(v, float("inf")) - (1 + eps) * d
            beta = max(beta, excess)
    return beta
