"""Additive 2-spanner of Aingworth, Chekuri, Indyk and Motwani [3].

Theorem 5 shows such spanners need Omega(n^{1/4}) distributed rounds; this
sequential construction provides the object itself for comparison rows and
for exercising the lower-bound harness predictions:

* vertices of degree >= threshold are *heavy*;
* all edges incident to a light vertex are kept (O(n * threshold));
* a random dominating set D hits every heavy vertex's neighborhood whp;
  a full BFS tree from each dominator is kept, plus one edge from every
  heavy vertex into D.

With threshold ~ sqrt(n log n) the size is O(n^{3/2} sqrt(log n)) and the
additive distortion is 2: a shortest path either is all-light (fully kept)
or passes within one hop of a dominator whose BFS tree is exact.
"""

from __future__ import annotations

import math
from typing import Optional, Set

from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.graphs.properties import bfs_parents
from repro.spanner.spanner import Spanner
from repro.util.rng import SeedLike, ensure_rng


def additive2_spanner(
    graph: Graph,
    threshold: Optional[int] = None,
    seed: SeedLike = None,
) -> Spanner:
    """Build an additive 2-spanner of expected size O(n^{3/2} sqrt(log n))."""
    rng = ensure_rng(seed)
    n = graph.n
    if n == 0:
        return Spanner(graph, set(), {"algorithm": "additive-2"})
    if threshold is None:
        threshold = max(1, math.ceil(math.sqrt(n * max(1.0, math.log(n)))))

    kept: Set[Edge] = set()
    heavy = {v for v in graph.vertices() if graph.degree(v) >= threshold}

    # Light edges: both endpoints light, or the light endpoint keeps them.
    for u, v in graph.edges():
        if u not in heavy or v not in heavy:
            kept.add((u, v))

    if heavy:
        # Dominating set: sampling w.p. (2 ln n)/threshold hits every
        # heavy neighborhood whp; patch any missed vertex explicitly so
        # the additive-2 guarantee is deterministic.
        p = min(1.0, 2 * math.log(max(2, n)) / threshold)
        dominators = {v for v in sorted(graph.vertices()) if rng.random() < p}
        for v in sorted(heavy):
            if v in dominators:
                continue
            if not any(u in dominators for u in graph.neighbors(v)):
                dominators.add(min(graph.neighbors(v)))
        # One edge from each heavy vertex into the dominating set.
        for v in sorted(heavy):
            if v in dominators:
                continue
            dominated_by = [u for u in graph.neighbors(v) if u in dominators]
            if dominated_by:
                kept.add(canonical_edge(v, min(dominated_by)))
        # Full BFS tree from every dominator.
        for d in sorted(dominators):
            _, parent = bfs_parents(graph, d)
            for v, par in parent.items():
                if par is not None:
                    kept.add(canonical_edge(v, par))

    return Spanner(
        graph,
        kept,
        {
            "algorithm": "additive-2",
            "threshold": threshold,
            "heavy_vertices": len(heavy),
        },
    )
