"""Streaming and fully-dynamic (2k-1)-spanners (related work, Sect. 1.4).

The paper surveys Elkin [21] and Baswana [5] for streaming spanners
("edges arrive one at a time and the algorithm can only keep O(n^{1+1/k})
edges in memory") and Baswana–Sarkar / Elkin [8, 20, 21] for fully
dynamic maintenance.  This module provides the classical baseline both
lines refine:

* :class:`StreamingSpanner` — one pass over the edge stream; an edge is
  kept iff the spanner built so far has no path of length <= 2k - 1
  between its endpoints.  The output has girth > 2k, hence
  O(n^{1+1/k}) edges, and is a (2k - 1)-spanner of the streamed graph.

* :class:`DynamicSpanner` — insertions use the same rule; deleting a
  non-spanner edge is free, and deleting a spanner edge triggers a local
  repair: the affected endpoints re-examine their remaining incident
  host edges and re-insert those the stretch invariant now demands.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Optional, Set

from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.spanner.spanner import Spanner


class StreamingSpanner:
    """One-pass (2k-1)-spanner over an edge stream.

    Memory: only the kept edges (plus the vertex set); the host graph is
    never stored — exactly the streaming model of [5, 21].
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.threshold = 2 * k - 1
        self._adj: Dict[int, Set[int]] = {}
        self.kept: Set[Edge] = set()
        self.edges_seen = 0

    def _bounded_distance(self, u: int, v: int) -> Optional[int]:
        if u not in self._adj or v not in self._adj:
            return None
        dist = {u: 0}
        queue = deque([u])
        while queue:
            x = queue.popleft()
            d = dist[x] + 1
            if d > self.threshold:
                continue
            for y in self._adj[x]:
                if y == v:
                    return d
                if y not in dist:
                    dist[y] = d
                    queue.append(y)
        return None

    def offer(self, u: int, v: int) -> bool:
        """Process one stream edge; returns whether it was kept."""
        self.edges_seen += 1
        if u == v:
            return False
        edge = canonical_edge(u, v)
        if edge in self.kept:
            return False
        if self._bounded_distance(u, v) is not None:
            return False
        self._adj.setdefault(u, set()).add(v)
        self._adj.setdefault(v, set()).add(u)
        self.kept.add(edge)
        return True

    def consume(self, edges: Iterable[Edge]) -> "StreamingSpanner":
        for u, v in edges:
            self.offer(u, v)
        return self

    @property
    def size(self) -> int:
        return len(self.kept)

    def to_spanner(self, host: Graph) -> Spanner:
        """Package the kept edges against the (fully streamed) host."""
        return Spanner(
            host,
            self.kept,
            {
                "algorithm": "streaming-spanner",
                "k": self.k,
                "edges_seen": self.edges_seen,
            },
        )


class DynamicSpanner:
    """Fully-dynamic (2k-1)-spanner with lazy local repair on deletion.

    Maintains the invariant: for every host edge (u, v), the spanner has
    delta_S(u, v) <= 2k - 1.  Insertions use the streaming rule.  When a
    *spanner* edge is deleted, the invariant may break for host edges
    that routed through it; the repair re-offers every host edge incident
    to the deleted edge's endpoints and, if any still violates the
    invariant, falls back to re-offering all host edges (rare; counted).

    This is the semantic baseline against which [8, 20, 21]'s
    polylog-update-time structures are optimizations.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.host = Graph()
        self._stream = StreamingSpanner(k)
        self.full_rebuilds = 0

    @property
    def spanner_edges(self) -> Set[Edge]:
        return set(self._stream.kept)

    @property
    def size(self) -> int:
        return self._stream.size

    def insert(self, u: int, v: int) -> bool:
        """Insert a host edge; returns whether the spanner kept it."""
        if not self.host.add_edge(u, v):
            return False
        return self._stream.offer(u, v)

    def delete(self, u: int, v: int) -> None:
        """Delete a host edge, repairing the spanner if needed."""
        if not self.host.remove_edge(u, v):
            return
        edge = canonical_edge(u, v)
        if edge not in self._stream.kept:
            return
        self._stream.kept.discard(edge)
        self._stream._adj[u].discard(v)
        self._stream._adj[v].discard(u)
        # Local repair first: host edges at the endpoints are the usual
        # casualties.  A distant host edge may also have routed through
        # the deleted edge, so verify the global invariant and rebuild
        # when local repair was not enough (counted; rare in practice).
        for x in (u, v):
            for y in sorted(self.host.neighbors(x)):
                if canonical_edge(x, y) not in self._stream.kept:
                    self._stream.offer(x, y)
        if not self.check_invariant():
            self._rebuild()

    def _rebuild(self) -> None:
        self.full_rebuilds += 1
        self._stream = StreamingSpanner(self.k).consume(
            sorted(self.host.edges())
        )

    def check_invariant(self) -> bool:
        """Every host edge is spanned within 2k - 1 (test hook)."""
        return all(
            canonical_edge(u, v) in self._stream.kept
            or self._stream._bounded_distance(u, v) is not None
            for u, v in self.host.edges()
        )

    def to_spanner(self) -> Spanner:
        return Spanner(
            self.host,
            self._stream.kept,
            {
                "algorithm": "dynamic-spanner",
                "k": self.k,
                "full_rebuilds": self.full_rebuilds,
            },
        )
