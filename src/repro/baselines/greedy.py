"""The Althöfer et al. greedy spanner.

Process edges in order; add (u, v) only if the spanner built so far has
delta_S(u, v) > stretch.  The result is a ``stretch``-spanner whose girth
exceeds ``stretch + 1``, which is the classical route to size bounds:
girth > 2k implies size O(n^{1 + 1/k}).

This is the "survey your whole Theta(log n)-neighborhood" approach that
Sect. 2 contrasts with — girth-based sparsification is inherently
non-local, which is why the paper's skeleton avoids it.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional, Set

from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.spanner.spanner import Spanner


def _bounded_distance(
    adjacency: dict, source: int, target: int, cutoff: int
) -> Optional[int]:
    """delta(source, target) within ``cutoff`` hops, else None."""
    if source == target:
        return 0
    dist = {source: 0}
    queue = deque([source])
    while queue:
        x = queue.popleft()
        dx = dist[x]
        if dx >= cutoff:
            continue
        for y in adjacency.get(x, ()):
            if y == target:
                return dx + 1
            if y not in dist:
                dist[y] = dx + 1
                queue.append(y)
    return None


def greedy_spanner(
    graph: Graph,
    stretch: int,
    edge_order: Optional[Iterable[Edge]] = None,
) -> Spanner:
    """Greedy ``stretch``-spanner (stretch must be odd: 2k - 1).

    ``edge_order`` fixes the processing order (default: sorted canonical
    edges, so the construction is deterministic).
    """
    if stretch < 1:
        raise ValueError("stretch must be >= 1")
    edges = (
        sorted(graph.edges())
        if edge_order is None
        else [canonical_edge(u, v) for u, v in edge_order]
    )
    adjacency: dict = {v: set() for v in graph.vertices()}
    kept: Set[Edge] = set()
    for u, v in edges:
        d = _bounded_distance(adjacency, u, v, stretch)
        if d is None:
            kept.add((u, v))
            adjacency[u].add(v)
            adjacency[v].add(u)
    return Spanner(
        graph, kept, {"algorithm": "greedy", "stretch": stretch}
    )
