"""BFS spanning forest — the minimum-size connectivity baseline.

n - 1 edges per component, no distortion guarantee beyond twice the
eccentricity of the root; it anchors the size axis of Fig. 1 ("at the very
least the substitute should preserve connectivity").
"""

from __future__ import annotations

from typing import Set

from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.graphs.properties import bfs_parents
from repro.spanner.spanner import Spanner


def bfs_forest(graph: Graph) -> Spanner:
    """BFS spanning forest rooted at each component's minimum-id vertex."""
    kept: Set[Edge] = set()
    seen: Set[int] = set()
    for root in sorted(graph.vertices()):
        if root in seen:
            continue
        _, parent = bfs_parents(graph, root)
        seen.update(parent)
        for v, par in parent.items():
            if par is not None:
                kept.add(canonical_edge(v, par))
    return Spanner(graph, kept, {"algorithm": "bfs-forest"})
