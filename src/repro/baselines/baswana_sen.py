"""Baswana–Sen randomized (2k-1)-spanner (sequential semantics).

The clustering algorithm of [10] specialized to unweighted graphs: k - 1
sampling rounds grow radius-i clusters; vertices that see no sampled
cluster dump one edge per adjacent cluster and leave the game; a final
vertex-cluster joining round connects every survivor to each adjacent
cluster.  Expected size O(k n + log k * n^{1+1/k}) — the log k factor is
this paper's corrected analysis (Lemma 6 discussion).

Section 2's skeleton algorithm is a distributed, contracted descendant of
this procedure, so it doubles as a cross-validation baseline.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.spanner.spanner import Spanner
from repro.util.rng import SeedLike, ensure_rng


def baswana_sen_spanner(
    graph: Graph, k: int, seed: SeedLike = None
) -> Spanner:
    """Build a (2k - 1)-spanner with expected size ~ k n^{1 + 1/k}.

    ``k >= 1``; ``k = 1`` returns the whole graph (a 1-spanner).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    rng = ensure_rng(seed)
    n = graph.n
    if n == 0:
        return Spanner(graph, set(), {"algorithm": "baswana-sen", "k": k})
    sample_p = n ** (-1.0 / k)

    spanner_edges: Set[Edge] = set()
    # Active vertices and their cluster centers; clusters at round i have
    # radius <= i in the original graph (no contraction here).
    cluster_of: Dict[int, int] = {v: v for v in graph.vertices()}
    active: Set[int] = set(graph.vertices())

    for _ in range(k - 1):
        centers = sorted(set(cluster_of[v] for v in active))
        sampled = {c for c in centers if rng.random() < sample_p}
        new_cluster_of: Dict[int, int] = {}
        removed: List[int] = []
        for v in sorted(active):
            if cluster_of[v] in sampled:
                new_cluster_of[v] = cluster_of[v]
                continue
            # Candidate edge per adjacent *active* cluster (min-id nbr).
            candidate: Dict[int, int] = {}
            for u in graph.neighbors(v):
                if u not in active:
                    continue
                c = cluster_of[u]
                if c == cluster_of[v]:
                    continue
                if c not in candidate or u < candidate[c]:
                    candidate[c] = u
            sampled_adjacent = sorted(c for c in candidate if c in sampled)
            if sampled_adjacent:
                target = sampled_adjacent[0]
                spanner_edges.add(canonical_edge(v, candidate[target]))
                new_cluster_of[v] = target
            else:
                for c in sorted(candidate):
                    spanner_edges.add(canonical_edge(v, candidate[c]))
                removed.append(v)
        for v in removed:
            active.discard(v)
        cluster_of = new_cluster_of

    # Phase 2: vertex-cluster joining among the survivors.
    for v in sorted(active):
        candidate: Dict[int, int] = {}
        for u in graph.neighbors(v):
            if u not in active:
                continue
            c = cluster_of[u]
            if c == cluster_of[v]:
                continue
            if c not in candidate or u < candidate[c]:
                candidate[c] = u
        for c in sorted(candidate):
            spanner_edges.add(canonical_edge(v, candidate[c]))

    return Spanner(
        graph,
        spanner_edges,
        {"algorithm": "baswana-sen", "k": k, "sample_p": sample_p},
    )
