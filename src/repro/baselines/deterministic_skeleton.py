"""Sequential reference for the deterministic superclustering skeleton.

Mirrors every decision of
:func:`repro.distributed.deterministic_protocol.distributed_deterministic`
at the cluster level: the protocol is deterministic and every tie-break
is a minimum, so this reference reproduces the *exact* edge set and
per-superphase telemetry — the fuzz differential oracle compares them
for equality, not just within a size band.

Structure per superphase i (threshold t_i = (D+1)^(2^i) - 1):

1. cluster adjacency + minimum boundary edge per adjacent cluster pair;
2. high = degree >= t_i; iterated distance-2 ruling set over undecided
   high clusters (m1 = min undecided-high id over the closed
   neighborhood, m2 = min m1 over the closed neighborhood, center iff
   m2 = own id; centers dominate their distance-<=2 high neighbors);
3. wave 1: every non-center cluster adjacent to a center joins its
   minimum (center id, boundary edge) candidate;
4. wave 2: remaining high clusters join through a wave-1 joiner, by
   minimum (new cluster id, boundary edge) candidate;
5. deaths: remaining low clusters keep the minimum boundary edge to
   every adjacent cluster and deactivate.

See Elkin–Matar, arXiv:1907.10895 (and Bezdrighin et al.,
arXiv:2204.14086) for the structure this simplified variant follows.
"""

from __future__ import annotations

from typing import Any, Dict, List, Set, Tuple

from repro.graphs.graph import Edge, Graph, canonical_edge

__all__ = ["sequential_deterministic"]

#: a join candidate ordered exactly like the distributed protocol's:
#: (target cluster id, e0, e1) with (e0, e1) the canonical edge.
_Candidate = Tuple[int, int, int]


def sequential_deterministic(
    graph: Graph, D: int = 4
) -> Tuple[Set[Edge], Dict[str, Any]]:
    """Run the deterministic skeleton sequentially; mirror of the protocol.

    Returns ``(edges, info)`` where ``info`` matches the distributed
    metadata fields exactly: ``superphases``, ``cluster_counts``,
    ``ruling_iterations`` and ``superphase_tallies`` (per-superphase
    ``(centers, wave-1 joins, wave-2 joins, deaths)``).
    """
    # Function-local: the layer DAG (REP011) keeps ``baselines`` off
    # ``core`` at module level; the analytic budgets are the single
    # source of truth for thresholds and the superphase count.
    from repro.core.theory import (
        deterministic_phase_count,
        deterministic_threshold,
    )

    if D < 1:
        raise ValueError("D must be >= 1")
    n = graph.n
    inf = n  # cluster ids are < n
    active: Set[int] = set(graph.vertices())
    cluster: Dict[int, int] = {v: v for v in graph.vertices()}
    members: Dict[int, Set[int]] = {v: {v} for v in graph.vertices()}
    edges: Set[Edge] = set()

    max_superphases = deterministic_phase_count(n, D)
    cluster_counts: List[int] = []
    ruling_iterations: List[int] = []
    tallies: List[Tuple[int, int, int, int]] = []
    superphase = 0
    while active:
        if superphase >= max_superphases:
            raise RuntimeError(
                f"sequential deterministic exceeded its "
                f"{max_superphases}-superphase budget (n={n}, D={D})"
            )
        t = deterministic_threshold(D, superphase)
        alive = sorted(members)
        cluster_counts.append(len(alive))

        # Minimum boundary edge per ordered cluster pair.
        adj: Dict[int, Dict[int, Edge]] = {c: {} for c in alive}
        for u, v in sorted(graph.edges()):
            if u not in active or v not in active:
                continue
            cu, cv = cluster[u], cluster[v]
            if cu == cv:
                continue
            edge = canonical_edge(u, v)
            for a, b in ((cu, cv), (cv, cu)):
                best = adj[a].get(b)
                if best is None or edge < best:
                    adj[a][b] = edge

        high = {c for c in alive if len(adj[c]) >= t}
        closed = {c: [c] + sorted(adj[c]) for c in alive}

        # Iterated distance-2 ruling set over undecided high clusters.
        undecided = set(high)
        centers: Set[int] = set()
        iterations = 0
        while undecided:
            iterations += 1
            m1 = {
                c: min(
                    (c2 for c2 in closed[c] if c2 in undecided),
                    default=inf,
                )
                for c in alive
            }
            m2 = {c: min(m1[c2] for c2 in closed[c]) for c in alive}
            new_centers = {c for c in undecided if m2[c] == c}
            centers |= new_centers
            undecided -= new_centers
            d1 = {
                c: any(c2 in centers for c2 in closed[c]) for c in alive
            }
            dominated1 = {c for c in undecided if d1[c]}
            undecided -= dominated1
            dominated2 = {
                c
                for c in undecided
                if any(d1[c2] for c2 in closed[c])
            }
            undecided -= dominated2
        ruling_iterations.append(iterations)

        # Wave 1: clusters adjacent to a center join the minimum one.
        join1: Dict[int, _Candidate] = {}
        for c in alive:
            if c in centers:
                continue
            cands = [
                (c2,) + adj[c][c2] for c2 in adj[c] if c2 in centers
            ]
            if cands:
                join1[c] = min(cands)
        joined1_new: Dict[int, int] = {}  # old cluster id -> new id
        for c in sorted(join1):
            target, e0, e1 = join1[c]
            edges.add((e0, e1))
            joined1_new[c] = target
        # Wave 2: remaining high clusters join through a wave-1 joiner.
        join2: Dict[int, _Candidate] = {}
        for c in alive:
            if c in centers or c in join1 or c not in high:
                continue
            cands = [
                (joined1_new[c2],) + adj[c][c2]
                for c2 in adj[c]
                if c2 in joined1_new
            ]
            if cands:
                join2[c] = min(cands)
        for c in sorted(join2):
            target, e0, e1 = join2[c]
            edges.add((e0, e1))
        # Deaths: remaining low clusters interconnect and deactivate.
        deaths = 0
        for c in alive:
            if c in centers or c in join1 or c in join2 or c in high:
                continue
            deaths += 1
            for c2 in sorted(adj[c]):
                edges.add(adj[c][c2])
            for v in members[c]:
                active.discard(v)
            del members[c]
        # Apply the merges after deaths are carved out (the distributed
        # protocol's death table was fixed at survey time, so a dying
        # neighbor's interconnection edges are unaffected by joins).
        for c, target in sorted(joined1_new.items()):
            members[target] |= members[c]
            for v in members[c]:
                cluster[v] = target
            del members[c]
        for c in sorted(join2):
            target = join2[c][0]
            members[target] |= members[c]
            for v in members[c]:
                cluster[v] = target
            del members[c]

        tallies.append((len(centers), len(join1), len(join2), deaths))
        superphase += 1

    info: Dict[str, Any] = {
        "algorithm": "elkin-matar-deterministic-sequential",
        "D": D,
        "superphases": superphase,
        "cluster_counts": cluster_counts,
        "ruling_iterations": ruling_iterations,
        "superphase_tallies": tallies,
    }
    return edges, info
