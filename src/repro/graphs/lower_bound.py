"""The lower-bound graph family G(tau, chi, mu) of Section 3.

The graph is a chain of ``mu`` complete ``chi x chi`` bipartite blocks.
Corresponding right/left block columns are joined by chains: column 1 by a
*short* chain of length ``tau + 1`` and columns ``j >= 2`` by chains of
length ``tau + 5``.  Pendant chains of ``tau + 1`` new vertices hang off the
first block's left side and the last block's right side so that every block
vertex has a topologically identical ``tau``-neighborhood.

The *critical edges* are ``(vL[i][1], vR[i][1])``: discarding one forces a
detour of exactly +2 (through column j > 1 of the same block), which is the
engine of every lower bound in the section.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Set, Tuple

from repro.graphs.graph import Edge, Graph, canonical_edge


@dataclass
class LowerBoundGraph:
    """G(tau, chi, mu) plus the bookkeeping the theorems need."""

    graph: Graph
    tau: int
    chi: int
    mu: int
    #: left/right block columns: ``left[i][j]`` is v_{L,i+1,j+1} (0-indexed).
    left: List[List[int]] = field(repr=False)
    right: List[List[int]] = field(repr=False)
    #: the critical edges (vL[i][1], vR[i][1]), canonical form, block order.
    critical_edges: List[Edge] = field(repr=False)
    #: every edge inside a bipartite block (the only discardable edges).
    block_edges: Set[Edge] = field(repr=False)
    #: every chain/pendant edge (must be kept by any correct algorithm).
    chain_edges: Set[Edge] = field(repr=False)

    @property
    def n(self) -> int:
        return self.graph.n

    @property
    def m(self) -> int:
        return self.graph.m

    def witness_pair(self) -> Tuple[int, int]:
        """The canonical hard pair: first and last column-1 left vertices.

        Its unique shortest path traverses *every* critical edge and has
        length ``(mu - 1)(tau + 2) + tau + 1``... more precisely the path
        vL[0][0] -> vR[0][0] -> chain -> vL[1][0] -> ... -> vR[mu-1][0]
        crosses all ``mu`` critical edges.
        """
        return self.left[0][0], self.right[self.mu - 1][0]

    def witness_distance(self) -> int:
        """delta(u, v) for :meth:`witness_pair` in the intact graph."""
        # mu critical edges + (mu - 1) chains of length tau + 1 each.
        return self.mu + (self.mu - 1) * (self.tau + 1)

    def detour_distance(self, discarded: int) -> int:
        """Distance of the witness pair after ``discarded`` critical edges
        are removed: each missing critical edge is replaced by a length-3
        path inside its block (left column-1 -> right column j -> ... no:
        left[i][0] -> right[i][j] -> left[i][j'] style detours cost +2).
        """
        return self.witness_distance() + 2 * discarded


def lower_bound_graph(tau: int, chi: int, mu: int) -> LowerBoundGraph:
    """Construct G(tau, chi, mu).

    ``tau >= 0`` (rounds available to the adversary algorithm),
    ``chi >= 2`` (block side size), ``mu >= 1`` (number of blocks).
    """
    if chi < 2:
        raise ValueError("chi must be >= 2 so detours exist")
    if mu < 1:
        raise ValueError("mu must be >= 1")
    if tau < 0:
        raise ValueError("tau must be >= 0")

    g = Graph()
    next_id = 0

    def fresh() -> int:
        nonlocal next_id
        v = next_id
        next_id += 1
        g.add_vertex(v)
        return v

    left = [[fresh() for _ in range(chi)] for _ in range(mu)]
    right = [[fresh() for _ in range(chi)] for _ in range(mu)]

    block_edges: Set[Edge] = set()
    chain_edges: Set[Edge] = set()
    critical_edges: List[Edge] = []

    for i in range(mu):
        for j in range(chi):
            for k in range(chi):
                g.add_edge(left[i][j], right[i][k])
                block_edges.add(canonical_edge(left[i][j], right[i][k]))
        critical_edges.append(canonical_edge(left[i][0], right[i][0]))

    def add_chain(u: int, v: int, length: int) -> None:
        """Connect u to v with a path of ``length`` edges (new interior)."""
        prev = u
        for _ in range(length - 1):
            nxt = fresh()
            g.add_edge(prev, nxt)
            chain_edges.add(canonical_edge(prev, nxt))
            prev = nxt
        g.add_edge(prev, v)
        chain_edges.add(canonical_edge(prev, v))

    def add_pendant(u: int, num_new: int) -> None:
        """Attach a pendant chain of ``num_new`` new vertices to ``u``."""
        prev = u
        for _ in range(num_new):
            nxt = fresh()
            g.add_edge(prev, nxt)
            chain_edges.add(canonical_edge(prev, nxt))
            prev = nxt

    for i in range(mu - 1):
        add_chain(right[i][0], left[i + 1][0], tau + 1)
        for j in range(1, chi):
            add_chain(right[i][j], left[i + 1][j], tau + 5)

    for j in range(chi):
        add_pendant(left[0][j], tau + 1)
        add_pendant(right[mu - 1][j], tau + 1)

    return LowerBoundGraph(
        graph=g,
        tau=tau,
        chi=chi,
        mu=mu,
        left=left,
        right=right,
        critical_edges=critical_edges,
        block_edges=block_edges,
        chain_edges=chain_edges,
    )


def theorem3_parameters(
    n: int, delta: float, c: float, tau: int
) -> Tuple[int, int, int]:
    """Parameters (tau, chi, mu) used in Theorem 3's proof.

    chi = c (tau+6) n^delta and mu = n^{1-delta} / (c (tau+6)^2) - 1,
    clamped to valid minimums for small n.
    """
    chi = max(2, round(c * (tau + 6) * n**delta))
    mu = max(1, round(n ** (1 - delta) / (c * (tau + 6) ** 2)) - 1)
    return tau, chi, mu


def theorem5_parameters(
    n: int, delta: float, beta: float
) -> Tuple[int, int, int]:
    """Parameters for Theorem 5 (additive beta-spanners).

    tau = sqrt(n^{1-delta} / (4 beta)) - 6, chi = 2(tau+6) n^delta,
    mu = n^{1-delta} / (2 (tau+6)^2) = 2 beta.
    """
    tau = max(1, round(math.sqrt(n ** (1 - delta) / (4 * beta))) - 6)
    chi = max(2, round(2 * (tau + 6) * n**delta))
    mu = max(1, round(n ** (1 - delta) / (2 * (tau + 6) ** 2)))
    return tau, chi, mu


def theorem6_parameters(
    n: int, sigma: float, eps: float, c: float
) -> Tuple[int, int, int]:
    """Parameters for Theorem 6 (sublinear additive d + c d^{1-eps}).

    tau + 6 = (1/c) n^{eps (1-sigma) / (1+eps)},
    chi = 4 (tau+6) n^sigma, mu = n^{1-sigma} / (4 (tau+6)^2).
    """
    tau = max(1, round(n ** (eps * (1 - sigma) / (1 + eps)) / c) - 6)
    chi = max(2, round(4 * (tau + 6) * n**sigma))
    mu = max(1, round(n ** (1 - sigma) / (4 * (tau + 6) ** 2)))
    return tau, chi, mu
