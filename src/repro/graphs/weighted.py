"""Weighted undirected graphs and Dijkstra — the Baswana–Sen substrate.

The paper's focus is unweighted graphs, but Fig. 1's first row notes that
"Baswana and Sen's randomized algorithm for constructing (2k-1)-spanners
in *weighted* graphs is optimal in all respects".  This module provides
the weighted substrate that claim lives on: a positive-weight undirected
graph, Dijkstra distances, and weighted stretch measurement.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, Iterator, Optional, Set, Tuple

from repro.graphs.graph import Graph, canonical_edge
from repro.util.rng import SeedLike, ensure_rng

Edge = Tuple[int, int]
INF = float("inf")


class WeightedGraph:
    """Simple undirected graph with positive edge weights."""

    __slots__ = ("_adj",)

    def __init__(
        self, edges: Iterable[Tuple[int, int, float]] = ()
    ) -> None:
        self._adj: Dict[int, Dict[int, float]] = {}
        for u, v, w in edges:
            self.add_edge(u, v, w)

    def add_vertex(self, v: int) -> None:
        self._adj.setdefault(v, {})

    def add_edge(self, u: int, v: int, weight: float) -> bool:
        """Add {u, v} with the given positive weight (no duplicates)."""
        if u == v:
            return False
        if weight <= 0:
            raise ValueError("weights must be positive")
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._adj[u]:
            return False
        self._adj[u][v] = weight
        self._adj[v][u] = weight
        return True

    @property
    def n(self) -> int:
        return len(self._adj)

    @property
    def m(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def has_edge(self, u: int, v: int) -> bool:
        return u in self._adj and v in self._adj[u]

    def weight(self, u: int, v: int) -> float:
        return self._adj[u][v]

    def neighbors(self, v: int) -> Dict[int, float]:
        """Neighbor -> weight mapping (do not mutate)."""
        return self._adj[v]

    def vertices(self) -> Iterator[int]:
        return iter(self._adj)

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if u <= v:
                    yield (u, v, w)

    def unweighted(self) -> Graph:
        """Forget the weights (for connectivity checks)."""
        return Graph(
            vertices=self._adj,
            edges=((u, v) for u, v, _ in self.edges()),
        )

    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        weights: Optional[Dict[Edge, float]] = None,
        seed: SeedLike = None,
        low: float = 1.0,
        high: float = 10.0,
    ) -> "WeightedGraph":
        """Lift an unweighted graph: explicit weights or uniform random."""
        rng = ensure_rng(seed)
        wg = cls()
        for v in graph.vertices():
            wg.add_vertex(v)
        for u, v in sorted(graph.edges()):
            if weights is not None:
                w = weights[canonical_edge(u, v)]
            else:
                w = rng.uniform(low, high)
            wg.add_edge(u, v, w)
        return wg

    def edge_subgraph(self, edges: Iterable[Edge]) -> "WeightedGraph":
        """Weighted subgraph on all vertices with only ``edges``."""
        sub = WeightedGraph()
        for v in self._adj:
            sub.add_vertex(v)
        for u, v in edges:
            if not self.has_edge(u, v):
                raise ValueError(f"edge {(u, v)} not in host graph")
            sub.add_edge(u, v, self.weight(u, v))
        return sub

    def __repr__(self) -> str:
        return f"WeightedGraph(n={self.n}, m={self.m})"


def dijkstra(
    graph: WeightedGraph, source: int, cutoff: float = INF
) -> Dict[int, float]:
    """Single-source shortest-path distances up to ``cutoff``."""
    dist: Dict[int, float] = {}
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if u in dist:
            continue
        if d > cutoff:
            break
        dist[u] = d
        for v, w in graph.neighbors(u).items():
            if v not in dist:
                heapq.heappush(heap, (d + w, v))
    return dist


def weighted_stretch(
    host: WeightedGraph,
    spanner_edges: Set[Edge],
    num_sources: Optional[int] = None,
    seed: SeedLike = None,
) -> Tuple[float, float]:
    """(max, mean) multiplicative stretch of a weighted spanner."""
    sub = host.edge_subgraph(spanner_edges)
    rng = ensure_rng(seed)
    sources = sorted(host.vertices())
    if num_sources is not None and num_sources < len(sources):
        sources = rng.sample(sources, num_sources)
    worst = 0.0
    total = 0.0
    pairs = 0
    for s in sources:
        d_host = dijkstra(host, s)
        d_sub = dijkstra(sub, s)
        for v, d in d_host.items():
            if v == s:
                continue
            ratio = d_sub.get(v, INF) / d
            worst = max(worst, ratio)
            total += ratio
            pairs += 1
    return worst, (total / pairs if pairs else 0.0)
