"""Graph property routines: BFS machinery, components, diameter, girth.

These are the measurement substrate for the whole reproduction — stretch
evaluation, ball construction and cluster radii are all built on the BFS
primitives here.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.graphs.graph import Graph

INF = float("inf")


def bfs_distances(
    graph: Graph, source: int, cutoff: Optional[int] = None
) -> Dict[int, int]:
    """Distances from ``source`` to every vertex within ``cutoff`` hops.

    ``cutoff=None`` explores the whole component.  Unreached vertices are
    absent from the result.
    """
    dist = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        if cutoff is not None and du >= cutoff:
            continue
        for v in graph.neighbors(u):
            if v not in dist:
                dist[v] = du + 1
                queue.append(v)
    return dist


def bfs_parents(
    graph: Graph, source: int, cutoff: Optional[int] = None
) -> Tuple[Dict[int, int], Dict[int, Optional[int]]]:
    """BFS returning ``(distances, parents)``; the source's parent is None."""
    dist = {source: 0}
    parent: Dict[int, Optional[int]] = {source: None}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        if cutoff is not None and du >= cutoff:
            continue
        for v in graph.neighbors(u):
            if v not in dist:
                dist[v] = du + 1
                parent[v] = u
                queue.append(v)
    return dist, parent


def shortest_path(graph: Graph, source: int, target: int) -> Optional[List[int]]:
    """A shortest path from ``source`` to ``target`` as a vertex list.

    Returns ``None`` when the two are disconnected.
    """
    if source == target:
        return [source]
    dist, parent = bfs_parents(graph, source)
    if target not in dist:
        return None
    path = [target]
    while parent[path[-1]] is not None:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def multi_source_bfs(
    graph: Graph,
    sources: Iterable[int],
    cutoff: Optional[int] = None,
) -> Tuple[Dict[int, int], Dict[int, int], Dict[int, Optional[int]]]:
    """Multi-source BFS with min-identifier tie-breaking.

    Returns ``(dist, root, parent)`` where ``root[v]`` is the *minimum-id*
    source among those nearest to ``v`` — exactly the paper's definition of
    ``p_i(v)`` ("if there are multiple such vertices let p_i(u) be the one
    whose unique identifier is minimum", Sect. 4.1).  The parent pointers
    form a forest of shortest paths toward the roots, consistent with the
    tie-breaking (so every vertex on the tree path from ``v`` shares
    ``root[v]``).
    """
    dist: Dict[int, int] = {}
    root: Dict[int, int] = {}
    parent: Dict[int, Optional[int]] = {}
    frontier = sorted(set(sources))
    for s in frontier:
        dist[s] = 0
        root[s] = s
        parent[s] = None
    level = 0
    while frontier and (cutoff is None or level < cutoff):
        # Process the whole level, then resolve ties by minimum root id:
        # a vertex discovered by several frontier vertices adopts the one
        # whose root identifier is smallest.
        candidates: Dict[int, Tuple[int, int]] = {}
        for u in frontier:
            for v in graph.neighbors(u):
                if v in dist:
                    continue
                cand = (root[u], u)
                if v not in candidates or cand < candidates[v]:
                    candidates[v] = cand
        next_frontier = []
        level += 1
        for v, (r, via) in candidates.items():
            dist[v] = level
            root[v] = r
            parent[v] = via
            next_frontier.append(v)
        frontier = next_frontier
    return dist, root, parent


def connected_components(graph: Graph) -> List[Set[int]]:
    """All connected components as vertex sets."""
    seen: Set[int] = set()
    components = []
    for v in graph.vertices():
        if v in seen:
            continue
        comp = set(bfs_distances(graph, v))
        seen |= comp
        components.append(comp)
    return components


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected (empty graph counts as connected)."""
    if graph.n == 0:
        return True
    first = next(graph.vertices())
    return len(bfs_distances(graph, first)) == graph.n


def eccentricity(graph: Graph, v: int) -> int:
    """Maximum distance from ``v`` within its component."""
    return max(bfs_distances(graph, v).values())


def diameter(graph: Graph, exact: bool = True) -> int:
    """Diameter of a connected graph.

    ``exact=True`` runs BFS from every vertex (O(nm)); ``exact=False`` uses
    the double-sweep lower bound, which is exact on trees and very tight on
    the graph families used here.
    """
    if graph.n == 0:
        return 0
    if not exact:
        start = next(graph.vertices())
        dist = bfs_distances(graph, start)
        far = max(dist, key=lambda u: dist[u])
        return eccentricity(graph, far)
    return max(eccentricity(graph, v) for v in graph.vertices())


def girth(graph: Graph) -> float:
    """Length of the shortest cycle; ``inf`` for forests.

    Runs the classical per-vertex truncated BFS: a non-tree edge between
    two vertices at depths d1, d2 from the BFS root witnesses a cycle of
    length d1 + d2 + 1.  Taking the minimum over all roots is exact for
    undirected graphs.
    """
    best = INF
    for s in graph.vertices():
        dist = {s: 0}
        parent = {s: s}
        queue = deque([s])
        while queue:
            u = queue.popleft()
            if 2 * dist[u] >= best - 1:
                continue
            for v in graph.neighbors(u):
                if v == parent[u]:
                    continue
                if v in dist:
                    cycle_len = dist[u] + dist[v] + 1
                    if cycle_len < best:
                        best = cycle_len
                else:
                    dist[v] = dist[u] + 1
                    parent[v] = u
                    queue.append(v)
    return best


def distance(graph: Graph, u: int, v: int) -> float:
    """Exact distance between ``u`` and ``v`` (``inf`` if disconnected)."""
    if u == v:
        return 0
    dist = bfs_distances(graph, u)
    return dist.get(v, INF)
