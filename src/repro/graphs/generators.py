"""Graph generators used as workloads throughout the benchmarks.

All generators return :class:`repro.graphs.Graph` over integer vertices
``0..n-1`` and accept a ``seed`` (int, ``random.Random`` or None) where
randomness is involved.
"""

from __future__ import annotations

import itertools
from typing import List, Tuple

from repro.graphs.graph import Graph
from repro.util.rng import SeedLike, ensure_rng


def path(n: int) -> Graph:
    """Simple path on ``n`` vertices."""
    return Graph(vertices=range(n), edges=((i, i + 1) for i in range(n - 1)))


def cycle(n: int) -> Graph:
    """Cycle on ``n`` vertices (``n >= 3``)."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    g = path(n)
    g.add_edge(n - 1, 0)
    return g


def star(n: int) -> Graph:
    """Star with center 0 and ``n - 1`` leaves."""
    return Graph(vertices=range(n), edges=((0, i) for i in range(1, n)))


def complete(n: int) -> Graph:
    """Complete graph K_n."""
    return Graph(
        vertices=range(n), edges=itertools.combinations(range(n), 2)
    )


def complete_bipartite(a: int, b: int) -> Graph:
    """Complete bipartite graph K_{a,b}; left side 0..a-1, right a..a+b-1."""
    return Graph(
        vertices=range(a + b),
        edges=((i, a + j) for i in range(a) for j in range(b)),
    )


def grid_2d(rows: int, cols: int, torus: bool = False) -> Graph:
    """2-D grid (or torus) — the long-diameter workload for stage plots."""
    def vid(r: int, c: int) -> int:
        return r * cols + c

    g = Graph(vertices=range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                g.add_edge(vid(r, c), vid(r, c + 1))
            elif torus and cols > 2:
                g.add_edge(vid(r, c), vid(r, 0))
            if r + 1 < rows:
                g.add_edge(vid(r, c), vid(r + 1, c))
            elif torus and rows > 2:
                g.add_edge(vid(r, c), vid(0, c))
    return g


def hypercube(dim: int) -> Graph:
    """Boolean hypercube on 2**dim vertices."""
    n = 1 << dim
    g = Graph(vertices=range(n))
    for v in range(n):
        for b in range(dim):
            u = v ^ (1 << b)
            if u > v:
                g.add_edge(v, u)
    return g


def balanced_tree(branching: int, height: int) -> Graph:
    """Complete ``branching``-ary tree of the given height (root = 0)."""
    g = Graph(vertices=[0])
    frontier = [0]
    next_id = 1
    for _ in range(height):
        new_frontier = []
        for parent in frontier:
            for _ in range(branching):
                g.add_edge(parent, next_id)
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return g


def barbell(clique_size: int, path_length: int) -> Graph:
    """Two K_{clique_size} cliques joined by a path of ``path_length`` edges."""
    g = complete(clique_size)
    offset = clique_size
    second = complete(clique_size)
    for u, v in second.edges():
        g.add_edge(u + offset, v + offset)
    prev = 0
    bridge_start = 2 * clique_size
    for i in range(path_length - 1):
        g.add_edge(prev, bridge_start + i)
        prev = bridge_start + i
    g.add_edge(prev, offset)
    return g


def chain_of_cliques(num_cliques: int, clique_size: int, link_length: int = 1) -> Graph:
    """Cliques strung on a path — dense blobs at controllable distances.

    Clique ``i`` occupies ids ``[i * clique_size, (i+1) * clique_size)``;
    consecutive cliques are joined (first vertex to first vertex) by a path
    with ``link_length`` edges.  This family has large diameter and high
    local density, which is what the Fibonacci distance-stage experiment
    (E6) needs.
    """
    g = Graph()
    for i in range(num_cliques):
        base = i * clique_size
        for u, v in itertools.combinations(range(base, base + clique_size), 2):
            g.add_edge(u, v)
    next_id = num_cliques * clique_size
    for i in range(num_cliques - 1):
        a = i * clique_size
        b = (i + 1) * clique_size
        prev = a
        for _ in range(link_length - 1):
            g.add_edge(prev, next_id)
            prev = next_id
            next_id += 1
        g.add_edge(prev, b)
    return g


def erdos_renyi_gnp(n: int, p: float, seed: SeedLike = None) -> Graph:
    """G(n, p) via geometric skipping (efficient for sparse p)."""
    rng = ensure_rng(seed)
    g = Graph(vertices=range(n))
    if p <= 0:
        return g
    if p >= 1:
        return complete(n)
    import math

    log_q = math.log(1.0 - p)
    v, w = 1, -1
    while v < n:
        r = rng.random()
        w += 1 + int(math.log(1.0 - r) / log_q)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            g.add_edge(v, w)
    return g


def erdos_renyi_gnm(n: int, m: int, seed: SeedLike = None) -> Graph:
    """G(n, m): exactly ``m`` distinct uniform random edges."""
    max_m = n * (n - 1) // 2
    if m > max_m:
        raise ValueError(f"m={m} exceeds the {max_m} possible edges")
    rng = ensure_rng(seed)
    g = Graph(vertices=range(n))
    while g.m < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        g.add_edge(u, v)
    return g


def random_regular(n: int, d: int, seed: SeedLike = None) -> Graph:
    """Random ``d``-regular graph via the pairing model with restarts.

    Requires ``n * d`` even and ``d < n``.  Restarts on loops/multi-edges,
    which is fast for the moderate degrees used in benchmarks.
    """
    if (n * d) % 2 != 0:
        raise ValueError("n * d must be even")
    if d >= n:
        raise ValueError("need d < n")
    rng = ensure_rng(seed)
    if d == 0:
        return Graph(vertices=range(n))
    for _ in range(1000):
        stubs = [v for v in range(n) for _ in range(d)]
        rng.shuffle(stubs)
        g = Graph(vertices=range(n))
        ok = True
        for i in range(0, len(stubs), 2):
            if not g.add_edge(stubs[i], stubs[i + 1]):
                ok = False
                break
        if ok:
            return g
    raise RuntimeError("pairing model failed to produce a simple graph")


def preferential_attachment(n: int, m: int, seed: SeedLike = None) -> Graph:
    """Barabási–Albert graph: each new vertex attaches to ``m`` others."""
    if m < 1 or m >= n:
        raise ValueError("need 1 <= m < n")
    rng = ensure_rng(seed)
    g = complete(m + 1)
    # Repeated-vertex list: sampling uniformly from it is degree-biased.
    targets: List[int] = [endpoint for edge in g.edges() for endpoint in edge]
    for new in range(m + 1, n):
        chosen = set()
        while len(chosen) < m:
            chosen.add(rng.choice(targets))
        for t in sorted(chosen):
            g.add_edge(new, t)
            targets.extend((new, t))
    return g


def caterpillar(spine: int, legs_per_vertex: int) -> Graph:
    """A caterpillar tree: a spine path with pendant legs."""
    g = path(spine)
    next_id = spine
    for v in range(spine):
        for _ in range(legs_per_vertex):
            g.add_edge(v, next_id)
            next_id += 1
    return g


def watts_strogatz(
    n: int, k: int, beta: float, seed: SeedLike = None
) -> Graph:
    """Watts–Strogatz small-world graph (ring lattice with rewiring).

    Each vertex connects to its ``k`` nearest ring neighbors (k even);
    every lattice edge is rewired with probability ``beta`` to a uniform
    random endpoint (skipping loops/duplicates).  Small diameter with
    high clustering — a workload between the grid and G(n, p).
    """
    if k % 2 != 0 or k < 2:
        raise ValueError("k must be even and >= 2")
    if k >= n:
        raise ValueError("need k < n")
    rng = ensure_rng(seed)
    g = Graph(vertices=range(n))
    for v in range(n):
        for j in range(1, k // 2 + 1):
            g.add_edge(v, (v + j) % n)
    for v in range(n):
        for j in range(1, k // 2 + 1):
            if rng.random() < beta:
                old = (v + j) % n
                new = rng.randrange(n)
                if new != v and not g.has_edge(v, new) and g.has_edge(
                    v, old
                ):
                    g.remove_edge(v, old)
                    g.add_edge(v, new)
    return g


def random_geometric(
    n: int, radius: float, seed: SeedLike = None
) -> Graph:
    """Random geometric graph on the unit square (grid-bucketed).

    Vertices at uniform positions; edges between pairs within Euclidean
    distance ``radius``.  The standard model for wireless/sensor
    networks — the setting where network-as-input-graph spanners are
    deployed in practice.
    """
    if not 0 < radius <= 1.5:
        raise ValueError("radius must be in (0, 1.5]")
    rng = ensure_rng(seed)
    positions = [(rng.random(), rng.random()) for _ in range(n)]
    g = Graph(vertices=range(n))
    cell = radius
    buckets: dict = {}
    for i, (x, y) in enumerate(positions):
        buckets.setdefault((int(x / cell), int(y / cell)), []).append(i)
    r2 = radius * radius
    for (cx, cy), members in buckets.items():
        neighbors_cells = [
            buckets.get((cx + dx, cy + dy), [])
            for dx in (-1, 0, 1)
            for dy in (-1, 0, 1)
        ]
        for i in members:
            xi, yi = positions[i]
            for cell_members in neighbors_cells:
                for j in cell_members:
                    if j <= i:
                        continue
                    xj, yj = positions[j]
                    if (xi - xj) ** 2 + (yi - yj) ** 2 <= r2:
                        g.add_edge(i, j)
    return g


def relabel_shuffled(graph: Graph, seed: SeedLike = None) -> Tuple[Graph, dict]:
    """Randomly permute vertex identifiers.

    The lower-bound argument (Sect. 3) assigns vertices "a random
    permutation of {1, ..., n}" so algorithms cannot exploit labels.
    Returns ``(new_graph, mapping old->new)``.
    """
    rng = ensure_rng(seed)
    old = list(graph.vertices())
    new = list(range(len(old)))
    rng.shuffle(new)
    mapping = dict(zip(old, new))
    g = Graph(vertices=new)
    for u, v in graph.edges():
        g.add_edge(mapping[u], mapping[v])
    return g, mapping
