"""The shared host-graph registry ("graph zoo").

Every subsystem that needs a deterministic benchmark host — the
simulator bench matrix (:mod:`repro.perf.workloads`), the churn
workload cells, the serving-tier artifact builder and its load
generator (:mod:`repro.serving`) — draws from this one table, so
"the er/smoke host at seed 1001" means the *identical* graph
everywhere.  Adding a graph family is one entry here, not one edit
per consumer (ROADMAP: "graph zoo" refactor, first step).

Three scales, mirroring the bench matrix:

* ``smoke`` — small hosts for CI gates (seconds in total);
* ``e1`` — the EXPERIMENTS.md E1 operating point (Erdős–Rényi
  ``G(600, 0.02)``) plus comparable grid/hypercube hosts;
* ``e2`` — the 10^5-node class the sharded round engine targets
  (EXPERIMENTS.md E24): ``G(100000, 5e-5)``, a 320x320 grid and the
  dimension-14 hypercube.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.graphs.generators import erdos_renyi_gnp, grid_2d, hypercube
from repro.graphs.graph import Graph

__all__ = ["GRAPH_KINDS", "HOST_SCALES", "build_host", "host_params"]

#: registered host families, in canonical order.
GRAPH_KINDS: Tuple[str, ...] = ("er", "grid", "hypercube")

#: registered scales, small to large.
HOST_SCALES: Tuple[str, ...] = ("smoke", "e1", "e2")

#: host-family parameters per scale.  ``e1`` er matches EXPERIMENTS.md
#: E1 (n=600, p=0.02); grid/hypercube are sized to comparable n.
#: ``e2`` is the sharded engine's 10^5-node class: G(100000, 5e-5)
#: keeps expected degree ~5 (~250k edges), the grid and hypercube are
#: sized to ~n = 10^5.
_ER_PARAMS: Dict[str, Tuple[int, float]] = {
    "smoke": (120, 0.06),
    "e1": (600, 0.02),
    "e2": (100_000, 5e-5),
}
_GRID_PARAMS: Dict[str, Tuple[int, int]] = {
    "smoke": (10, 12),
    "e1": (24, 25),
    "e2": (320, 320),
}
_HYPERCUBE_DIM: Dict[str, int] = {"smoke": 7, "e1": 9, "e2": 14}


def host_params(graph_kind: str, scale: str) -> Dict[str, int]:
    """The registry row for ``(graph_kind, scale)``, as plain data.

    Raises ``ValueError`` for unknown kinds or scales, so callers can
    validate a recipe without building the graph.
    """
    if scale not in HOST_SCALES:
        raise ValueError(f"unknown host scale: {scale!r}")
    if graph_kind == "er":
        n, p = _ER_PARAMS[scale]
        # p is scaled to an int per-mille so the row stays integral
        # (and therefore trivially JSON/checksum stable).  The e2 class
        # needs sub-permille resolution (5e-5 rounds to 0), so it keys
        # per-million instead; smoke/e1 rows keep the original key —
        # serving artifact checksums depend on them byte-for-byte.
        if scale == "e2":
            return {"n": n, "p_permillion": int(round(p * 1_000_000))}
        return {"n": n, "p_permille": int(round(p * 1000))}
    if graph_kind == "grid":
        rows, cols = _GRID_PARAMS[scale]
        return {"rows": rows, "cols": cols}
    if graph_kind == "hypercube":
        return {"dim": _HYPERCUBE_DIM[scale]}
    raise ValueError(f"unknown graph kind: {graph_kind!r}")


def build_host(graph_kind: str, scale: str, graph_seed: int) -> Graph:
    """Construct the registry host (deterministic per arguments).

    The seed only matters for randomized families (``er``); structured
    hosts ignore it but accept it so every call site is uniform.
    """
    params = host_params(graph_kind, scale)  # validates kind + scale
    if graph_kind == "er":
        n, p = _ER_PARAMS[scale]
        return erdos_renyi_gnp(n, p, seed=graph_seed)
    if graph_kind == "grid":
        return grid_2d(params["rows"], params["cols"])
    return hypercube(params["dim"])
