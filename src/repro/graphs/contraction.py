"""Cluster contraction with representative original edges.

Section 2's algorithm repeatedly contracts clusterings: ``G' // C`` replaces
each cluster by a single vertex and keeps the graph simple.  Crucially,
"selecting (u, v) [in a contracted graph] is merely shorthand for selecting
a single arbitrary edge among pi^-1(u) x pi^-1(v) /\\ E" — so the contraction
must remember, for every contracted edge, one *original-graph* edge realizing
it.  :func:`contract` does exactly that.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from repro.graphs.graph import Edge, Graph, canonical_edge


def contract(
    graph: Graph,
    cluster_of: Mapping[int, int],
    edge_witness: Mapping[Edge, Edge] = None,
) -> Tuple[Graph, Dict[Edge, Edge]]:
    """Contract ``graph`` according to ``cluster_of``.

    ``cluster_of`` maps every vertex of ``graph`` to its cluster identifier
    (the clustering must be complete).  ``edge_witness`` optionally maps each
    canonical edge of ``graph`` to its representative edge in some *earlier*
    (less contracted) graph; composing witnesses lets the skeleton algorithm
    trace every selected edge all the way back to the input graph.

    Returns ``(contracted_graph, witness)`` where ``witness`` maps each
    canonical contracted edge to a representative edge of the original
    (pre-``edge_witness``) graph.  Loops and parallel edges are discarded,
    keeping the contracted graph simple; for parallel edges the witness of
    the first one encountered (in deterministic sorted order) is kept, which
    matches the paper's "a single arbitrary edge".
    """
    for v in graph.vertices():
        if v not in cluster_of:
            raise ValueError(f"clustering is not complete: vertex {v} unmapped")

    contracted = Graph(vertices=set(cluster_of[v] for v in graph.vertices()))
    witness: Dict[Edge, Edge] = {}
    for u, v in sorted(graph.edges()):
        cu, cv = cluster_of[u], cluster_of[v]
        if cu == cv:
            continue
        key = canonical_edge(cu, cv)
        if key not in witness:
            original = (u, v)
            if edge_witness is not None:
                original = edge_witness[canonical_edge(u, v)]
            witness[key] = original
        contracted.add_edge(cu, cv)
    return contracted, witness


def quotient_clusters(
    cluster_of: Mapping[int, int],
) -> Dict[int, list]:
    """Invert a vertex->cluster map into cluster -> sorted member list."""
    members: Dict[int, list] = {}
    for v, c in cluster_of.items():
        members.setdefault(c, []).append(v)
    for c in members:
        members[c].sort()
    return members
