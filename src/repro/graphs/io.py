"""Edge-list I/O — load real network snapshots, save spanners.

Plain-text edge lists (one ``u v`` pair per line, ``#`` comments), the
lingua franca of network datasets (SNAP, KONECT, ...).  Weighted
variants carry a third column.
"""

from __future__ import annotations

import os
from typing import TextIO, Union

from repro.graphs.graph import Graph
from repro.graphs.weighted import WeightedGraph

PathLike = Union[str, "os.PathLike[str]"]


def _lines(source: Union[PathLike, TextIO]):
    if hasattr(source, "read"):
        yield from source
    else:
        with open(source) as fh:
            yield from fh


def load_edge_list(source: Union[PathLike, TextIO]) -> Graph:
    """Read an unweighted graph from an edge-list file or file object.

    Lines: ``u v`` (ints); blank lines and ``#`` comments are skipped;
    an isolated vertex may be declared by a single-token line.
    """
    g = Graph()
    for line_no, raw in enumerate(_lines(source), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) == 1:
            g.add_vertex(int(parts[0]))
        elif len(parts) == 2:
            g.add_edge(int(parts[0]), int(parts[1]))
        else:
            raise ValueError(
                f"line {line_no}: expected 'u v', got {raw!r} — for "
                "'u v weight' files use load_weighted_edge_list"
            )
    return g


def save_edge_list(
    graph: Graph,
    target: Union[PathLike, TextIO],
    header: str = "",
) -> None:
    """Write ``graph`` as a sorted edge list (isolated vertices too)."""
    own = not hasattr(target, "write")
    fh = open(target, "w") if own else target
    try:
        if header:
            for line in header.splitlines():
                fh.write(f"# {line}\n")
        isolated = sorted(
            v for v in graph.vertices() if graph.degree(v) == 0
        )
        for v in isolated:
            fh.write(f"{v}\n")
        for u, v in sorted(graph.edges()):
            fh.write(f"{u} {v}\n")
    finally:
        if own:
            fh.close()


def load_weighted_edge_list(
    source: Union[PathLike, TextIO]
) -> WeightedGraph:
    """Read a weighted graph: lines ``u v weight``."""
    g = WeightedGraph()
    for line_no, raw in enumerate(_lines(source), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) == 1:
            g.add_vertex(int(parts[0]))
        elif len(parts) == 3:
            g.add_edge(int(parts[0]), int(parts[1]), float(parts[2]))
        else:
            raise ValueError(
                f"line {line_no}: expected 'u v w', got {raw!r}"
            )
    return g


def save_weighted_edge_list(
    graph: WeightedGraph,
    target: Union[PathLike, TextIO],
    header: str = "",
) -> None:
    """Write a weighted graph as ``u v weight`` lines."""
    own = not hasattr(target, "write")
    fh = open(target, "w") if own else target
    try:
        if header:
            for line in header.splitlines():
                fh.write(f"# {line}\n")
        isolated = sorted(
            v for v in graph.vertices() if not graph.neighbors(v)
        )
        for v in isolated:
            fh.write(f"{v}\n")
        for u, v, w in sorted(graph.edges()):
            fh.write(f"{u} {v} {w}\n")
    finally:
        if own:
            fh.close()
