"""Undirected, unweighted, simple graph.

The paper works exclusively with undirected unweighted graphs whose
vertices are network processors.  Vertices here are integers (processor
identifiers); loops and parallel edges are silently rejected, matching the
paper's "the graph G' \\ V'' is simple" convention.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Set, Tuple

Edge = Tuple[int, int]


def canonical_edge(u: int, v: int) -> Edge:
    """Return the canonical (sorted) form of the undirected edge {u, v}."""
    return (u, v) if u <= v else (v, u)


class Graph:
    """Adjacency-set representation of a simple undirected graph."""

    __slots__ = ("_adj", "_m")

    def __init__(
        self,
        vertices: Iterable[int] = (),
        edges: Iterable[Edge] = (),
    ) -> None:
        self._adj: Dict[int, Set[int]] = {}
        self._m = 0
        for v in vertices:
            self.add_vertex(v)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self, v: int) -> None:
        """Add an isolated vertex (no-op if present)."""
        if v not in self._adj:
            self._adj[v] = set()

    def add_edge(self, u: int, v: int) -> bool:
        """Add the edge {u, v}; returns False for loops/duplicates."""
        if u == v:
            return False
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._adj[u]:
            return False
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._m += 1
        return True

    def remove_edge(self, u: int, v: int) -> bool:
        """Remove the edge {u, v} if present; returns whether removed."""
        if u in self._adj and v in self._adj[u]:
            self._adj[u].discard(v)
            self._adj[v].discard(u)
            self._m -= 1
            return True
        return False

    def remove_vertex(self, v: int) -> None:
        """Remove ``v`` and all incident edges."""
        if v not in self._adj:
            return
        for u in list(self._adj[v]):
            self.remove_edge(u, v)
        del self._adj[v]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self._adj)

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._m

    def has_vertex(self, v: int) -> bool:
        return v in self._adj

    def has_edge(self, u: int, v: int) -> bool:
        return u in self._adj and v in self._adj[u]

    def neighbors(self, v: int) -> Set[int]:
        """The neighbor set of ``v`` (do not mutate)."""
        return self._adj[v]

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    def vertices(self) -> Iterator[int]:
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate canonical edges, each exactly once."""
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if u <= v:
                    yield (u, v)

    def edge_set(self) -> Set[Edge]:
        """Materialize the canonical edge set."""
        return set(self.edges())

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        g = Graph()
        g._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        g._m = self._m
        return g

    def subgraph(self, keep: Iterable[int]) -> "Graph":
        """Vertex-induced subgraph on ``keep``."""
        keep_set = set(keep)
        g = Graph(vertices=keep_set)
        for u in sorted(keep_set):
            if u in self._adj:
                for v in self._adj[u]:
                    if v in keep_set and u <= v:
                        g.add_edge(u, v)
        return g

    def edge_subgraph(self, edges: Iterable[Edge]) -> "Graph":
        """Subgraph with all of this graph's vertices but only ``edges``.

        Every edge must exist in this graph (the spanner-subset invariant);
        a ``ValueError`` flags violations early.
        """
        g = Graph(vertices=self._adj)
        for u, v in edges:
            if not self.has_edge(u, v):
                raise ValueError(f"edge {(u, v)} not in host graph")
            g.add_edge(u, v)
        return g

    def __contains__(self, v: int) -> bool:
        return v in self._adj

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:
        return f"Graph(n={self.n}, m={self.m})"

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Convert to ``networkx.Graph`` (optional dependency)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self._adj)
        g.add_edges_from(self.edges())
        return g

    @classmethod
    def from_networkx(cls, nxg) -> "Graph":
        """Build from a ``networkx`` graph with integer nodes."""
        return cls(vertices=nxg.nodes(), edges=nxg.edges())
