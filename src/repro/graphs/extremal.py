"""Extremal high-girth graphs — witnesses for the girth size bound.

Section 1: "Assuming Erdős's girth conjecture ... any (alpha, beta)-spanner
with alpha + beta <= 2k has size Omega(n^{1+1/k})."  The mechanism: in a
graph of girth > 2k, removing *any* edge (u, v) leaves delta(u, v) >= 2k,
so every (alpha, beta)-spanner with alpha + beta <= 2k - 1 must keep every
edge.  Dense high-girth graphs therefore force dense spanners.

This module provides the classical witnesses:

* :func:`petersen`, :func:`heawood`, :func:`mcgee` — the (3, 5)-, (3, 6)-
  and (3, 7)-cages;
* :func:`generalized_petersen` — the GP(n, k) family;
* :func:`polarity_free_incidence` — the point–line incidence graph of the
  projective plane PG(2, q): girth 6 with Theta(n^{3/2}) edges, the
  extremal graph behind the k = 2 girth bound (and the reason additive
  2-spanners cannot beat O(n^{3/2})).
"""

from __future__ import annotations

from typing import List

from repro.graphs.graph import Graph


def petersen() -> Graph:
    """The Petersen graph: (3, 5)-cage, 10 vertices, girth 5."""
    return generalized_petersen(5, 2)


def generalized_petersen(n: int, k: int) -> Graph:
    """GP(n, k): outer cycle 0..n-1, inner star polygon, spokes."""
    if n < 3 or not 1 <= k < n / 2:
        raise ValueError("need n >= 3 and 1 <= k < n/2")
    g = Graph(vertices=range(2 * n))
    for i in range(n):
        g.add_edge(i, (i + 1) % n)          # outer cycle
        g.add_edge(n + i, n + (i + k) % n)  # inner star polygon
        g.add_edge(i, n + i)                # spoke
    return g


def heawood() -> Graph:
    """The Heawood graph: (3, 6)-cage — incidence graph of PG(2, 2)."""
    # Bipartite circulant description: vertex i joins i+1 mod 14, plus
    # chords i -> i+5 for even i.
    g = Graph(vertices=range(14))
    for i in range(14):
        g.add_edge(i, (i + 1) % 14)
    for i in range(0, 14, 2):
        g.add_edge(i, (i + 5) % 14)
    return g


def mcgee() -> Graph:
    """The McGee graph: (3, 7)-cage, 24 vertices."""
    g = Graph(vertices=range(24))
    for i in range(24):
        g.add_edge(i, (i + 1) % 24)
    # Standard LCF notation [12, 7, -7]^8.
    lcf = [12, 7, -7]
    for i in range(24):
        g.add_edge(i, (i + lcf[i % 3]) % 24)
    return g


def polarity_free_incidence(q: int) -> Graph:
    """Point–line incidence graph of the projective plane PG(2, q).

    ``q`` must be prime (prime powers would need field arithmetic; primes
    suffice for the extremal statement).  The result is bipartite with
    2 (q^2 + q + 1) vertices, degree q + 1, girth 6 and
    (q + 1)(q^2 + q + 1) ~ (n/2)^{3/2} edges — the densest possible
    girth-6 graph up to constants.
    """
    if q < 2 or any(q % d == 0 for d in range(2, int(q**0.5) + 1)):
        raise ValueError("q must be a prime >= 2")

    # Projective points/lines: nonzero triples over GF(q) up to scaling.
    def normalize(vec: List[int]) -> tuple:
        for coordinate in vec:
            if coordinate % q != 0:
                inv = pow(coordinate, q - 2, q)
                return tuple((x * inv) % q for x in vec)
        raise ValueError("zero vector")

    points = set()
    for a in range(q):
        for b in range(q):
            for c in range(q):
                if (a, b, c) != (0, 0, 0):
                    points.add(normalize([a, b, c]))
    points = sorted(points)
    index = {p: i for i, p in enumerate(points)}
    n_points = len(points)  # q^2 + q + 1

    g = Graph(vertices=range(2 * n_points))
    # Lines are also triples (duality); point p is on line l iff p.l = 0.
    for li, line in enumerate(points):
        for p in points:
            if sum(x * y for x, y in zip(p, line)) % q == 0:
                g.add_edge(index[p], n_points + li)
    return g
