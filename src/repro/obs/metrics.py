"""A minimal labelled metrics registry (counters, gauges, histograms).

Deliberately dependency-free and deterministic: metric identity is the
``(name, sorted(labels))`` pair, snapshots render in sorted order, and
the histogram uses fixed power-of-two buckets so two identical runs
produce identical snapshots.  The simulator never talks to the registry
directly — :meth:`repro.obs.trace.Obs.phase` flushes per-phase
round/message/word deltas into it with ``protocol``/``phase`` labels,
which is how the paper's per-phase budget claims (Theorem 2's
``O(t + log n)`` rounds, Lemma 6's per-call size recurrence) become
measurable quantities.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    TypeVar,
    Union,
)

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

LabelKey = Tuple[Tuple[str, str], ...]

M = TypeVar("M")


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can move in either direction."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def add(self, amount: Union[int, float]) -> None:
        self.value += amount


class Histogram:
    """Power-of-two-bucketed distribution: count/sum/min/max + buckets.

    Bucket ``i`` counts observations ``v`` with ``2^(i-1) < v <= 2^i``
    (bucket 0 holds ``v <= 1``, including zero).
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self, num_buckets: int = 24) -> None:
        self.count = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets = [0] * num_buckets

    def observe(self, value: Union[int, float]) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = 0
        bound = 1
        while value > bound and index < len(self.buckets) - 1:
            bound *= 2
            index += 1
        self.buckets[index] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Get-or-create store of labelled metrics."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, str, LabelKey], Any] = {}

    def _get(
        self,
        kind: str,
        factory: Callable[[], M],
        name: str,
        labels: Dict[str, Any],
    ) -> M:
        key = (kind, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = factory()
        # the registry stores metrics as Any; ``kind`` in the key ties
        # each entry back to the factory that created it.
        return metric  # type: ignore[no-any-return]

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get("histogram", Histogram, name, labels)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def collect(
        self, name: Optional[str] = None, **labels: Any
    ) -> Iterable[Tuple[str, str, Dict[str, str], Any]]:
        """Yield ``(kind, name, labels, metric)`` matching the filter."""
        wanted = _label_key(labels) if labels else ()
        for (kind, mname, lkey), metric in sorted(
            self._metrics.items(), key=lambda kv: kv[0]
        ):
            if name is not None and mname != name:
                continue
            if wanted and not set(wanted) <= set(lkey):
                continue
            yield kind, mname, dict(lkey), metric

    def snapshot(self) -> Dict[str, Any]:
        """A plain-data dump (stable ordering) for tests and export."""
        out: Dict[str, Any] = {}
        for kind, name, labels, metric in self.collect():
            label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            key = f"{name}{{{label_text}}}" if label_text else name
            if kind == "histogram":
                out[key] = {
                    "count": metric.count,
                    "sum": metric.total,
                    "min": metric.min,
                    "max": metric.max,
                }
            else:
                out[key] = metric.value
        return out

    def render(self) -> str:
        """Human-readable one-metric-per-line dump."""
        lines: List[str] = []
        for key, value in self.snapshot().items():
            if isinstance(value, dict):
                value = (
                    f"count={value['count']} sum={value['sum']:g} "
                    f"min={value['min']} max={value['max']}"
                )
            lines.append(f"{key} {value}")
        return "\n".join(lines)
