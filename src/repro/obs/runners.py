"""One-call traced runs of the six distributed protocols.

``run_traced("skeleton", graph, seed=1, obs=obs)`` normalizes the six
entry points (whose signatures and return shapes differ) to a single
``(result, NetworkStats)`` pair — the shared driver behind the
``python -m repro trace record`` CLI, the determinism/replay tests and
benchmark E21.  Protocol imports are deferred so importing
:mod:`repro.obs` never drags in the protocol modules.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.graphs.graph import Graph

__all__ = ["PROTOCOLS", "run_traced"]

#: the six traced protocols, in Fig. 1 order (deterministic last).
PROTOCOLS = (
    "skeleton",
    "baswana_sen",
    "additive",
    "fibonacci",
    "survey",
    "deterministic",
)


def run_traced(
    protocol: str,
    graph: Graph,
    seed: Any = None,
    obs: Optional[Any] = None,
    reliable: bool = False,
    fault_plan: Optional[Any] = None,
    **kwargs: Any,
) -> Tuple[Any, Any]:
    """Run one protocol under observation; returns ``(result, stats)``.

    ``result`` is the protocol's natural output (a
    :class:`~repro.spanner.spanner.Spanner` for the four spanner
    builders, the ``known`` edge map for ``survey``); ``stats`` is the
    aggregated :class:`~repro.distributed.simulator.NetworkStats` that
    :func:`repro.obs.replay.reconstruct_stats` must reproduce.
    """
    common = dict(
        obs=obs, reliable=reliable, fault_plan=fault_plan, **kwargs
    )
    if protocol == "skeleton":
        from repro.distributed.skeleton_protocol import distributed_skeleton

        spanner = distributed_skeleton(graph, seed=seed, **common)
        return spanner, spanner.metadata["network_stats"]
    if protocol == "baswana_sen":
        from repro.distributed.baswana_sen_protocol import (
            distributed_baswana_sen,
        )

        k = kwargs.pop("k", 3)
        common = dict(
            obs=obs, reliable=reliable, fault_plan=fault_plan, **kwargs
        )
        spanner = distributed_baswana_sen(graph, k, seed=seed, **common)
        return spanner, spanner.metadata["network_stats"]
    if protocol == "additive":
        from repro.distributed.additive_protocol import distributed_additive2

        spanner = distributed_additive2(graph, seed=seed, **common)
        return spanner, spanner.metadata["network_stats"]
    if protocol == "fibonacci":
        from repro.distributed.fibonacci_protocol import (
            distributed_fibonacci_spanner,
        )

        spanner = distributed_fibonacci_spanner(
            graph, order=2, seed=seed, **common
        )
        return spanner, spanner.metadata["network_stats"]
    if protocol == "deterministic":
        from repro.distributed.deterministic_protocol import (
            distributed_deterministic,
        )

        D = kwargs.pop("D", 4)
        common = dict(
            obs=obs, reliable=reliable, fault_plan=fault_plan, **kwargs
        )
        spanner = distributed_deterministic(graph, D=D, seed=seed, **common)
        return spanner, spanner.metadata["network_stats"]
    if protocol == "survey":
        from repro.distributed.survey_protocol import neighborhood_survey

        radius = kwargs.pop("radius", 3)
        common = dict(
            obs=obs, reliable=reliable, fault_plan=fault_plan, **kwargs
        )
        known, stats = neighborhood_survey(graph, radius, **common)
        return known, stats
    raise ValueError(
        f"unknown protocol {protocol!r}; choose from {PROTOCOLS}"
    )
