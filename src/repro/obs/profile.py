"""Wall-clock attribution per protocol phase.

The simulator's round loop is pure Python, so *where wall-clock goes*
and *where rounds go* can diverge badly (a phase with few rounds but
wide messages dominates serialization cost).  :class:`PhaseProfiler`
hangs off :meth:`repro.obs.trace.Obs.phase` and accumulates seconds per
phase name.

Timing every phase entry is the default; for tight phase loops (the
skeleton enters ``exchange``/``converge``/``decide`` once per Expand
call) an **opt-in sampling timer** (``sample_every=k``) reads the clock
on every k-th entry only and scales the estimate, trading accuracy for
near-zero probe cost.  ``benchmarks/bench_trace_overhead.py`` (E21)
quantifies both modes.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["PhaseProfiler", "PhaseTiming"]


class PhaseTiming:
    """Accumulated timing for one phase name."""

    __slots__ = ("calls", "sampled", "seconds")

    def __init__(self) -> None:
        self.calls = 0
        self.sampled = 0
        self.seconds = 0.0

    @property
    def estimated_seconds(self) -> float:
        """Measured time scaled to the unsampled calls."""
        if self.sampled == 0:
            return 0.0
        return self.seconds * (self.calls / self.sampled)


class PhaseProfiler:
    """Per-phase wall-clock accumulator with optional sampling.

    ``sample_every=1`` (default) times every phase entry;
    ``sample_every=k`` times one entry in ``k`` and reports a scaled
    estimate.  ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        sample_every: int = 1,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self.clock = clock
        self.timings: Dict[str, PhaseTiming] = {}

    # ------------------------------------------------------------------
    # Obs.phase integration
    # ------------------------------------------------------------------
    def enter(self, name: str) -> Optional[float]:
        """Start timing ``name``; returns an opaque token for :meth:`exit`
        (``None`` when this entry is skipped by the sampler)."""
        timing = self.timings.get(name)
        if timing is None:
            timing = self.timings[name] = PhaseTiming()
        timing.calls += 1
        if (timing.calls - 1) % self.sample_every:
            return None
        return self.clock()

    def exit(self, name: str, token: Optional[float]) -> None:
        if token is None:
            return
        timing = self.timings[name]
        timing.sampled += 1
        timing.seconds += self.clock() - token

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def total_seconds(self) -> float:
        return sum(t.estimated_seconds for t in self.timings.values())

    def rows(self) -> List[Tuple[str, int, float, float]]:
        """``(phase, calls, est. seconds, share)`` sorted by time desc."""
        total = self.total_seconds() or 1.0
        rows = [
            (name, t.calls, t.estimated_seconds, t.estimated_seconds / total)
            for name, t in self.timings.items()
        ]
        rows.sort(key=lambda row: (-row[2], row[0]))
        return rows

    def render(self) -> str:
        lines = ["phase                     calls   est.sec  share"]
        for name, calls, seconds, share in self.rows():
            lines.append(
                f"{name:<25} {calls:>5}  {seconds:>8.4f}  {share:>5.1%}"
            )
        return "\n".join(lines)
