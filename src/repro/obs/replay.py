"""Trace replay: reconstruct stats, summarize, and diff runs.

Three consumers of the :mod:`repro.obs.trace` event stream:

* :func:`reconstruct_stats` — re-derive the run's
  :class:`~repro.distributed.simulator.NetworkStats` purely from the
  trace.  The reconstruction replicates the simulator's own accounting
  (per-network segments folded with ``merged_with``, cap-violation
  audits against each segment's cap, the bounded fault-event log), so
  ``reconstruct_stats(trace) == spanner.metadata["network_stats"]``
  exactly — the cross-check that proves the trace is a faithful record.

* :func:`summarize` — totals and the per-phase round/message/word
  breakdown (from ``phase_end`` markers) behind
  ``python -m repro trace summary`` and
  :func:`repro.analysis.report.phase_budget_report`.

* :func:`first_divergence` — deterministically compare two traces and
  report the first event where they part ways, as a
  ``(round, edge, event)`` triple.  This turns "two seeded runs agree"
  from an end-state assertion (compare final edge sets) into a
  *localizable* one: under ``reliable=True`` with different
  ``FaultPlan`` seeds the divergence pinpoints the exact first fault
  that had to be masked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Tuple

if TYPE_CHECKING:
    from repro.distributed.simulator import NetworkStats

# NOTE: ``obs`` sits *below* ``distributed`` in the layer DAG (the
# simulator calls into the tracer), so this module must not import
# ``repro.distributed`` at module level — that would close an
# import-time cycle (REP011).  The two reconstruction helpers that
# genuinely need simulator types import them lazily instead.

__all__ = [
    "TraceDivergence",
    "PhaseSummary",
    "TraceSummary",
    "reconstruct_stats",
    "summarize",
    "first_divergence",
    "filter_events",
]

Event = Dict[str, Any]


# ----------------------------------------------------------------------
# NetworkStats reconstruction
# ----------------------------------------------------------------------
def _segment_stats(events: List[Event]) -> "NetworkStats":
    """Rebuild one network's :class:`NetworkStats` from its events."""
    from repro.distributed.faults import (
        CRASH_DROP,
        DELAY,
        DROP,
        DUPLICATE,
        LINK_DEAD,
        REORDER,
        FaultEvent,
    )
    from repro.distributed.simulator import NetworkStats

    net = events[0] if events and events[0]["e"] == "net" else {}
    cap = net.get("cap")
    limit = net.get("fl", 256)
    stats = NetworkStats(cap=cap)
    for event in events:
        etype = event["e"]
        if etype == "round":
            stats.rounds += 1
        elif etype == "send":
            stats.observe(event["w"])
        elif etype == "retransmit":
            stats.retransmissions += 1
        elif etype == "fault":
            kind = event["kind"]
            if kind == DROP:
                stats.dropped += 1
            elif kind == CRASH_DROP:
                stats.dropped += event["info"] or 1
            elif kind == DUPLICATE:
                stats.duplicated += 1
            elif kind == DELAY:
                stats.delayed += 1
            elif kind == REORDER:
                stats.reordered += 1
            elif kind == LINK_DEAD:
                stats.dead_links += 1
            stats.record_fault(
                FaultEvent(
                    kind,
                    event["r"],
                    src=event["src"],
                    dst=event["dst"],
                    info=event["info"],
                ),
                limit,
            )
    return stats


def reconstruct_stats(events: Iterable[Event]) -> Optional["NetworkStats"]:
    """Fold the trace's per-network segments back into one
    :class:`NetworkStats`, exactly as the protocol runners do."""
    segments: List[List[Event]] = []
    for event in events:
        if event["e"] == "net" or not segments:
            segments.append([])
        segments[-1].append(event)
    if not segments:
        return None
    total = _segment_stats(segments[0])
    for segment in segments[1:]:
        total = total.merged_with(_segment_stats(segment))
    return total


# ----------------------------------------------------------------------
# Summaries
# ----------------------------------------------------------------------
@dataclass
class PhaseSummary:
    """Aggregated ``phase_end`` markers for one (protocol, phase) pair."""

    protocol: str
    phase: str
    calls: int = 0
    rounds: int = 0
    messages: int = 0
    words: int = 0


@dataclass
class TraceSummary:
    """Whole-trace totals plus the per-phase breakdown."""

    networks: int = 0
    rounds: int = 0
    messages: int = 0
    words: int = 0
    max_message_words: int = 0
    retransmissions: int = 0
    halts: int = 0
    faults: Dict[str, int] = field(default_factory=dict)
    phases: List[PhaseSummary] = field(default_factory=list)

    @property
    def faults_injected(self) -> int:
        from repro.distributed.faults import CRASH, LINK_DEAD, RECOVER

        return sum(
            count
            for kind, count in self.faults.items()
            if kind not in (CRASH, RECOVER, LINK_DEAD)
        )

    def render(self) -> str:
        lines = [
            f"networks={self.networks} rounds={self.rounds} "
            f"messages={self.messages} words={self.words} "
            f"max_words={self.max_message_words}",
        ]
        if self.retransmissions:
            lines.append(f"retransmissions={self.retransmissions}")
        if self.halts:
            lines.append(f"halts={self.halts}")
        if self.faults:
            text = " ".join(
                f"{kind}={count}"
                for kind, count in sorted(self.faults.items())
            )
            lines.append(f"faults: {text}")
        if self.phases:
            lines.append("")
            lines.append(
                f"{'phase':<22} {'calls':>5} {'rounds':>6} "
                f"{'msgs':>8} {'words':>9}"
            )
            for p in self.phases:
                lines.append(
                    f"{p.phase:<22} {p.calls:>5} {p.rounds:>6} "
                    f"{p.messages:>8} {p.words:>9}"
                )
        return "\n".join(lines)


def summarize(events: Iterable[Event]) -> TraceSummary:
    """Aggregate a trace into a :class:`TraceSummary`."""
    summary = TraceSummary()
    phases: Dict[Tuple[str, str], PhaseSummary] = {}
    for event in events:
        etype = event["e"]
        if etype == "net":
            summary.networks += 1
        elif etype == "round":
            summary.rounds += 1
        elif etype == "send":
            summary.messages += 1
            summary.words += event["w"]
            if event["w"] > summary.max_message_words:
                summary.max_message_words = event["w"]
        elif etype == "retransmit":
            summary.retransmissions += 1
        elif etype == "halt":
            summary.halts += 1
        elif etype == "fault":
            kind = event["kind"]
            summary.faults[kind] = summary.faults.get(kind, 0) + 1
        elif etype == "phase_end":
            key = (event["proto"], event["name"])
            phase = phases.get(key)
            if phase is None:
                phase = phases[key] = PhaseSummary(*key)
                summary.phases.append(phase)
            phase.calls += 1
            phase.rounds += event["rounds"]
            phase.messages += event["msgs"]
            phase.words += event["words"]
    return summary


# ----------------------------------------------------------------------
# Diff
# ----------------------------------------------------------------------
@dataclass
class TraceDivergence:
    """The first point where two traces disagree.

    ``round`` is the simulation round of the divergent event, ``edge``
    its ``(src, dst)`` slot when the event names one, and
    ``event_a``/``event_b`` the conflicting events (``None`` on the
    shorter side when one trace is a strict prefix of the other).
    """

    index: int
    round: int
    edge: Optional[Tuple[int, int]]
    event_a: Optional[Event]
    event_b: Optional[Event]

    def render(self) -> str:
        edge = f"{self.edge[0]}->{self.edge[1]}" if self.edge else "-"
        return (
            f"first divergence at event #{self.index} "
            f"(round {self.round}, edge {edge}):\n"
            f"  a: {self.event_a}\n"
            f"  b: {self.event_b}"
        )


def _event_round(event: Optional[Event], current: int) -> int:
    if event is not None:
        value = event.get("r")
        if isinstance(value, int):
            return value
    return current


def _event_edge(event: Optional[Event]) -> Optional[Tuple[int, int]]:
    if event is None:
        return None
    src, dst = event.get("src"), event.get("dst")
    if src is not None and dst is not None:
        return (src, dst)
    return None


def first_divergence(
    events_a: Iterable[Event], events_b: Iterable[Event]
) -> Optional[TraceDivergence]:
    """The first ``(round, edge, event)`` where the traces differ, or
    ``None`` if they are identical event for event."""
    a, b = list(events_a), list(events_b)
    current_round = 0
    for index in range(max(len(a), len(b))):
        ev_a = a[index] if index < len(a) else None
        ev_b = b[index] if index < len(b) else None
        if ev_a == ev_b:
            if ev_a is not None and ev_a["e"] == "round":
                current_round = ev_a["r"]
            continue
        divergent = ev_a if ev_a is not None else ev_b
        return TraceDivergence(
            index=index,
            round=_event_round(divergent, current_round),
            edge=_event_edge(divergent),
            event_a=ev_a,
            event_b=ev_b,
        )
    return None


# ----------------------------------------------------------------------
# Filtering
# ----------------------------------------------------------------------
def filter_events(
    events: Iterable[Event],
    kind: Optional[str] = None,
    round_no: Optional[int] = None,
    node: Optional[int] = None,
    src: Optional[int] = None,
    dst: Optional[int] = None,
) -> List[Event]:
    """Select events by type, round, or participating node.

    ``node`` matches an event's ``src``, ``dst`` or ``node`` field;
    ``src``/``dst`` match those fields exactly.
    """
    out: List[Event] = []
    for event in events:
        if kind is not None and event["e"] != kind:
            continue
        if round_no is not None and event.get("r") != round_no:
            continue
        if src is not None and event.get("src") != src:
            continue
        if dst is not None and event.get("dst") != dst:
            continue
        if node is not None and node not in (
            event.get("src"), event.get("dst"), event.get("node")
        ):
            continue
        out.append(event)
    return out
