"""Observability for the distributed simulator: tracing, metrics, replay.

The paper's claims are *per-round, per-phase* statements — Theorem 2's
``O(t + log n)`` rounds of ``O(log^eps n)``-word messages, Lemma 6's
per-call size recurrence — but a bare protocol run only surfaces
end-of-run aggregates.  This package records where rounds and messages
actually go and makes two runs comparable event by event:

* :mod:`repro.obs.trace` — :class:`TraceRecorder` (structured event
  stream + canonical JSONL) and :class:`Obs`, the bundle every protocol
  entry point accepts via ``obs=``;
* :mod:`repro.obs.metrics` — labelled counter/gauge/histogram registry,
  fed per (protocol, phase) by :meth:`Obs.phase`;
* :mod:`repro.obs.replay` — reconstruct
  :class:`~repro.distributed.simulator.NetworkStats` from a trace,
  summarize it, and diff two traces down to the first divergent
  ``(round, edge, event)``;
* :mod:`repro.obs.profile` — per-phase wall-clock attribution with an
  opt-in sampling timer;
* :mod:`repro.obs.runners` — ``run_traced(protocol, graph, ...)``, the
  uniform driver used by the CLI, the tests and benchmark E21.

See ``docs/observability.md`` for the event schema and the phase
taxonomy of all six protocols.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import PhaseProfiler, PhaseTiming
from repro.obs.replay import (
    PhaseSummary,
    TraceDivergence,
    TraceSummary,
    filter_events,
    first_divergence,
    reconstruct_stats,
    summarize,
)
from repro.obs.runners import PROTOCOLS, run_traced
from repro.obs.trace import (
    Obs,
    TraceRecorder,
    dump_events,
    dumps_events,
    load_events,
    payload_fingerprint,
    phase_scope,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Obs",
    "PROTOCOLS",
    "PhaseProfiler",
    "PhaseSummary",
    "PhaseTiming",
    "TraceDivergence",
    "TraceRecorder",
    "TraceSummary",
    "dump_events",
    "dumps_events",
    "filter_events",
    "first_divergence",
    "load_events",
    "payload_fingerprint",
    "phase_scope",
    "reconstruct_stats",
    "run_traced",
    "summarize",
]
