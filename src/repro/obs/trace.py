"""Round-level structured tracing for the distributed simulator.

A :class:`TraceRecorder` captures the full communication history of a
protocol run as a flat, deterministic event stream:

=============  =====================================================
event ``e``    fields
=============  =====================================================
``net``        new :class:`~repro.distributed.simulator.Network`
               attached: ``n``, ``m`` (graph size), ``cap`` (word
               cap or null), ``fl`` (fault-log limit), ``rel``
               (under the reliable adapter)
``phase``      protocol phase marker: ``name``, ``r`` (round at
               entry), ``proto``
``phase_end``  matching exit marker: ``name``, ``r``, ``proto``,
               plus the phase's ``rounds``/``msgs``/``words`` deltas
``round``      one executed round: ``r`` (the network's cumulative
               round counter)
``send``       one charged (edge, round, direction) slot: ``r``
               (the round whose outboxes it came from; 0 = setup),
               ``src``, ``dst``, ``w`` (words), ``pl`` (CRC-32 of
               the payload repr — cheap content fingerprint)
``fault``      one injected fault: ``kind``, ``r``, ``src``,
               ``dst``, ``info`` (mirrors
               :class:`~repro.distributed.faults.FaultEvent`)
``retransmit`` reliable-layer resend: ``r``, ``src``, ``dst``
``halt``       node left the computation: ``r``, ``node``
=============  =====================================================

Events are recorded in simulation order, which is deterministic for a
fixed (protocol, graph, seed, fault plan): the JSONL export of two such
runs is byte-identical (asserted by ``tests/test_obs.py``).  The stream
is sufficient to reconstruct :class:`~repro.distributed.simulator.
NetworkStats` exactly (see :mod:`repro.obs.replay`).

Tracing is strictly opt-in.  The simulator's hot paths are guarded by a
single ``obs is not None`` check, so a run without an :class:`Obs`
attached executes the pre-observability code path (benchmarked by
``benchmarks/bench_trace_overhead.py``).
"""

from __future__ import annotations

import json
import zlib
from contextlib import contextmanager, nullcontext
from typing import (
    IO,
    Any,
    ContextManager,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Union,
)

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import PhaseProfiler

__all__ = [
    "TraceRecorder",
    "Obs",
    "dump_events",
    "dumps_events",
    "load_events",
    "payload_fingerprint",
    "phase_scope",
]


def phase_scope(obs: Optional["Obs"], name: str) -> ContextManager[None]:
    """``obs.phase(name)`` tolerating ``obs=None`` — the one-liner the
    protocol runners use to mark phases without observability plumbing."""
    return obs.phase(name) if obs is not None else nullcontext()


def payload_fingerprint(payloads: Any) -> int:
    """CRC-32 of ``repr(payloads)`` — a deterministic, unsalted content
    fingerprint (``hash()`` is process-salted for strings, so it cannot
    appear in a replayable trace)."""
    return zlib.crc32(repr(payloads).encode("utf-8"))


class TraceRecorder:
    """Append-only in-memory event sink with JSONL export/import."""

    #: hot-path guard: :class:`Obs` skips emission when ``False``.
    enabled = True

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, etype: str, **fields: Any) -> None:
        event: Dict[str, Any] = {"e": etype}
        event.update(fields)
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # JSONL export / import
    # ------------------------------------------------------------------
    def dumps(self) -> str:
        return dumps_events(self.events)

    def dump(self, path_or_file: Union[str, IO[str]]) -> None:
        dump_events(self.events, path_or_file)

    @classmethod
    def load(cls, path_or_file: Union[str, IO[str]]) -> "TraceRecorder":
        recorder = cls()
        recorder.events = load_events(path_or_file)
        return recorder


def _dump_line(event: Dict[str, Any]) -> str:
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


def dumps_events(events: Iterable[Dict[str, Any]]) -> str:
    """Serialize events as canonical JSONL (sorted keys, no spaces) —
    byte-identical for identical event streams."""
    return "".join(_dump_line(e) + "\n" for e in events)


def dump_events(
    events: Iterable[Dict[str, Any]], path_or_file: Union[str, IO[str]]
) -> None:
    if isinstance(path_or_file, str):
        with open(path_or_file, "w") as fh:
            fh.write(dumps_events(events))
    else:
        path_or_file.write(dumps_events(events))


def load_events(path_or_file: Union[str, IO[str]]) -> List[Dict[str, Any]]:
    """Parse a JSONL trace back into its event list."""
    if isinstance(path_or_file, str):
        with open(path_or_file) as fh:
            text = fh.read()
    else:
        text = path_or_file.read()
    return [json.loads(line) for line in text.splitlines() if line.strip()]


class Obs:
    """Observability bundle threaded through a protocol run.

    One :class:`Obs` may span several :class:`~repro.distributed.
    simulator.Network` instances (multi-phase protocols build one
    network per phase); the recorder, metrics registry and profiler see
    the concatenated history.  All three components are optional:

    * ``recorder`` — a :class:`TraceRecorder` (or ``None`` for
      metrics/profiling without event capture);
    * ``metrics`` — a :class:`~repro.obs.metrics.MetricsRegistry`;
      per-phase round/message/word counters are flushed into it with
      ``protocol``/``phase`` labels on phase exit;
    * ``profiler`` — a :class:`~repro.obs.profile.PhaseProfiler` for
      wall-clock attribution per phase.

    The simulator calls the ``on_*`` hooks; protocol runners mark
    phases with :meth:`phase`.
    """

    def __init__(
        self,
        recorder: Optional[TraceRecorder] = None,
        metrics: Optional[MetricsRegistry] = None,
        profiler: Optional[PhaseProfiler] = None,
        protocol: str = "",
    ) -> None:
        self.recorder = recorder
        self.metrics = metrics
        self.profiler = profiler
        self.protocol = protocol
        self._phase_stack: List[str] = []
        # Running totals maintained by the hooks so phase deltas do not
        # depend on any one network's NetworkStats object.
        self.rounds = 0
        self.messages = 0
        self.words = 0

    # ------------------------------------------------------------------
    # Simulator hooks (hot paths — keep allocation-free when possible)
    # ------------------------------------------------------------------
    def on_network(self, network: Any) -> None:
        rec = self.recorder
        if rec is not None and rec.enabled:
            rec.emit(
                "net",
                n=network.graph.n,
                m=network.graph.m,
                cap=network.stats.cap,
                fl=network.fault_log_limit,
                rel=network.reliable_layer,
            )

    def on_round(self, round_no: int) -> None:
        self.rounds += 1
        rec = self.recorder
        if rec is not None and rec.enabled:
            rec.emit("round", r=round_no)

    def on_send(
        self, round_no: int, src: int, dst: int, words: int, payloads: Any
    ) -> None:
        self.messages += 1
        self.words += words
        rec = self.recorder
        if rec is not None and rec.enabled:
            rec.emit(
                "send",
                r=round_no,
                src=src,
                dst=dst,
                w=words,
                pl=payload_fingerprint(payloads),
            )

    def on_send_fingerprint(
        self, round_no: int, src: int, dst: int, words: int, fingerprint: int
    ) -> None:
        """:meth:`on_send` with the payload already fingerprinted.

        The sharded engine's workers reduce payloads to their CRC-32
        fingerprint before events cross the process boundary (payload
        objects never travel back), so the coordinator replays sends
        through this hook; the emitted event is byte-identical to the
        one :meth:`on_send` would have produced for the same payloads.
        """
        self.messages += 1
        self.words += words
        rec = self.recorder
        if rec is not None and rec.enabled:
            rec.emit(
                "send", r=round_no, src=src, dst=dst, w=words, pl=fingerprint
            )

    def on_fault(self, event: Any) -> None:
        rec = self.recorder
        if rec is not None and rec.enabled:
            rec.emit(
                "fault",
                kind=event.kind,
                r=event.round,
                src=event.src,
                dst=event.dst,
                info=event.info,
            )

    def on_retransmit(self, round_no: int, src: int, dst: int) -> None:
        rec = self.recorder
        if rec is not None and rec.enabled:
            rec.emit("retransmit", r=round_no, src=src, dst=dst)

    def on_halt(self, round_no: int, node: int) -> None:
        rec = self.recorder
        if rec is not None and rec.enabled:
            rec.emit("halt", r=round_no, node=node)

    # ------------------------------------------------------------------
    # Phase markers
    # ------------------------------------------------------------------
    @property
    def current_phase(self) -> str:
        return self._phase_stack[-1] if self._phase_stack else ""

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Mark a protocol phase: trace markers, per-phase metrics and
        wall-clock attribution all key off this context manager."""
        rec = self.recorder
        r0, m0, w0 = self.rounds, self.messages, self.words
        self._phase_stack.append(name)
        if rec is not None and rec.enabled:
            rec.emit("phase", name=name, r=r0, proto=self.protocol)
        profiler = self.profiler
        timer = profiler.enter(name) if profiler is not None else None
        try:
            yield
        finally:
            if profiler is not None:
                profiler.exit(name, timer)
            self._phase_stack.pop()
            d_rounds = self.rounds - r0
            d_msgs = self.messages - m0
            d_words = self.words - w0
            if rec is not None and rec.enabled:
                rec.emit(
                    "phase_end",
                    name=name,
                    r=self.rounds,
                    proto=self.protocol,
                    rounds=d_rounds,
                    msgs=d_msgs,
                    words=d_words,
                )
            metrics = self.metrics
            if metrics is not None:
                labels = {"protocol": self.protocol, "phase": name}
                metrics.counter("phase_calls", **labels).inc()
                metrics.counter("rounds", **labels).inc(d_rounds)
                metrics.counter("messages", **labels).inc(d_msgs)
                metrics.counter("words", **labels).inc(d_words)
                metrics.histogram("phase_rounds", **labels).observe(d_rounds)
