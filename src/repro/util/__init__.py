"""Shared utilities: seeded RNG plumbing, union-find, message-size measure."""

from repro.util.rng import ensure_rng, make_prf, spawn_rng
from repro.util.unionfind import UnionFind
from repro.util.words import message_words

__all__ = ["ensure_rng", "make_prf", "spawn_rng", "UnionFind", "message_words"]
