"""Message-size measurement in O(log n)-bit words.

The paper measures message length "in units of O(log n) bits" (Sect. 1.1):
one word holds a vertex identifier, a distance, a round number, etc.  Our
simulator charges messages by the number of such words they carry.  The
rules, matching that convention:

* ``None`` costs 0 words (an empty/flag-only message),
* ints, floats, bools and short strings cost 1 word,
* tuples/lists/sets/frozensets cost the sum of their items,
* dicts cost the sum over keys and values.

Anything else costs 1 word per occurrence (opaque token).
"""

from __future__ import annotations

from typing import Any


def message_words(payload: Any) -> int:
    """Return the length of ``payload`` in O(log n)-bit words."""
    if payload is None:
        return 0
    if isinstance(payload, (int, float, bool, str)):
        return 1
    if isinstance(payload, (tuple, list, set, frozenset)):
        return sum(message_words(item) for item in payload)
    if isinstance(payload, dict):
        return sum(
            message_words(k) + message_words(v) for k, v in payload.items()
        )
    return 1
