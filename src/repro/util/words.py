"""Message-size measurement in O(log n)-bit words.

The paper measures message length "in units of O(log n) bits" (Sect. 1.1):
one word holds a vertex identifier, a distance, a round number, etc.  Our
simulator charges messages by the number of such words they carry.  The
rules, matching that convention:

* ``None`` costs 0 words (an empty/flag-only message),
* ints, floats, bools and short strings cost 1 word,
* tuples/lists/sets/frozensets cost the sum of their items,
* dicts cost the sum over keys and values.

Anything else costs 1 word per occurrence (opaque token).
"""

from __future__ import annotations

from typing import Any, Dict


def message_words(payload: Any) -> int:
    """Return the length of ``payload`` in O(log n)-bit words."""
    if payload is None:
        return 0
    if isinstance(payload, (int, float, bool, str)):
        return 1
    if isinstance(payload, (tuple, list, set, frozenset)):
        return sum(map(message_words, payload))
    if isinstance(payload, dict):
        return sum(
            message_words(k) + message_words(v) for k, v in payload.items()
        )
    return 1


class WordCounter:
    """Memoizing :func:`message_words` for the simulator's send path.

    Protocol payloads repeat heavily across rounds (the same broadcast
    token, the same candidate tuple), so the recursive walk is paid once
    per distinct payload instead of once per send.  Only hashable
    payloads are cached — unhashable ones (lists, dicts) fall through to
    a direct computation; since :func:`message_words` depends only on
    payload structure, equal payloads always have equal word counts and
    the cache can never disagree with the direct walk (pinned by
    ``tests/test_payload_words_property.py`` against both
    ``message_words`` and ``lint.messages.static_payload_words``).

    The cache is bounded: at ``max_entries`` it is cleared wholesale
    rather than evicted, so a pathological payload stream degrades to
    the uncached cost instead of growing memory without limit.
    """

    __slots__ = ("_cache", "max_entries")

    def __init__(self, max_entries: int = 1 << 16) -> None:
        self._cache: Dict[Any, int] = {}
        self.max_entries = max_entries

    def __call__(self, payload: Any) -> int:
        cache = self._cache
        try:
            words = cache.get(payload)
        except TypeError:  # unhashable payload — compute directly
            return message_words(payload)
        if words is None:
            words = message_words(payload)
            if len(cache) >= self.max_entries:
                cache.clear()
            cache[payload] = words
        return words
