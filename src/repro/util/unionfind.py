"""Disjoint-set (union-find) with path compression and union by size."""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator


class UnionFind:
    """Classic union-find over arbitrary hashable elements.

    Elements are created lazily on first touch.  Supports ``find``,
    ``union``, ``connected``, component sizes and iteration over
    representatives.
    """

    def __init__(self, elements: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        self._components = 0
        for x in elements:
            self.add(x)

    def add(self, x: Hashable) -> None:
        """Register ``x`` as a singleton component if unseen."""
        if x not in self._parent:
            self._parent[x] = x
            self._size[x] = 1
            self._components += 1

    def find(self, x: Hashable) -> Hashable:
        """Return the canonical representative of ``x``'s component."""
        self.add(x)
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, x: Hashable, y: Hashable) -> bool:
        """Merge the components of ``x`` and ``y``.

        Returns ``True`` if a merge happened (they were distinct).
        """
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        if self._size[rx] < self._size[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        self._size[rx] += self._size[ry]
        self._components -= 1
        return True

    def connected(self, x: Hashable, y: Hashable) -> bool:
        """Whether ``x`` and ``y`` are in the same component."""
        return self.find(x) == self.find(y)

    def component_size(self, x: Hashable) -> int:
        """Number of elements in ``x``'s component."""
        return self._size[self.find(x)]

    @property
    def n_components(self) -> int:
        """Number of distinct components among registered elements."""
        return self._components

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, x: Hashable) -> bool:
        return x in self._parent

    def representatives(self) -> Iterator[Hashable]:
        """Iterate over one canonical element per component."""
        for x in self._parent:
            if self.find(x) == x:
                yield x
