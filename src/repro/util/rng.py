"""Random-number-generator plumbing.

Every randomized routine in this library accepts either a seed (``int``),
an existing :class:`random.Random` instance, or ``None`` (fresh
nondeterministic generator).  Centralizing the coercion keeps signatures
uniform and experiments reproducible.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Union

SeedLike = Union[None, int, random.Random]

#: a shared-randomness pseudo-random function: ``prf(*keys) -> [0, 1)``.
Prf = Callable[..., float]


def ensure_rng(seed: SeedLike = None) -> random.Random:
    """Coerce ``seed`` into a :class:`random.Random` instance.

    ``None`` yields a freshly seeded generator; an ``int`` yields a
    deterministic generator; an existing generator is returned unchanged
    (so callers can thread one RNG through a pipeline).
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def make_prf(seed: SeedLike = None) -> Prf:
    """Build a deterministic pseudo-random function ``prf(*keys) -> [0, 1)``.

    Distributed algorithms here use *shared randomness*: every processor
    derives the same sampling decision for (round, cluster-center) pairs
    from a common seed, so no communication is spent distributing coin
    flips.  The same PRF drives the sequential implementations, which is
    what makes sequential/distributed cross-validation exact.
    """
    import hashlib

    seed_rng = ensure_rng(seed)
    salt = seed_rng.getrandbits(64).to_bytes(8, "little")

    def prf(*keys: Any) -> float:
        digest = hashlib.sha256(
            salt + ":".join(repr(k) for k in keys).encode()
        ).digest()
        return int.from_bytes(digest[:8], "little") / 2**64

    return prf


def spawn_rng(rng: random.Random, stream: int = 0) -> random.Random:
    """Derive an independent child generator from ``rng``.

    Used when a routine needs several statistically independent streams
    (e.g. one per algorithm level) that must not interleave, so that
    adding draws to one stream does not perturb the others.
    """
    return random.Random((rng.getrandbits(64) << 16) ^ stream)
