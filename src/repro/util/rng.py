"""Random-number-generator plumbing.

Every randomized routine in this library accepts either a seed (``int``),
an existing :class:`random.Random` instance, or ``None`` (fresh
nondeterministic generator).  Centralizing the coercion keeps signatures
uniform and experiments reproducible.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Tuple, Union

SeedLike = Union[None, int, random.Random]

#: a shared-randomness pseudo-random function: ``prf(*keys) -> [0, 1)``.
Prf = Callable[..., float]


def ensure_rng(seed: SeedLike = None) -> random.Random:
    """Coerce ``seed`` into a :class:`random.Random` instance.

    ``None`` yields a freshly seeded generator; an ``int`` yields a
    deterministic generator; an existing generator is returned unchanged
    (so callers can thread one RNG through a pipeline).
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


class SaltedPrf:
    """A deterministic pseudo-random function ``prf(*keys) -> [0, 1)``.

    Pure function of ``(salt, keys)``; instances are picklable (the
    memo cache is dropped on pickle, which cannot change any sampling
    decision), so node programs holding a PRF can be shipped to the
    sharded engine's worker processes and evolve the *identical*
    clustering there.
    """

    __slots__ = ("_salt", "_cache")

    def __init__(self, salt: bytes) -> None:
        self._salt = salt
        # Shared-randomness protocols re-evaluate the same (round,
        # center) coins at every node, so key tuples repeat heavily;
        # memoizing cannot change any sampling decision.  Bounded like
        # WordCounter: cleared wholesale at the cap, never evicted.
        self._cache: Dict[Tuple[Any, ...], float] = {}

    def __call__(self, *keys: Any) -> float:
        import hashlib

        cache = self._cache
        try:
            hit = cache.get(keys)
        except TypeError:  # unhashable key — compute directly
            hit = None
        else:
            if hit is not None:
                return hit
        # map(repr, ...) keeps the digest input — hence every sampling
        # decision ever recorded in a trace — bit-identical to the
        # original generator-expression form, at lower call overhead.
        digest = hashlib.sha256(
            self._salt + ":".join(map(repr, keys)).encode()
        ).digest()
        value = int.from_bytes(digest[:8], "little") / 2**64
        try:
            if len(cache) >= 1 << 16:
                cache.clear()
            cache[keys] = value
        except TypeError:
            pass
        return value

    def __getstate__(self) -> bytes:
        return self._salt

    def __setstate__(self, salt: bytes) -> None:
        self._salt = salt
        self._cache = {}


def make_prf(seed: SeedLike = None) -> Prf:
    """Build a deterministic pseudo-random function ``prf(*keys) -> [0, 1)``.

    Distributed algorithms here use *shared randomness*: every processor
    derives the same sampling decision for (round, cluster-center) pairs
    from a common seed, so no communication is spent distributing coin
    flips.  The same PRF drives the sequential implementations, which is
    what makes sequential/distributed cross-validation exact.

    The returned callable is a picklable :class:`SaltedPrf`: the salt —
    and therefore every sampling decision — is derived from ``seed``
    exactly as before, but the function can now cross a process
    boundary intact (the sharded engine ships programs to workers).
    """
    seed_rng = ensure_rng(seed)
    salt = seed_rng.getrandbits(64).to_bytes(8, "little")
    return SaltedPrf(salt)


def spawn_rng(rng: random.Random, stream: int = 0) -> random.Random:
    """Derive an independent child generator from ``rng``.

    Used when a routine needs several statistically independent streams
    (e.g. one per algorithm level) that must not interleave, so that
    adding draws to one stream does not perturb the others.
    """
    return random.Random((rng.getrandbits(64) << 16) ^ stream)
