"""repro — reproduction of Seth Pettie's "Distributed algorithms for
ultrasparse spanners and linear size skeletons" (PODC 2008).

Public API highlights:

* :class:`repro.Graph` and the generators in :mod:`repro.graphs`
* :func:`repro.build_skeleton` — the Section 2 linear-size skeleton
* :func:`repro.build_fibonacci_spanner` — the Section 4 Fibonacci spanner
* :mod:`repro.baselines` — Baswana–Sen, greedy, girth skeleton, additive-2
* :mod:`repro.distributed` — the synchronous network simulator and the
  message-passing implementations of the paper's protocols
* :mod:`repro.analysis` — every closed-form bound from the paper
"""

from repro.graphs.graph import Graph
from repro.core.skeleton import build_skeleton
from repro.core.fibonacci import build_fibonacci_spanner
from repro.core.combined import build_combined_spanner
from repro.spanner.spanner import Spanner

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "Spanner",
    "build_skeleton",
    "build_fibonacci_spanner",
    "build_combined_spanner",
    "__version__",
]
