"""The repair-vs-rebuild policy engine.

After each update batch the engine must choose between *repairing* the
maintained spanner (re-offering the region-limited candidate list — see
:meth:`repro.churn.maintainer.IncrementalSpanner.repair_candidates`)
and *rebuilding* it from scratch over the live graph.  Repair is cheap
when damage is local but never removes redundant edges, so a long
repair streak can drift denser than a fresh build; rebuild restores the
canonical girth-rule object at full ``O(m)`` cost.

:class:`RepairPolicy` makes that call from two signals:

* the **cost budget**: estimated repair offers vs. ``budget_factor``
  times the live edge count (the rebuild's offer count);
* the **degradation window**: ``denser_patience`` consecutive batches
  graded :data:`repro.spanner.verification.VALID_DENSER` force a
  rebuild, bounding how long the maintained object may stay denser
  than a from-scratch one.

Both knobs are validated at construction so a bad CLI/config fails
fast, matching :class:`repro.distributed.reliable.ReliableConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

__all__ = ["POLICY_MODES", "RepairPolicy"]

ALWAYS_REPAIR = "always-repair"
ALWAYS_REBUILD = "always-rebuild"
BUDGET = "budget"

POLICY_MODES = (ALWAYS_REPAIR, ALWAYS_REBUILD, BUDGET)

REPAIR = "repair"
REBUILD = "rebuild"


@dataclass(frozen=True)
class RepairPolicy:
    """When to repair incrementally and when to rebuild from scratch."""

    mode: str = BUDGET
    #: repair while estimated offers <= budget_factor * live edge count.
    budget_factor: float = 0.5
    #: consecutive valid-but-denser grades tolerated before a forced
    #: rebuild; 0 disables the degradation trigger.
    denser_patience: int = 3

    def __post_init__(self) -> None:
        if self.mode not in POLICY_MODES:
            raise ValueError(
                f"unknown policy mode {self.mode!r}; "
                f"choose from {POLICY_MODES}"
            )
        if self.budget_factor <= 0.0:
            raise ValueError(
                f"budget_factor must be > 0, got {self.budget_factor}"
            )
        if self.denser_patience < 0:
            raise ValueError(
                f"denser_patience must be >= 0, got {self.denser_patience}"
            )

    def decide(
        self, estimated_offers: int, live_m: int, denser_streak: int
    ) -> str:
        """``"repair"`` or ``"rebuild"`` for the pending batch damage."""
        if self.mode == ALWAYS_REPAIR:
            return REPAIR
        if self.mode == ALWAYS_REBUILD:
            return REBUILD
        if (
            self.denser_patience > 0
            and denser_streak >= self.denser_patience
        ):
            return REBUILD
        if estimated_offers > self.budget_factor * max(1, live_m):
            return REBUILD
        return REPAIR

    def to_json(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "budget_factor": self.budget_factor,
            "denser_patience": self.denser_patience,
        }
