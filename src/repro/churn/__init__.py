"""Self-healing spanners under edge churn (ROADMAP: dynamic scenarios).

The paper's related-work section (Sect. 1.4) surveys fully-dynamic
spanner maintenance; :mod:`repro.baselines.streaming` carries the
classical girth-rule baseline.  This package promotes that sketch into a
first-class churn subsystem:

* :mod:`repro.churn.events` — a deterministic, seeded update stream of
  edge insertions/deletions and node crash/recover events, applied in
  batches;
* :mod:`repro.churn.maintainer` — :class:`IncrementalSpanner`, the
  incrementally maintained (2k-1)-spanner with region-limited repair
  (re-offering only edges near the damage) and both fail-pause and
  amnesia crash-recovery semantics;
* :mod:`repro.churn.policy` — :class:`RepairPolicy`, the
  repair-vs-rebuild decision (cost budget, degradation patience);
* :mod:`repro.churn.engine` — :func:`run_churn`, the batch driver that
  grades the maintained object with
  :func:`repro.spanner.verification.classify_outcome` after every batch
  and emits per-batch repair metrics;
* :mod:`repro.churn.repair_protocol` — the distributed repair handshake
  an amnesia-crashed node uses to re-learn its incident spanner edges
  from its neighbors, run over the reliable-delivery layer;
* :mod:`repro.churn.oracle` — the rebuild-equivalence oracle battery
  the differential fuzzer applies to churn cases.

See ``docs/robustness.md`` for the fault model and the grading contract.
"""

from repro.churn.engine import BatchReport, ChurnResult, run_churn, spanner_baseline
from repro.churn.events import UpdateEvent, churn_stream, events_from_json, events_to_json
from repro.churn.maintainer import IncrementalSpanner, RepairStats
from repro.churn.oracle import CHURN_ORACLE_NAMES, check_churn
from repro.churn.policy import RepairPolicy
from repro.churn.repair_protocol import RepairSurveyProgram, repair_handshake

__all__ = [
    "BatchReport",
    "CHURN_ORACLE_NAMES",
    "ChurnResult",
    "IncrementalSpanner",
    "RepairPolicy",
    "RepairStats",
    "RepairSurveyProgram",
    "UpdateEvent",
    "check_churn",
    "churn_stream",
    "events_from_json",
    "events_to_json",
    "repair_handshake",
    "run_churn",
    "spanner_baseline",
]
