"""Deterministic, seeded update streams for the churn scenario.

An update stream is a list of *batches*; each batch is a list of
:class:`UpdateEvent` (edge insert/delete, node crash/recover) applied in
order by the engine, after which the maintained spanner is repaired (or
rebuilt) and graded.  :func:`churn_stream` draws a stream from a single
seeded RNG (:func:`repro.util.rng.ensure_rng`) while tracking the
evolving topology, so the same ``(graph, seed, knobs)`` always produces
the same stream — the replayability contract the churn fuzz oracle and
the CI smoke job both assert byte-for-byte.

Events serialize to compact JSON lists (``["ins", u, v]``,
``["del", u, v]``, ``["crash", u, 1]``, ``["recover", u]``) so a whole
stream can live inside a fuzz reproducer and be ddmin-shrunk.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.graphs.graph import Graph, canonical_edge
from repro.util.rng import SeedLike, ensure_rng

__all__ = [
    "CRASH",
    "DELETE",
    "INSERT",
    "RECOVER",
    "UpdateEvent",
    "churn_stream",
    "events_from_json",
    "events_to_json",
]

INSERT = "ins"
DELETE = "del"
CRASH = "crash"
RECOVER = "recover"

_EDGE_KINDS = (INSERT, DELETE)
_NODE_KINDS = (CRASH, RECOVER)


@dataclass(frozen=True)
class UpdateEvent:
    """One topology update: an edge operation or a node transition."""

    kind: str
    u: int
    v: Optional[int] = None
    #: crash mode — ``True`` loses volatile state (amnesia), ``False``
    #: is fail-pause.  Only meaningful for ``kind == "crash"``.
    amnesia: bool = False

    def __post_init__(self) -> None:
        if self.kind in _EDGE_KINDS:
            if self.v is None:
                raise ValueError(f"{self.kind!r} event needs two endpoints")
            if self.u == self.v:
                raise ValueError(f"{self.kind!r} event is a self-loop")
        elif self.kind in _NODE_KINDS:
            if self.v is not None:
                raise ValueError(f"{self.kind!r} event takes one node")
            if self.amnesia and self.kind != CRASH:
                raise ValueError("amnesia only applies to crash events")
        else:
            raise ValueError(f"unknown update kind {self.kind!r}")

    @property
    def edge(self) -> Tuple[int, int]:
        """Canonical endpoints of an edge event."""
        if self.v is None:
            raise ValueError(f"{self.kind!r} event has no edge")
        return canonical_edge(self.u, self.v)

    def to_json(self) -> List[Any]:
        if self.kind in _EDGE_KINDS:
            return [self.kind, self.u, self.v]
        if self.kind == CRASH:
            return [self.kind, self.u, 1 if self.amnesia else 0]
        return [self.kind, self.u]

    @classmethod
    def from_json(cls, data: Sequence[Any]) -> "UpdateEvent":
        kind = str(data[0])
        if kind in _EDGE_KINDS:
            return cls(kind, int(data[1]), int(data[2]))
        if kind == CRASH:
            amnesia = bool(int(data[2])) if len(data) > 2 else False
            return cls(kind, int(data[1]), amnesia=amnesia)
        return cls(kind, int(data[1]))

    def __str__(self) -> str:
        if self.kind in _EDGE_KINDS:
            return f"{self.kind}({self.u},{self.v})"
        if self.kind == CRASH:
            mode = "amnesia" if self.amnesia else "pause"
            return f"crash({self.u},{mode})"
        return f"recover({self.u})"


def events_to_json(batches: Sequence[Sequence[UpdateEvent]]) -> List[List[List[Any]]]:
    """Serialize a whole stream (list of batches) to plain JSON data."""
    return [[e.to_json() for e in batch] for batch in batches]


def events_from_json(data: Sequence[Sequence[Sequence[Any]]]) -> List[List[UpdateEvent]]:
    """Inverse of :func:`events_to_json`."""
    return [[UpdateEvent.from_json(e) for e in batch] for batch in data]


def churn_stream(
    graph: Graph,
    batches: int,
    batch_size: int,
    seed: SeedLike = 0,
    delete_fraction: float = 0.45,
    crash_fraction: float = 0.0,
    amnesia_fraction: float = 0.5,
    max_down_batches: int = 2,
) -> List[List[UpdateEvent]]:
    """Draw a deterministic update stream against ``graph``.

    The generator tracks the evolving edge set (so deletes always name a
    present edge and inserts a genuinely absent one) and the set of down
    nodes (so crashes hit live nodes and every crash schedules its
    recovery 1..``max_down_batches`` batches later; crashes in the final
    batches recover inside the last batch, so a full stream always ends
    with every node up).  ``crash_fraction`` of event slots become crash
    events; ``amnesia_fraction`` of those lose volatile state on
    recovery instead of fail-pausing.  Pure function of its arguments.
    """
    if batches < 1 or batch_size < 1:
        raise ValueError("batches and batch_size must be >= 1")
    for name, frac in (
        ("delete_fraction", delete_fraction),
        ("crash_fraction", crash_fraction),
        ("amnesia_fraction", amnesia_fraction),
    ):
        if not 0.0 <= frac <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {frac}")
    rng = ensure_rng(seed)
    vertices = sorted(graph.vertices())
    if len(vertices) < 2:
        raise ValueError("churn needs at least two vertices")
    edges = sorted(graph.edges())
    present: Set[Tuple[int, int]] = set(edges)
    down: Set[int] = set()
    #: batch index -> recover events scheduled for that batch.
    recoveries: Dict[int, List[UpdateEvent]] = {}
    stream: List[List[UpdateEvent]] = []
    for b in range(batches):
        batch: List[UpdateEvent] = list(recoveries.pop(b, ()))
        for event in batch:
            down.discard(event.u)
        for _ in range(batch_size):
            live = [v for v in vertices if v not in down]
            if (
                crash_fraction > 0.0
                and len(live) > 2
                and rng.random() < crash_fraction
            ):
                node = rng.choice(live)
                amnesia = rng.random() < amnesia_fraction
                batch.append(UpdateEvent(CRASH, node, amnesia=amnesia))
                down.add(node)
                wake = b + 1 + rng.randrange(max_down_batches)
                if wake >= batches:
                    # Recover inside the final batch: streams end clean.
                    batch.append(UpdateEvent(RECOVER, node))
                    down.discard(node)
                else:
                    recoveries.setdefault(wake, []).append(
                        UpdateEvent(RECOVER, node)
                    )
                continue
            if present and rng.random() < delete_fraction:
                u, v = rng.choice(sorted(present))
                present.discard((u, v))
                batch.append(UpdateEvent(DELETE, u, v))
                continue
            inserted = _draw_absent_edge(rng, vertices, present)
            if inserted is None:
                # Dense host with nothing left to insert: delete instead.
                if not present:
                    continue
                u, v = rng.choice(sorted(present))
                present.discard((u, v))
                batch.append(UpdateEvent(DELETE, u, v))
                continue
            present.add(inserted)
            batch.append(UpdateEvent(INSERT, inserted[0], inserted[1]))
        stream.append(batch)
    # Flush any recovery scheduled past the horizon into the final batch
    # (possible only if max_down_batches exceeds the remaining batches).
    leftovers = [ev for b in sorted(recoveries) for ev in recoveries[b]]
    if leftovers:
        stream[-1].extend(leftovers)
    return stream


def _draw_absent_edge(
    rng: random.Random,
    vertices: List[int],
    present: Set[Tuple[int, int]],
) -> Optional[Tuple[int, int]]:
    """A uniform-ish absent pair, by bounded rejection sampling."""
    n = len(vertices)
    if len(present) >= n * (n - 1) // 2:
        return None
    for _ in range(64):
        u = rng.choice(vertices)
        v = rng.choice(vertices)
        if u == v:
            continue
        edge = canonical_edge(u, v)
        if edge not in present:
            return edge
    # Dense fallback: first absent pair in canonical order.
    for i, u in enumerate(vertices):
        for v in vertices[i + 1:]:
            if (u, v) not in present:
                return (u, v)
    return None
