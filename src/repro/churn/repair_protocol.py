"""The repair handshake: how an amnesia-crashed node re-joins.

A fail-pause node resumes with its pre-crash state; an amnesia node
(:class:`repro.distributed.faults.CrashSpec` with ``amnesia=True``)
comes back with *nothing* volatile — in particular it no longer knows
which of its incident edges were in the maintained spanner.  What saves
it is that spanner edges have two endpoints: **each surviving neighbor
still remembers the shared edge**.  The handshake is a bounded flood of
per-node records over the repair region, run on top of the
reliable-delivery layer (:class:`repro.distributed.reliable
.ReliableNetwork`), through which the recovering node reconstructs the
region's link structure and its own former spanner edges from its
neighbors' memories.

:class:`RepairSurveyProgram` is the per-node program: every node owns
one record ``("rec", id, amnesia_flag, links, spanner_links)`` (links
are read off the node's own ports via ``api.neighbors`` — port
knowledge is hardware, not volatile state) and floods records it has
not seen before.  Its ``on_amnesia_recover`` hook discards everything
learned plus its own spanner memory, then re-announces itself — the
handshake solicitation.

:func:`repair_handshake` drives one recovery episode and checks the
reconstruction against what the neighbors' memories imply — the
cross-check :func:`repro.churn.engine.run_churn` records per batch and
the robustness tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.distributed.faults import CrashSpec, FaultPlan
from repro.distributed.reliable import ReliableConfig, ReliableNetwork
from repro.distributed.simulator import Api, NodeProgram
from repro.graphs.graph import Graph

__all__ = ["HandshakeReport", "RepairSurveyProgram", "repair_handshake"]

_RECORD = "rec"


class RepairSurveyProgram(NodeProgram):
    """Flood per-node records until the region's knowledge is shared."""

    def __init__(self, node_id: int, spanner_links: Tuple[int, ...]) -> None:
        self.node_id = node_id
        #: neighbors on maintained spanner edges (volatile memory).
        self.spanner_links: Tuple[int, ...] = tuple(sorted(spanner_links))
        #: origin -> record tuple, as learned so far.
        self.learned: Dict[int, Tuple[Any, ...]] = {}
        self.amnesiac = False
        self.links: Tuple[int, ...] = ()

    def record(self) -> Tuple[Any, ...]:
        return (
            _RECORD,
            self.node_id,
            1 if self.amnesiac else 0,
            self.links,
            self.spanner_links,
        )

    def setup(self, api: Api) -> None:
        self.links = tuple(api.neighbors)
        rec = self.record()
        self.learned[self.node_id] = rec
        # Degree-sized payload, audited: a record carries the node's
        # port list (its incident links), so its width is Theta(deg) —
        # bounded by the repair region's max degree, not a constant.
        # The repair tier trades CONGEST-width for round count (see
        # docs/churn.md); the bench gate tracks the realized widths.
        api.broadcast(rec)  # repro-lint: disable=REP012

    def on_round(
        self, api: Api, round_index: int, inbox: List[Tuple[int, Any]]
    ) -> None:
        fresh: List[Tuple[Any, ...]] = []
        for _src, msg in inbox:
            if not msg or msg[0] != _RECORD:
                continue
            origin = int(msg[1])
            if origin not in self.learned:
                self.learned[origin] = tuple(msg)
                fresh.append(tuple(msg))
        for msg in fresh:
            api.broadcast(msg)

    def on_amnesia_recover(self, api: Api, round_index: int) -> None:
        # Volatile state is gone: learned records and the node's own
        # spanner memory.  Port knowledge (links) is re-read from the
        # hardware; the re-announcement solicits the region's records
        # back (neighbors' reliable-layer retransmissions do the rest).
        self.amnesiac = True
        self.spanner_links = ()
        self.links = tuple(api.neighbors)
        self.learned = {self.node_id: self.record()}
        # Same degree-sized record as setup(); see the audit note there.
        api.broadcast(self.record())  # repro-lint: disable=REP012


@dataclass
class HandshakeReport:
    """Outcome of one amnesia-recovery handshake episode."""

    node: int
    region_size: int
    #: real network rounds spent (retransmissions included).
    rounds: int
    messages: int
    #: every region record reached the recovering node.
    coverage_ok: bool
    #: spanner edges reconstructed from neighbors' memories.
    recovered_links: Tuple[int, ...]
    #: what the neighbors' memories actually held (ground truth).
    expected_links: Tuple[int, ...]

    @property
    def ok(self) -> bool:
        return self.coverage_ok and (
            self.recovered_links == self.expected_links
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "node": self.node,
            "region_size": self.region_size,
            "rounds": self.rounds,
            "messages": self.messages,
            "coverage_ok": self.coverage_ok,
            "recovered_links": list(self.recovered_links),
            "expected_links": list(self.expected_links),
            "ok": self.ok,
        }


def repair_handshake(
    region: Graph,
    node: int,
    spanner_links: Dict[int, Tuple[int, ...]],
    rounds: int,
    config: Optional[ReliableConfig] = None,
    extra_crashes: Tuple[CrashSpec, ...] = (),
) -> HandshakeReport:
    """Run one amnesia-recovery handshake over ``region``.

    ``region`` is the (connected) live repair region around ``node``;
    ``spanner_links[v]`` lists the region neighbors ``v`` remembers
    sharing a spanner edge with — for neighbors of ``node`` this
    includes the recovering node's former edges, which is precisely the
    memory the handshake recovers.  ``node`` is amnesia-crashed at
    round 1 and recovers at round 2, so the flood must survive the
    outage via the reliable layer's retransmissions.  Deterministic:
    no randomness anywhere in the episode.
    """
    if not region.has_vertex(node):
        raise ValueError(f"recovering node {node} not in region graph")
    programs: Dict[int, NodeProgram] = {
        v: RepairSurveyProgram(v, spanner_links.get(v, ()))
        for v in sorted(region.vertices())
    }
    plan = FaultPlan(
        crashes=(
            CrashSpec(node, crash_round=1, recover_round=2, amnesia=True),
        )
        + tuple(extra_crashes),
    )
    net = ReliableNetwork(
        region, programs, fault_plan=plan, config=config
    )
    net.run(max_rounds=rounds, stop_when_idle=True)
    survey = programs[node]
    assert isinstance(survey, RepairSurveyProgram)
    coverage_ok = set(survey.learned) == set(region.vertices())
    recovered = tuple(
        sorted(
            origin
            for origin, rec in survey.learned.items()
            if origin != node and node in tuple(rec[4])
        )
    )
    expected = tuple(
        sorted(
            v
            for v in sorted(spanner_links)
            if v != node
            and region.has_vertex(v)
            and node in spanner_links[v]
        )
    )
    return HandshakeReport(
        node=node,
        region_size=region.n,
        rounds=net.stats.rounds,
        messages=net.stats.messages,
        coverage_ok=coverage_ok,
        recovered_links=recovered,
        expected_links=expected,
    )
