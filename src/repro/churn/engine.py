"""The churn engine: apply update batches, repair, grade, account.

:func:`run_churn` drives one churn scenario end to end: for each batch
of :class:`repro.churn.events.UpdateEvent` it

1. applies the updates to the maintained
   :class:`repro.churn.maintainer.IncrementalSpanner`;
2. runs the distributed **repair handshake**
   (:func:`repro.churn.repair_protocol.repair_handshake`) for every node
   that recovered from an amnesia crash this batch, over the live repair
   region;
3. asks the :class:`repro.churn.policy.RepairPolicy` whether to repair
   incrementally or rebuild from scratch, and does so;
4. grades the maintained spanner against the **live** graph with
   :func:`repro.spanner.verification.classify_outcome` (alpha = 2k-1,
   baseline = the analytic girth bound ``n^(1+1/k) + n``);
5. emits per-batch repair-work metrics into an optional
   :class:`repro.obs.metrics.MetricsRegistry` (edges touched, repair
   rounds, degradation-window length, ...).

The resulting :class:`ChurnResult` serializes canonically via
:meth:`ChurnResult.dumps`; two runs with the same inputs are
byte-identical, which is the replay oracle of :mod:`repro.churn.oracle`
and the CI churn-smoke job.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.churn.events import RECOVER, UpdateEvent
from repro.churn.maintainer import IncrementalSpanner
from repro.churn.policy import REBUILD, REPAIR, RepairPolicy
from repro.churn.repair_protocol import HandshakeReport, repair_handshake
from repro.distributed.reliable import ReliableConfig
from repro.graphs.graph import Graph
from repro.graphs.properties import bfs_distances
from repro.obs.metrics import MetricsRegistry
from repro.spanner.verification import VALID, VALID_DENSER, classify_outcome
from repro.util.rng import SeedLike

__all__ = ["BatchReport", "ChurnResult", "run_churn", "spanner_baseline"]


def spanner_baseline(n: int, k: int) -> int:
    """The analytic (2k-1)-spanner size bound ``n^(1+1/k) + n``."""
    if n <= 0:
        return 0
    return int(n ** (1.0 + 1.0 / k)) + n


@dataclass
class BatchReport:
    """Everything the engine learned from one update batch."""

    index: int
    events: int
    applied: int
    #: ``"repair"`` or ``"rebuild"`` (policy decision for this batch).
    decision: str
    #: grade of the maintained spanner vs. the live graph.
    grade: str
    size: int
    live_m: int
    #: estimated repair offers the policy weighed against live_m.
    estimated_offers: int
    #: repair-work accounting (RepairStats.as_dict()).
    work: Dict[str, int] = field(default_factory=dict)
    #: one entry per amnesia-recovery handshake run this batch.
    handshakes: List[Dict[str, Any]] = field(default_factory=list)
    #: consecutive valid-but-denser batches ending at this one.
    denser_streak: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "events": self.events,
            "applied": self.applied,
            "decision": self.decision,
            "grade": self.grade,
            "size": self.size,
            "live_m": self.live_m,
            "estimated_offers": self.estimated_offers,
            "work": dict(self.work),
            "handshakes": list(self.handshakes),
            "denser_streak": self.denser_streak,
        }


@dataclass
class ChurnResult:
    """Full trajectory of one churn run (canonically serializable)."""

    k: int
    n: int
    policy: Dict[str, Any]
    batches: List[BatchReport]
    #: lengths of every maximal run of consecutive non-``valid`` grades
    #: (the degradation windows; a window still open at the end counts).
    degradation_windows: List[int]
    full_rebuilds: int
    final_grade: str
    final_size: int
    handshakes: int
    handshakes_ok: int

    @property
    def ok(self) -> bool:
        """No invalid batch and every repair handshake reconstructed."""
        return (
            all(b.grade in (VALID, VALID_DENSER) for b in self.batches)
            and self.handshakes == self.handshakes_ok
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "k": self.k,
            "n": self.n,
            "policy": dict(self.policy),
            "batches": [b.as_dict() for b in self.batches],
            "degradation_windows": list(self.degradation_windows),
            "full_rebuilds": self.full_rebuilds,
            "final_grade": self.final_grade,
            "final_size": self.final_size,
            "handshakes": self.handshakes,
            "handshakes_ok": self.handshakes_ok,
            "ok": self.ok,
        }

    def dumps(self) -> str:
        """Canonical JSON — byte-identical across same-input runs."""
        return json.dumps(
            self.to_json(), sort_keys=True, separators=(",", ":")
        )


def _handshake_region(
    maintainer: IncrementalSpanner, node: int
) -> Tuple[Graph, Dict[int, Tuple[int, ...]]]:
    """The live ball around a recovered node, plus per-node memories.

    ``spanner_links[v]`` is what ``v`` remembers sharing a spanner edge
    with: its current incident spanner edges, plus — for the recovering
    node's former partners — the shared edge recorded in
    ``maintainer.memory[node]`` (the neighbor-side memory the amnesiac
    node lost).
    """
    live = maintainer.live_graph()
    dist = bfs_distances(live, node, cutoff=maintainer.threshold)
    members = set(dist)
    region = Graph(vertices=sorted(members))
    for u, v in sorted(live.edges()):
        if u in members and v in members:
            region.add_edge(u, v)
    links: Dict[int, Tuple[int, ...]] = {}
    for v in sorted(members):
        partners = sorted(
            {
                b if a == v else a
                for a, b in maintainer.incident_spanner_edges(v)
            }
        )
        links[v] = tuple(p for p in partners if p in members)
    for a, b in maintainer.remembered_edges(node):
        other = b if a == node else a
        if other in members:
            links[other] = tuple(sorted(set(links.get(other, ())) | {node}))
    return region, links


def run_churn(
    graph: Graph,
    k: int,
    batches: Sequence[Sequence[UpdateEvent]],
    policy: Optional[RepairPolicy] = None,
    handshakes: bool = True,
    size_slack: float = 1.0,
    grade_num_sources: Optional[int] = None,
    grade_seed: SeedLike = 0,
    reliable_config: Optional[ReliableConfig] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> ChurnResult:
    """Run the churn scenario over ``graph`` and grade every batch.

    Deterministic for fixed arguments: the update stream is given, the
    maintainer iterates sorted snapshots, the handshake protocol has no
    randomness, and grading uses ``grade_seed``.  ``handshakes=False``
    skips the distributed re-join episodes (the sequential maintainer
    already models their outcome) — useful for tight fuzz loops.
    """
    if policy is None:
        policy = RepairPolicy()
    maintainer = IncrementalSpanner(k, graph)
    alpha = float(2 * k - 1)
    n = graph.n
    baseline = spanner_baseline(n, k)
    reports: List[BatchReport] = []
    denser_streak = 0
    window = 0
    windows: List[int] = []
    handshake_total = 0
    handshake_ok = 0
    for index, batch in enumerate(batches):
        maintainer.begin_batch()
        applied = 0
        amnesia_recovered: List[int] = []
        for event in batch:
            was_amnesiac = (
                event.kind == RECOVER and event.u in maintainer.amnesiac
            )
            if maintainer.apply(event):
                applied += 1
                if was_amnesiac:
                    amnesia_recovered.append(event.u)
        shakes: List[Dict[str, Any]] = []
        if handshakes:
            for node in sorted(set(amnesia_recovered)):
                report = _run_handshake(
                    maintainer, node, reliable_config
                )
                if report is not None:
                    shakes.append(report.as_dict())
                    handshake_total += 1
                    if report.ok:
                        handshake_ok += 1
        candidates = maintainer.repair_candidates()
        decision = policy.decide(
            len(candidates), maintainer.live_m, denser_streak
        )
        if decision == REBUILD:
            maintainer.rebuild()
        else:
            assert decision == REPAIR
            maintainer.execute_repair(candidates)
        live = maintainer.live_graph()
        grade = classify_outcome(
            live,
            maintainer.spanner_edges(),
            alpha=alpha,
            beta=0.0,
            baseline_size=baseline,
            size_slack=size_slack,
            num_sources=grade_num_sources,
            seed=grade_seed,
        )
        if grade.status == VALID_DENSER:
            denser_streak += 1
        else:
            denser_streak = 0
        if grade.status == VALID:
            if window:
                windows.append(window)
            window = 0
        else:
            window += 1
        work = maintainer.stats.as_dict()
        reports.append(
            BatchReport(
                index=index,
                events=len(batch),
                applied=applied,
                decision=decision,
                grade=grade.status,
                size=maintainer.size,
                live_m=maintainer.live_m,
                estimated_offers=len(candidates),
                work=work,
                handshakes=shakes,
                denser_streak=denser_streak,
            )
        )
        if metrics is not None:
            _emit_metrics(metrics, k, reports[-1])
    if window:
        windows.append(window)
    if metrics is not None:
        for w in windows:
            metrics.histogram("churn_degradation_window", k=k).observe(w)
        metrics.gauge("churn_full_rebuilds", k=k).set(
            maintainer.full_rebuilds
        )
    return ChurnResult(
        k=k,
        n=n,
        policy=policy.to_json(),
        batches=reports,
        degradation_windows=windows,
        full_rebuilds=maintainer.full_rebuilds,
        final_grade=reports[-1].grade if reports else VALID,
        final_size=maintainer.size,
        handshakes=handshake_total,
        handshakes_ok=handshake_ok,
    )


def _run_handshake(
    maintainer: IncrementalSpanner,
    node: int,
    config: Optional[ReliableConfig],
) -> Optional[HandshakeReport]:
    """One amnesia-recovery episode; None when the node is isolated."""
    region, links = _handshake_region(maintainer, node)
    if region.n < 2:
        return None
    # Flood needs the region diameter (<= 2 * radius) in virtual
    # rounds; +4 covers the crash window and the amnesia re-announce.
    rounds = 2 * maintainer.threshold + 4
    return repair_handshake(
        region, node, links, rounds=rounds, config=config
    )


def _emit_metrics(
    metrics: MetricsRegistry, k: int, report: BatchReport
) -> None:
    work = report.work
    metrics.counter("churn_events_applied", k=k).inc(report.applied)
    metrics.counter("churn_offers", k=k).inc(work.get("offers", 0))
    metrics.counter("churn_edges_examined", k=k).inc(
        work.get("edges_examined", 0)
    )
    metrics.counter("churn_recover_offers", k=k).inc(
        work.get("recover_offers", 0)
    )
    metrics.counter("churn_rebuilds", k=k).inc(work.get("rebuilds", 0))
    metrics.counter(
        "churn_decisions", k=k, decision=report.decision
    ).inc()
    metrics.histogram("churn_repair_rounds", k=k).observe(
        work.get("repair_rounds", 0)
    )
    metrics.histogram("churn_region_vertices", k=k).observe(
        work.get("region_vertices", 0)
    )
    metrics.gauge("churn_spanner_size", k=k).set(report.size)
