"""``python -m repro churn`` — the self-healing spanner scenario.

Draws a seeded update stream against an Erdős–Rényi host, runs the
churn engine (:func:`repro.churn.engine.run_churn`) and prints the
per-batch trajectory: events applied, repair-vs-rebuild decision,
repair work, grade.  ``--oracle`` additionally runs the
rebuild-equivalence battery (:mod:`repro.churn.oracle`) — the same
check the CI churn-smoke job performs.

Examples::

    python -m repro churn --n 60 --batches 8 --crash-fraction 0.2
    python -m repro churn --policy always-repair --oracle
    python -m repro churn --json - --metrics
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.churn.engine import run_churn
from repro.churn.events import churn_stream
from repro.churn.oracle import check_churn
from repro.churn.policy import BUDGET, POLICY_MODES, RepairPolicy
from repro.obs.metrics import MetricsRegistry

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro churn",
        description=(
            "Self-healing (2k-1)-spanner under edge churn and node "
            "crash/recovery, with a repair-vs-rebuild policy engine."
        ),
    )
    host = parser.add_argument_group("host graph")
    host.add_argument("--n", type=int, default=60,
                      help="Erdős–Rényi host size (default 60)")
    host.add_argument("--p", type=float, default=0.08,
                      help="edge probability (default 0.08)")
    host.add_argument("--graph-seed", type=int, default=2008,
                      help="host graph seed (default 2008)")
    host.add_argument("--k", type=int, default=2,
                      help="spanner parameter: stretch 2k-1 (default 2)")
    stream = parser.add_argument_group("update stream")
    stream.add_argument("--batches", type=int, default=8,
                        help="number of update batches (default 8)")
    stream.add_argument("--batch-size", type=int, default=8,
                        help="events per batch (default 8)")
    stream.add_argument("--stream-seed", type=int, default=0,
                        help="update-stream seed (default 0)")
    stream.add_argument("--delete-fraction", type=float, default=0.45,
                        help="fraction of edge events that delete "
                             "(default 0.45)")
    stream.add_argument("--crash-fraction", type=float, default=0.15,
                        help="fraction of events that crash a node "
                             "(default 0.15)")
    stream.add_argument("--amnesia-fraction", type=float, default=0.5,
                        help="fraction of crashes losing volatile state "
                             "(default 0.5)")
    pol = parser.add_argument_group("repair policy")
    pol.add_argument("--policy", choices=POLICY_MODES, default=BUDGET,
                     help=f"repair-vs-rebuild mode (default {BUDGET})")
    pol.add_argument("--budget-factor", type=float, default=0.5,
                     help="repair while offers <= factor * live edges "
                          "(default 0.5)")
    pol.add_argument("--denser-patience", type=int, default=3,
                     help="consecutive denser grades before a forced "
                          "rebuild; 0 disables (default 3)")
    parser.add_argument("--size-slack", type=float, default=1.0,
                        help="grading slack on the analytic size bound "
                             "(default 1.0)")
    parser.add_argument("--no-handshakes", action="store_true",
                        help="skip the distributed amnesia-recovery "
                             "handshake episodes")
    parser.add_argument("--oracle", action="store_true",
                        help="also run the rebuild-equivalence oracle "
                             "battery (exit 1 on failure)")
    parser.add_argument("--metrics", action="store_true",
                        help="print the metrics registry after the run")
    parser.add_argument("--json", metavar="PATH",
                        help="write the canonical ChurnResult JSON to "
                             "PATH ('-' for stdout)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.graphs.generators import erdos_renyi_gnp

    args = build_parser().parse_args(argv)
    graph = erdos_renyi_gnp(args.n, args.p, seed=args.graph_seed)
    stream = churn_stream(
        graph,
        batches=args.batches,
        batch_size=args.batch_size,
        seed=args.stream_seed,
        delete_fraction=args.delete_fraction,
        crash_fraction=args.crash_fraction,
        amnesia_fraction=args.amnesia_fraction,
    )
    policy = RepairPolicy(
        mode=args.policy,
        budget_factor=args.budget_factor,
        denser_patience=args.denser_patience,
    )
    metrics = MetricsRegistry() if args.metrics else None
    result = run_churn(
        graph,
        args.k,
        stream,
        policy=policy,
        handshakes=not args.no_handshakes,
        size_slack=args.size_slack,
        metrics=metrics,
    )
    if args.json == "-":
        print(result.dumps())
    else:
        _render(args, graph.m, result)
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(result.dumps() + "\n")
            print(f"wrote {args.json}")
    if metrics is not None:
        print()
        print(metrics.render())
    status = 0 if result.ok else 1
    if args.oracle:
        failure = check_churn(
            graph, args.k, stream, size_slack=args.size_slack
        )
        if failure is None:
            print("oracle: rebuild-equivalence battery passed")
        else:
            oracle, message = failure
            print(f"oracle: FAIL [{oracle}] {message}", file=sys.stderr)
            status = 1
    return status


def _render(args: argparse.Namespace, m: int, result: "object") -> None:
    from repro.churn.engine import ChurnResult

    assert isinstance(result, ChurnResult)
    print(
        f"host: G(n={args.n}, p={args.p}) -> m={m}; "
        f"k={args.k} (stretch {2 * args.k - 1}); "
        f"policy={result.policy['mode']}"
    )
    header = (
        f"{'batch':>5} {'events':>6} {'applied':>7} {'decision':>8} "
        f"{'offers':>6} {'touched':>7} {'rounds':>6} {'size':>5} "
        f"{'grade':>16} {'shakes':>6}"
    )
    print(header)
    print("-" * len(header))
    for b in result.batches:
        work = b.work
        shakes = (
            f"{sum(1 for h in b.handshakes if h['ok'])}/{len(b.handshakes)}"
            if b.handshakes
            else "-"
        )
        print(
            f"{b.index:>5} {b.events:>6} {b.applied:>7} {b.decision:>8} "
            f"{work.get('offers', 0):>6} "
            f"{work.get('edges_examined', 0):>7} "
            f"{work.get('repair_rounds', 0):>6} {b.size:>5} "
            f"{b.grade:>16} {shakes:>6}"
        )
    windows = (
        ", ".join(str(w) for w in result.degradation_windows) or "none"
    )
    print(
        f"\nfinal: {result.final_grade} with {result.final_size} edges; "
        f"{result.full_rebuilds} full rebuild(s); "
        f"handshakes {result.handshakes_ok}/{result.handshakes} ok; "
        f"degradation windows: {windows}"
    )
