"""Incrementally maintained (2k-1)-spanner with region-limited repair.

:class:`IncrementalSpanner` promotes the girth-rule sketch of
:class:`repro.baselines.streaming.DynamicSpanner` into the churn
engine's workhorse.  The maintained invariant is the streaming rule's,
restricted to the **live** graph (host edges whose endpoints are both
up): for every live host edge ``(u, v)`` the spanner contains a path of
length at most ``2k - 1`` between ``u`` and ``v``.  That invariant
implies the spanner is a (2k-1)-spanner of the live graph with girth
> 2k, hence at most ``n^(1+1/k) + n`` edges — which is what
:func:`repro.spanner.verification.classify_outcome` grades after every
batch.

Updates are applied immediately to the host/liveness state but their
*repair* is deferred to the end of the batch, so the policy engine can
weigh the whole batch's repair cost against a from-scratch rebuild:

* inserting a live edge only ever *adds* coverage — it is offered to
  the girth rule on the spot;
* deleting or crashing away a spanner edge seeds a **repair region**:
  any live edge whose covering path broke ran through the damage, so
  both of its endpoints lie within ``2k - 1`` live-graph hops of a
  damage seed.  Repair re-offers, in canonical order, every uncovered
  live edge inside the multi-source BFS ball of radius ``2k - 1``
  around the seeds — after which the invariant provably holds again,
  with no global re-scan;
* a recovering node's incident live edges rejoin via re-offers.
  Fail-pause recovery offers the node's **remembered** pre-crash
  spanner edges first (its volatile state survived); amnesia recovery
  has no memory to prefer, so every incident live edge is re-validated
  in canonical order — the sequential mirror of the distributed repair
  handshake in :mod:`repro.churn.repair_protocol`.

All iteration is over sorted snapshots and the only randomness is the
caller's (there is none here), so a maintenance run is byte-identical
under replay.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.churn.events import CRASH, DELETE, INSERT, RECOVER, UpdateEvent
from repro.graphs.graph import Edge, Graph, canonical_edge

__all__ = ["IncrementalSpanner", "RepairStats"]


@dataclass
class RepairStats:
    """Per-batch repair work accounting (the obs metrics payload)."""

    #: girth-rule offers issued (candidate edges re-examined).
    offers: int = 0
    #: offers that added their edge to the spanner.
    kept: int = 0
    #: adjacency entries scanned across all BFS work (region discovery
    #: and per-offer bounded searches) — "edges touched".
    edges_examined: int = 0
    #: vertices inside the repair region(s) of this batch.
    region_vertices: int = 0
    #: synchronous rounds a distributed execution of this repair would
    #: spend: region discovery (BFS radius) plus the deepest re-offer
    #: path check.
    repair_rounds: int = 0
    #: offers attributable to recovering nodes re-joining.
    recover_offers: int = 0
    #: full from-scratch rebuilds (0 or 1 per batch).
    rebuilds: int = 0
    #: events that were no-ops against current state (duplicate insert,
    #: delete of an absent edge, crash of a down node, ...).
    ignored: int = 0
    applied: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "offers": self.offers,
            "kept": self.kept,
            "edges_examined": self.edges_examined,
            "region_vertices": self.region_vertices,
            "repair_rounds": self.repair_rounds,
            "recover_offers": self.recover_offers,
            "rebuilds": self.rebuilds,
            "ignored": self.ignored,
            "applied": self.applied,
        }


@dataclass
class _Pending:
    """Damage accumulated during a batch, awaiting repair/rebuild."""

    seeds: Set[int] = field(default_factory=set)
    recovered: List[int] = field(default_factory=list)


class IncrementalSpanner:
    """A (2k-1)-spanner of an evolving, crash-prone host graph."""

    def __init__(self, k: int, host: Optional[Graph] = None) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.threshold = 2 * k - 1
        self.host = Graph() if host is None else host.copy()
        #: nodes currently crashed (their incident edges are not live).
        self.down: Set[int] = set()
        self.spanner: Set[Edge] = set()
        self._adj: Dict[int, Set[int]] = {}
        #: node -> incident spanner edges at crash time.  For fail-pause
        #: this is the node's own surviving volatile state; for amnesia
        #: it models what the *neighbors* still remember about shared
        #: edges (each endpoint of a spanner edge stores it), which is
        #: exactly what the repair handshake reconstructs.
        self.memory: Dict[int, Tuple[Edge, ...]] = {}
        #: nodes whose pending recovery is amnesiac (no memory priority).
        self.amnesiac: Set[int] = set()
        self.full_rebuilds = 0
        self.stats = RepairStats()
        self._pending = _Pending()
        if host is not None:
            self._initial_build()

    # ------------------------------------------------------------------
    # Live-graph views
    # ------------------------------------------------------------------
    def is_live(self, v: int) -> bool:
        return v not in self.down

    def live_edge(self, u: int, v: int) -> bool:
        return (
            self.host.has_edge(u, v)
            and u not in self.down
            and v not in self.down
        )

    def live_graph(self) -> Graph:
        """The host minus edges incident to down nodes (vertices kept)."""
        g = Graph(vertices=sorted(self.host.vertices()))
        for u, v in sorted(self.host.edges()):
            if u not in self.down and v not in self.down:
                g.add_edge(u, v)
        return g

    @property
    def live_m(self) -> int:
        count = 0
        for u, v in self.host.edges():
            if u not in self.down and v not in self.down:
                count += 1
        return count

    @property
    def size(self) -> int:
        return len(self.spanner)

    def spanner_edges(self) -> List[Edge]:
        return sorted(self.spanner)

    def incident_spanner_edges(self, v: int) -> List[Edge]:
        return sorted(
            canonical_edge(v, u) for u in self._adj.get(v, frozenset())
        )

    def remembered_edges(self, v: int) -> Tuple[Edge, ...]:
        """Pre-crash incident spanner edges of a (recovering) node."""
        return self.memory.get(v, ())

    # ------------------------------------------------------------------
    # Girth rule
    # ------------------------------------------------------------------
    def _bounded_distance(self, u: int, v: int) -> Optional[int]:
        """Spanner distance u->v if <= 2k-1, else None (cost-counted)."""
        adj = self._adj
        if u not in adj or v not in adj:
            return None
        stats = self.stats
        dist = {u: 0}
        queue = deque([u])
        threshold = self.threshold
        max_depth = 0
        found: Optional[int] = None
        while queue:
            x = queue.popleft()
            d = dist[x] + 1
            if d > threshold:
                continue
            # Sorted scan: the early break below makes the examined-edge
            # counter order-sensitive, and per-batch counters are part
            # of the byte-identical replay contract.
            for y in sorted(adj[x]):
                stats.edges_examined += 1
                if y == v:
                    found = d
                    queue.clear()
                    break
                if y not in dist:
                    dist[y] = d
                    queue.append(y)
            if found is not None:
                break
            if dist[x] > max_depth:
                max_depth = dist[x]
        depth = found if found is not None else max_depth + 1
        if depth > stats.repair_rounds:
            stats.repair_rounds = depth
        return found

    def _offer(self, u: int, v: int) -> bool:
        """Streaming rule: keep the live edge iff not yet spanned."""
        stats = self.stats
        stats.offers += 1
        edge = canonical_edge(u, v)
        if edge in self.spanner:
            return False
        if self._bounded_distance(u, v) is not None:
            return False
        self._adj.setdefault(u, set()).add(v)
        self._adj.setdefault(v, set()).add(u)
        self.spanner.add(edge)
        stats.kept += 1
        return True

    def _drop_spanner_edge(self, u: int, v: int) -> None:
        edge = canonical_edge(u, v)
        if edge not in self.spanner:
            return
        self.spanner.discard(edge)
        self._adj[u].discard(v)
        self._adj[v].discard(u)

    def _initial_build(self) -> None:
        for u, v in sorted(self.host.edges()):
            if u not in self.down and v not in self.down:
                self._offer(u, v)
        self.stats = RepairStats()  # construction is not batch work

    # ------------------------------------------------------------------
    # Batch lifecycle
    # ------------------------------------------------------------------
    def begin_batch(self) -> None:
        """Reset per-batch accounting and pending damage."""
        self.stats = RepairStats()
        self._pending = _Pending()

    def apply(self, event: UpdateEvent) -> bool:
        """Apply one update to host/liveness state; defer its repair.

        Returns whether the event changed anything (no-ops are counted
        in ``stats.ignored`` and tolerated, so shrunk event streams
        never have to re-balance crash/recover pairs).
        """
        if event.kind == INSERT:
            changed = self._apply_insert(*event.edge)
        elif event.kind == DELETE:
            changed = self._apply_delete(*event.edge)
        elif event.kind == CRASH:
            changed = self._apply_crash(event.u, event.amnesia)
        elif event.kind == RECOVER:
            changed = self._apply_recover(event.u)
        else:  # pragma: no cover - UpdateEvent validates kinds
            raise ValueError(f"unknown update kind {event.kind!r}")
        if changed:
            self.stats.applied += 1
        else:
            self.stats.ignored += 1
        return changed

    def _apply_insert(self, u: int, v: int) -> bool:
        if not self.host.add_edge(u, v):
            return False
        if u not in self.down and v not in self.down:
            # Inserting can only add coverage: offer immediately.
            self._offer(u, v)
        return True

    def _apply_delete(self, u: int, v: int) -> bool:
        if not self.host.remove_edge(u, v):
            return False
        edge = canonical_edge(u, v)
        if edge in self.spanner:
            self._drop_spanner_edge(u, v)
            # Live edges that routed through (u, v) lost their path.
            self._pending.seeds.update(
                x for x in (u, v) if x not in self.down
            )
        return True

    def _apply_crash(self, node: int, amnesia: bool) -> bool:
        if node in self.down or not self.host.has_vertex(node):
            return False
        self.down.add(node)
        incident = self.incident_spanner_edges(node)
        self.memory[node] = tuple(incident)
        if amnesia:
            self.amnesiac.add(node)
        else:
            self.amnesiac.discard(node)
        for a, b in incident:
            self._drop_spanner_edge(a, b)
        # Paths through the crashed node broke; its live neighbors seed
        # the repair region (the node itself is down, not a seed).
        self._pending.seeds.update(
            x for x in self.host.neighbors(node) if x not in self.down
        )
        return True

    def _apply_recover(self, node: int) -> bool:
        if node not in self.down:
            return False
        self.down.discard(node)
        self._pending.recovered.append(node)
        # Its own presence seeds the region: newly live incident edges
        # (and only those — recovery adds edges, never removes paths)
        # need coverage.
        self._pending.seeds.add(node)
        return True

    # ------------------------------------------------------------------
    # Repair / rebuild
    # ------------------------------------------------------------------
    def _repair_region(self) -> Set[int]:
        """Live-graph BFS ball of radius 2k-1 around the damage seeds.

        Every live edge whose covering path broke has both endpoints in
        here: the old path had length <= 2k-1 and passed through a
        damaged element whose live endpoint is a seed, and the path's
        surviving prefix connects each endpoint to such a seed within
        the live graph.
        """
        stats = self.stats
        seeds = sorted(
            s
            for s in self._pending.seeds
            if s not in self.down and self.host.has_vertex(s)
        )
        dist: Dict[int, int] = {s: 0 for s in seeds}
        queue = deque(seeds)
        radius = 0
        while queue:
            x = queue.popleft()
            d = dist[x] + 1
            if d > self.threshold:
                continue
            for y in self.host.neighbors(x):
                stats.edges_examined += 1
                if y in self.down or y in dist:
                    continue
                dist[y] = d
                if d > radius:
                    radius = d
                queue.append(y)
        stats.region_vertices = len(dist)
        stats.repair_rounds = max(stats.repair_rounds, radius)
        return set(dist)

    def repair_candidates(self) -> List[Edge]:
        """The ordered offer list a repair of the pending damage runs.

        Fail-pause recoveries lead with their remembered pre-crash
        spanner edges (still-live ones), then every uncovered live edge
        inside the repair region follows in canonical order.  Also used
        *unexecuted* by the policy engine as the repair cost estimate.
        """
        ordered: List[Edge] = []
        seen: Set[Edge] = set()
        for node in sorted(set(self._pending.recovered)):
            if node in self.down or node in self.amnesiac:
                continue
            for a, b in self.remembered_edges(node):
                edge = canonical_edge(a, b)
                if edge in seen or edge in self.spanner:
                    continue
                if self.live_edge(a, b):
                    ordered.append(edge)
                    seen.add(edge)
        region = self._repair_region()
        for u in sorted(region):
            for v in sorted(self.host.neighbors(u)):
                if v <= u or v not in region or v in self.down:
                    continue
                edge = (u, v)
                if edge in seen or edge in self.spanner:
                    continue
                ordered.append(edge)
                seen.add(edge)
        return ordered

    def execute_repair(self, candidates: Optional[List[Edge]] = None) -> int:
        """Re-offer the candidate list; returns edges added.

        Restores the live-graph girth invariant without a global scan
        (see :meth:`_repair_region` for the locality argument; the
        post-repair invariant is additionally asserted batch-by-batch by
        the churn fuzz oracle).  Pass the list from a prior
        :meth:`repair_candidates` call to avoid re-running (and
        re-counting) the region survey — the policy engine already paid
        for it when estimating the repair cost.
        """
        recovered = set(self._pending.recovered)
        if candidates is None:
            candidates = self.repair_candidates()
        added = 0
        for u, v in candidates:
            counts_as_recover = u in recovered or v in recovered
            if self._offer(u, v):
                added += 1
            if counts_as_recover:
                self.stats.recover_offers += 1
        self._finish_batch()
        return added

    def rebuild(self) -> None:
        """From-scratch girth-rule rebuild over the live graph."""
        self.full_rebuilds += 1
        self.stats.rebuilds += 1
        self.spanner = set()
        self._adj = {}
        for u, v in sorted(self.host.edges()):
            if u not in self.down and v not in self.down:
                self._offer(u, v)
        self._finish_batch()

    def _finish_batch(self) -> None:
        for node in sorted(set(self._pending.recovered)):
            if node in self.down:
                # Recovered and crashed again within the same batch: the
                # later crash's memory is current, keep it.
                continue
            self.memory.pop(node, None)
            self.amnesiac.discard(node)
        self._pending = _Pending()

    # ------------------------------------------------------------------
    # Invariant (test/oracle hook)
    # ------------------------------------------------------------------
    def check_invariant(self) -> bool:
        """Every live host edge is spanned within 2k-1 hops."""
        for u, v in sorted(self.host.edges()):
            if u in self.down or v in self.down:
                continue
            if canonical_edge(u, v) in self.spanner:
                continue
            if self._bounded_distance(u, v) is None:
                return False
        return True

    def uncovered_edges(self, limit: int = 8) -> List[Edge]:
        """Live edges violating the invariant (diagnostics)."""
        bad: List[Edge] = []
        for u, v in sorted(self.host.edges()):
            if u in self.down or v in self.down:
                continue
            if canonical_edge(u, v) in self.spanner:
                continue
            if self._bounded_distance(u, v) is None:
                bad.append((u, v))
                if len(bad) >= limit:
                    break
        return bad
