"""Rebuild-equivalence oracles for the churn scenario.

The differential contract: after **every** batch the incrementally
maintained spanner must be indistinguishable — by invariant, size
bound, stretch, and :func:`repro.spanner.verification.classify_outcome`
grade — from a from-scratch girth-rule rebuild over the same live
graph, and the whole run must replay byte-identically.  The fuzz layer
(:mod:`repro.fuzz`) feeds shrunk cases in here; this module takes plain
``(graph, k, batches)`` inputs so the dependency points fuzz -> churn
only.

Oracles (first failure wins, checked in this order per batch):

* ``churn_invariant`` — every live host edge is spanned within 2k-1
  hops of the maintained spanner (the repair soundness claim);
* ``churn_size`` — maintained size <= ``size_slack`` x the analytic
  girth bound ``n^(1+1/k) + n``;
* ``churn_stretch`` — :func:`classify_outcome` of the maintained edge
  set against the live graph is not ``invalid``;
* ``churn_grade_match`` — that grade equals the grade of a fresh
  rebuild over the same live graph;
* ``churn_replay`` — two :func:`repro.churn.engine.run_churn` passes
  over the same inputs serialize to identical bytes (checked once,
  after the batch loop).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.churn.engine import run_churn, spanner_baseline
from repro.churn.events import UpdateEvent
from repro.churn.maintainer import IncrementalSpanner
from repro.churn.policy import ALWAYS_REPAIR, RepairPolicy
from repro.graphs.graph import Graph
from repro.spanner.verification import classify_outcome
from repro.util.rng import SeedLike

__all__ = ["CHURN_ORACLE_NAMES", "check_churn"]

CHURN_ORACLE_NAMES = (
    "churn_invariant",
    "churn_size",
    "churn_stretch",
    "churn_grade_match",
    "churn_replay",
)


def check_churn(
    graph: Graph,
    k: int,
    batches: Sequence[Sequence[UpdateEvent]],
    size_slack: float = 1.0,
    oracles: Sequence[str] = CHURN_ORACLE_NAMES,
    grade_seed: SeedLike = 0,
) -> Optional[Tuple[str, str]]:
    """First failing ``(oracle, message)`` for the churn case, or None.

    Runs the maintainer under the always-repair policy — the point is
    to exercise incremental repair, not to let the policy bail out to a
    rebuild — and compares against a fresh build after every batch.
    """
    for name in oracles:
        if name not in CHURN_ORACLE_NAMES:
            raise ValueError(
                f"unknown churn oracle {name!r}; "
                f"choose from {CHURN_ORACLE_NAMES}"
            )
    wanted = set(oracles)
    maintainer = IncrementalSpanner(k, graph)
    alpha = float(2 * k - 1)
    baseline = spanner_baseline(graph.n, k)
    for index, batch in enumerate(batches):
        maintainer.begin_batch()
        for event in batch:
            maintainer.apply(event)
        maintainer.execute_repair()
        if "churn_invariant" in wanted and not maintainer.check_invariant():
            bad = maintainer.uncovered_edges(limit=4)
            return (
                "churn_invariant",
                f"batch {index}: live edges left unspanned "
                f"beyond {2 * k - 1} hops, e.g. {bad}",
            )
        if (
            "churn_size" in wanted
            and maintainer.size > size_slack * baseline
        ):
            return (
                "churn_size",
                f"batch {index}: {maintainer.size} edges vs. "
                f"bound {size_slack:g} x {baseline}",
            )
        live = maintainer.live_graph()
        maintained = _grade(
            live, maintainer.spanner_edges(), alpha, baseline,
            size_slack, grade_seed,
        )
        if "churn_stretch" in wanted and maintained == "invalid":
            return (
                "churn_stretch",
                f"batch {index}: maintained spanner graded invalid "
                f"against the live graph",
            )
        if "churn_grade_match" in wanted:
            fresh = IncrementalSpanner(k, live)
            rebuilt = _grade(
                live, fresh.spanner_edges(), alpha, baseline,
                size_slack, grade_seed,
            )
            if maintained != rebuilt:
                return (
                    "churn_grade_match",
                    f"batch {index}: maintained grade {maintained!r} "
                    f"!= rebuild grade {rebuilt!r} "
                    f"({maintainer.size} vs. {fresh.size} edges)",
                )
    if "churn_replay" in wanted:
        policy = RepairPolicy(mode=ALWAYS_REPAIR)
        first = run_churn(
            graph, k, batches, policy=policy, size_slack=size_slack,
            grade_seed=grade_seed,
        ).dumps()
        second = run_churn(
            graph, k, batches, policy=policy, size_slack=size_slack,
            grade_seed=grade_seed,
        ).dumps()
        if first != second:
            return (
                "churn_replay",
                f"two identical runs diverged "
                f"({len(first)} vs. {len(second)} bytes)",
            )
    return None


def _grade(
    live: Graph,
    edges: List[Tuple[int, int]],
    alpha: float,
    baseline: int,
    size_slack: float,
    grade_seed: SeedLike,
) -> str:
    return classify_outcome(
        live,
        edges,
        alpha=alpha,
        beta=0.0,
        baseline_size=baseline,
        size_slack=size_slack,
        seed=grade_seed,
    ).status
