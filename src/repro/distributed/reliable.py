"""Reliable delivery over a faulty network: acks, retransmission, lockstep.

The protocols in this package are written against the paper's perfectly
reliable synchronous model.  :class:`ReliableProgram` wraps any
:class:`~repro.distributed.simulator.NodeProgram` so that the *inner*
program still sees exactly that model while the *real* network drops,
duplicates, delays and reorders messages underneath it:

* each inner ("virtual") round ``t`` is shipped as one sequence-numbered
  **frame** ``("F", t, payloads, halted)`` per neighbor — empty frames
  included, because in a synchronous algorithm silence is information;
* every frame is **acked** (``("A", t)``) and **retransmitted** with
  backoff until acked; a frame still unacked after ``max_tries``
  retransmissions marks the link **dead** (how crash-stop neighbors are
  discovered — the inner program simply sees silence from them, which is
  the convention the protocols already use for dead/halted neighbors);
* receives are **idempotent**: a duplicate frame is re-acked and
  discarded, so duplication and ack loss are harmless;
* a node advances to virtual round ``t+1`` only once it holds frame
  ``t`` from every live neighbor — the classic alpha-synchronizer.
  Adjacent nodes can skew by at most one virtual round, so in the
  fault-free case lockstep costs **no extra rounds**, only the frame/ack
  word overhead (measured by ``benchmarks/bench_fault_overhead.py``);
* a node blocked on a silent-but-acked neighbor re-sends its latest
  frame as a **probe** (re-acked if the peer is alive, link-dead
  otherwise), which makes the layer deadlock-free: any wrapper that is
  blocked always has an active retransmission toward whatever blocks it.

:class:`ReliableNetwork` drives a wrapped network by **virtual** rounds
so phase-structured runners (the skeleton's exchange/converge/decide
phases) work unchanged: ``run(max_rounds)`` executes that many inner
rounds at every node, ``in_flight`` reports whether inner payloads are
still in transit, and ``stats`` is the real network's accounting
(retransmissions and dead links included).  A run that stops making
real progress raises :class:`ProtocolError` rather than looping —
chaos tests rely on that loud failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # deferred at runtime: sharded pulls in multiprocessing
    from repro.distributed.sharded import ShardedNetwork

from repro.distributed.faults import LINK_DEAD, FaultEvent, FaultPlan
from repro.distributed.simulator import (
    Api,
    Network,
    NetworkStats,
    NodeProgram,
    ProtocolError,
)
from repro.graphs.graph import Graph

_FRAME = "F"
_ACK = "A"


@dataclass
class ReliableConfig:
    """Tuning knobs for the ack/retransmission machinery."""

    #: real rounds before the first retransmission of an unacked frame.
    rto: int = 2
    #: multiplicative backoff between successive retransmissions.
    backoff: float = 1.25
    #: retransmissions before a link is declared dead.  A try fails if
    #: the frame *or* its ack is lost (probability 2p - p^2 per try), so
    #: a false declaration needs ``max_tries + 1`` consecutive failures:
    #: at p = 0.1 that is 0.19^15 ~ 2e-11 per frame at the default —
    #: negligible even across the skeleton's tens of thousands of frames.
    max_tries: int = 14
    #: blocked real rounds before probing a silent neighbor.
    probe_after: int = 6
    #: safety valve: a ``run()`` that needs more real rounds than
    #: ``stall_factor * (virtual budget) + stall_slack`` raises
    #: :class:`ProtocolError` instead of spinning forever.
    stall_factor: int = 60
    stall_slack: int = 400

    def __post_init__(self) -> None:
        # A bad chaos config must fail at construction, not by looping
        # forever (stall_factor <= 0 disables the stall valve's slope),
        # retransmitting every round (rto < 1), shrinking the retry gap
        # (backoff < 1) or declaring links dead spuriously (max_tries
        # < 1 gives up after the very first unacked frame).
        if self.rto < 1:
            raise ValueError(f"rto must be >= 1, got {self.rto}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1.0, got {self.backoff}")
        if self.max_tries < 1:
            raise ValueError(f"max_tries must be >= 1, got {self.max_tries}")
        if self.stall_factor <= 0:
            raise ValueError(
                f"stall_factor must be > 0, got {self.stall_factor}"
            )

    def death_rounds(self) -> int:
        """Worst-case real rounds to declare a dead link."""
        return sum(
            max(1, int(self.rto * self.backoff**i))
            for i in range(self.max_tries + 1)
        )


class _VirtualApi:
    """The :class:`Api` look-alike handed to the wrapped inner program."""

    __slots__ = ("_real", "_outbox", "_halted", "node_id")

    def __init__(self, real_api: Api) -> None:
        self._real = real_api
        self.node_id = real_api.node_id
        self._outbox: List[Tuple[int, Any]] = []
        self._halted = False

    @property
    def neighbors(self):
        return self._real.neighbors

    @property
    def n(self) -> int:
        return self._real.n

    def send(self, dst: int, payload: Any) -> None:
        if dst not in self._real._nbr_set:
            raise ProtocolError(
                f"node {self.node_id} tried to message non-neighbor {dst}"
            )
        self._outbox.append((dst, payload))

    def broadcast(self, payload: Any) -> None:
        # Recipients come from the validated neighbor list — no
        # per-edge membership re-check (mirrors Api.broadcast).
        outbox = self._outbox
        for u in self._real.neighbors:
            outbox.append((u, payload))

    def halt(self) -> None:
        self._halted = True

    def drain(self) -> List[Tuple[int, Any]]:
        out, self._outbox = self._outbox, []
        return out


class ReliableProgram(NodeProgram):
    """Wrap a :class:`NodeProgram` with sequence-numbered reliable delivery.

    Attribute lookups that the wrapper does not define fall through to
    the inner program, so runners that poke protocol state directly
    (``program.begin_phase(...)``, ``program.alive``, ``program.edges``)
    work on wrapped programs unchanged.
    """

    def __init__(
        self, inner: NodeProgram, config: Optional[ReliableConfig] = None
    ) -> None:
        self.inner = inner
        self.cfg = config or ReliableConfig()
        #: last executed inner round (setup counts as round 0).
        self.vround = 0
        #: inner rounds may execute up to this bound (set by the driver).
        self.target = 0
        self.inner_halted = False
        self.dead: Set[int] = set()
        #: src -> last frame round announced with the halted flag.
        self.halted_after: Dict[int, int] = {}
        #: src -> {frame round: payload tuple} not yet consumed.
        self.frames_in: Dict[int, Dict[int, Tuple[Any, ...]]] = {}
        #: src -> frame rounds ever received (idempotent receive).
        self.seen: Dict[int, Set[int]] = {}
        #: (dst, frame round) -> [message, next retry round, tries].
        self.unacked: Dict[Tuple[int, int], List[Any]] = {}
        #: dst -> (frame round, message) most recently built (for probes).
        self.last_frame: Dict[int, Tuple[int, Any]] = {}
        #: src -> real round at which we started waiting on them.
        self.blocked_since: Dict[int, int] = {}
        self._api: Optional[Api] = None
        self._shim: Optional[_VirtualApi] = None
        self._nbrs: List[int] = []
        self._real_round = 0

    def __getattr__(self, name: str) -> Any:
        # Only reached for names not set on the wrapper: delegate to the
        # inner program so phase-driven runners work transparently.
        return getattr(object.__getattribute__(self, "inner"), name)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def setup(self, api: Api) -> None:
        self._api = api
        self._shim = _VirtualApi(api)
        self._nbrs = list(api.neighbors)
        for u in self._nbrs:
            self.frames_in[u] = {}
            self.seen[u] = set()
        self.inner.setup(self._shim)
        self.inner_halted = self._shim._halted
        self._emit_frame(0)

    def on_round(
        self, api: Api, round_index: int, inbox: List[Tuple[int, Any]]
    ) -> None:
        self._real_round = round_index
        for src, msg in inbox:
            tag = msg[0]
            if tag == _ACK:
                self.unacked.pop((src, msg[1]), None)
            elif tag == _FRAME:
                self._receive_frame(api, src, msg)
        self._advance()
        self._retransmit(api)
        self._probe(api)
        self._maybe_halt(api)

    def on_amnesia_recover(self, api: Api, round_index: int) -> None:
        """Forward the amnesia signal to the wrapped inner program.

        Only the *inner* program's volatile state is lost; the wrapper's
        transport bookkeeping (sequence numbers, unacked frames) models
        the link layer's stable storage — it is exactly what lets the
        recovering node be carried back into lockstep by its neighbors'
        retransmissions, i.e. the repair handshake's reliable substrate.
        """
        self._real_round = round_index
        if self._shim is not None:
            self.inner.on_amnesia_recover(self._shim, round_index)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def _receive_frame(self, api: Api, src: int, msg: Any) -> None:
        if src in self.dead:
            # Withhold the ack: the peer's own retry counter will declare
            # the link dead symmetrically.
            return
        t, payloads, halted = msg[1], msg[2], msg[3]
        api.send(src, (_ACK, t))
        if t in self.seen[src]:
            return  # duplicate (or probe): re-acked above, not redelivered
        self.seen[src].add(t)
        self.frames_in[src][t] = payloads
        if halted:
            self.halted_after[src] = t
        self.blocked_since.pop(src, None)

    # ------------------------------------------------------------------
    # Virtual-round execution
    # ------------------------------------------------------------------
    def _needed_from(self, u: int, t: int) -> bool:
        """Whether executing inner round ``t`` requires frame t-1 from u."""
        if u in self.dead:
            return False
        if u in self.halted_after and self.halted_after[u] < t - 1:
            return False
        return True

    def _ready(self, t: int) -> bool:
        ready = True
        for u in self._nbrs:
            if not self._needed_from(u, t):
                continue
            if (t - 1) in self.frames_in[u]:
                continue
            self.blocked_since.setdefault(u, self._real_round)
            ready = False
        return ready

    def _advance(self) -> None:
        while (
            not self.inner_halted
            and self.vround < self.target
            and self._ready(self.vround + 1)
        ):
            t = self.vround + 1
            inbox: List[Tuple[int, Any]] = []
            for u in sorted(self._nbrs):
                payloads = self.frames_in[u].pop(t - 1, ())
                inbox.extend((u, p) for p in payloads)
            self.inner.on_round(self._shim, t, inbox)
            self.vround = t
            self.inner_halted = self._shim._halted
            self.blocked_since.clear()
            self._emit_frame(t)

    def _emit_frame(self, t: int) -> None:
        per_dst: Dict[int, List[Any]] = {}
        for dst, payload in self._shim.drain():
            per_dst.setdefault(dst, []).append(payload)
        for u in self._nbrs:
            if u in self.dead:
                continue
            if u in self.halted_after:
                continue  # a halted inner never consumes further frames
            msg = (_FRAME, t, tuple(per_dst.get(u, ())), self.inner_halted)
            self.last_frame[u] = (t, msg)
            self._transmit(u, t, msg)

    def _transmit(self, dst: int, t: int, msg: Any) -> None:
        self._api.send(dst, msg)
        self.unacked[(dst, t)] = [msg, self._real_round + self.cfg.rto, 0]

    # ------------------------------------------------------------------
    # Retransmission, probing, link death
    # ------------------------------------------------------------------
    def _retransmit(self, api: Api) -> None:
        cfg = self.cfg
        network = api._network
        stats = network.stats
        for key in sorted(self.unacked):
            entry = self.unacked.get(key)
            if entry is None:
                continue
            msg, next_retry, tries = entry
            if self._real_round < next_retry:
                continue
            dst = key[0]
            if tries >= cfg.max_tries:
                self._mark_dead(api, dst)
                continue
            api.send(dst, msg)
            stats.retransmissions += 1
            if network.obs is not None:
                network.obs.on_retransmit(
                    self._real_round, api.node_id, dst
                )
            entry[2] = tries + 1
            entry[1] = self._real_round + max(
                1, int(cfg.rto * cfg.backoff ** (tries + 1))
            )

    def _probe(self, api: Api) -> None:
        """Re-send the latest (acked) frame to silent blocking neighbors.

        Needed when a neighbor acked everything we sent and then crashed
        before producing its next frame: no unacked traffic exists to
        trigger link-death, so we manufacture some.  A live peer re-acks
        the duplicate (and we keep waiting — it is merely stalled); a
        dead one lets the retry counter run out.
        """
        if self.inner_halted or self.vround >= self.target:
            return
        cfg = self.cfg
        network = api._network
        stats = network.stats
        for u, since in sorted(self.blocked_since.items()):
            if u in self.dead:
                continue
            if any(key[0] == u for key in self.unacked):
                continue  # retransmission already in progress
            if self._real_round - since < cfg.probe_after:
                continue
            t, msg = self.last_frame.get(u, (None, None))
            if msg is None:
                continue
            self._transmit(u, t, msg)
            stats.retransmissions += 1
            if network.obs is not None:
                network.obs.on_retransmit(self._real_round, api.node_id, u)
            self.blocked_since[u] = self._real_round

    def _mark_dead(self, api: Api, dst: int) -> None:
        if dst in self.dead:
            return
        self.dead.add(dst)
        network = api._network
        network.stats.dead_links += 1
        network._record_fault(
            FaultEvent(LINK_DEAD, self._real_round,
                       src=self._shim.node_id, dst=dst)
        )
        for key in [k for k in self.unacked if k[0] == dst]:
            del self.unacked[key]
        self.frames_in[dst] = {}
        self.blocked_since.pop(dst, None)

    def _maybe_halt(self, api: Api) -> None:
        """Halt the real node once nothing further can involve it."""
        if not self.inner_halted or self.unacked:
            return
        if all(
            u in self.dead or u in self.halted_after for u in self._nbrs
        ):
            api.halt()

    # ------------------------------------------------------------------
    # Introspection for the driver
    # ------------------------------------------------------------------
    def data_in_flight(self) -> bool:
        """Whether any *inner* payload is still buffered or unacked."""
        for frames in self.frames_in.values():
            if any(frames.values()):
                return True
        for msg, _, _ in self.unacked.values():
            if msg[0] == _FRAME and msg[2]:
                return True
        return False


class ReliableNetwork:
    """Drive a network of :class:`ReliableProgram` wrappers by inner rounds.

    Mirrors the :class:`Network` surface that protocol runners use —
    ``run(max_rounds, stop_when_idle)``, ``stats``, ``in_flight``,
    ``graph``, ``programs`` — but ``max_rounds`` counts *virtual* (inner
    protocol) rounds; the real-round cost shows up in ``stats.rounds``.
    """

    def __init__(
        self,
        graph: Graph,
        programs: Dict[int, NodeProgram],
        max_message_words: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
        config: Optional[ReliableConfig] = None,
        obs: Optional[Any] = None,
    ) -> None:
        self.graph = graph
        self.config = config or ReliableConfig()
        #: the inner programs, keyed by vertex (what runners inspect).
        self.programs = programs
        self.wrappers = {
            v: ReliableProgram(p, self.config) for v, p in programs.items()
        }
        self.fault_plan = fault_plan
        self.network = Network(
            graph,
            programs=self.wrappers,
            max_message_words=max_message_words,
            fault_plan=fault_plan,
            obs=obs,
            reliable_layer=True,
        )
        self.obs = obs
        self.stats = self.network.stats
        self._virtual_target = 0

    # ------------------------------------------------------------------
    def apply_programs(
        self, fn: Any, *args: Any, **kwargs: Any
    ) -> List[Any]:
        """Run ``fn(programs, *args, **kwargs)`` over the *inner* programs.

        The engine-agnostic program hook (see
        :meth:`Network.apply_programs`) — runners drive phases through
        this on every engine; here it sees the unwrapped inner programs,
        matching what ``self.programs`` exposes.
        """
        return [fn(self.programs, *args, **kwargs)]

    def _live(self, v: int) -> bool:
        if self.fault_plan is None:
            return True
        return not self.fault_plan.is_crashed(
            v, self.network.stats.rounds + 1
        )

    @property
    def in_flight(self) -> bool:
        """Whether any inner payload is still in transit anywhere."""
        return any(
            w.data_in_flight()
            for v, w in self.wrappers.items()
            if self._live(v)
        )

    def _blocking_unacked(self) -> bool:
        """Unacked frames whose delivery still matters (dst can act)."""
        for v, w in self.wrappers.items():
            if not self._live(v):
                continue
            for dst, _ in w.unacked:
                peer = self.wrappers[dst]
                if peer.inner_halted or dst in w.dead:
                    continue
                if not self._live(dst):
                    continue
                return True
        return False

    def _all_done(self) -> bool:
        for v, w in self.wrappers.items():
            if not self._live(v):
                continue
            if not (w.inner_halted or w.vround >= self._virtual_target):
                return False
        return not self._blocking_unacked()

    def _front(self) -> int:
        """The least inner round any live, unhalted node has completed."""
        fronts = [
            w.vround
            for v, w in self.wrappers.items()
            if self._live(v) and not w.inner_halted
        ]
        return min(fronts) if fronts else self._virtual_target

    def _check_dead_links(self) -> None:
        """Loud-failure path: giving up on a *live* neighbor is an error.

        Link death toward a crashed node is the expected way the layer
        routes around failed processors; link death toward a node that
        never crashes means delivery genuinely failed (e.g. a hopeless
        loss rate) and the run must not limp on with missing messages.
        """
        exempt = (
            self.fault_plan.crashed_nodes()
            if self.fault_plan is not None
            else set()
        )
        for v, w in self.wrappers.items():
            if v in exempt:
                continue
            for dst in w.dead:
                if dst not in exempt:
                    raise ProtocolError(
                        f"reliable delivery {v}->{dst} abandoned after "
                        f"{self.config.max_tries} retransmissions"
                    )

    def _virtually_idle(self, floor: int) -> bool:
        """The lockstep analogue of ``Network``'s empty in-flight set:
        every live, unhalted node sits at the same inner round — beyond
        ``floor``, so each ``run`` call executes at least one inner round,
        like :meth:`Network.run` — and no inner payload is buffered or
        awaiting an ack anywhere."""
        fronts = {
            w.vround
            for v, w in self.wrappers.items()
            if self._live(v) and not w.inner_halted
        }
        if len(fronts) > 1:
            return False
        if fronts and min(fronts) <= floor:
            return False
        return not self.in_flight

    def run(
        self, max_rounds: int, stop_when_idle: bool = False
    ) -> NetworkStats:
        """Execute up to ``max_rounds`` further inner rounds everywhere."""
        cfg = self.config
        self._virtual_target += max_rounds
        for w in self.wrappers.values():
            w.target = self._virtual_target
        limit = (
            cfg.stall_factor * max(1, max_rounds)
            + cfg.stall_slack
            + 4 * cfg.death_rounds()
        )
        spent = 0
        floor = self._front()
        while True:
            if self._all_done():
                break
            if stop_when_idle and self._virtually_idle(floor):
                break
            self.network.run(max_rounds=1)
            self._check_dead_links()
            spent += 1
            if spent > limit:
                fronts = sorted({w.vround for w in self.wrappers.values()})
                raise ProtocolError(
                    f"reliable layer stalled: {spent} real rounds spent "
                    f"on a {max_rounds}-round virtual budget "
                    f"(fronts={fronts[:6]})"
                )
        return self.stats


def build_network(
    graph: Graph,
    programs: Dict[int, NodeProgram],
    max_message_words: Optional[int] = None,
    strict: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    reliable: bool = False,
    reliable_config: Optional[ReliableConfig] = None,
    obs: Optional[Any] = None,
    shards: Optional[int] = None,
) -> Union[Network, "ReliableNetwork", "ShardedNetwork"]:
    """One-stop network construction for protocol entry points.

    ``reliable=True`` wraps every program in :class:`ReliableProgram`
    and returns a :class:`ReliableNetwork` (whose ``run`` counts inner
    rounds); otherwise a plain :class:`Network` is returned, optionally
    with a :class:`FaultPlan` attached — running a protocol *raw* under
    faults is how the chaos harness demonstrates why the adapter exists.

    ``shards`` (>= 1) returns a
    :class:`~repro.distributed.sharded.ShardedNetwork` running the
    programs across that many persistent worker processes.  The sharded
    engine covers the clean configuration only: combining it with
    ``fault_plan``, ``reliable`` or ``strict`` raises ``ValueError``.
    """
    if shards is not None:
        if fault_plan is not None:
            raise ValueError("shards cannot be combined with a fault_plan")
        if reliable:
            raise ValueError("shards cannot be combined with reliable")
        if strict:
            raise ValueError("shards cannot be combined with strict")
        from repro.distributed.sharded import ShardedNetwork

        return ShardedNetwork(
            graph,
            programs,
            shards,
            max_message_words=max_message_words,
            obs=obs,
        )
    if reliable:
        return ReliableNetwork(
            graph,
            programs,
            max_message_words=max_message_words,
            fault_plan=fault_plan,
            config=reliable_config,
            obs=obs,
        )
    return Network(
        graph,
        programs=programs,
        max_message_words=max_message_words,
        strict=strict,
        fault_plan=fault_plan,
        obs=obs,
    )
