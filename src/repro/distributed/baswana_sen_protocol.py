"""Distributed Baswana–Sen (2k-1)-spanner.

The clustering algorithm of [10] is naturally distributed (Fig. 1 credits
it with O(k^2) rounds and length-1 messages).  Our implementation uses
shared randomness — every node evaluates the same PRF on (phase, center)
to learn any cluster's sampling fate locally — so each phase needs just
two unit-message rounds:

  round A: every active node announces its cluster center to neighbors;
  round B: nodes of unsampled clusters either join an adjacent sampled
           cluster (adding the connecting edge) or dump one edge per
           adjacent cluster and go inactive.

Phase k (vertex-cluster joining) reuses round A and adds one edge per
adjacent cluster at every surviving node.  Total: 2k rounds, 1-word
messages — matching the model row in Fig. 1 up to constants.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.distributed.faults import FaultPlan
from repro.distributed.reliable import ReliableConfig, build_network
from repro.distributed.simulator import Api, NodeProgram
from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.obs.trace import Obs, phase_scope
from repro.spanner.spanner import Spanner
from repro.util.rng import SeedLike, make_prf


def _program_edges(programs: Dict[int, NodeProgram]) -> Set[Edge]:
    """Engine-agnostic final edge gather (picklable for the sharded
    engine's workers; see ``Network.apply_programs``)."""
    edges: Set[Edge] = set()
    for program in programs.values():
        edges |= program.edges  # type: ignore[attr-defined]
    return edges


def _run_phased(network, k: int, obs: Optional[Obs]) -> None:
    """Drive the 2k-round clustering as k two-round phases.

    Phase ``i`` is rounds ``2i+1`` (announce) and ``2i+2`` (join/dump);
    the phase markers give traces and metrics the per-phase resolution
    the O(k^2)-rounds claim is stated at.  Identical round-for-round to
    one ``run(max_rounds=2k)`` call — the network keeps state across
    ``run`` calls and nodes halt themselves in the final phase.
    """
    for i in range(k):
        with phase_scope(obs, f"phase[{i}]"):
            network.run(max_rounds=2)


class _BaswanaSenProgram(NodeProgram):
    """Per-node Baswana–Sen logic (phase counter derived from round)."""

    def __init__(self, node_id: int, k: int, sample_p: float, prf) -> None:
        self.node_id = node_id
        self.k = k
        self.sample_p = sample_p
        self.prf = prf
        self.center = node_id
        self.active = True
        self.edges: Set[Edge] = set()

    def _sampled(self, center: int, phase: int) -> bool:
        return self.prf(phase, center) < self.sample_p

    def on_round(
        self, api: Api, round_index: int, inbox: List[Tuple[int, Any]]
    ) -> None:
        if not self.active:
            api.halt()
            return
        phase, step = divmod(round_index - 1, 2)
        if phase >= self.k:
            api.halt()
            return
        if step == 0:
            # Round A: announce the current cluster center.
            api.broadcast(self.center)
            return
        # Round B: inbox holds neighbor centers (silent nbrs = inactive).
        candidate: Dict[int, int] = {}
        for src, center in inbox:
            if center == self.center:
                continue
            if center not in candidate or src < candidate[center]:
                candidate[center] = src
        final_phase = phase == self.k - 1
        if final_phase:
            # Vertex-cluster joining: one edge to every adjacent cluster.
            for center in sorted(candidate):
                self.edges.add(
                    canonical_edge(self.node_id, candidate[center])
                )
            api.halt()
            return
        if self._sampled(self.center, phase):
            return  # own cluster survives; nothing to do this phase.
        sampled_adjacent = sorted(
            c for c in candidate if self._sampled(c, phase)
        )
        if sampled_adjacent:
            target = sampled_adjacent[0]
            self.edges.add(canonical_edge(self.node_id, candidate[target]))
            self.center = target
        else:
            for center in sorted(candidate):
                self.edges.add(
                    canonical_edge(self.node_id, candidate[center])
                )
            self.active = False


class _WeightedBaswanaSenProgram(NodeProgram):
    """Weighted variant: per-cluster choices take the least-weight edge.

    Identical round structure; round-A announcements are unchanged
    (1 word) because each node already knows its incident edge weights —
    the weighted algorithm's extra information is purely local.
    """

    def __init__(self, node_id: int, k: int, sample_p: float, prf,
                 weights: Dict[int, float]) -> None:
        self.node_id = node_id
        self.k = k
        self.sample_p = sample_p
        self.prf = prf
        self.weights = weights  # neighbor -> edge weight
        self.center = node_id
        self.active = True
        self.edges: Set[Edge] = set()

    def _sampled(self, center: int, phase: int) -> bool:
        return self.prf(phase, center) < self.sample_p

    def on_round(
        self, api: Api, round_index: int, inbox: List[Tuple[int, Any]]
    ) -> None:
        if not self.active:
            api.halt()
            return
        phase, step = divmod(round_index - 1, 2)
        if phase >= self.k:
            api.halt()
            return
        if step == 0:
            api.broadcast(self.center)
            return
        # Best (lightest) edge per adjacent cluster.
        best: Dict[int, Tuple[float, int]] = {}
        for src, center in inbox:
            if center == self.center:
                continue
            cand = (self.weights[src], src)
            if center not in best or cand < best[center]:
                best[center] = cand
        final_phase = phase == self.k - 1
        if final_phase:
            for center in sorted(best):
                self.edges.add(
                    canonical_edge(self.node_id, best[center][1])
                )
            api.halt()
            return
        if self._sampled(self.center, phase):
            return
        sampled_options = [
            (w, u, c) for c, (w, u) in best.items()
            if self._sampled(c, phase)
        ]
        if sampled_options:
            w_star, u_star, c_star = min(sampled_options)
            self.edges.add(canonical_edge(self.node_id, u_star))
            self.center = c_star
            # Keep every strictly lighter edge to other clusters (the
            # weighted filtering rule of [10]).
            for c, (w, u) in best.items():
                if c != c_star and (w, u) < (w_star, u_star):
                    self.edges.add(canonical_edge(self.node_id, u))
        else:
            for c, (w, u) in sorted(best.items()):
                self.edges.add(canonical_edge(self.node_id, u))
            self.active = False


def distributed_baswana_sen_weighted(
    weighted_graph,
    k: int,
    seed: SeedLike = None,
    max_message_words: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    reliable: bool = False,
    reliable_config: Optional[ReliableConfig] = None,
    obs: Optional[Obs] = None,
    shards: Optional[int] = None,
):
    """Run the weighted (2k-1)-spanner protocol (Fig. 1's first row).

    ``weighted_graph`` is a :class:`repro.graphs.weighted.WeightedGraph`;
    returns the spanner's edge set plus the :class:`NetworkStats` —
    2k rounds, 1-word messages, like the unweighted protocol.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    graph = weighted_graph.unweighted()
    if k == 1:
        return set(graph.edges()), None
    if obs is not None and not obs.protocol:
        obs.protocol = "baswana_sen_weighted"
    prf = make_prf(seed)
    sample_p = graph.n ** (-1.0 / k) if graph.n else 0.0
    programs = {
        v: _WeightedBaswanaSenProgram(
            v, k, sample_p, prf, dict(weighted_graph.neighbors(v))
        )
        for v in graph.vertices()
    }
    network = build_network(
        graph,
        programs,
        max_message_words=max_message_words,
        fault_plan=fault_plan,
        reliable=reliable,
        reliable_config=reliable_config,
        obs=obs,
        shards=shards,
    )
    _run_phased(network, k, obs)
    stats = network.stats
    edges: Set[Edge] = set()
    for shard_edges in network.apply_programs(_program_edges):
        edges |= shard_edges
    return edges, stats


def distributed_baswana_sen(
    graph: Graph,
    k: int,
    seed: SeedLike = None,
    max_message_words: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    reliable: bool = False,
    reliable_config: Optional[ReliableConfig] = None,
    obs: Optional[Obs] = None,
    shards: Optional[int] = None,
) -> Spanner:
    """Run the distributed (2k-1)-spanner protocol; 2k rounds, unit messages.

    Metadata carries the :class:`NetworkStats` under ``"network_stats"``.
    ``fault_plan``/``reliable`` plug in fault injection and the
    reliable-delivery adapter (see :mod:`repro.distributed.reliable`).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if k == 1:
        return Spanner(
            graph, graph.edges(), {"algorithm": "baswana-sen-distributed",
                                   "k": 1}
        )
    if obs is not None and not obs.protocol:
        obs.protocol = "baswana_sen"
    prf = make_prf(seed)
    sample_p = graph.n ** (-1.0 / k) if graph.n else 0.0
    programs = {
        v: _BaswanaSenProgram(v, k, sample_p, prf)
        for v in graph.vertices()
    }
    network = build_network(
        graph,
        programs,
        max_message_words=max_message_words,
        fault_plan=fault_plan,
        reliable=reliable,
        reliable_config=reliable_config,
        obs=obs,
        shards=shards,
    )
    _run_phased(network, k, obs)
    stats = network.stats
    edges: Set[Edge] = set()
    for shard_edges in network.apply_programs(_program_edges):
        edges |= shard_edges
    return Spanner(
        graph,
        edges,
        {
            "algorithm": "baswana-sen-distributed",
            "k": k,
            "sample_p": sample_p,
            "reliable": reliable,
            "network_stats": stats,
        },
    )
