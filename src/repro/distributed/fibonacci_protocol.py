"""Distributed construction of Fibonacci spanners (Section 4.4).

Two stages per level, exactly as in the paper:

* **Stage 1** (forests): for each i, a bounded multi-source BFS from V_i
  for ell^{i-1} rounds with unit-length messages; every vertex then knows
  the first edge on P(v, p_i(v)) or that delta(v, V_i) > ell^{i-1}, and
  the qualifying parent edges enter the spanner.

* **Stage 2** (balls): every y in V_i broadcasts its identity through the
  radius-ell^i ball, nodes relaying newly heard sources and *ceasing
  participation* when a relay would exceed the O(n^{1/t}) message cap.
  Collectors x in V_{i-1} then issue add-path requests for every
  u in B_{i+1,ell}(x), routed backward along the broadcast parents.

The Monte-Carlo -> Las-Vegas conversion is included: ceased vertices
broadcast the round at which they stopped; a collector that detects a
possibly-blocked source (delta(x, z) + k < delta(x, V_{i+1})) commands its
radius-ell^i ball to keep all adjacent edges (rare by the choice of cap —
probability < 2 n^{-3} — but exercised directly in tests via tiny caps).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.fibonacci import FibonacciParams, sample_levels
from repro.distributed.faults import FaultPlan
from repro.distributed.primitives import (
    ball_broadcast_protocol,
    bounded_bfs_protocol,
    path_retrace_protocol,
)
from repro.distributed.reliable import ReliableConfig
from repro.distributed.simulator import NetworkStats
from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.obs.trace import Obs
from repro.graphs.properties import bfs_distances
from repro.spanner.spanner import Spanner
from repro.util.rng import SeedLike


def adjust_probabilities_for_cap(
    n: int, probabilities: Sequence[float], t: float
) -> List[float]:
    """Theorem 8's probability adjustment for an O(n^{1/t}) message cap.

    Find the maximum prefix with q_i / q_{i+1} <= n^{1/t}; replace the
    rest by a geometric sequence with ratio n^{1/t} down to ~1/n.  The
    effect is to increase the order by at most t.
    """
    if t <= 0:
        raise ValueError("t must be positive")
    ratio = n ** (1.0 / t)
    adjusted: List[float] = []
    prev = 1.0
    for q in probabilities:
        if prev / q <= ratio + 1e-12:
            adjusted.append(q)
            prev = q
        else:
            break
    if len(adjusted) == len(probabilities):
        return adjusted
    # Geometric continuation until we are at least as sparse as the
    # original target (the original final probability).
    target = probabilities[-1]
    while adjusted and adjusted[-1] > target and adjusted[-1] / ratio > 1 / n:
        adjusted.append(max(target, adjusted[-1] / ratio))
    if not adjusted:
        adjusted = [min(1.0, ratio / n)]
    return adjusted


def distributed_fibonacci_spanner(
    graph: Graph,
    order: Optional[int] = None,
    eps: float = 0.5,
    ell: Optional[int] = None,
    t: Optional[float] = None,
    max_message_words: Optional[int] = None,
    seed: SeedLike = None,
    levels: Optional[List[Set[int]]] = None,
    failure_detection: bool = True,
    fault_plan: Optional[FaultPlan] = None,
    reliable: bool = False,
    reliable_config: Optional[ReliableConfig] = None,
    obs: Optional[Obs] = None,
    shards: Optional[int] = None,
) -> Spanner:
    """Build a Fibonacci spanner by message passing (Theorem 8).

    ``t`` sets the message cap to ceil(n^{1/t}) and adjusts the sampling
    probabilities per Theorem 8; ``max_message_words`` overrides the cap
    directly.  Pass ``levels`` to reuse a hierarchy sampled elsewhere
    (e.g. to cross-validate against the sequential construction).

    The returned spanner's metadata carries the aggregated
    :class:`NetworkStats` under ``"network_stats"`` plus a per-phase
    breakdown under ``"phase_stats"``.  ``fault_plan``/``reliable``
    apply fault injection and the reliable-delivery adapter to every
    communication phase (each phase is its own network, so the plan's
    per-round decisions restart with each phase's round counter).
    """
    n = graph.n
    if obs is not None and not obs.protocol:
        obs.protocol = "fibonacci"
    net_kwargs = {
        "fault_plan": fault_plan,
        "reliable": reliable,
        "reliable_config": reliable_config,
        "obs": obs,
        "shards": shards,
    }
    params = FibonacciParams.resolve(n, order=order, eps=eps, ell=ell)
    cap = max_message_words
    if cap is None and t is not None:
        cap = max(1, math.ceil(n ** (1.0 / t)))
        params.probabilities = adjust_probabilities_for_cap(
            n, params.probabilities, t
        )
        params.order = len(params.probabilities)
    if levels is None:
        levels = sample_levels(graph, params, seed)
    o = len(levels) - 1
    ell_val = params.ell

    edges: Set[Edge] = set()
    phase_stats: List[Tuple[str, NetworkStats]] = []
    fallback_commands = 0

    # ---------------- Stage 1: nearest-V_i forests -------------------
    for i in range(1, o + 1):
        radius = int(ell_val ** (i - 1))
        dist, _, parent, stats = bounded_bfs_protocol(
            graph, levels[i], radius, max_message_words=cap,
            phase=f"forest[{i}]", **net_kwargs
        )
        phase_stats.append((f"forest[{i}]", stats))
        for v, d in dist.items():
            if d >= 1:
                edges.add(canonical_edge(v, parent[v]))

    # ---------------- Stage 2: B_{i+1,ell} balls ----------------------
    for i in range(0, o + 1):
        targets = levels[i] if i <= o else set()
        if not targets:
            continue
        collectors = levels[i - 1] if i >= 1 else levels[0]
        radius = int(ell_val**i)

        # delta(., V_{i+1}) up to radius + 1 (enough to cut the balls).
        if i < o and levels[i + 1]:
            dist_next, _, _, stats = bounded_bfs_protocol(
                graph, levels[i + 1], radius + 1, max_message_words=cap,
                phase=f"cutoff[{i}]", **net_kwargs
            )
            phase_stats.append((f"cutoff[{i}]", stats))
        else:
            dist_next = {}

        known, ceased, stats = ball_broadcast_protocol(
            graph, targets, radius, max_message_words=cap,
            phase=f"ball[{i}]", **net_kwargs
        )
        phase_stats.append((f"ball[{i}]", stats))

        # Las-Vegas failure detection (Sect. 4.4).
        failed: List[int] = []
        if ceased and failure_detection:
            known_ceased, _, stats = ball_broadcast_protocol(
                graph, ceased.keys(), radius, max_message_words=None,
                phase=f"detect[{i}]", **net_kwargs
            )
            phase_stats.append((f"detect[{i}]", stats))
            for x in sorted(collectors):
                d_next = dist_next.get(x, math.inf)
                for z, (dz, _) in known_ceased[x].items():
                    if dz + ceased[z] < d_next:
                        failed.append(x)
                        break
        if failed:
            # Each failing collector commands its radius-ell^i ball to
            # include all adjacent edges; the command broadcast costs one
            # more ball-broadcast phase.
            _, _, stats = ball_broadcast_protocol(
                graph, failed, radius, max_message_words=None,
                phase=f"fallback[{i}]", **net_kwargs
            )
            phase_stats.append((f"fallback[{i}]", stats))
            fallback_commands += len(failed)
            for x in failed:
                ball = bfs_distances(graph, x, cutoff=radius)
                for v in ball:
                    for u in graph.neighbors(v):
                        edges.add(canonical_edge(v, u))

        # Add-path requests: u in B_{i+1,ell}(x) iff
        # 1 <= delta(x, u) <= min(ell^i, delta(x, V_{i+1}) - 1).
        requests: Dict[int, List[int]] = {}
        for x in sorted(collectors):
            r_x = min(float(radius), dist_next.get(x, math.inf) - 1)
            wanted = [
                u
                for u, (d, _) in known[x].items()
                if 1 <= d <= r_x
            ]
            if wanted:
                requests[x] = sorted(wanted)
        parent_maps = {
            v: {u: par for u, (_, par) in know.items()}
            for v, know in known.items()
        }
        path_edges, stats = path_retrace_protocol(
            graph, parent_maps, requests, radius, max_message_words=cap,
            phase=f"retrace[{i}]", **net_kwargs
        )
        phase_stats.append((f"retrace[{i}]", stats))
        edges |= path_edges

    total = NetworkStats(cap=cap)
    for _, stats in phase_stats:
        total = total.merged_with(stats)
    total.cap = cap

    metadata = {
        "algorithm": "fibonacci-spanner-distributed",
        "order": o,
        "eps": params.eps,
        "ell": ell_val,
        "t": t,
        "reliable": reliable,
        "message_cap": cap,
        "probabilities": params.probabilities,
        "level_sizes": [len(lv) for lv in levels],
        "fallback_commands": fallback_commands,
        "network_stats": total,
        "phase_stats": phase_stats,
    }
    return Spanner(graph, edges, metadata)
