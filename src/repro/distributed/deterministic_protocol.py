"""Deterministic linear-size skeleton (Elkin–Matar style superclustering).

The sixth protocol: a deterministic counterpart to the randomized
Section 2 skeleton, following the ruling-set/superclustering structure
of Elkin–Matar, "Fast Deterministic Constructions of Linear-Size
Spanners and Skeletons" (arXiv:1907.10895; see also Bezdrighin et al.,
arXiv:2204.14086).  No shared randomness is used anywhere — every
tie-break is a minimum, so the sequential reference
(:func:`repro.baselines.deterministic_skeleton.sequential_deterministic`)
reproduces the *exact* edge set, which the fuzz differential oracle
demands.

Clusters are rooted trees of spanner edges (initially singletons).
Superphase ``i`` uses the doubly-exponential degree threshold
``t_i = (D+1)^(2^i) - 1``:

1. **exchange** — active vertices announce their cluster id.
2. **survey** — each cluster convergecasts, one bounded message per
   edge per round, the minimum boundary edge per adjacent cluster; a
   vertex that has seen ``t_i`` distinct clusters stops tabulating and
   raises a *high* flag instead (high clusters never need their table).
3. **ruling loop** — undecided high clusters iteratively compute
   ``m1(C)`` (minimum undecided-high id over the closed cluster
   neighborhood) and ``m2(C)`` (minimum ``m1`` over the closed
   neighborhood); ``C`` becomes a *center* iff ``m2(C) = id(C)``.
   Centers are pairwise at cluster-distance >= 3, and the global
   minimum undecided id always wins, so each iteration decides at
   least one cluster.  High clusters within distance 2 of a center
   are marked dominated; the loop runs until no undecided high
   cluster remains.
4. **resolve** — every cluster adjacent to a center joins its minimum
   adjacent center (adding one minimum boundary edge and re-rooting
   its tree at the attachment point); dominated high clusters at
   distance 2 join through a wave-1 joiner the same way; low clusters
   adjacent to no center *die*, keeping the minimum boundary edge to
   each adjacent cluster (< t_i edges) and going inactive.

Each center absorbs its >= t_i + 1 closed-neighborhood clusters, so
cluster counts drop as n_{i+1} <= n_i / (t_i + 1) and the protocol
terminates within ``deterministic_phase_count(n, D)`` superphases;
death edges total <= n (D+1) per superphase and joins <= n overall
(the ``deterministic_size_bound``), while cluster radii obey
``r_{i+1} <= 5 r_i + 2``, giving worst-case stretch
``2 * 5^(L-1) - 1`` (see :mod:`repro.core.theory`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.theory import (
    deterministic_phase_count,
    deterministic_radius_bound,
    deterministic_threshold,
)
from repro.distributed.faults import FaultPlan
from repro.distributed.reliable import ReliableConfig, build_network
from repro.distributed.simulator import Api, NodeProgram
from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.obs.trace import Obs, phase_scope
from repro.spanner.spanner import Spanner
from repro.util.rng import SeedLike

# Message tags (all payloads are fixed-arity tuples of at most 4 words —
# one message per edge per round, the CONGEST discipline).
_EXCHANGE = "X"    # ("X", cluster)
_SURVEY = "U"      # ("U", cluster, e0, e1)
_SURVEY_HIGH = "UH"  # ("UH",)
_DOWN = "DN"       # ("DN", value)
_BOUNDARY = "B"    # ("B", value)
_UP = "UP"         # ("UP", value)
_CAND = "C1"       # ("C1", cluster)  wave-1 center announcement
_CAND2 = "C2"      # ("C2", cluster)  wave-2 joined announcement
_UP_CAND = "J"     # ("J", cluster, mine, theirs)
_UP_NONE = "JN"    # ("JN",)
_ADOPT = "AD"      # ("AD", cluster, mine, theirs)
_NEW_CLUSTER = "NC"  # ("NC", cluster)
_CHILD = "CH"      # ("CH",)
_DEATH = "DD"      # ("DD", e0, e1)
_DEATH_MARK = "DK"  # ("DK",)

#: a join candidate: (target cluster, e0, e1, mine, theirs) where
#: (e0, e1) = canonical_edge(mine, theirs); ordered by (cluster, e0, e1).
Candidate = Tuple[int, int, int, int, int]


class _DeterministicProgram(NodeProgram):
    """Per-vertex state machine for the deterministic protocol."""

    def __init__(self, node_id: int, n: int) -> None:
        self.node_id = node_id
        #: cluster-id infinity sentinel (all ids are < n).
        self.inf = n
        self.active = True
        self.cluster = node_id
        self.parent: Optional[int] = None
        self.children: Set[int] = set()
        self.edges: Set[Edge] = set()

        self.phase = "idle"
        self.phase_round = 0
        self.threshold = 1
        self.kind = ""
        self.wave = 0
        self.nbr_cl: Dict[int, int] = {}
        self.high = False
        self.join_initiated = 0  # wave (1/2) if this root executed a join
        self._reset_superphase_scratch()

    def _reset_superphase_scratch(self) -> None:
        self.survey_table: Dict[int, Edge] = {}
        self.survey_sent: Dict[int, Edge] = {}
        self.survey_high = False
        self.survey_high_sent = False
        self.rs_m1 = self.inf
        self.rs_center = False
        self.rs_decided = False
        self.rs_d1 = False
        self.down_val = 0
        self.local_min = 0
        self.up_pending: Set[int] = set()
        self.up_sent = False
        self.up_best: Optional[Candidate] = None
        self.up_winner: Optional[int] = None
        self.join_cand: Optional[Candidate] = None
        self.join_target: Optional[Candidate] = None
        self.in_center = False
        self.joined = False
        self.dying = False
        self.death_queue: List[Edge] = []
        self.death_mark_sent = False

    # ------------------------------------------------------------------
    # Superphase / phase control (runner-invoked, processor-local info)
    # ------------------------------------------------------------------
    def begin_superphase(self, threshold: int) -> None:
        self.threshold = threshold
        self.high = False
        self.join_initiated = 0
        self.nbr_cl = {}
        self._reset_superphase_scratch()

    def begin_phase(self, phase: str, **config: Any) -> None:
        self.phase = phase
        self.phase_round = 0
        if phase == "survey":
            self._begin_survey()
        elif phase == "r_down":
            self._begin_down(config["kind"])
        elif phase == "r_x":
            self.local_min = self.down_val
        elif phase == "r_up":
            self.kind = config["kind"]
            self.up_pending = set(self.children)
            self.up_sent = False
        elif phase == "res_x":
            self.wave = config["wave"]
            self.join_cand = None
        elif phase == "res_up":
            self.wave = config["wave"]
            self.up_pending = set(self.children)
            self.up_sent = False
            self.up_best = self.join_cand
            self.up_winner = None
            self.join_target = None
        elif phase == "res_join":
            self.wave = config["wave"]

    def conclude_survey(self) -> None:
        """Runner hook after the survey phase: the root fixes high/low."""
        if self.active and self.parent is None:
            self.high = (
                self.survey_high
                or len(self.survey_table) >= self.threshold
            )
            self.rs_m1 = self.inf
            self.rs_center = False
            self.rs_decided = False
            self.rs_d1 = False

    def finalize_superphase(self) -> None:
        """Runner hook after res_death: commit deaths."""
        if self.dying:
            self.active = False

    def _begin_survey(self) -> None:
        self.survey_table = {}
        self.survey_sent = {}
        self.survey_high = False
        self.survey_high_sent = False
        if not self.active:
            return
        for x in sorted(self.nbr_cl):
            cl = self.nbr_cl[x]
            if cl != self.cluster:
                self._survey_note(cl, canonical_edge(self.node_id, x))

    def _survey_note(self, cl: int, edge: Edge) -> None:
        if self.survey_high:
            return
        if cl in self.survey_table:
            if edge < self.survey_table[cl]:
                self.survey_table[cl] = edge
        elif len(self.survey_table) >= self.threshold:
            # A t-th distinct adjacent cluster in this subtree: the
            # cluster's degree is >= t, so it is high and its table is
            # never consulted — stop tabulating, raise the flag.
            self.survey_high = True
        else:
            self.survey_table[cl] = edge

    def _begin_down(self, kind: str) -> None:
        self.kind = kind
        self.down_val = self.inf
        if not (self.active and self.parent is None):
            return
        if kind == "st1":
            self.down_val = (
                self.cluster
                if self.high and not self.rs_decided
                else self.inf
            )
        elif kind == "m1":
            self.down_val = self.rs_m1
        elif kind == "ctr":
            self.down_val = self.cluster if self.rs_center else self.inf
        elif kind == "d1":
            self.down_val = 0 if self.rs_d1 else 1
        elif kind == "fin":
            self.down_val = 1 if self.rs_center else 0
            self.in_center = self.rs_center

    def _apply_up_result(self, kind: str, value: int) -> None:
        """The root folds a convergecast result into its ruling state."""
        if kind == "m1":
            self.rs_m1 = value
        elif kind == "m2":
            if self.high and not self.rs_decided and value == self.cluster:
                self.rs_center = True
                self.rs_decided = True
        elif kind == "ctr":
            adjacent = value < self.inf
            if self.high and not self.rs_decided and adjacent:
                self.rs_decided = True
            self.rs_d1 = self.rs_center or adjacent
        elif kind == "d1":
            if self.high and not self.rs_decided and value == 0:
                self.rs_decided = True

    # ------------------------------------------------------------------
    # Round dispatch
    # ------------------------------------------------------------------
    def on_round(
        self, api: Api, round_index: int, inbox: List[Tuple[int, Any]]
    ) -> None:
        self.phase_round += 1
        if self.phase == "exchange":
            self._round_exchange(api, inbox)
        elif self.phase == "survey":
            self._round_survey(api, inbox)
        elif self.phase == "r_down":
            self._round_down(api, inbox)
        elif self.phase == "r_x":
            self._round_boundary(api, inbox)
        elif self.phase == "r_up":
            self._round_up(api, inbox)
        elif self.phase == "res_x":
            self._round_res_x(api, inbox)
        elif self.phase == "res_up":
            self._round_res_up(api, inbox)
        elif self.phase == "res_join":
            self._round_res_join(api, inbox)
        elif self.phase == "res_death":
            self._round_res_death(api, inbox)

    def _round_exchange(self, api: Api, inbox: List[Tuple[int, Any]]) -> None:
        if not self.active:
            return
        if self.phase_round == 1:
            self.nbr_cl = {}
            api.broadcast((_EXCHANGE, self.cluster))
            return
        for src, msg in inbox:
            if msg[0] == _EXCHANGE:
                self.nbr_cl[src] = msg[1]

    def _round_survey(self, api: Api, inbox: List[Tuple[int, Any]]) -> None:
        if not self.active:
            return
        for src, msg in inbox:
            if msg[0] == _SURVEY:
                self._survey_note(msg[1], (msg[2], msg[3]))
            elif msg[0] == _SURVEY_HIGH:
                self.survey_high = True
        if self.parent is None:
            return  # the root only accumulates
        if self.survey_high:
            if not self.survey_high_sent:
                api.send(self.parent, (_SURVEY_HIGH,))
                self.survey_high_sent = True
            return
        # One bounded message per round: the first stale table entry.
        for cl in sorted(self.survey_table):
            edge = self.survey_table[cl]
            if self.survey_sent.get(cl) != edge:
                api.send(self.parent, (_SURVEY, cl, edge[0], edge[1]))
                self.survey_sent[cl] = edge
                return

    def _round_down(self, api: Api, inbox: List[Tuple[int, Any]]) -> None:
        if not self.active:
            return
        if self.phase_round == 1:
            if self.parent is None:
                for child in sorted(self.children):
                    api.send(child, (_DOWN, self.down_val))
            return
        for src, msg in inbox:
            if msg[0] == _DOWN:
                self.down_val = msg[1]
                if self.kind == "fin":
                    self.in_center = bool(msg[1])
                for child in sorted(self.children):
                    api.send(child, (_DOWN, msg[1]))

    def _round_boundary(
        self, api: Api, inbox: List[Tuple[int, Any]]
    ) -> None:
        if not self.active:
            return
        if self.phase_round == 1:
            api.broadcast((_BOUNDARY, self.down_val))
            return
        for src, msg in inbox:
            if msg[0] == _BOUNDARY and msg[1] < self.local_min:
                self.local_min = msg[1]

    def _round_up(self, api: Api, inbox: List[Tuple[int, Any]]) -> None:
        if not self.active:
            return
        for src, msg in inbox:
            if msg[0] == _UP:
                if msg[1] < self.local_min:
                    self.local_min = msg[1]
                self.up_pending.discard(src)
        if self.up_pending or self.up_sent:
            return
        self.up_sent = True
        if self.parent is None:
            self._apply_up_result(self.kind, self.local_min)
        else:
            api.send(self.parent, (_UP, self.local_min))

    def _note_candidate(self, target: int, mine: int, theirs: int) -> None:
        e0, e1 = canonical_edge(mine, theirs)
        cand = (target, e0, e1, mine, theirs)
        if self.join_cand is None or cand[:3] < self.join_cand[:3]:
            self.join_cand = cand

    def _round_res_x(self, api: Api, inbox: List[Tuple[int, Any]]) -> None:
        if not self.active:
            return
        if self.phase_round == 1:
            if self.wave == 1 and self.in_center:
                api.broadcast((_CAND, self.cluster))
            elif self.wave == 2 and self.joined:
                api.broadcast((_CAND2, self.cluster))
            return
        if self.in_center or self.joined:
            return  # settled clusters collect no candidates
        for src, msg in inbox:
            if msg[0] in (_CAND, _CAND2):
                self._note_candidate(msg[1], self.node_id, src)

    def _round_res_up(self, api: Api, inbox: List[Tuple[int, Any]]) -> None:
        if not (self.active and not self.in_center and not self.joined):
            return
        for src, msg in inbox:
            if msg[0] == _UP_CAND:
                target, mine, theirs = msg[1], msg[2], msg[3]
                e0, e1 = canonical_edge(mine, theirs)
                cand = (target, e0, e1, mine, theirs)
                if self.up_best is None or cand[:3] < self.up_best[:3]:
                    self.up_best = cand
                    self.up_winner = src
                self.up_pending.discard(src)
            elif msg[0] == _UP_NONE:
                self.up_pending.discard(src)
        if self.up_pending or self.up_sent:
            return
        self.up_sent = True
        if self.parent is None:
            self.join_target = self.up_best
        elif self.up_best is not None:
            target, _e0, _e1, mine, theirs = self.up_best
            api.send(self.parent, (_UP_CAND, target, mine, theirs))
        else:
            api.send(self.parent, (_UP_NONE,))

    def _execute_join(self, api: Api) -> None:
        assert self.join_target is not None
        target, e0, e1, mine, theirs = self.join_target
        self.cluster = target
        self.joined = True
        kids = sorted(self.children)
        if self.up_winner is None:
            # This vertex owns the attachment edge (mine == node_id):
            # hang the whole re-rooted tree under ``theirs``.
            self.parent = theirs
            self.edges.add((e0, e1))
            api.send(theirs, (_CHILD,))
            for child in kids:
                api.send(child, (_NEW_CLUSTER, target))
        else:
            winner = self.up_winner
            self.parent = winner
            self.children.discard(winner)
            api.send(winner, (_ADOPT, target, mine, theirs))
            for child in kids:
                if child != winner:
                    api.send(child, (_NEW_CLUSTER, target))

    def _round_res_join(
        self, api: Api, inbox: List[Tuple[int, Any]]
    ) -> None:
        if not self.active:
            return
        for src, msg in inbox:
            tag = msg[0]
            if tag == _CHILD:
                self.children.add(src)
            elif tag == _ADOPT:
                self.join_target = (
                    msg[1],
                ) + canonical_edge(msg[2], msg[3]) + (msg[2], msg[3])
                self._execute_join(api)
                self.children.add(src)
            elif tag == _NEW_CLUSTER:
                self.cluster = msg[1]
                self.joined = True
                for child in sorted(self.children):
                    api.send(child, (_NEW_CLUSTER, msg[1]))
        if self.phase_round != 1 or self.parent is not None:
            return
        if self.in_center or self.joined:
            return
        eligible = self.join_target is not None and (
            self.wave == 1 or self.high
        )
        if eligible:
            self.join_initiated = self.wave
            self._execute_join(api)

    def _round_res_death(
        self, api: Api, inbox: List[Tuple[int, Any]]
    ) -> None:
        if not self.active:
            return
        for src, msg in inbox:
            tag = msg[0]
            if tag == _DEATH:
                edge = (msg[1], msg[2])
                if self.node_id in edge:
                    self.edges.add(edge)
                for child in sorted(self.children):
                    api.send(child, (_DEATH, edge[0], edge[1]))
            elif tag == _DEATH_MARK:
                self.dying = True
                for child in sorted(self.children):
                    api.send(child, (_DEATH_MARK,))
        if self.parent is not None:
            return
        if self.phase_round == 1:
            dies = (
                not self.in_center
                and not self.joined
                and not self.high
            )
            if not dies:
                return
            self.dying = True
            self.death_queue = []
            for cl in sorted(self.survey_table):
                edge = self.survey_table[cl]
                if self.node_id in edge:
                    self.edges.add(edge)
                self.death_queue.append(edge)
            self.death_mark_sent = False
        if not self.dying or not self.children:
            return
        # Pipeline the table down, one bounded message per edge per round.
        if self.death_queue:
            edge = self.death_queue.pop(0)
            for child in sorted(self.children):
                api.send(child, (_DEATH, edge[0], edge[1]))
        elif not self.death_mark_sent:
            for child in sorted(self.children):
                api.send(child, (_DEATH_MARK,))
            self.death_mark_sent = True


# Engine-agnostic program hooks: the driver reaches node programs only
# through ``network.apply_programs`` with these module-level (hence
# picklable) functions, so the same driver runs whether the programs
# live in this process or in the sharded engine's workers.
def _begin_phase(
    programs: Dict[int, NodeProgram], name: str, **config: Any
) -> None:
    for program in programs.values():
        program.begin_phase(name, **config)  # type: ignore[attr-defined]


def _begin_superphase(
    programs: Dict[int, "_DeterministicProgram"], threshold: int
) -> None:
    for program in programs.values():
        program.begin_superphase(threshold)


def _conclude_survey(
    programs: Dict[int, "_DeterministicProgram"],
) -> None:
    for program in programs.values():
        program.conclude_survey()


def _finalize_superphase(
    programs: Dict[int, "_DeterministicProgram"],
) -> None:
    for program in programs.values():
        program.finalize_superphase()


def _active_count(programs: Dict[int, "_DeterministicProgram"]) -> int:
    return sum(1 for pr in programs.values() if pr.active)


def _cluster_count(programs: Dict[int, "_DeterministicProgram"]) -> int:
    return sum(
        1 for pr in programs.values() if pr.active and pr.parent is None
    )


def _undecided_high_count(
    programs: Dict[int, "_DeterministicProgram"],
) -> int:
    return sum(
        1
        for pr in programs.values()
        if pr.active and pr.parent is None and pr.high
        and not pr.rs_decided
    )


def _superphase_tallies(
    programs: Dict[int, "_DeterministicProgram"],
) -> Tuple[int, int, int, int]:
    """(centers, wave-1 joins, wave-2 joins, deaths) of this superphase.

    Gathered after res_death but before ``finalize_superphase`` (dying
    roots are still active; joined roots are identified by the
    ``join_initiated`` flag because their ``parent`` is already set).
    """
    centers = joins1 = joins2 = deaths = 0
    for pr in programs.values():
        if pr.join_initiated == 1:
            joins1 += 1
        elif pr.join_initiated == 2:
            joins2 += 1
        if pr.active and pr.parent is None:
            if pr.rs_center:
                centers += 1
            elif pr.dying:
                deaths += 1
    return centers, joins1, joins2, deaths


def _spanner_edges(
    programs: Dict[int, "_DeterministicProgram"],
) -> Set[Edge]:
    edges: Set[Edge] = set()
    for program in programs.values():
        edges |= program.edges
    return edges


def distributed_deterministic(
    graph: Graph,
    D: int = 4,
    seed: SeedLike = None,
    max_message_words: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    reliable: bool = False,
    reliable_config: Optional[ReliableConfig] = None,
    obs: Optional[Obs] = None,
    shards: Optional[int] = None,
) -> Spanner:
    """Run the deterministic superclustering protocol on ``graph``.

    ``seed`` is accepted for registry uniformity and ignored — the
    protocol draws no randomness, so two runs (and the sequential
    reference) produce byte-identical results by construction.
    Metadata carries the :class:`NetworkStats` (``"network_stats"``),
    the synchronous schedule bound (``"budgeted_rounds"``), the
    per-superphase cluster counts (``"cluster_counts"``), ruling-loop
    iteration counts (``"ruling_iterations"``), and per-superphase
    (centers, wave-1 joins, wave-2 joins, deaths) tallies
    (``"superphase_tallies"``) — all cross-checked exactly against the
    sequential reference by the fuzz differential oracle.
    """
    del seed  # deterministic: no randomness anywhere
    if D < 1:
        raise ValueError("D must be >= 1")
    n = graph.n
    if obs is not None and not obs.protocol:
        obs.protocol = "deterministic"
    programs = {v: _DeterministicProgram(v, n) for v in graph.vertices()}
    network = build_network(
        graph,
        programs,
        max_message_words=max_message_words,
        fault_plan=fault_plan,
        reliable=reliable,
        reliable_config=reliable_config,
        obs=obs,
        shards=shards,
    )

    budgeted_rounds = 0

    def run_phase(
        label: str, name: str, budget: int, **config: Any
    ) -> None:
        nonlocal budgeted_rounds
        with phase_scope(obs, label):
            network.apply_programs(_begin_phase, name, **config)
            network.run(max_rounds=budget, stop_when_idle=True)
            # Drain messages still in flight (the synchronous schedule
            # would have waited out the full budget; we stop once quiet).
            while network.in_flight:
                network.run(max_rounds=1)
        budgeted_rounds += budget

    max_superphases = deterministic_phase_count(n, D)
    # With faults and no reliable transport, dropped messages can starve
    # the progress argument (a survey or ruling wave silently loses its
    # minimum); degrade to a best-effort partial run instead of raising.
    lossy = fault_plan is not None and not reliable
    degraded = False
    cluster_counts: List[int] = []
    ruling_iterations: List[int] = []
    tallies: List[Tuple[int, int, int, int]] = []
    superphase = 0
    while sum(network.apply_programs(_active_count)) > 0:
        if superphase >= max_superphases:
            if lossy:
                degraded = True
                break
            raise RuntimeError(
                f"deterministic protocol exceeded its "
                f"{max_superphases}-superphase budget (n={n}, D={D})"
            )
        threshold = deterministic_threshold(D, superphase)
        depth = deterministic_radius_bound(superphase) + 1
        cluster_counts.append(
            sum(network.apply_programs(_cluster_count))
        )
        network.apply_programs(_begin_superphase, threshold)
        sp = f"sp{superphase}"
        run_phase(f"{sp}.exchange", "exchange", 2)
        run_phase(f"{sp}.survey", "survey", depth + threshold + 4)
        network.apply_programs(_conclude_survey)

        iterations = 0
        while sum(network.apply_programs(_undecided_high_count)) > 0:
            iterations += 1
            if iterations > n + 2:
                if lossy:
                    degraded = True
                    break
                raise RuntimeError(
                    "ruling loop failed to converge "
                    f"(n={n}, D={D}, superphase={superphase})"
                )
            it = f"{sp}.rule{iterations}"
            for src_kind, dst_kind in (
                ("st1", "m1"),
                ("m1", "m2"),
                ("ctr", "ctr"),
                ("d1", "d1"),
            ):
                run_phase(f"{it}.{dst_kind}.down", "r_down",
                          depth + 2, kind=src_kind)
                run_phase(f"{it}.{dst_kind}.x", "r_x", 2)
                run_phase(f"{it}.{dst_kind}.up", "r_up",
                          depth + 2, kind=dst_kind)
        ruling_iterations.append(iterations)

        run_phase(f"{sp}.fin.down", "r_down", depth + 2, kind="fin")
        for wave in (1, 2):
            run_phase(f"{sp}.res_x{wave}", "res_x", 2, wave=wave)
            run_phase(f"{sp}.res_up{wave}", "res_up",
                      depth + 3, wave=wave)
            run_phase(f"{sp}.res_join{wave}", "res_join",
                      2 * depth + 5, wave=wave)
        run_phase(f"{sp}.res_death", "res_death",
                  depth + threshold + 4)

        tally = (0, 0, 0, 0)
        for shard_tally in network.apply_programs(_superphase_tallies):
            tally = tuple(
                a + b for a, b in zip(tally, shard_tally)
            )  # type: ignore[assignment]
        tallies.append(tally)
        network.apply_programs(_finalize_superphase)
        superphase += 1

    edges: Set[Edge] = set()
    for shard_edges in network.apply_programs(_spanner_edges):
        edges |= shard_edges
    metadata = {
        "algorithm": "elkin-matar-deterministic",
        "D": D,
        "reliable": reliable,
        "degraded": degraded,
        "network_stats": network.stats,
        "budgeted_rounds": budgeted_rounds,
        "superphases": superphase,
        "cluster_counts": cluster_counts,
        "ruling_iterations": ruling_iterations,
        "superphase_tallies": tallies,
    }
    return Spanner(graph, edges, metadata)
