"""Sharded round engine: the simulator across worker processes.

The single-process engine (:class:`~repro.distributed.simulator.Network`)
iterates every node in one Python interpreter, which caps realistic
workloads near n = 10^3.  :class:`ShardedNetwork` partitions
``graph.vertices()`` into contiguous vertex-range shards, runs each
shard's :class:`~repro.distributed.simulator.NodeProgram` set in a
persistent worker process, and at each round barrier ships only the
cross-shard ``(src, dst, payload)`` triples between workers — intra-shard
messages never leave their worker.

The engine is an *equivalence-preserving* optimization, the same
discipline the clean/general loop split followed (PR 4): for every
protocol, every shard count must produce byte-identical outputs,
identical :class:`~repro.distributed.simulator.NetworkStats` and — with
a tracer attached — byte-identical ``repro trace`` JSONL versus the
single-process engine (pinned by ``tests/test_sharded_equivalence.py``).
Three structural facts make that possible:

* **Contiguous ranges preserve inbox order.**  The clean path's inbox
  buckets are src-sorted because senders are iterated in ascending
  vertex order.  With shards covering contiguous ascending vertex
  ranges, concatenating per-shard boundary output in shard order is
  *also* globally src-ascending, so a worker rebuilds each inbox as
  ``remote(src < lo) + local + remote(src > hi)`` without sorting.
* **Accounting is per-sender.**  Every (edge, round, direction) slot is
  charged where it is collected — by the sending shard — so summing the
  per-shard counters (and maxing the widths) reproduces the global
  numbers exactly.  The worker engine literally *inherits*
  ``Network._collect_outboxes``, so the charged words are computed by
  the same code.
* **Events merge in shard order.**  Within a round, the single-process
  event order is ``round``, halts (ascending node), sends (ascending
  src).  Workers log their halt/send events locally (payloads are
  fingerprinted worker-side — the CRC the trace stores — so payload
  objects never cross back); the coordinator replays halts then sends
  in shard order, reproducing the global order.

Workers are **persistent** (spawn context, long-lived), pooled per
shard count and reused across :class:`ShardedNetwork` instances — a
multi-phase protocol like the Fibonacci spanner builds dozens of
networks per run, and respawning interpreters per phase would dominate.
A ``load`` command swaps the worker-resident network state; a network
superseded by a newer ``load`` refuses further use loudly.

Restrictions: the sharded engine covers the clean configuration the
benchmarks measure — no fault plan, no reliable-delivery adapter, no
``strict`` width enforcement (``build_network`` raises ``ValueError``
for those combinations).  Hosts are treated as immutable while sharded
networks over them exist (every protocol here satisfies this).

See ``docs/performance.md`` ("Sharded round engine") for the cost
model: boundary cut sizes per zoo family, the per-round barrier cost,
and when one shard still wins.
"""

from __future__ import annotations

import atexit
import multiprocessing
import traceback
from bisect import bisect_right
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.distributed.simulator import (
    Api,
    Network,
    NetworkStats,
    NodeProgram,
    ProtocolError,
)
from repro.graphs.graph import Graph
from repro.obs.trace import payload_fingerprint
from repro.util.words import WordCounter

__all__ = [
    "ShardedNetwork",
    "boundary_edges",
    "shard_ranges",
    "shutdown_workers",
]

#: one cross-shard message in transit: ``(src, dst, payload)``.
_Triple = Tuple[int, int, Any]

#: cumulative per-worker accounting, reported at every barrier:
#: ``(messages, total_words, max_message_words, violations,
#: halted_count, has_local_pending)``.
_Report = Tuple[int, int, int, int, int, bool]

#: worker-side event record: ``("halt", r, node)`` or
#: ``("send", r, src, dst, words, fingerprint)``.
_Event = Tuple[Any, ...]

_RoundResult = Tuple[List[_Triple], _Report, List[_Event]]


def shard_ranges(order: Sequence[int], shards: int) -> List[Tuple[int, int]]:
    """Split a sorted vertex sequence into ``shards`` contiguous ranges.

    Returns ``(start_index, end_index)`` slice bounds per shard, sizes
    differing by at most one.  ``shards`` is clamped to ``len(order)``
    so no shard is ever empty (and to 1 from below).
    """
    n = len(order)
    shards = max(1, min(shards, max(1, n)))
    bounds = [(k * n) // shards for k in range(shards + 1)]
    return [(bounds[k], bounds[k + 1]) for k in range(shards)]


def boundary_edges(graph: Graph, shards: int) -> int:
    """Count the edges crossing shard boundaries at a given shard count.

    The sharding cost model's first-order term: every cross-shard edge
    can carry up to two boundary messages per round (one per
    direction), so this cut size bounds the per-round coordinator
    traffic (see ``docs/performance.md``).
    """
    order = sorted(graph.vertices())
    ranges = shard_ranges(order, shards)
    starts = [order[lo] for lo, _ in ranges]
    cut = 0
    for u, v in graph.edges():
        if bisect_right(starts, u) != bisect_right(starts, v):
            cut += 1
    return cut


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _EventLog:
    """Worker-side stand-in for :class:`repro.obs.trace.Obs`.

    The shard engine's inherited send path and :meth:`Api.halt` call
    ``obs.on_send`` / ``obs.on_halt``; this shim records them (payloads
    reduced to the trace's CRC-32 fingerprint immediately, so payload
    objects never travel back over the pipe) for the coordinator to
    merge into the real observer in shard order.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[_Event] = []

    def on_send(
        self, round_no: int, src: int, dst: int, words: int, payloads: Any
    ) -> None:
        self.events.append(
            ("send", round_no, src, dst, words, payload_fingerprint(payloads))
        )

    def on_halt(self, round_no: int, node: int) -> None:
        self.events.append(("halt", round_no, node))

    def drain(self) -> List[_Event]:
        events, self.events = self.events, []
        return events


class _ShardEngine(Network):
    """One shard's slice of the network, living inside a worker process.

    A :class:`Network` whose ``programs``/``_pairs`` cover only a
    contiguous vertex range of the (full, shared) graph.  It deliberately
    skips ``Network.__init__`` — the base constructor demands programs
    for *every* vertex — but builds the identical hot-path state, so the
    inherited ``_collect_outboxes`` / ``_active_pairs`` /
    ``sorted_neighbors`` run unchanged: the sharded engine charges words
    with the same code the single-process engine does.  The coordinator
    drives it via :func:`_do_setup` / :func:`_do_round` instead of
    ``run`` (the round loop lives coordinator-side, where the barrier
    is).
    """

    def __init__(
        self,
        graph: Graph,
        programs: Dict[int, NodeProgram],
        cap: Optional[int],
        obs: Optional[_EventLog],
    ) -> None:
        self.graph = graph
        self.programs = programs
        self.strict = False
        self.fault_plan = None
        self.stats = NetworkStats(cap=cap)
        self.obs = obs
        self.reliable_layer = False
        self.fault_log_limit = 256
        self._order = sorted(programs)
        self._sorted_nbrs = {
            v: sorted(graph.neighbors(v)) for v in self._order
        }
        self._apis = {v: Api(self, v) for v in self._order}
        self._pairs = [
            (v, self._apis[v], programs[v]) for v in self._order
        ]
        self._halted_count = 0
        self._active_dirty = True
        self._active = []
        self._words = WordCounter()
        self._pending = {}
        self._delayed = {}
        self._setup_done = False


def _split_and_report(
    engine: _ShardEngine, lo: int, hi: int
) -> _RoundResult:
    """Separate this round's collected sends into local and boundary.

    ``engine._pending`` (as left by the inherited collect) holds every
    send keyed by destination; destinations inside ``[lo, hi]`` — the
    shard's contiguous vertex range, so the interval test *is* the
    ownership test — stay local, the rest flatten into boundary triples
    re-sorted by source.  The sort is stable, so a sender's multiple
    payloads to one destination keep their order; cross-shard
    concatenation in shard order then restores the global ascending-src
    inbox invariant at the receiver.
    """
    pending = engine._pending
    local: Dict[int, List[Tuple[int, Any]]] = {}
    remote: List[_Triple] = []
    for dst, bucket in pending.items():
        if lo <= dst <= hi:
            local[dst] = bucket
        else:
            for src, payload in bucket:
                remote.append((src, dst, payload))
    remote.sort(key=lambda triple: triple[0])
    engine._pending = local
    stats = engine.stats
    report: _Report = (
        stats.messages,
        stats.total_words,
        stats.max_message_words,
        stats.violations,
        engine._halted_count,
        bool(local),
    )
    log = engine.obs
    events = log.drain() if isinstance(log, _EventLog) else []
    return remote, report, events


def _do_setup(engine: _ShardEngine, lo: int, hi: int) -> _RoundResult:
    """Run every local program's ``setup`` and collect round-0 sends."""
    for _, api, program in engine._pairs:
        program.setup(api)
    engine._collect_outboxes()
    engine._setup_done = True
    return _split_and_report(engine, lo, hi)


def _do_round(
    engine: _ShardEngine,
    lo: int,
    hi: int,
    round_no: int,
    inbound: List[_Triple],
) -> _RoundResult:
    """Execute one global round over the shard's active nodes.

    ``inbound`` arrives in globally ascending source order (shards are
    contiguous ranges, concatenated in shard order by the coordinator);
    splitting it at the local range rebuilds every inbox as
    ``pre + local + post`` — exactly the src-sorted bucket the
    single-process clean path hands to ``on_round``.
    """
    engine.stats.rounds = round_no  # halt events + collect charge here
    pre: Dict[int, List[Tuple[int, Any]]] = {}
    post: Dict[int, List[Tuple[int, Any]]] = {}
    for src, dst, payload in inbound:
        side = pre if src < lo else post
        bucket = side.get(dst)
        if bucket is None:
            side[dst] = [(src, payload)]
        else:
            bucket.append((src, payload))
    pending, engine._pending = engine._pending, {}
    get_pre = pre.get
    get_local = pending.get
    get_post = post.get
    for api, program in engine._active_pairs():
        v = api.node_id
        a = get_pre(v)
        b = get_local(v)
        c = get_post(v)
        if a is None and c is None:
            inbox = b if b is not None else []
        else:
            inbox = (a or []) + (b or []) + (c or [])
        program.on_round(api, round_no, inbox)
    engine._collect_outboxes()
    return _split_and_report(engine, lo, hi)


def _worker_main(conn: Any) -> None:
    """The long-lived worker loop: one command in, one reply out.

    Replies are ``("ok", value)`` or ``("err", exc_type, message,
    traceback_text)``; the coordinator re-raises.  ``load`` replaces the
    resident engine (``graph=None`` reuses the previously shipped
    graph — the coordinator only elides it for the identical, unmutated
    host object).
    """
    graph: Optional[Graph] = None
    engine: Optional[_ShardEngine] = None
    lo = hi = -1
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        cmd = msg[0]
        try:
            out: Any = None
            if cmd == "load":
                _, new_graph, programs, cap, record = msg
                if new_graph is not None:
                    graph = new_graph
                assert graph is not None, "load before any graph shipped"
                log = _EventLog() if record else None
                engine = _ShardEngine(graph, programs, cap, log)
                if engine._order:
                    lo, hi = engine._order[0], engine._order[-1]
                else:
                    lo = hi = -1
            elif cmd == "setup":
                assert engine is not None
                out = _do_setup(engine, lo, hi)
            elif cmd == "round":
                assert engine is not None
                _, round_no, inbound = msg
                out = _do_round(engine, lo, hi, round_no, inbound)
            elif cmd == "apply":
                assert engine is not None
                _, fn, args, kwargs = msg
                out = fn(engine.programs, *args, **kwargs)
            elif cmd == "exit":
                conn.send(("ok", None))
                return
            else:  # pragma: no cover - coordinator never sends others
                raise RuntimeError(f"unknown worker command {cmd!r}")
            conn.send(("ok", out))
        except BaseException as exc:  # noqa: BLE001 - shipped to parent
            conn.send(
                (
                    "err",
                    type(exc).__name__,
                    str(exc),
                    traceback.format_exc(),
                )
            )


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
class _WorkerPool:
    """A persistent set of ``shards`` spawn-context worker processes.

    Pooled per shard count and shared across :class:`ShardedNetwork`
    instances (multi-phase protocols build many networks per run; the
    interpreters persist, only ``load`` traffic repeats).  Workers are
    daemonic and additionally shut down via ``atexit``.  ``load`` bumps
    a generation counter; networks hold the generation they loaded and
    any command from a superseded generation raises — using a stale
    network cannot silently touch another network's programs.
    """

    _pools: Dict[int, "_WorkerPool"] = {}

    def __init__(self, shards: int) -> None:
        self.shards = shards
        self.generation = 0
        self._last_graph: Optional[Graph] = None
        self._last_shape: Tuple[int, int] = (-1, -1)
        context = multiprocessing.get_context("spawn")
        self._procs: List[Any] = []
        self._conns: List[Any] = []
        for _ in range(shards):
            parent_conn, child_conn = context.Pipe()
            proc = context.Process(
                target=_worker_main, args=(child_conn,), daemon=True
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

    @classmethod
    def get(cls, shards: int) -> "_WorkerPool":
        pool = cls._pools.get(shards)
        if pool is None or not pool.alive():
            if pool is not None:
                pool.shutdown()
            pool = cls(shards)
            cls._pools[shards] = pool
        return pool

    def alive(self) -> bool:
        return all(proc.is_alive() for proc in self._procs)

    def load(
        self,
        graph: Graph,
        slices: List[Dict[int, NodeProgram]],
        cap: Optional[int],
        record: bool,
    ) -> int:
        """Install a new network across the workers; returns its generation.

        The graph is elided when the *identical object* (identity pinned
        by the strong reference held here) with unchanged ``(n, m)`` was
        already shipped — the repeated-phases case.  Protocol hosts are
        immutable during a run, which is what makes the identity check
        sufficient.
        """
        self.generation += 1
        shape = (graph.n, graph.m)
        resident = (
            graph is self._last_graph and shape == self._last_shape
        )
        payload_graph = None if resident else graph
        for conn, programs in zip(self._conns, slices):
            conn.send(("load", payload_graph, programs, cap, record))
        self._gather()
        self._last_graph = graph
        self._last_shape = shape
        return self.generation

    def command_each(
        self, generation: int, messages: List[Tuple[Any, ...]]
    ) -> List[Any]:
        """Send one message per worker (in shard order) and gather replies."""
        if generation != self.generation:
            raise RuntimeError(
                "stale ShardedNetwork: a newer network has reloaded the "
                f"{self.shards}-shard worker pool"
            )
        for conn, message in zip(self._conns, messages):
            conn.send(message)
        return self._gather()

    def command_all(
        self, generation: int, message: Tuple[Any, ...]
    ) -> List[Any]:
        return self.command_each(generation, [message] * self.shards)

    def _gather(self) -> List[Any]:
        outs: List[Any] = []
        failure: Optional[Tuple[str, str, str]] = None
        for conn in self._conns:
            try:
                reply = conn.recv()
            except (EOFError, OSError):
                failure = ("WorkerDied", "shard worker exited", "")
                continue
            if reply[0] == "err":
                failure = (reply[1], reply[2], reply[3])
            else:
                outs.append(reply[1])
        if failure is not None:
            # The barrier is now inconsistent; retire the whole pool.
            self.shutdown()
            self._pools.pop(self.shards, None)
            exc_type, message, trace_text = failure
            if exc_type == "ProtocolError":
                raise ProtocolError(message)
            raise RuntimeError(
                f"shard worker failed with {exc_type}: {message}\n"
                f"{trace_text}"
            )
        return outs

    def shutdown(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("exit",))
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=2)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()


def shutdown_workers() -> None:
    """Terminate every pooled shard worker (idempotent; also at exit)."""
    for pool in list(_WorkerPool._pools.values()):
        pool.shutdown()
    _WorkerPool._pools.clear()


atexit.register(shutdown_workers)


class ShardedNetwork:
    """Drive one protocol network across a pool of shard workers.

    Mirrors the :class:`~repro.distributed.simulator.Network` surface
    the protocol runners use — ``run(max_rounds, stop_when_idle)``,
    ``stats``, ``in_flight``, ``graph``, ``apply_programs`` — with the
    node programs living in the worker processes.  There is deliberately
    no ``programs`` attribute: coordinator-side copies would be stale
    the moment ``run`` executes, so all program access goes through
    :meth:`apply_programs`.

    The run loop replicates ``Network._run_clean`` barrier-for-barrier:
    all-halted check at the top, round counter bump, deliver + execute +
    collect, idle check after the collect — with delivery and collection
    fanned out to the workers and only boundary triples, cumulative
    counters and (under a tracer) event logs crossing the pipes.
    """

    def __init__(
        self,
        graph: Graph,
        programs: Dict[int, NodeProgram],
        shards: int,
        max_message_words: Optional[int] = None,
        obs: Optional[Any] = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        order = sorted(graph.vertices())
        missing = sorted(set(order) - set(programs))
        if missing:
            raise ValueError(f"no program for vertices {missing[:5]}...")
        unknown = sorted(set(programs) - set(order))
        if unknown:
            raise ValueError(
                f"programs for vertices not in the graph: {unknown[:5]}"
            )
        self.graph = graph
        self.stats = NetworkStats(cap=max_message_words)
        self.obs = obs
        #: mirrored so ``obs.on_network`` records the same ``net`` event
        #: a clean single-process network would.
        self.reliable_layer = False
        self.fault_log_limit = 256
        ranges = shard_ranges(order, shards)
        self.shards = len(ranges)
        #: first vertex of each shard, for bisect routing of boundary dsts.
        self._starts = [order[lo] for lo, _ in ranges]
        slices = [
            {v: programs[v] for v in order[lo:hi]} for lo, hi in ranges
        ]
        self._pool = _WorkerPool.get(self.shards)
        self._generation = self._pool.load(
            graph, slices, max_message_words, obs is not None
        )
        self._reports: List[_Report] = [
            (0, 0, 0, 0, 0, False)
        ] * self.shards
        self._boundary: List[_Triple] = []
        self._setup_done = False
        if obs is not None:
            obs.on_network(self)

    # ------------------------------------------------------------------
    @property
    def all_halted(self) -> bool:
        return self._halted_total() == self.graph.n

    @property
    def in_flight(self) -> bool:
        """Whether any message (local to a shard or boundary) is in transit."""
        return bool(self._boundary) or any(
            report[5] for report in self._reports
        )

    def _halted_total(self) -> int:
        return sum(report[4] for report in self._reports)

    def apply_programs(
        self, fn: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> List[Any]:
        """Run ``fn(programs, *args, **kwargs)`` in every shard worker.

        The sharded implementation of the engine-agnostic program hook
        (see :meth:`Network.apply_programs`): returns one result per
        shard, in shard (= ascending vertex range) order.  ``fn``, its
        arguments and its result must be picklable.
        """
        return self._pool.command_all(
            self._generation, ("apply", fn, args, kwargs)
        )

    # ------------------------------------------------------------------
    def _route(self, boundary: List[_Triple]) -> List[List[_Triple]]:
        """Partition globally src-ordered triples by destination shard."""
        inbound: List[List[_Triple]] = [[] for _ in range(self.shards)]
        starts = self._starts
        for triple in boundary:
            inbound[bisect_right(starts, triple[1]) - 1].append(triple)
        return inbound

    def _absorb(self, outs: List[_RoundResult]) -> None:
        """Merge one barrier's worker results into coordinator state.

        Boundary lists concatenate in shard order (restoring global
        ascending-src order); counters are summed/maxed from the
        cumulative per-worker reports; halt events replay before send
        events, each in shard order — the single-process event order.
        """
        boundary: List[_Triple] = []
        logs: List[List[_Event]] = []
        for k, (remote, report, events) in enumerate(outs):
            self._reports[k] = report
            boundary.extend(remote)
            if events:
                logs.append(events)
        self._boundary = boundary
        reports = self._reports
        stats = self.stats
        stats.messages = sum(r[0] for r in reports)
        stats.total_words = sum(r[1] for r in reports)
        stats.max_message_words = max(r[2] for r in reports)
        stats.violations = sum(r[3] for r in reports)
        obs = self.obs
        if obs is not None and logs:
            for events in logs:
                for event in events:
                    if event[0] == "halt":
                        obs.on_halt(event[1], event[2])
            for events in logs:
                for event in events:
                    if event[0] == "send":
                        obs.on_send_fingerprint(
                            event[1], event[2], event[3], event[4], event[5]
                        )

    def run(
        self, max_rounds: int, stop_when_idle: bool = False
    ) -> NetworkStats:
        """Execute up to ``max_rounds`` rounds (early-stop rules as
        :meth:`Network.run`); callable repeatedly, state persists."""
        pool = self._pool
        if not self._setup_done:
            self._absorb(pool.command_all(self._generation, ("setup",)))
            self._setup_done = True
        stats = self.stats
        total = self.graph.n
        obs = self.obs
        for _ in range(max_rounds):
            if self._halted_total() == total:
                break
            stats.rounds += 1
            round_no = stats.rounds
            if obs is not None:
                obs.on_round(round_no)
            inbound = self._route(self._boundary)
            self._boundary = []
            self._absorb(
                pool.command_each(
                    self._generation,
                    [
                        ("round", round_no, inbound[k])
                        for k in range(self.shards)
                    ],
                )
            )
            if stop_when_idle and not self.in_flight:
                break
        return stats
