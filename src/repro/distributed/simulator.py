"""Synchronous distributed network simulator.

The model is the paper's (Sect. 1.1): the communication network *is* the
input graph; each vertex holds a processor with a unique O(log n)-bit
identifier; computation proceeds in synchronized rounds in which each
processor may send one message to each neighbor; local computation is
free.  Algorithms are separated by their **maximum message length**,
measured in units of O(log n) bits ("words") — the axis between Peleg's
LOCAL (unbounded) and CONGEST (unit) models.

The simulator delivers messages at round boundaries, charges every
(edge, round, direction) slot by the word count of what it carried
(multiple ``send`` calls to the same neighbor in one round are merged
into one message whose width is the sum), and records round, message and
width statistics.  A cap can be enforced (``strict=True`` raises
:class:`ProtocolError`) or merely audited (violations counted) — the
latter is how benches *observe* a protocol's message-length requirement.

Hot path (see ``docs/performance.md``): the vertex order and per-node
sorted neighbor lists are computed once at construction; halted nodes
are skipped via an incrementally maintained active list rather than
scanned; payload word counts are memoized
(:class:`repro.util.words.WordCounter`); and because senders are
collected in ascending vertex order, each inbox bucket is *already*
src-sorted on the clean path, so the per-node ``sorted()`` call is paid
only when a fault plan can perturb delivery order.  ``run()`` dispatches
to a specialized inner loop when ``fault_plan is None and obs is None``
— the configuration every benchmark measures — so clean runs pay zero
per-message branching for faults or observability.  The optimized and
generic loops are pinned identical by ``tests/test_engine_equivalence
.py`` and the byte-identical trace oracle of ``repro trace diff``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.distributed.faults import (
    CRASH_DROP,
    DELAY,
    DROP,
    DUPLICATE,
    REORDER,
    FaultEvent,
    FaultPlan,
)
from repro.graphs.graph import Graph
from repro.util.words import WordCounter


class ProtocolError(RuntimeError):
    """A node violated the communication model (bad dst, width cap, ...)."""


@dataclass
class NetworkStats:
    """Round/message/width accounting for one or more protocol runs."""

    rounds: int = 0
    #: per-(edge, round, direction) messages actually delivered.
    messages: int = 0
    total_words: int = 0
    #: widest single (edge, round, direction) slot observed.
    max_message_words: int = 0
    cap: Optional[int] = None
    violations: int = 0
    #: fault-injection accounting (all zero on a clean network).
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    reordered: int = 0
    #: reliable-delivery layer accounting (zero without the adapter).
    retransmissions: int = 0
    dead_links: int = 0
    #: injected events, in order (truncated at the plan's log limit).
    fault_events: List[FaultEvent] = field(default_factory=list)
    #: events the bounded log refused (counters above stay exact; attach
    #: a :class:`repro.obs.trace.TraceRecorder` for full event fidelity).
    fault_events_dropped: int = 0

    def observe(self, words: int) -> None:
        self.messages += 1
        self.total_words += words
        if words > self.max_message_words:
            self.max_message_words = words
        if self.cap is not None and words > self.cap:
            self.violations += 1

    def record_fault(self, event: FaultEvent, limit: int = 256) -> None:
        """Append to the event log, or count the drop once it is full.

        The in-memory log is bounded so unbounded chaos runs cannot grow
        memory without limit; ``fault_events_dropped`` says how much of
        the history is missing."""
        if len(self.fault_events) < limit:
            self.fault_events.append(event)
        else:
            self.fault_events_dropped += 1

    @property
    def faults_injected(self) -> int:
        """Total messages perturbed by the fault plan."""
        return self.dropped + self.duplicated + self.delayed + self.reordered

    def merged_with(
        self, other: "NetworkStats", limit: int = 512
    ) -> "NetworkStats":
        """Combine stats from sequential protocol phases.

        ``limit`` bounds the merged in-memory fault-event log the same
        way :meth:`record_fault`'s limit bounds a single run's log —
        callers that configured a non-default ``FaultPlan.
        max_logged_events`` thread it here so a multi-phase merge honors
        the same cap.  ``fault_events_dropped`` stays exact either way:
        every event not retained is counted.
        """
        if limit < 0:
            raise ValueError(f"limit must be >= 0, got {limit}")
        caps = [c for c in (self.cap, other.cap) if c is not None]
        merged_events = self.fault_events + other.fault_events
        overflow = max(0, len(merged_events) - limit)
        return NetworkStats(
            rounds=self.rounds + other.rounds,
            messages=self.messages + other.messages,
            total_words=self.total_words + other.total_words,
            max_message_words=max(
                self.max_message_words, other.max_message_words
            ),
            cap=min(caps) if caps else None,
            violations=self.violations + other.violations,
            dropped=self.dropped + other.dropped,
            duplicated=self.duplicated + other.duplicated,
            delayed=self.delayed + other.delayed,
            reordered=self.reordered + other.reordered,
            retransmissions=self.retransmissions + other.retransmissions,
            dead_links=self.dead_links + other.dead_links,
            fault_events=merged_events[:limit],
            fault_events_dropped=(
                self.fault_events_dropped
                + other.fault_events_dropped
                + overflow
            ),
        )

    def __str__(self) -> str:
        text = (
            f"rounds={self.rounds} messages={self.messages} "
            f"max_words={self.max_message_words}"
            + (f" cap={self.cap} violations={self.violations}"
               if self.cap is not None else "")
        )
        if self.faults_injected:
            text += (
                f" dropped={self.dropped} duplicated={self.duplicated}"
                f" delayed={self.delayed} reordered={self.reordered}"
            )
        if self.retransmissions or self.dead_links:
            text += (
                f" retransmissions={self.retransmissions}"
                f" dead_links={self.dead_links}"
            )
        return text


class Api:
    """Per-node handle passed into the node program each round."""

    __slots__ = (
        "_network", "node_id", "_outbox", "_halted", "_nbrs", "_nbr_set"
    )

    def __init__(self, network: "Network", node_id: int) -> None:
        self._network = network
        self.node_id = node_id
        self._outbox: List[Tuple[int, Any]] = []
        self._halted = False
        #: cached at construction: the sorted neighbor list (delivery
        #: determinism) and the adjacency set (O(1) send validation).
        self._nbrs = network.sorted_neighbors(node_id)
        self._nbr_set = network.graph.neighbors(node_id)

    @property
    def neighbors(self) -> List[int]:
        """This node's neighbor identifiers (sorted, deterministic)."""
        return self._nbrs

    @property
    def n(self) -> int:
        """The network size n (known to all processors in the model)."""
        return self._network.graph.n

    def send(self, dst: int, payload: Any) -> None:
        """Queue ``payload`` for delivery to neighbor ``dst`` next round."""
        if dst not in self._nbr_set:
            raise ProtocolError(
                f"node {self.node_id} tried to message non-neighbor {dst}"
            )
        self._outbox.append((dst, payload))

    def broadcast(self, payload: Any) -> None:
        """Send ``payload`` to every neighbor.

        The recipients come from the cached neighbor list, so no
        per-edge membership validation is re-done (every entry is a
        neighbor by construction); a direct ``send`` still validates.
        """
        self._outbox += [(u, payload) for u in self._nbrs]

    def halt(self) -> None:
        """Stop participating; the node receives no further rounds."""
        if not self._halted:
            self._halted = True
            network = self._network
            network._halted_count += 1
            network._active_dirty = True
            if network.obs is not None:
                network.obs.on_halt(network.stats.rounds, self.node_id)


class NodeProgram:
    """Base class for per-node protocol logic.

    ``setup`` runs before round 1 (it may send); ``on_round`` runs every
    round with the messages delivered this round as ``inbox`` — a list of
    ``(src, payload)`` pairs in deterministic (src-sorted) order.
    """

    def setup(self, api: Api) -> None:  # pragma: no cover - default no-op
        pass

    def on_round(
        self, api: Api, round_index: int, inbox: List[Tuple[int, Any]]
    ) -> None:
        raise NotImplementedError

    def on_amnesia_recover(self, api: Api, round_index: int) -> None:
        """Hook fired when this node recovers from an amnesia-crash.

        Called once, at the recovery round, *before* that round's
        ``on_round``.  Implementations must discard volatile state and
        may send (e.g. a repair-handshake solicitation); the default is
        a no-op, which degrades amnesia to fail-pause for programs that
        predate the hook (see ``CrashSpec.amnesia``).
        """
        # pragma: no cover - default no-op


class Network:
    """A synchronous network: one :class:`NodeProgram` per graph vertex."""

    def __init__(
        self,
        graph: Graph,
        programs: Optional[Dict[int, NodeProgram]] = None,
        program_factory: Optional[Callable[[int], NodeProgram]] = None,
        max_message_words: Optional[int] = None,
        strict: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        obs: Optional[Any] = None,
        reliable_layer: bool = False,
    ) -> None:
        if (programs is None) == (program_factory is None):
            raise ValueError(
                "provide exactly one of programs / program_factory"
            )
        self.graph = graph
        if programs is None:
            assert program_factory is not None  # by the check above
            programs = {v: program_factory(v) for v in graph.vertices()}
        vertex_set = set(graph.vertices())
        missing = sorted(vertex_set - set(programs))
        if missing:
            raise ValueError(f"no program for vertices {missing[:5]}...")
        unknown = sorted(set(programs) - vertex_set)
        if unknown:
            raise ValueError(
                f"programs for vertices not in the graph: {unknown[:5]}"
            )
        self.programs = programs
        self.strict = strict
        self.fault_plan = fault_plan
        self.stats = NetworkStats(cap=max_message_words)
        #: observability bundle (:class:`repro.obs.trace.Obs`) or None.
        #: Every hot-path hook hides behind one ``is not None`` check so
        #: an unobserved run pays nothing (benchmark E21).
        self.obs = obs
        #: whether this network carries a reliable-delivery layer on
        #: top (recorded in traces; set by ``ReliableNetwork``).
        self.reliable_layer = reliable_layer
        #: bound on the in-memory fault event log of ``stats``.
        self.fault_log_limit = (
            fault_plan.max_logged_events if fault_plan is not None else 256
        )
        #: hot-path state, computed once: ascending vertex order and the
        #: per-node sorted neighbor lists (never re-sorted per round).
        self._order: List[int] = sorted(graph.vertices())
        self._sorted_nbrs: Dict[int, List[int]] = {
            v: sorted(graph.neighbors(v)) for v in self._order
        }
        self._apis = {v: Api(self, v) for v in self._order}
        #: (vertex, api, program) triples in delivery order — the round
        #: loop and outbox collection iterate this instead of re-sorting
        #: the api dict every round.
        self._pairs: List[Tuple[int, Api, NodeProgram]] = [
            (v, self._apis[v], self.programs[v]) for v in self._order
        ]
        #: halt bookkeeping: ``all_halted`` is an O(1) counter check and
        #: the active list is rebuilt lazily (only on halt transitions)
        #: so halted nodes are skipped, not scanned, every round.
        self._halted_count = 0
        self._active_dirty = True
        self._active: List[Tuple[Api, NodeProgram]] = []
        #: memoized payload word counts (payload structure -> words).
        self._words = WordCounter()
        #: messages in flight: dst -> list of (src, payload).
        self._pending: Dict[int, List[Tuple[int, Any]]] = {}
        #: fault-delayed messages: delivery round -> [(dst, src, payload)].
        self._delayed: Dict[int, List[Tuple[int, int, Any]]] = {}
        self._setup_done = False
        if obs is not None:
            obs.on_network(self)

    def _record_fault(self, event: FaultEvent) -> None:
        """Fault accounting chokepoint: bounded in-memory log + trace."""
        self.stats.record_fault(event, self.fault_log_limit)
        if self.obs is not None:
            self.obs.on_fault(event)

    def sorted_neighbors(self, v: int) -> List[int]:
        return self._sorted_nbrs[v]

    def apply_programs(
        self, fn: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> List[Any]:
        """Run ``fn(programs, *args, **kwargs)`` over the node programs.

        The engine-agnostic program-access hook: protocol runners that
        poke per-node state between ``run`` calls (phase configuration,
        liveness counts, final edge collection) go through this instead
        of touching a programs dict directly, so the same driver code
        works when the programs live in another process.  Returns one
        result per partition — a single-element list here, one element
        per shard on :class:`repro.distributed.sharded.ShardedNetwork`
        (where ``fn`` and its arguments must be picklable).
        """
        return [fn(self.programs, *args, **kwargs)]

    def _active_pairs(self) -> List[Tuple[Api, NodeProgram]]:
        """(api, program) pairs of unhalted nodes, in vertex order.

        Rebuilt only when a node halts; nodes halting *during* a round
        keep their position until the next rebuild (a node only ever
        halts itself, so the running round's iteration is unaffected).
        """
        if self._active_dirty:
            self._active = [
                (api, program)
                for _, api, program in self._pairs
                if not api._halted
            ]
            self._active_dirty = False
        return self._active

    @property
    def all_halted(self) -> bool:
        return self._halted_count == len(self._apis)

    @property
    def in_flight(self) -> bool:
        """Whether any message (pending or fault-delayed) is in transit."""
        return bool(self._pending) or bool(self._delayed)

    def _collect_outboxes(self) -> None:
        """Merge this round's sends into next round's inboxes + account.

        Senders are iterated in ascending vertex order, so every inbox
        bucket comes out already sorted by source — the invariant that
        lets the clean delivery path skip per-node inbox sorting.

        Under ``strict`` a first pass validates every slot against the
        cap *before* anything is counted or queued, so a
        :class:`ProtocolError` leaves stats, outboxes and in-flight
        messages exactly as they were.  The non-strict path (every
        benchmark and protocol run) is a single pass with locally
        accumulated counters.
        """
        stats = self.stats
        obs = self.obs
        words_of = self._words
        cap = stats.cap
        send_round = stats.rounds
        next_pending: Dict[int, List[Tuple[int, Any]]] = {}
        if self.strict and cap is not None:
            staged: List[Tuple[int, int, List[Any], int]] = []
            for v, api, _ in self._pairs:
                if not api._outbox:
                    continue
                per_dst: Dict[int, List[Any]] = {}
                for dst, payload in api._outbox:
                    per_dst.setdefault(dst, []).append(payload)
                for dst, payloads in per_dst.items():
                    words = 0
                    for payload in payloads:
                        words += words_of(payload)
                    if words > cap:
                        raise ProtocolError(
                            f"node {v} sent {words} words to {dst}, "
                            f"cap is {cap}"
                        )
                    staged.append((v, dst, payloads, words))
            for v, dst, payloads, words in staged:
                stats.observe(words)
                if obs is not None:
                    obs.on_send(send_round, v, dst, words, payloads)
                bucket = next_pending.setdefault(dst, [])
                for payload in payloads:
                    bucket.append((v, payload))
            for _, api, _ in self._pairs:
                api._outbox = []
            self._pending = next_pending
            return
        messages = 0
        total_words = 0
        max_words = stats.max_message_words
        violations = 0
        words_cache = words_of._cache
        for v, api, _ in self._pairs:
            outbox = api._outbox
            if not outbox:
                continue
            api._outbox = []
            if len({dst for dst, _ in outbox}) == len(outbox):
                # No two sends share a destination (the overwhelmingly
                # common case): each outbox entry is its own slot — no
                # per-destination dict-of-lists to build and unwind.
                for dst, payload in outbox:
                    try:
                        words = words_cache[payload]
                    except (KeyError, TypeError):
                        words = words_of(payload)
                    messages += 1
                    total_words += words
                    if words > max_words:
                        max_words = words
                    if cap is not None and words > cap:
                        violations += 1
                    if obs is not None:
                        obs.on_send(send_round, v, dst, words, [payload])
                    bucket = next_pending.get(dst)
                    if bucket is None:
                        bucket = next_pending[dst] = []
                    bucket.append((v, payload))
                continue
            per_dst = {}
            for dst, payload in outbox:
                bucket_p = per_dst.get(dst)
                if bucket_p is None:
                    per_dst[dst] = [payload]
                else:
                    bucket_p.append(payload)
            for dst, payloads in per_dst.items():
                words = 0
                for payload in payloads:
                    words += words_of(payload)
                messages += 1
                total_words += words
                if words > max_words:
                    max_words = words
                if cap is not None and words > cap:
                    violations += 1
                if obs is not None:
                    obs.on_send(send_round, v, dst, words, payloads)
                bucket = next_pending.get(dst)
                if bucket is None:
                    bucket = next_pending[dst] = []
                for payload in payloads:
                    bucket.append((v, payload))
        stats.messages += messages
        stats.total_words += total_words
        stats.max_message_words = max_words
        stats.violations += violations
        self._pending = next_pending

    def _apply_faults(
        self, round_no: int, pending: Dict[int, List[Tuple[int, Any]]]
    ) -> Dict[int, List[Tuple[int, Any]]]:
        """Consult the fault plan for every delivery due this round."""
        plan = self.fault_plan
        if plan is None:  # callers gate on fault_plan; keep mypy honest
            return pending
        stats = self.stats
        for event in plan.transitions(round_no):
            self._record_fault(event)
        delivered: Dict[int, List[Tuple[int, Any]]] = {}
        for dst in sorted(pending):
            msgs = pending[dst]
            if plan.is_crashed(dst, round_no):
                stats.dropped += len(msgs)
                self._record_fault(
                    FaultEvent(CRASH_DROP, round_no, dst=dst,
                               info=len(msgs))
                )
                continue
            bucket: List[Tuple[int, Any]] = []
            for slot, (src, payload) in enumerate(msgs):
                kind, info = plan.decide(round_no, src, dst, slot)
                if kind == DROP:
                    stats.dropped += 1
                    self._record_fault(FaultEvent(DROP, round_no, src, dst))
                elif kind == DUPLICATE:
                    stats.duplicated += 1
                    self._record_fault(
                        FaultEvent(DUPLICATE, round_no, src, dst)
                    )
                    bucket.append((src, payload))
                    bucket.append((src, payload))
                elif kind == DELAY:
                    stats.delayed += 1
                    self._record_fault(
                        FaultEvent(DELAY, round_no, src, dst, info=info)
                    )
                    self._delayed.setdefault(round_no + info, []).append(
                        (dst, src, payload)
                    )
                else:
                    bucket.append((src, payload))
            if bucket:
                delivered[dst] = bucket
        # Fault-delayed messages due now join the inboxes directly (their
        # fate was already decided when they were first due).
        for dst, src, payload in self._delayed.pop(round_no, ()):
            if plan.is_crashed(dst, round_no):
                stats.dropped += 1
                self._record_fault(
                    FaultEvent(CRASH_DROP, round_no, src, dst)
                )
                continue
            delivered.setdefault(dst, []).append((src, payload))
        return delivered

    def run(
        self, max_rounds: int, stop_when_idle: bool = False
    ) -> NetworkStats:
        """Execute up to ``max_rounds`` rounds (stops early if all halt).

        Can be called repeatedly; in-flight messages and node state
        persist, so multi-phase protocols may interleave local
        re-configuration between ``run`` calls.  ``stop_when_idle``
        short-circuits once no messages are in flight — a simulation
        speed-up for phases whose synchronous budget far exceeds the
        actual traffic (the budget is reported separately by callers).

        Dispatches to a specialized inner loop when neither fault
        injection nor observability is attached — the clean benchmark
        configuration pays no per-round fault/obs branching.  Both loops
        are pinned to identical :class:`NetworkStats` and protocol
        outputs by ``tests/test_engine_equivalence.py``.
        """
        if self.fault_plan is None and self.obs is None:
            return self._run_clean(max_rounds, stop_when_idle)
        return self._run_general(max_rounds, stop_when_idle)

    def _run_clean(
        self, max_rounds: int, stop_when_idle: bool
    ) -> NetworkStats:
        """The fault-free, unobserved inner loop (the hot path).

        Inboxes are handed to programs exactly as collected: buckets are
        built by iterating senders in ascending vertex order, so each is
        already src-sorted and no per-node ``sorted()`` is needed.
        """
        if not self._setup_done:
            for _, api, program in self._pairs:
                program.setup(api)
            self._collect_outboxes()
            self._setup_done = True
        stats = self.stats
        total = len(self._apis)
        for _ in range(max_rounds):
            if self._halted_count == total:
                break
            stats.rounds += 1
            round_no = stats.rounds
            pending, self._pending = self._pending, {}
            get_inbox = pending.get
            for api, program in self._active_pairs():
                inbox = get_inbox(api.node_id)
                program.on_round(
                    api, round_no, inbox if inbox is not None else []
                )
            self._collect_outboxes()
            if stop_when_idle and not self._pending and not self._delayed:
                break
        return stats

    def _run_general(
        self, max_rounds: int, stop_when_idle: bool
    ) -> NetworkStats:
        """The full inner loop: fault injection and/or observability.

        Inbox buckets leave ``_collect_outboxes`` src-sorted; only a
        fault plan can perturb that (delayed arrivals are appended after
        their bucket), so the re-sort is paid exactly when a plan is
        attached — and the stable sort makes the merged order identical
        to the pre-optimization engine's unconditional sort.
        """
        plan = self.fault_plan
        obs = self.obs
        if not self._setup_done:
            for v, api, program in self._pairs:
                if plan is not None and plan.is_crashed(v, 0):
                    continue
                program.setup(api)
            self._collect_outboxes()
            self._setup_done = True
        stats = self.stats
        total = len(self._apis)
        for _ in range(max_rounds):
            if self._halted_count == total:
                break
            stats.rounds += 1
            round_no = stats.rounds
            if obs is not None:
                obs.on_round(round_no)
            pending, self._pending = self._pending, {}
            if plan is not None:
                pending = self._apply_faults(round_no, pending)
                # Amnesia recoveries fire before the round's on_round:
                # the node wipes volatile state (and may solicit a
                # repair handshake) before seeing any new messages.
                for v in plan.amnesia_recoveries(round_no):
                    api_v = self._apis[v]
                    if not api_v._halted:
                        self.programs[v].on_amnesia_recover(api_v, round_no)
            for api, program in self._active_pairs():
                v = api.node_id
                if plan is not None and plan.is_crashed(v, round_no):
                    continue
                raw = pending.get(v)
                if raw is None:
                    inbox: List[Tuple[int, Any]] = []
                else:
                    inbox = raw
                    if plan is not None:
                        inbox = sorted(inbox, key=lambda sp: sp[0])
                        perm = plan.reorder_permutation(
                            round_no, v, len(inbox)
                        )
                        if perm is not None:
                            inbox = [inbox[i] for i in perm]
                            stats.reordered += 1
                            self._record_fault(
                                FaultEvent(REORDER, round_no, dst=v,
                                           info=len(inbox))
                            )
                program.on_round(api, round_no, inbox)
            self._collect_outboxes()
            if stop_when_idle and not self.in_flight:
                break
        return self.stats
