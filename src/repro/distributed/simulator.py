"""Synchronous distributed network simulator.

The model is the paper's (Sect. 1.1): the communication network *is* the
input graph; each vertex holds a processor with a unique O(log n)-bit
identifier; computation proceeds in synchronized rounds in which each
processor may send one message to each neighbor; local computation is
free.  Algorithms are separated by their **maximum message length**,
measured in units of O(log n) bits ("words") — the axis between Peleg's
LOCAL (unbounded) and CONGEST (unit) models.

The simulator delivers messages at round boundaries, charges every
(edge, round, direction) slot by the word count of what it carried
(multiple ``send`` calls to the same neighbor in one round are merged
into one message whose width is the sum), and records round, message and
width statistics.  A cap can be enforced (``strict=True`` raises
:class:`ProtocolError`) or merely audited (violations counted) — the
latter is how benches *observe* a protocol's message-length requirement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.distributed.faults import (
    CRASH_DROP,
    DELAY,
    DROP,
    DUPLICATE,
    REORDER,
    FaultEvent,
    FaultPlan,
)
from repro.graphs.graph import Graph
from repro.util.words import message_words


class ProtocolError(RuntimeError):
    """A node violated the communication model (bad dst, width cap, ...)."""


@dataclass
class NetworkStats:
    """Round/message/width accounting for one or more protocol runs."""

    rounds: int = 0
    #: per-(edge, round, direction) messages actually delivered.
    messages: int = 0
    total_words: int = 0
    #: widest single (edge, round, direction) slot observed.
    max_message_words: int = 0
    cap: Optional[int] = None
    violations: int = 0
    #: fault-injection accounting (all zero on a clean network).
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    reordered: int = 0
    #: reliable-delivery layer accounting (zero without the adapter).
    retransmissions: int = 0
    dead_links: int = 0
    #: injected events, in order (truncated at the plan's log limit).
    fault_events: List[FaultEvent] = field(default_factory=list)
    #: events the bounded log refused (counters above stay exact; attach
    #: a :class:`repro.obs.trace.TraceRecorder` for full event fidelity).
    fault_events_dropped: int = 0

    def observe(self, words: int) -> None:
        self.messages += 1
        self.total_words += words
        if words > self.max_message_words:
            self.max_message_words = words
        if self.cap is not None and words > self.cap:
            self.violations += 1

    def record_fault(self, event: FaultEvent, limit: int = 256) -> None:
        """Append to the event log, or count the drop once it is full.

        The in-memory log is bounded so unbounded chaos runs cannot grow
        memory without limit; ``fault_events_dropped`` says how much of
        the history is missing."""
        if len(self.fault_events) < limit:
            self.fault_events.append(event)
        else:
            self.fault_events_dropped += 1

    @property
    def faults_injected(self) -> int:
        """Total messages perturbed by the fault plan."""
        return self.dropped + self.duplicated + self.delayed + self.reordered

    def merged_with(self, other: "NetworkStats") -> "NetworkStats":
        """Combine stats from sequential protocol phases."""
        caps = [c for c in (self.cap, other.cap) if c is not None]
        merged_events = self.fault_events + other.fault_events
        overflow = max(0, len(merged_events) - 512)
        return NetworkStats(
            rounds=self.rounds + other.rounds,
            messages=self.messages + other.messages,
            total_words=self.total_words + other.total_words,
            max_message_words=max(
                self.max_message_words, other.max_message_words
            ),
            cap=min(caps) if caps else None,
            violations=self.violations + other.violations,
            dropped=self.dropped + other.dropped,
            duplicated=self.duplicated + other.duplicated,
            delayed=self.delayed + other.delayed,
            reordered=self.reordered + other.reordered,
            retransmissions=self.retransmissions + other.retransmissions,
            dead_links=self.dead_links + other.dead_links,
            fault_events=merged_events[:512],
            fault_events_dropped=(
                self.fault_events_dropped
                + other.fault_events_dropped
                + overflow
            ),
        )

    def __str__(self) -> str:
        text = (
            f"rounds={self.rounds} messages={self.messages} "
            f"max_words={self.max_message_words}"
            + (f" cap={self.cap} violations={self.violations}"
               if self.cap is not None else "")
        )
        if self.faults_injected:
            text += (
                f" dropped={self.dropped} duplicated={self.duplicated}"
                f" delayed={self.delayed} reordered={self.reordered}"
            )
        if self.retransmissions or self.dead_links:
            text += (
                f" retransmissions={self.retransmissions}"
                f" dead_links={self.dead_links}"
            )
        return text


class Api:
    """Per-node handle passed into the node program each round."""

    __slots__ = ("_network", "node_id", "_outbox", "_halted")

    def __init__(self, network: "Network", node_id: int) -> None:
        self._network = network
        self.node_id = node_id
        self._outbox: List[Tuple[int, Any]] = []
        self._halted = False

    @property
    def neighbors(self) -> Iterable[int]:
        """This node's neighbor identifiers (sorted, deterministic)."""
        return self._network.sorted_neighbors(self.node_id)

    @property
    def n(self) -> int:
        """The network size n (known to all processors in the model)."""
        return self._network.graph.n

    def send(self, dst: int, payload: Any) -> None:
        """Queue ``payload`` for delivery to neighbor ``dst`` next round."""
        if not self._network.graph.has_edge(self.node_id, dst):
            raise ProtocolError(
                f"node {self.node_id} tried to message non-neighbor {dst}"
            )
        self._outbox.append((dst, payload))

    def broadcast(self, payload: Any) -> None:
        """Send ``payload`` to every neighbor."""
        for u in self.neighbors:
            self.send(u, payload)

    def halt(self) -> None:
        """Stop participating; the node receives no further rounds."""
        if not self._halted:
            self._halted = True
            obs = self._network.obs
            if obs is not None:
                obs.on_halt(self._network.stats.rounds, self.node_id)


class NodeProgram:
    """Base class for per-node protocol logic.

    ``setup`` runs before round 1 (it may send); ``on_round`` runs every
    round with the messages delivered this round as ``inbox`` — a list of
    ``(src, payload)`` pairs in deterministic (src-sorted) order.
    """

    def setup(self, api: Api) -> None:  # pragma: no cover - default no-op
        pass

    def on_round(
        self, api: Api, round_index: int, inbox: List[Tuple[int, Any]]
    ) -> None:
        raise NotImplementedError


class Network:
    """A synchronous network: one :class:`NodeProgram` per graph vertex."""

    def __init__(
        self,
        graph: Graph,
        programs: Optional[Dict[int, NodeProgram]] = None,
        program_factory: Optional[Callable[[int], NodeProgram]] = None,
        max_message_words: Optional[int] = None,
        strict: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        obs: Optional[Any] = None,
        reliable_layer: bool = False,
    ) -> None:
        if (programs is None) == (program_factory is None):
            raise ValueError(
                "provide exactly one of programs / program_factory"
            )
        self.graph = graph
        if programs is None:
            assert program_factory is not None  # by the check above
            programs = {v: program_factory(v) for v in graph.vertices()}
        vertex_set = set(graph.vertices())
        missing = sorted(vertex_set - set(programs))
        if missing:
            raise ValueError(f"no program for vertices {missing[:5]}...")
        unknown = sorted(set(programs) - vertex_set)
        if unknown:
            raise ValueError(
                f"programs for vertices not in the graph: {unknown[:5]}"
            )
        self.programs = programs
        self.strict = strict
        self.fault_plan = fault_plan
        self.stats = NetworkStats(cap=max_message_words)
        #: observability bundle (:class:`repro.obs.trace.Obs`) or None.
        #: Every hot-path hook hides behind one ``is not None`` check so
        #: an unobserved run pays nothing (benchmark E21).
        self.obs = obs
        #: whether this network carries a reliable-delivery layer on
        #: top (recorded in traces; set by ``ReliableNetwork``).
        self.reliable_layer = reliable_layer
        #: bound on the in-memory fault event log of ``stats``.
        self.fault_log_limit = (
            fault_plan.max_logged_events if fault_plan is not None else 256
        )
        self._apis = {v: Api(self, v) for v in graph.vertices()}
        self._sorted_nbrs: Dict[int, List[int]] = {}
        #: messages in flight: dst -> list of (src, payload).
        self._pending: Dict[int, List[Tuple[int, Any]]] = {}
        #: fault-delayed messages: delivery round -> [(dst, src, payload)].
        self._delayed: Dict[int, List[Tuple[int, int, Any]]] = {}
        self._setup_done = False
        if obs is not None:
            obs.on_network(self)

    def _record_fault(self, event: FaultEvent) -> None:
        """Fault accounting chokepoint: bounded in-memory log + trace."""
        self.stats.record_fault(event, self.fault_log_limit)
        if self.obs is not None:
            self.obs.on_fault(event)

    def sorted_neighbors(self, v: int) -> List[int]:
        if v not in self._sorted_nbrs:
            self._sorted_nbrs[v] = sorted(self.graph.neighbors(v))
        return self._sorted_nbrs[v]

    @property
    def all_halted(self) -> bool:
        return all(api._halted for api in self._apis.values())

    @property
    def in_flight(self) -> bool:
        """Whether any message (pending or fault-delayed) is in transit."""
        return bool(self._pending) or bool(self._delayed)

    def _collect_outboxes(self) -> None:
        """Merge this round's sends into next round's inboxes + account.

        Two passes: the first validates every slot against the strict
        cap *before* anything is counted or queued, so a
        :class:`ProtocolError` leaves stats, outboxes and in-flight
        messages exactly as they were.
        """
        staged: List[Tuple[int, int, List[Any], int]] = []
        for v in sorted(self._apis):
            api = self._apis[v]
            if not api._outbox:
                continue
            per_dst: Dict[int, List[Any]] = {}
            for dst, payload in api._outbox:
                per_dst.setdefault(dst, []).append(payload)
            for dst, payloads in per_dst.items():
                words = sum(message_words(p) for p in payloads)
                if (
                    self.strict
                    and self.stats.cap is not None
                    and words > self.stats.cap
                ):
                    raise ProtocolError(
                        f"node {v} sent {words} words to {dst}, "
                        f"cap is {self.stats.cap}"
                    )
                staged.append((v, dst, payloads, words))
        next_pending: Dict[int, List[Tuple[int, Any]]] = {}
        obs = self.obs
        send_round = self.stats.rounds
        for v, dst, payloads, words in staged:
            self.stats.observe(words)
            if obs is not None:
                obs.on_send(send_round, v, dst, words, payloads)
            bucket = next_pending.setdefault(dst, [])
            for payload in payloads:
                bucket.append((v, payload))
        for api in self._apis.values():
            api._outbox = []
        self._pending = next_pending

    def _apply_faults(
        self, round_no: int, pending: Dict[int, List[Tuple[int, Any]]]
    ) -> Dict[int, List[Tuple[int, Any]]]:
        """Consult the fault plan for every delivery due this round."""
        plan = self.fault_plan
        if plan is None:  # callers gate on fault_plan; keep mypy honest
            return pending
        stats = self.stats
        for event in plan.transitions(round_no):
            self._record_fault(event)
        delivered: Dict[int, List[Tuple[int, Any]]] = {}
        for dst in sorted(pending):
            msgs = pending[dst]
            if plan.is_crashed(dst, round_no):
                stats.dropped += len(msgs)
                self._record_fault(
                    FaultEvent(CRASH_DROP, round_no, dst=dst,
                               info=len(msgs))
                )
                continue
            bucket: List[Tuple[int, Any]] = []
            for slot, (src, payload) in enumerate(msgs):
                kind, info = plan.decide(round_no, src, dst, slot)
                if kind == DROP:
                    stats.dropped += 1
                    self._record_fault(FaultEvent(DROP, round_no, src, dst))
                elif kind == DUPLICATE:
                    stats.duplicated += 1
                    self._record_fault(
                        FaultEvent(DUPLICATE, round_no, src, dst)
                    )
                    bucket.append((src, payload))
                    bucket.append((src, payload))
                elif kind == DELAY:
                    stats.delayed += 1
                    self._record_fault(
                        FaultEvent(DELAY, round_no, src, dst, info=info)
                    )
                    self._delayed.setdefault(round_no + info, []).append(
                        (dst, src, payload)
                    )
                else:
                    bucket.append((src, payload))
            if bucket:
                delivered[dst] = bucket
        # Fault-delayed messages due now join the inboxes directly (their
        # fate was already decided when they were first due).
        for dst, src, payload in self._delayed.pop(round_no, ()):
            if plan.is_crashed(dst, round_no):
                stats.dropped += 1
                self._record_fault(
                    FaultEvent(CRASH_DROP, round_no, src, dst)
                )
                continue
            delivered.setdefault(dst, []).append((src, payload))
        return delivered

    def run(
        self, max_rounds: int, stop_when_idle: bool = False
    ) -> NetworkStats:
        """Execute up to ``max_rounds`` rounds (stops early if all halt).

        Can be called repeatedly; in-flight messages and node state
        persist, so multi-phase protocols may interleave local
        re-configuration between ``run`` calls.  ``stop_when_idle``
        short-circuits once no messages are in flight — a simulation
        speed-up for phases whose synchronous budget far exceeds the
        actual traffic (the budget is reported separately by callers).
        """
        plan = self.fault_plan
        if not self._setup_done:
            for v in sorted(self._apis):
                if plan is not None and plan.is_crashed(v, 0):
                    continue
                self.programs[v].setup(self._apis[v])
            self._collect_outboxes()
            self._setup_done = True
        for _ in range(max_rounds):
            if self.all_halted:
                break
            self.stats.rounds += 1
            round_no = self.stats.rounds
            if self.obs is not None:
                self.obs.on_round(round_no)
            pending, self._pending = self._pending, {}
            if plan is not None:
                pending = self._apply_faults(round_no, pending)
            for v in sorted(self._apis):
                api = self._apis[v]
                if api._halted:
                    continue
                if plan is not None and plan.is_crashed(v, round_no):
                    continue
                inbox = sorted(pending.get(v, ()), key=lambda sp: sp[0])
                if plan is not None:
                    perm = plan.reorder_permutation(
                        round_no, v, len(inbox)
                    )
                    if perm is not None:
                        inbox = [inbox[i] for i in perm]
                        self.stats.reordered += 1
                        self._record_fault(
                            FaultEvent(REORDER, round_no, dst=v,
                                       info=len(inbox))
                        )
                self.programs[v].on_round(api, round_no, inbox)
            self._collect_outboxes()
            if stop_when_idle and not self.in_flight:
                break
        return self.stats
