"""Distributed additive-2 spanner — the Theorem 5 counterpart protocol.

Theorem 5 proves any distributed additive-beta spanner algorithm of
near-linear size needs Omega(sqrt(n^{1-delta} / beta)) rounds.  This
module implements the natural distributed version of the Aingworth et
al. construction so the *upper* side of that trade can be measured:

1. one exchange round: every vertex learns its neighbors' degrees and
   dominator flags (dominators self-select with the shared-randomness
   PRF; an undominated heavy vertex drafts its min-id neighbor);
2. light-edge selection is purely local;
3. BFS trees from *all* Theta~(sqrt n) dominators run simultaneously via
   the pipelined broadcast primitive: with message width W words the
   tree phase needs ~ diameter + |D|/W rounds.

The measured rounds x width product is Theta~(sqrt n) — squarely in the
regime Theorem 5 says cannot be avoided (beta = 2, delta ~ 1/2 gives an
Omega(n^{1/4}) round floor at polylog width).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Set

from repro.distributed.faults import FaultPlan
from repro.distributed.primitives import pipelined_broadcast_protocol
from repro.distributed.reliable import ReliableConfig, build_network
from repro.distributed.simulator import Api, NodeProgram
from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.obs.trace import Obs, phase_scope
from repro.spanner.spanner import Spanner
from repro.util.rng import SeedLike, make_prf


class _ExchangeProgram(NodeProgram):
    """Round 1: announce (degree, dominator flag); round 2: drafting."""

    def __init__(self, node_id: int, degree: int, is_dominator: bool,
                 threshold: int):
        self.node_id = node_id
        self.degree = degree
        self.is_dominator = is_dominator
        self.threshold = threshold
        self.nbr_degree: Dict[int, int] = {}
        self.nbr_dominator: Set[int] = set()
        self.drafted = False

    def on_round(self, api: Api, round_index: int, inbox) -> None:
        if round_index == 1:
            api.broadcast(("I", self.degree, self.is_dominator))
        elif round_index == 2:
            for src, msg in inbox:
                if msg[0] == "I":
                    self.nbr_degree[src] = msg[1]
                    if msg[2]:
                        self.nbr_dominator.add(src)
            # A heavy vertex with no dominator in sight drafts its
            # min-id neighbor (mirrors the sequential patch).
            if (
                self.degree >= self.threshold
                and not self.is_dominator
                and not self.nbr_dominator
                and self.nbr_degree
            ):
                api.send(min(self.nbr_degree), ("D",))
        elif round_index == 3:
            for _, msg in inbox:
                if msg[0] == "D":
                    self.drafted = True
            api.halt()


def _drafted_vertices(programs: Dict[int, _ExchangeProgram]) -> Set[int]:
    """Engine-agnostic drafted-dominator gather (picklable for the
    sharded engine's workers; see ``Network.apply_programs``)."""
    return {v for v, prog in programs.items() if prog.drafted}


def distributed_additive2(
    graph: Graph,
    threshold: Optional[int] = None,
    seed: SeedLike = None,
    max_message_words: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    reliable: bool = False,
    reliable_config: Optional[ReliableConfig] = None,
    obs: Optional[Obs] = None,
    shards: Optional[int] = None,
) -> Spanner:
    """Build an additive 2-spanner by message passing.

    Metadata records the per-phase :class:`NetworkStats` — the tree phase
    is where the Theorem 5 width/time floor shows up — plus the dominator
    count.  ``max_message_words`` caps the tree-phase width (the exchange
    phase uses 3-word messages).  ``fault_plan``/``reliable`` apply fault
    injection and the reliable-delivery adapter to both phases.
    """
    n = graph.n
    if n == 0:
        return Spanner(graph, set(),
                       {"algorithm": "additive-2-distributed"})
    if obs is not None and not obs.protocol:
        obs.protocol = "additive"
    if threshold is None:
        threshold = max(1, math.ceil(math.sqrt(n * max(1.0, math.log(n)))))
    prf = make_prf(seed)
    p = min(1.0, 2 * math.log(max(2, n)) / threshold)
    dominators = {
        v for v in graph.vertices() if prf("dom", v) < p
    }

    # Phase 1: exchange + drafting (3 rounds, <= 3-word messages).
    programs = {
        v: _ExchangeProgram(
            v, graph.degree(v), v in dominators, threshold
        )
        for v in graph.vertices()
    }
    with phase_scope(obs, "exchange"):
        network = build_network(
            graph,
            programs,
            max_message_words=max_message_words,
            fault_plan=fault_plan,
            reliable=reliable,
            reliable_config=reliable_config,
            obs=obs,
            shards=shards,
        )
        exchange_stats = network.run(max_rounds=4)
    for drafted in network.apply_programs(_drafted_vertices):
        dominators |= drafted

    edges: Set[Edge] = set()
    heavy = {v for v in graph.vertices() if graph.degree(v) >= threshold}
    for u, v in graph.edges():
        if u not in heavy or v not in heavy:
            edges.add((u, v))
    for v in sorted(heavy - dominators):
        dominated_by = [
            u for u in graph.neighbors(v) if u in dominators
        ]
        if dominated_by:
            edges.add(canonical_edge(v, min(dominated_by)))

    # Phase 2: simultaneous BFS trees from every dominator (pipelined).
    known, tree_stats = pipelined_broadcast_protocol(
        graph,
        dominators,
        max_rounds=4 * n + 4 * len(dominators),
        max_message_words=max_message_words,
        fault_plan=fault_plan,
        reliable=reliable,
        reliable_config=reliable_config,
        obs=obs,
        phase="trees",
        shards=shards,
    )
    for v, sources in known.items():
        for s, (_, parent) in sources.items():
            if parent is not None:
                edges.add(canonical_edge(v, parent))

    total = exchange_stats.merged_with(tree_stats)
    total.cap = max_message_words
    return Spanner(
        graph,
        edges,
        {
            "algorithm": "additive-2-distributed",
            "threshold": threshold,
            "reliable": reliable,
            "dominators": len(dominators),
            "network_stats": total,
            "tree_phase_rounds": tree_stats.rounds,
            "tree_phase_max_words": tree_stats.max_message_words,
        },
    )
