"""Distributed implementation of the Section 2 skeleton algorithm.

Every *original* vertex runs :class:`_SkeletonProgram`.  Supervertices of
the contracted graph are realized as trees of spanner edges over original
vertices: each vertex keeps a pointer ``p1`` toward the center of its
supervertex and ``p2`` toward the center of its current cluster, exactly
as in Theorem 2's proof.  Cluster sampling uses shared randomness (every
vertex evaluates a common PRF on (call, cluster-center)), so sampling
costs zero communication and the sequential implementation driven by the
same PRF evolves the *identical* clustering — the basis of our
cross-validation tests.

One Expand call = four globally scheduled phases (all processors derive
the same timetable from n, D and eps, as synchronous algorithms do):

1. **exchange** — every live vertex announces its cluster center to its
   neighbors (1-word messages); silence marks dead neighbors.
2. **converge** — vertices of unsampled clusters push their best
   join-candidate (an edge into a sampled neighbor cluster) and their
   per-cluster death-candidates up the ``p1`` tree; candidates are
   deduplicated per cluster en route and pipelined under the word cap;
   a vertex that has seen more than 4 s_i ln n distinct clusters raises
   the paper's abort flag instead.
3. **decide** — the supervertex center either stays (own cluster
   sampled), joins the minimum sampled adjacent cluster (the decision is
   routed down the recorded candidate path, updating ``p2`` pointers per
   Fig. 4), dies (the deduplicated edge list is pipelined down so each
   owner adds its chosen edges — line 7 of Expand), or aborts (every
   member keeps all incident inter-cluster edges).
4. **contract** (once per round) — ``p1 <- p2``, supervertex = cluster,
   and tree children are re-learned in one announcement round.

Round counts are simulated faithfully; the runner also reports the
*budgeted* synchronous schedule length (what the processors would wait
out in the worst case) alongside the simulated rounds.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.schedule import Round, build_schedule, exact_form_schedule
from repro.distributed.faults import FaultPlan
from repro.distributed.reliable import ReliableConfig, build_network
from repro.distributed.simulator import Api, NodeProgram
from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.obs.trace import Obs, phase_scope
from repro.spanner.spanner import Spanner
from repro.util.rng import SeedLike, make_prf

# Message tags.
_EXCHANGE = "X"
_JOIN_CAND = "J"
_DEATH_CAND = "D"
_ABORT_UP = "AU"
_STAY = "S"
_JOIN = "JN"
_DIE = "DI"
_ABORT_DOWN = "AD"
_CHILD = "C"


class _SkeletonProgram(NodeProgram):
    """Per-vertex state machine for the skeleton protocol."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.alive = True
        self.sv_center = node_id
        self.cl_center = node_id
        self.p1: Optional[int] = None  # parent toward supervertex center
        self.p2: Optional[int] = None  # parent toward cluster center
        self.children: Set[int] = set()
        self.edges: Set[Edge] = set()

        # Per-phase transient state (reset by begin_phase).
        self.phase = "idle"
        self.phase_round = 0
        self.nbr_cl: Dict[int, int] = {}
        self._reset_call_state()

    def _reset_call_state(self) -> None:
        self.own_sampled = False
        self.participating = False
        self.best: Optional[Tuple[int, int, int]] = None
        self.best_child: Optional[int] = None
        self.best_sent: Optional[Tuple[int, int, int]] = None
        self.death_seen: Set[int] = set()
        self.death_queue: List[Tuple[int, int, int]] = []
        self.death_received: Dict[int, Tuple[int, int]] = {}
        self.abort = False
        self.abort_sent = False
        self.dying = False
        self.die_announced = False
        self.down_queue: List[Tuple[int, int]] = []
        self.q_abort = math.inf
        self.cap_entries = 1
        self.sampler = None

    # ------------------------------------------------------------------
    # Phase control (invoked by the runner; all-processor-local info)
    # ------------------------------------------------------------------
    def begin_phase(self, phase: str, **config: Any) -> None:
        self.phase = phase
        self.phase_round = 0
        if phase == "exchange":
            self.nbr_cl = {}
        elif phase == "converge":
            self._begin_converge(**config)
        elif phase == "decide":
            self._begin_decide()
        elif phase == "contract":
            self._begin_contract()

    def _begin_converge(self, sampler, q_abort: float, cap_entries: int):
        self.best = None
        self.best_child = None
        self.best_sent = None
        self.death_seen = set()
        self.death_queue = []
        self.death_received = {}
        self.abort = False
        self.abort_sent = False
        self.dying = False
        self.die_announced = False
        self.down_queue = []
        self.q_abort = q_abort
        self.cap_entries = max(1, cap_entries)
        self.sampler = sampler
        if not self.alive:
            self.participating = False
            return
        self.own_sampled = sampler(self.cl_center)
        self.participating = not self.own_sampled
        if not self.participating:
            return
        # Local candidates from the exchange snapshot.
        per_cluster: Dict[int, int] = {}
        for x, cl in self.nbr_cl.items():
            if cl == self.cl_center:
                continue
            if cl not in per_cluster or x < per_cluster[cl]:
                per_cluster[cl] = x
        for cl in per_cluster:
            if self.sampler(cl):
                cand = (cl, self.node_id, per_cluster[cl])
                if self.best is None or cand < self.best:
                    self.best = cand
                    self.best_child = None
            else:
                self._note_death_candidate(
                    cl, self.node_id, per_cluster[cl]
                )

    def _note_death_candidate(self, cl: int, w: int, x: int) -> None:
        if self.abort or cl in self.death_seen:
            return
        self.death_seen.add(cl)
        if len(self.death_seen) > self.q_abort:
            self.abort = True
            self.death_queue = []
            return
        self.death_queue.append((cl, w, x))
        if self.p1 is None:  # center keeps the first edge per cluster
            self.death_received[cl] = (w, x)

    def _begin_decide(self) -> None:
        if not (self.alive and self.participating):
            return
        if self.p1 is not None:
            return  # non-centers wait for the decision from above
        # The supervertex center decides (own cluster was unsampled).
        # The abort flag only modifies *how it dies* — a supervertex with
        # a sampled neighbor still joins (the paper's q > 4 s_i ln n event
        # is about aborting line 7, not the join; survival is whp anyway).
        if self.best is not None:
            target, w, x = self.best
            self.cl_center = target
            if w == self.node_id:
                self.p2 = x
                self.edges.add(canonical_edge(w, x))
            else:
                self.p2 = self.best_child
        elif self.abort:
            self.dying = True
            self._keep_all_boundary_edges()
        else:
            self.dying = True
            for cl, (w, x) in sorted(self.death_received.items()):
                if w == self.node_id:
                    self.edges.add(canonical_edge(w, x))
                self.down_queue.append((w, x))

    def _begin_contract(self) -> None:
        if not self.alive:
            return
        self.p1 = self.p2
        self.sv_center = self.cl_center
        self.children = set()

    def finalize_call(self) -> None:
        """Runner hook after the decide phase: commit deaths."""
        if self.dying:
            self.alive = False

    def _keep_all_boundary_edges(self) -> None:
        for x, cl in self.nbr_cl.items():
            if cl != self.cl_center:
                self.edges.add(canonical_edge(self.node_id, x))

    # ------------------------------------------------------------------
    # Round dispatch
    # ------------------------------------------------------------------
    def on_round(
        self, api: Api, round_index: int, inbox: List[Tuple[int, Any]]
    ) -> None:
        self.phase_round += 1
        if self.phase == "exchange":
            self._round_exchange(api, inbox)
        elif self.phase == "converge":
            self._round_converge(api, inbox)
        elif self.phase == "decide":
            self._round_decide(api, inbox)
        elif self.phase == "contract":
            self._round_contract(api, inbox)

    def _round_exchange(self, api: Api, inbox) -> None:
        if self.phase_round == 1:
            if self.alive:
                api.broadcast((_EXCHANGE, self.cl_center))
            return
        for src, msg in inbox:
            if msg[0] == _EXCHANGE:
                self.nbr_cl[src] = msg[1]

    def _round_converge(self, api: Api, inbox) -> None:
        if not (self.alive and self.participating):
            return
        for src, msg in inbox:
            tag = msg[0]
            if tag == _JOIN_CAND:
                cand = (msg[1], msg[2], msg[3])
                if self.best is None or cand < self.best:
                    self.best = cand
                    self.best_child = src
            elif tag == _DEATH_CAND:
                for cl, w, x in msg[1]:
                    self._note_death_candidate(cl, w, x)
            elif tag == _ABORT_UP:
                self.abort = True
                self.death_queue = []
        if self.p1 is None:
            return  # the center only accumulates
        if self.best is not None and self.best != self.best_sent:
            api.send(self.p1, (_JOIN_CAND,) + self.best)
            self.best_sent = self.best
        # The abort flag only short-circuits the death-candidate stream;
        # join candidates keep flowing (survival is the likely outcome).
        if self.abort:
            if not self.abort_sent:
                api.send(self.p1, (_ABORT_UP,))
                self.abort_sent = True
        elif self.death_queue:
            batch = tuple(self.death_queue[: self.cap_entries])
            del self.death_queue[: self.cap_entries]
            api.send(self.p1, (_DEATH_CAND, batch))

    def _round_decide(self, api: Api, inbox) -> None:
        if not (self.alive and self.participating):
            return
        for src, msg in inbox:
            tag = msg[0]
            if tag == _JOIN:
                _, target, w, x, on_path = msg
                self.cl_center = target
                if on_path:
                    if self.node_id == w:
                        self.p2 = x
                        self.edges.add(canonical_edge(w, x))
                    else:
                        self.p2 = self.best_child
                else:
                    self.p2 = self.p1
                for child in sorted(self.children):
                    api.send(
                        child,
                        (_JOIN, target, w, x,
                         on_path and child == self.best_child),
                    )
                self.participating = False
            elif tag == _DIE:
                self.dying = True
                for w, x in msg[1]:
                    if w == self.node_id:
                        self.edges.add(canonical_edge(w, x))
                    self.down_queue.append((w, x))
            elif tag == _ABORT_DOWN:
                self.dying = True
                self.abort = True
                self._keep_all_boundary_edges()

        if self.p1 is None and self.phase_round == 1:
            # Center initiates: join decisions go out once; deaths and
            # aborts stream via the down queue below.
            if not self.dying and self.best is not None:
                target, w, x = self.best
                for child in sorted(self.children):
                    api.send(
                        child,
                        (_JOIN, target, w, x, child == self.best_child),
                    )
                self.participating = False
                return

        if not self.dying:
            return
        if self.abort:
            # One abort notice down the whole subtree.
            if not self.die_announced:
                for child in sorted(self.children):
                    api.send(child, (_ABORT_DOWN,))
                self.die_announced = True
            return
        # Death notice + chosen edges, pipelined under the cap.  The
        # notice must go out even with an empty edge list so every tree
        # member learns it died.
        if not self.die_announced or self.down_queue:
            batch = tuple(self.down_queue[: self.cap_entries])
            del self.down_queue[: self.cap_entries]
            for child in sorted(self.children):
                api.send(child, (_DIE, batch))
            self.die_announced = True

    def _round_contract(self, api: Api, inbox) -> None:
        if not self.alive:
            return
        if self.phase_round == 1:
            if self.p1 is not None:
                api.send(self.p1, (_CHILD,))
            return
        for src, msg in inbox:
            if msg[0] == _CHILD:
                self.children.add(src)


def _radius_after_round(radius: int, calls: int) -> int:
    """Lemma 2's doubling: a radius-j clustering of radius-r supervertices
    contracts to supervertices of radius j (2r + 1) + r."""
    return calls * (2 * radius + 1) + radius


class _ClusterSampler:
    """The shared-randomness sampling decision for one Expand call.

    A picklable stand-in for the former per-call closure (the sharded
    engine ships ``begin_phase`` configuration to worker processes):
    every processor evaluates the common PRF on (call index, cluster
    center), so sampling stays communication-free and identical across
    engines and across the sequential implementation.
    """

    __slots__ = ("idx", "p", "prf")

    def __init__(self, idx: int, p: float, prf: Any) -> None:
        self.idx = idx
        self.p = p
        self.prf = prf

    def __call__(self, center: int) -> bool:
        return self.p > 0 and self.prf(self.idx, center) < self.p


# Engine-agnostic program hooks: the driver reaches node programs only
# through ``network.apply_programs`` with these module-level (hence
# picklable) functions, so the same driver runs whether the programs
# live in this process or in the sharded engine's workers.
def _begin_phase(
    programs: Dict[int, NodeProgram], name: str, **config: Any
) -> None:
    for program in programs.values():
        program.begin_phase(name, **config)  # type: ignore[attr-defined]


def _alive_count(programs: Dict[int, "_SkeletonProgram"]) -> int:
    return sum(1 for pr in programs.values() if pr.alive)


def _call_aborts(programs: Dict[int, "_SkeletonProgram"]) -> int:
    return sum(
        1
        for pr in programs.values()
        if pr.dying and pr.abort and pr.p1 is None
    )


def _finalize_call(programs: Dict[int, "_SkeletonProgram"]) -> None:
    for program in programs.values():
        program.finalize_call()


def _alive_centers(programs: Dict[int, "_SkeletonProgram"]) -> Set[int]:
    return {pr.cl_center for pr in programs.values() if pr.alive}


def _spanner_edges(programs: Dict[int, "_SkeletonProgram"]) -> Set[Edge]:
    edges: Set[Edge] = set()
    for program in programs.values():
        edges |= program.edges
    return edges


def distributed_skeleton(
    graph: Graph,
    D: int = 4,
    eps: float = 0.5,
    seed: SeedLike = None,
    schedule: Optional[List[Round]] = None,
    max_message_words: Optional[int] = None,
    q_abort_override: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    reliable: bool = False,
    reliable_config: Optional[ReliableConfig] = None,
    obs: Optional[Obs] = None,
    shards: Optional[int] = None,
) -> Spanner:
    """Run the Theorem 2 protocol on ``graph``.

    The message cap defaults to Theorem 2's O(log^eps n) words.  Metadata
    includes the simulated :class:`NetworkStats` (``"network_stats"``),
    the worst-case synchronous schedule length (``"budgeted_rounds"``),
    the per-call cluster counts (``"cluster_counts"``) used by the
    sequential/distributed cross-validation tests, and the number of
    supervertices that died through the abort path (``"aborts"``).
    ``q_abort_override`` replaces the paper's 4 s_i ln n threshold —
    failure-injection tests use tiny values to force the abort path.

    ``fault_plan`` injects faults at delivery time; ``reliable=True``
    runs every program under the reliable-delivery adapter (sequence
    numbers, acks, retransmission), which preserves the fault-free
    execution exactly under drop/duplicate/delay/reorder plans.
    ``obs`` attaches observability: each exchange/converge/decide/
    contract phase is marked in the trace and metered per phase.
    ``shards`` runs the programs on the sharded multi-process engine
    (clean configuration only — see ``build_network``).
    """
    n = graph.n
    prf = make_prf(seed)
    if schedule is None:
        try:
            schedule = build_schedule(n, D, eps)
        except ValueError:
            schedule = exact_form_schedule(n, D)
    cap = max_message_words
    if cap is None:
        # Theorem 2's O(log^eps n)-word messages; the constant absorbs
        # per-message tags/flags and the 3 words of an (cluster, w, x)
        # candidate entry.
        cap = 4 * max(3, math.ceil(math.log2(max(4, n)) ** eps))
    cap_entries = max(1, (cap - 6) // 3)

    if obs is not None and not obs.protocol:
        obs.protocol = "skeleton"
    programs = {v: _SkeletonProgram(v) for v in graph.vertices()}
    network = build_network(
        graph,
        programs,
        max_message_words=cap,
        fault_plan=fault_plan,
        reliable=reliable,
        reliable_config=reliable_config,
        obs=obs,
        shards=shards,
    )
    log_n = math.log(max(2, n))

    def run_phase(name: str, budget: int, **config: Any) -> int:
        with phase_scope(obs, name):
            network.apply_programs(_begin_phase, name, **config)
            before = network.stats.rounds
            network.run(max_rounds=budget, stop_when_idle=True)
            # Drain any messages still in flight (the synchronous
            # schedule would have waited the full budget; we stop once
            # quiet).
            while network.in_flight:
                network.run(max_rounds=1)
            return network.stats.rounds - before

    radius_bound = 0
    budgeted_rounds = 0
    call_index = 0
    aborts = 0
    cluster_counts: List[int] = []
    for round_spec in schedule:
        probabilities = [round_spec.p] * round_spec.iterations
        if round_spec.final_zero:
            probabilities.append(0.0)
        if q_abort_override is not None:
            q_abort = q_abort_override
        elif round_spec.p > 0:
            q_abort = math.ceil(4 * (1.0 / round_spec.p) * log_n)
        else:
            q_abort = math.inf
        pipeline = (
            math.ceil((q_abort + 1) / cap_entries)
            if q_abort != math.inf
            else n
        )
        calls_done = 0
        for p in probabilities:
            if not sum(network.apply_programs(_alive_count)):
                break
            idx = call_index
            call_index += 1
            calls_done += 1
            sampler = _ClusterSampler(idx, p, prf)

            run_phase("exchange", 2)
            run_phase(
                "converge",
                radius_bound + pipeline + 2,
                sampler=sampler,
                q_abort=q_abort,
                cap_entries=cap_entries,
            )
            run_phase("decide", radius_bound + pipeline + 2)
            aborts += sum(network.apply_programs(_call_aborts))
            network.apply_programs(_finalize_call)
            budgeted_rounds += 2 * (radius_bound + pipeline + 2) + 2
            cluster_counts.append(
                len(set().union(*network.apply_programs(_alive_centers)))
            )
        # Contract: p1 <- p2, relearn children (one announcement round).
        run_phase("contract", 2)
        budgeted_rounds += 2
        radius_bound = _radius_after_round(radius_bound, calls_done)

    edges: Set[Edge] = set()
    for shard_edges in network.apply_programs(_spanner_edges):
        edges |= shard_edges
    metadata = {
        "algorithm": "pettie-skeleton-distributed",
        "D": D,
        "eps": eps,
        "reliable": reliable,
        "message_cap": cap,
        "network_stats": network.stats,
        "budgeted_rounds": budgeted_rounds,
        "cluster_counts": cluster_counts,
        "expand_calls": call_index,
        "aborts": aborts,
    }
    return Spanner(graph, edges, metadata)
