"""Synchronous message-passing simulator and the paper's protocols."""

from repro.distributed.simulator import (
    Api,
    Network,
    NetworkStats,
    NodeProgram,
    ProtocolError,
)
from repro.distributed.faults import (
    CrashSpec,
    FaultEvent,
    FaultPlan,
)
from repro.distributed.reliable import (
    ReliableConfig,
    ReliableNetwork,
    ReliableProgram,
    build_network,
)
from repro.distributed.primitives import (
    ball_broadcast_protocol,
    bounded_bfs_protocol,
    pipelined_broadcast_protocol,
)
from repro.distributed.additive_protocol import distributed_additive2
from repro.distributed.baswana_sen_protocol import (
    distributed_baswana_sen,
    distributed_baswana_sen_weighted,
)
from repro.distributed.deterministic_protocol import (
    distributed_deterministic,
)
from repro.distributed.fibonacci_protocol import (
    distributed_fibonacci_spanner,
)
from repro.distributed.skeleton_protocol import distributed_skeleton
from repro.distributed.survey_protocol import neighborhood_survey

__all__ = [
    "Api",
    "CrashSpec",
    "FaultEvent",
    "FaultPlan",
    "Network",
    "NetworkStats",
    "NodeProgram",
    "ProtocolError",
    "ReliableConfig",
    "ReliableNetwork",
    "ReliableProgram",
    "build_network",
    "ball_broadcast_protocol",
    "bounded_bfs_protocol",
    "pipelined_broadcast_protocol",
    "distributed_additive2",
    "distributed_baswana_sen",
    "distributed_baswana_sen_weighted",
    "distributed_deterministic",
    "distributed_fibonacci_spanner",
    "distributed_skeleton",
    "neighborhood_survey",
]
