"""Neighborhood-survey protocol — the cost of the girth-based approach.

Section 2's motivation for avoiding girth arguments: "any algorithm
taking this approach seems to require that vertices survey their whole
Theta(log n)-neighborhood, which can require messages linear in the size
of the graph."  This protocol *measures* that: every vertex collects the
full topology (edge list) of its radius-r neighborhood by flooding newly
learned edges for r rounds.  The recorded maximum message width is the
quantity the paper contrasts with the skeleton's O(log^eps n) words.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.distributed.faults import FaultPlan
from repro.distributed.reliable import ReliableConfig, build_network
from repro.distributed.simulator import Api, NetworkStats, NodeProgram
from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.obs.trace import Obs, phase_scope


class _SurveyProgram(NodeProgram):
    """Flood-and-collect: learn every edge within ``radius`` hops."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.known_edges: Set[Edge] = set()
        self._fresh: List[Edge] = []

    def setup(self, api: Api) -> None:
        # Round 0 knowledge: the incident edges.
        for u in api.neighbors:
            self.known_edges.add(canonical_edge(self.node_id, u))
        batch = tuple(sorted(self.known_edges))
        for u in api.neighbors:
            # Unbounded payload is this protocol's *point*: it measures
            # the linear-size messages Section 2 warns girth-based
            # surveys need, as the contrast with the skeleton's bound.
            api.send(u, batch)  # repro-lint: disable=REP012

    def on_round(
        self, api: Api, round_index: int, inbox: List[Tuple[int, Any]]
    ) -> None:
        fresh: List[Edge] = []
        for _, edges in inbox:
            for u, v in edges:
                e = canonical_edge(u, v)
                if e not in self.known_edges:
                    self.known_edges.add(e)
                    fresh.append(e)
        if fresh:
            # Deliberately unbounded flood (see setup): the recorded
            # max message width is the measured quantity.
            api.broadcast(tuple(sorted(fresh)))  # repro-lint: disable=REP012


def _known_maps(
    programs: Dict[int, _SurveyProgram],
) -> Dict[int, Set[Edge]]:
    """Engine-agnostic result gather (picklable for sharded workers)."""
    return {v: p.known_edges for v, p in programs.items()}


def neighborhood_survey(
    graph: Graph,
    radius: int,
    fault_plan: Optional[FaultPlan] = None,
    reliable: bool = False,
    reliable_config: Optional[ReliableConfig] = None,
    obs: Optional[Obs] = None,
    shards: Optional[int] = None,
) -> Tuple[Dict[int, Set[Edge]], NetworkStats]:
    """Every vertex collects all edges within ``radius`` hops.

    Returns ``(known, stats)``; ``stats.max_message_words`` is the width
    the approach demands (2 words per edge) and ``known[v]`` slightly
    over-approximates the r-neighborhood (edges propagate along shortest
    edge-to-vertex chains, the standard LOCAL-model simulation).
    ``fault_plan``/``reliable`` plug in fault injection and the
    reliable-delivery adapter.
    """
    if obs is not None and not obs.protocol:
        obs.protocol = "survey"
    programs = {v: _SurveyProgram(v) for v in graph.vertices()}
    with phase_scope(obs, "survey"):
        network = build_network(
            graph,
            programs,
            fault_plan=fault_plan,
            reliable=reliable,
            reliable_config=reliable_config,
            obs=obs,
            shards=shards,
        )
        stats = network.run(max_rounds=radius, stop_when_idle=True)
    known: Dict[int, Set[Edge]] = {}
    for shard_known in network.apply_programs(_known_maps):
        known.update(shard_known)
    return known, stats
