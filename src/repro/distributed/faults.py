"""Seeded, deterministic fault injection for the network simulator.

The paper's model (Sect. 1.1) assumes a perfectly reliable synchronous
network; its own safety valves (the skeleton's line-7 abort, the
Fibonacci Las-Vegas cessation check) exist because real executions
misbehave.  This module lets the simulator misbehave *on purpose*:

* a :class:`FaultPlan` is consulted by :class:`~repro.distributed.
  simulator.Network` at delivery time and may **drop**, **duplicate**,
  **delay** (bounded asynchrony, up to ``max_delay`` rounds) or
  **reorder** messages, and **crash** processors (crash-stop or
  crash-recover, via :class:`CrashSpec`);
* every decision is derived from a shared PRF
  (:func:`repro.util.rng.make_prf`) keyed on public coordinates
  (round, src, dst, slot) — the same seed always yields the same fault
  schedule for the same traffic pattern, so chaos runs are replayable
  bit for bit;
* every injected event is recorded as a :class:`FaultEvent` in the
  run's :class:`~repro.distributed.simulator.NetworkStats` (counters
  are always exact; the event log is truncated at
  ``max_logged_events``).

Crash semantics: a crashed processor executes no rounds and every
message addressed to it while down is lost.  A recovering processor
resumes with its pre-crash local state (the fail-pause model); a
:class:`CrashSpec` without ``recover_round`` is a crash-stop.  A spec
with ``amnesia=True`` instead models state loss: at ``recover_round``
the simulator calls the program's ``on_amnesia_recover`` hook, whose
implementations wipe volatile state and re-join via a repair handshake
(see ``docs/robustness.md`` and :mod:`repro.churn.repair_protocol`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.util.rng import SeedLike, ensure_rng, make_prf

#: fault kinds recorded in :class:`FaultEvent`.
DROP = "drop"
DUPLICATE = "duplicate"
DELAY = "delay"
REORDER = "reorder"
CRASH = "crash"
RECOVER = "recover"
AMNESIA = "amnesia"
CRASH_DROP = "crash-drop"
LINK_DEAD = "link-dead"


@dataclass(frozen=True)
class CrashSpec:
    """One processor failure: down during [crash_round, recover_round).

    ``recover_round=None`` is a crash-stop.  Round numbers follow the
    simulator's convention (``setup`` is round 0, the first delivery
    round is 1); a spec with ``crash_round <= 0`` also suppresses the
    node's ``setup``.

    ``amnesia=True`` switches the recovery model from fail-pause
    (resume with exact pre-crash state) to amnesia-crash: at
    ``recover_round`` the simulator invokes the program's
    ``on_amnesia_recover`` hook, which is expected to discard volatile
    state and re-join via whatever repair handshake the protocol
    defines.  Amnesia therefore requires a ``recover_round`` — an
    amnesiac crash-stop is indistinguishable from a plain crash-stop.
    """

    node: int
    crash_round: int
    recover_round: Optional[int] = None
    amnesia: bool = False

    def __post_init__(self) -> None:
        if self.recover_round is not None:
            if self.recover_round <= self.crash_round:
                raise ValueError(
                    f"CrashSpec(node={self.node}): recover_round "
                    f"({self.recover_round}) must be > crash_round "
                    f"({self.crash_round}); equal or inverted windows are "
                    "no-ops and almost certainly a typo"
                )
        elif self.amnesia:
            raise ValueError(
                f"CrashSpec(node={self.node}): amnesia=True requires a "
                "recover_round (an amnesiac crash-stop never recovers, so "
                "there is no state to lose)"
            )

    def down_at(self, round_no: int) -> bool:
        if round_no < self.crash_round:
            return False
        return self.recover_round is None or round_no < self.recover_round


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in the network's event log."""

    kind: str
    round: int
    src: Optional[int] = None
    dst: Optional[int] = None
    info: Optional[int] = None

    def __str__(self) -> str:
        parts = [f"r{self.round}", self.kind]
        if self.src is not None:
            parts.append(f"{self.src}->{self.dst}")
        elif self.dst is not None:
            parts.append(str(self.dst))
        if self.info is not None:
            parts.append(f"({self.info})")
        return " ".join(parts)


class FaultPlan:
    """Deterministic per-delivery fault schedule.

    ``drop_rate``, ``duplicate_rate`` and ``delay_rate`` partition the
    unit interval (their sum must be <= 1); each (round, src, dst, slot)
    delivery draws one PRF value to pick its fate.  ``reorder_rate`` is
    drawn per (round, dst) inbox and permutes delivery order within the
    round.  ``crashes`` is any iterable of :class:`CrashSpec` (or
    ``(node, crash_round[, recover_round])`` tuples).
    """

    def __init__(
        self,
        seed: SeedLike = None,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        delay_rate: float = 0.0,
        max_delay: int = 2,
        reorder_rate: float = 0.0,
        crashes: Iterable[Any] = (),
        max_logged_events: int = 256,
    ) -> None:
        for name, rate in (
            ("drop_rate", drop_rate),
            ("duplicate_rate", duplicate_rate),
            ("delay_rate", delay_rate),
            ("reorder_rate", reorder_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if drop_rate + duplicate_rate + delay_rate > 1.0 + 1e-12:
            raise ValueError(
                "drop_rate + duplicate_rate + delay_rate must be <= 1"
            )
        if max_delay < 1:
            raise ValueError("max_delay must be >= 1")
        self.drop_rate = drop_rate
        self.duplicate_rate = duplicate_rate
        self.delay_rate = delay_rate
        self.max_delay = max_delay
        self.reorder_rate = reorder_rate
        self.max_logged_events = max_logged_events
        self._prf = make_prf(seed)
        self._crashes: Dict[int, CrashSpec] = {}
        for spec in crashes:
            if not isinstance(spec, CrashSpec):
                spec = CrashSpec(*spec)
            if spec.node in self._crashes:
                raise ValueError(f"duplicate crash spec for node {spec.node}")
            self._crashes[spec.node] = spec

    # ------------------------------------------------------------------
    # Crash queries
    # ------------------------------------------------------------------
    def is_crashed(self, node: int, round_no: int) -> bool:
        spec = self._crashes.get(node)
        return spec is not None and spec.down_at(round_no)

    def crashed_nodes(self) -> set:
        """Every node that crashes at any point under this plan."""
        return set(self._crashes)

    def transitions(self, round_no: int) -> List[FaultEvent]:
        """Crash/recover events that take effect exactly at ``round_no``."""
        events = []
        for node in sorted(self._crashes):
            spec = self._crashes[node]
            if spec.crash_round == round_no:
                events.append(FaultEvent(CRASH, round_no, dst=spec.node))
            if spec.recover_round == round_no:
                kind = AMNESIA if spec.amnesia else RECOVER
                events.append(FaultEvent(kind, round_no, dst=spec.node))
        return events

    def amnesia_recoveries(self, round_no: int) -> List[int]:
        """Nodes whose amnesia-crash recovery fires exactly at ``round_no``."""
        return sorted(
            node
            for node, spec in self._crashes.items()
            if spec.amnesia and spec.recover_round == round_no
        )

    # ------------------------------------------------------------------
    # Per-message decisions
    # ------------------------------------------------------------------
    def decide(
        self, round_no: int, src: int, dst: int, slot: int
    ) -> Tuple[str, int]:
        """Fate of one delivery: ``(kind, info)``.

        ``kind`` is ``"deliver"``, :data:`DROP`, :data:`DUPLICATE` or
        :data:`DELAY` (``info`` = extra rounds, in [1, max_delay]).
        """
        u = self._prf("msg", round_no, src, dst, slot)
        if u < self.drop_rate:
            return DROP, 0
        u -= self.drop_rate
        if u < self.duplicate_rate:
            return DUPLICATE, 0
        u -= self.duplicate_rate
        if u < self.delay_rate:
            extra = 1 + int(
                self._prf("delay", round_no, src, dst, slot) * self.max_delay
            )
            return DELAY, min(extra, self.max_delay)
        return "deliver", 0

    def reorder_permutation(
        self, round_no: int, dst: int, size: int
    ) -> Optional[List[int]]:
        """A deterministic inbox permutation, or ``None`` (keep order)."""
        if size < 2 or self.reorder_rate <= 0.0:
            return None
        if self._prf("reorder?", round_no, dst) >= self.reorder_rate:
            return None
        shuffle_seed = int(
            self._prf("reorder-seed", round_no, dst) * 2**63
        )
        perm = list(range(size))
        ensure_rng(shuffle_seed).shuffle(perm)
        if perm == sorted(perm):
            return None
        return perm

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(drop={self.drop_rate}, dup={self.duplicate_rate}, "
            f"delay={self.delay_rate}x{self.max_delay}, "
            f"reorder={self.reorder_rate}, crashes={sorted(self._crashes)})"
        )
