"""Reusable distributed primitives: bounded BFS and ball broadcast.

These are the two communication patterns of Section 4.4:

* :func:`bounded_bfs_protocol` — every vertex learns the identity of (and
  its tree parent toward) the nearest source, with minimum-identifier
  tie-breaking, within a hop budget.  Unit-length messages.  This realizes
  "after ell^{i-1} steps each v knows the first edge on the path
  P(v, p_i(v)) or knows that delta(v, V_i) >= ell^{i-1}".

* :func:`ball_broadcast_protocol` — every source broadcasts its identity
  to the ball of a given radius; nodes relay newly learned sources each
  round, *ceasing participation* the moment a single relay message would
  exceed the word cap (the paper's congestion-control rule).  Returns who
  knows whom, parent pointers toward each known source, and who ceased
  at which round — everything the Monte-Carlo/Las-Vegas failure analysis
  of Sect. 4.4 talks about.

* :func:`path_retrace_protocol` — route "add this shortest path" requests
  backward along the parent pointers produced by a ball broadcast, adding
  one spanner edge per hop (how P(v, u) paths enter the spanner without
  any vertex knowing the whole path).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.distributed.faults import FaultPlan
from repro.distributed.reliable import ReliableConfig, build_network
from repro.distributed.simulator import Api, NetworkStats, NodeProgram
from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.obs.trace import Obs, phase_scope


class _BfsProgram(NodeProgram):
    """Min-id nearest-source BFS node logic."""

    def __init__(self, node_id: int, is_source: bool) -> None:
        self.node_id = node_id
        self.is_source = is_source
        self.dist: Optional[int] = 0 if is_source else None
        self.root: Optional[int] = node_id if is_source else None
        self.parent: Optional[int] = None

    def setup(self, api: Api) -> None:
        if self.is_source:
            api.broadcast(self.root)

    def on_round(
        self, api: Api, round_index: int, inbox: List[Tuple[int, Any]]
    ) -> None:
        if self.dist is not None or not inbox:
            return
        # First messages arrive exactly at round = distance; the minimum
        # root among them is the min-id nearest source (synchronous BFS).
        best_root, best_src = min((root, src) for src, root in inbox)
        self.dist = round_index
        self.root = best_root
        self.parent = best_src
        for u in api.neighbors:
            if u != best_src:
                api.send(u, best_root)


def _bfs_outcomes(
    programs: Dict[int, _BfsProgram],
) -> Tuple[Dict[int, int], Dict[int, int], Dict[int, Optional[int]]]:
    """Engine-agnostic result gather (picklable for sharded workers)."""
    dist: Dict[int, int] = {}
    root: Dict[int, int] = {}
    parent: Dict[int, Optional[int]] = {}
    for v, p in programs.items():
        if p.dist is None or p.root is None:
            continue  # never heard a source within the budget
        dist[v] = p.dist
        root[v] = p.root
        parent[v] = p.parent
    return dist, root, parent


def bounded_bfs_protocol(
    graph: Graph,
    sources: Iterable[int],
    radius: int,
    max_message_words: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    reliable: bool = False,
    reliable_config: Optional[ReliableConfig] = None,
    obs: Optional[Obs] = None,
    phase: str = "bfs",
    shards: Optional[int] = None,
) -> Tuple[Dict[int, int], Dict[int, int], Dict[int, Optional[int]], NetworkStats]:
    """Distributed multi-source BFS truncated at ``radius`` hops.

    Returns ``(dist, root, parent, stats)`` over the vertices that heard a
    source within the budget.  Unit-length messages (1 word each).
    ``obs``/``phase`` attach observability (the run is traced under the
    given phase label); ``shards`` selects the sharded engine.
    """
    source_set = set(sources)
    programs = {
        v: _BfsProgram(v, v in source_set) for v in graph.vertices()
    }
    with phase_scope(obs, phase):
        network = build_network(
            graph,
            programs,
            max_message_words=max_message_words,
            fault_plan=fault_plan,
            reliable=reliable,
            reliable_config=reliable_config,
            obs=obs,
            shards=shards,
        )
        stats = network.run(max_rounds=radius)
    dist: Dict[int, int] = {}
    root: Dict[int, int] = {}
    parent: Dict[int, Optional[int]] = {}
    for shard_dist, shard_root, shard_parent in network.apply_programs(
        _bfs_outcomes
    ):
        dist.update(shard_dist)
        root.update(shard_root)
        parent.update(shard_parent)
    return dist, root, parent, stats


class _BallProgram(NodeProgram):
    """Ball-broadcast node logic with cessation on cap overflow."""

    def __init__(
        self, node_id: int, is_source: bool, cap: Optional[int]
    ) -> None:
        self.node_id = node_id
        self.is_source = is_source
        self.cap = cap
        #: source -> (distance, parent toward it).
        self.known: Dict[int, Tuple[int, Optional[int]]] = {}
        self.fresh: List[int] = []
        self.ceased_at: Optional[int] = None
        #: ids already relayed to (or received from) each neighbor.
        self._shared: Dict[int, Set[int]] = {}

    def setup(self, api: Api) -> None:
        self._shared = {u: set() for u in api.neighbors}
        if self.is_source:
            self.known[self.node_id] = (0, None)
            for u in api.neighbors:
                api.send(u, (self.node_id,))
                self._shared[u].add(self.node_id)

    def on_round(
        self, api: Api, round_index: int, inbox: List[Tuple[int, Any]]
    ) -> None:
        if self.ceased_at is not None:
            return
        fresh: List[int] = []
        for src, id_list in inbox:
            for source_id in id_list:
                self._shared[src].add(source_id)
                if source_id not in self.known:
                    self.known[source_id] = (round_index, src)
                    fresh.append(source_id)
        if not fresh:
            return
        # Relay the newly learned sources, skipping per-neighbor what that
        # neighbor demonstrably already knows.  If any single relay would
        # exceed the cap, cease participation (Sect. 4.4).
        outgoing = {}
        for u in api.neighbors:
            to_send = tuple(
                s for s in fresh if s not in self._shared[u]
            )
            if not to_send:
                continue
            if self.cap is not None and len(to_send) > self.cap:
                self.ceased_at = round_index
                return
            outgoing[u] = to_send
        for u, to_send in outgoing.items():
            api.send(u, to_send)
            self._shared[u].update(to_send)


def _ball_outcomes(
    programs: Dict[int, _BallProgram],
) -> Tuple[
    Dict[int, Dict[int, Tuple[int, Optional[int]]]], Dict[int, int]
]:
    """Engine-agnostic result gather (picklable for sharded workers)."""
    known = {v: dict(p.known) for v, p in programs.items()}
    ceased = {
        v: p.ceased_at
        for v, p in programs.items()
        if p.ceased_at is not None
    }
    return known, ceased


def ball_broadcast_protocol(
    graph: Graph,
    sources: Iterable[int],
    radius: int,
    max_message_words: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    reliable: bool = False,
    reliable_config: Optional[ReliableConfig] = None,
    obs: Optional[Obs] = None,
    phase: str = "ball",
    shards: Optional[int] = None,
) -> Tuple[
    Dict[int, Dict[int, Tuple[int, Optional[int]]]],
    Dict[int, int],
    NetworkStats,
]:
    """Broadcast each source's identity through its radius-``radius`` ball.

    Returns ``(known, ceased, stats)``: ``known[v]`` maps each source v
    heard to ``(distance, parent-toward-it)``; ``ceased[v]`` is the round
    at which v stopped relaying because of the word cap (absent if never).
    """
    source_set = set(sources)
    programs = {
        v: _BallProgram(v, v in source_set, max_message_words)
        for v in graph.vertices()
    }
    with phase_scope(obs, phase):
        network = build_network(
            graph,
            programs,
            max_message_words=max_message_words,
            fault_plan=fault_plan,
            reliable=reliable,
            reliable_config=reliable_config,
            obs=obs,
            shards=shards,
        )
        stats = network.run(max_rounds=radius)
    known: Dict[int, Dict[int, Tuple[int, Optional[int]]]] = {}
    ceased: Dict[int, int] = {}
    for shard_known, shard_ceased in network.apply_programs(_ball_outcomes):
        known.update(shard_known)
        ceased.update(shard_ceased)
    return known, ceased, stats


class _PipelinedBroadcastProgram(NodeProgram):
    """Capped-width broadcast with queueing (not cessation) + distances.

    Where the Sect. 4.4 ball protocol *ceases* on overflow (it can afford
    to: blocked sources are provably irrelevant whp), global broadcasts —
    e.g. the BFS trees of an additive-2 spanner — must deliver everything
    *exactly*.  Entries carry (source, distance) pairs; a node adopts any
    strictly improving distance and re-queues it, so at quiescence every
    node holds the exact distance and a shortest-path parent per source
    even when queueing delayed some announcements.  Per neighbor per
    round at most ``cap`` words (cap // 2 entries) are sent; rounds ~
    depth + (#sources)/cap — the width/time product Theorem 5 constrains.
    """

    def __init__(
        self, node_id: int, is_source: bool, cap: Optional[int]
    ) -> None:
        self.node_id = node_id
        self.is_source = is_source
        self.cap = cap
        #: source -> (distance, parent toward it); exact at quiescence.
        self.known: Dict[int, Tuple[int, Optional[int]]] = {}
        #: per-neighbor queue of (source, distance) entries to relay.
        self._queue: Dict[int, List[Tuple[int, int]]] = {}

    def setup(self, api: Api) -> None:
        self._queue = {u: [] for u in api.neighbors}
        if self.is_source:
            self.known[self.node_id] = (0, None)
            for u in api.neighbors:
                self._queue[u].append((self.node_id, 1))
        self._flush(api)

    def _flush(self, api: Api) -> None:
        entries_cap = None if self.cap is None else max(1, self.cap // 2)
        for u, queue in self._queue.items():
            if not queue:
                continue
            take = len(queue) if entries_cap is None else min(
                entries_cap, len(queue)
            )
            batch = tuple(queue[:take])
            del queue[:take]
            api.send(u, batch)

    def on_round(
        self, api: Api, round_index: int, inbox: List[Tuple[int, Any]]
    ) -> None:
        for src, entries in inbox:
            for source_id, dist in entries:
                current = self.known.get(source_id)
                if current is None or dist < current[0]:
                    self.known[source_id] = (dist, src)
                    for u in api.neighbors:
                        if u != src:
                            self._queue[u].append((source_id, dist + 1))
        self._flush(api)


def _pipelined_outcomes(
    programs: Dict[int, _PipelinedBroadcastProgram],
) -> Dict[int, Dict[int, Tuple[int, Optional[int]]]]:
    """Engine-agnostic result gather (picklable for sharded workers)."""
    return {v: dict(p.known) for v, p in programs.items()}


def pipelined_broadcast_protocol(
    graph: Graph,
    sources: Iterable[int],
    max_rounds: int,
    max_message_words: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    reliable: bool = False,
    reliable_config: Optional[ReliableConfig] = None,
    obs: Optional[Obs] = None,
    phase: str = "pipelined",
    shards: Optional[int] = None,
) -> Tuple[
    Dict[int, Dict[int, Tuple[int, Optional[int]]]],
    NetworkStats,
]:
    """Deliver every source's identity (with exact distance) everywhere.

    Returns ``(known, stats)`` where ``known[v][s] = (dist, parent)``;
    parents form shortest-path trees per source once the run quiesces,
    regardless of the width cap (queueing only delays convergence).
    """
    source_set = set(sources)
    programs = {
        v: _PipelinedBroadcastProgram(
            v, v in source_set, max_message_words
        )
        for v in graph.vertices()
    }
    with phase_scope(obs, phase):
        network = build_network(
            graph,
            programs,
            max_message_words=max_message_words,
            fault_plan=fault_plan,
            reliable=reliable,
            reliable_config=reliable_config,
            obs=obs,
            shards=shards,
        )
        stats = network.run(max_rounds=max_rounds, stop_when_idle=True)
    known: Dict[int, Dict[int, Tuple[int, Optional[int]]]] = {}
    for shard_known in network.apply_programs(_pipelined_outcomes):
        known.update(shard_known)
    return known, stats


class _RetraceProgram(NodeProgram):
    """Route add-path requests backward along parent pointers."""

    def __init__(
        self,
        node_id: int,
        parents: Dict[int, Optional[int]],
        initial_requests: List[int],
    ) -> None:
        self.node_id = node_id
        self.parents = parents
        self.initial_requests = initial_requests
        self.edges_added: Set[Edge] = set()

    def _relay(self, api: Api, targets: Iterable[int]) -> None:
        per_parent: Dict[int, List[int]] = {}
        for target in targets:
            if target == self.node_id:
                continue  # the trace has arrived
            parent = self.parents.get(target)
            if parent is None:
                continue  # no route (outside the ball) — drop
            self.edges_added.add(canonical_edge(self.node_id, parent))
            per_parent.setdefault(parent, []).append(target)
        for parent, batch in per_parent.items():
            api.send(parent, tuple(batch))

    def setup(self, api: Api) -> None:
        self._relay(api, self.initial_requests)

    def on_round(
        self, api: Api, round_index: int, inbox: List[Tuple[int, Any]]
    ) -> None:
        incoming: List[int] = []
        for _, batch in inbox:
            incoming.extend(batch)
        self._relay(api, incoming)


def _retrace_outcomes(programs: Dict[int, _RetraceProgram]) -> Set[Edge]:
    """Engine-agnostic result gather (picklable for sharded workers)."""
    edges: Set[Edge] = set()
    for p in programs.values():
        edges |= p.edges_added
    return edges


def path_retrace_protocol(
    graph: Graph,
    parent_maps: Dict[int, Dict[int, Optional[int]]],
    requests: Dict[int, List[int]],
    radius: int,
    max_message_words: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    reliable: bool = False,
    reliable_config: Optional[ReliableConfig] = None,
    obs: Optional[Obs] = None,
    phase: str = "retrace",
    shards: Optional[int] = None,
) -> Tuple[Set[Edge], NetworkStats]:
    """Add shortest paths P(x, u) for every request ``u in requests[x]``.

    ``parent_maps[v][u]`` must point one hop from ``v`` toward ``u`` (as
    produced by :func:`ball_broadcast_protocol`); the added edge set is the
    union of the traced paths.
    """
    programs = {
        v: _RetraceProgram(
            v, parent_maps.get(v, {}), list(requests.get(v, ()))
        )
        for v in graph.vertices()
    }
    with phase_scope(obs, phase):
        network = build_network(
            graph,
            programs,
            max_message_words=max_message_words,
            fault_plan=fault_plan,
            reliable=reliable,
            reliable_config=reliable_config,
            obs=obs,
            shards=shards,
        )
        stats = network.run(max_rounds=radius)
    edges: Set[Edge] = set()
    for shard_edges in network.apply_programs(_retrace_outcomes):
        edges |= shard_edges
    return edges, stats
