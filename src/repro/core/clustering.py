"""Complete clusterings of (contracted) graphs.

A clustering C = {C_j} is a set of disjoint vertex subsets; it is *complete*
when every vertex appears in some cluster (Sect. 2.1).  Our clusters are
identified by their center vertex, matching the paper's invariant that each
cluster's preimage is spanned by a tree of spanner edges centered at some
vertex.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set


class Clustering:
    """A complete clustering: every vertex maps to its cluster's center."""

    __slots__ = ("cluster_of",)

    def __init__(self, cluster_of: Dict[int, int]) -> None:
        self.cluster_of = cluster_of

    @classmethod
    def trivial(cls, vertices: Iterable[int]) -> "Clustering":
        """The singleton clustering {{v} | v in V} starting every round."""
        return cls({v: v for v in vertices})

    def center(self, v: int) -> int:
        """The center (identifier) of the cluster containing ``v``."""
        return self.cluster_of[v]

    def members(self) -> Dict[int, List[int]]:
        """Invert to center -> sorted member list."""
        out: Dict[int, List[int]] = {}
        for v, c in self.cluster_of.items():
            out.setdefault(c, []).append(v)
        for c in out:
            out[c].sort()
        return out

    def centers(self) -> Set[int]:
        return set(self.cluster_of.values())

    @property
    def num_clusters(self) -> int:
        return len(self.centers())

    def is_complete_over(self, vertices: Iterable[int]) -> bool:
        """Whether every vertex in ``vertices`` belongs to some cluster."""
        return all(v in self.cluster_of for v in vertices)

    def __iter__(self) -> Iterator[int]:
        return iter(self.cluster_of)

    def __len__(self) -> int:
        return len(self.cluster_of)

    def __repr__(self) -> str:
        return (
            f"Clustering(vertices={len(self.cluster_of)}, "
            f"clusters={self.num_clusters})"
        )
