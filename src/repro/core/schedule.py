"""Round/iteration schedules for the skeleton algorithm.

Two variants:

* :func:`exact_form_schedule` — the clean analysis schedule of Sect. 2,
  assuming (as the paper does "with little loss in generality") that the
  algorithm simply runs rounds i = 0, 1, ... with sampling probability
  1/s_i for s_i + 1 iterations (1 iteration when i = 0), until the
  expected nominal density reaches n; the last iteration forces p = 0.

* :func:`build_schedule` — Theorem 2's arbitrary-n schedule: rounds end
  prematurely once the nominal density exceeds
  ``log^eps n * log(log^eps n)``, after which two further rounds run with
  p = (log n)^{-eps} — the first amplifying density to at least log n, the
  second finishing the construction — and the very last iteration forces
  p = 0.

A schedule is a list of :class:`Round`; the runner contracts the clustering
after each round.  The nominal density d_{i,j} (Lemma 2) is tracked purely
from expectations — "the algorithm does not use the actual density
n/|C_{i,j}|, only its expectation, which can be computed locally".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.core.theory import s_sequence


@dataclass
class Round:
    """One round: ``iterations`` Expand calls with probability ``p``.

    When ``final_zero`` is set the round ends with one extra Expand call at
    p = 0, killing every remaining vertex (the paper's forced last call).
    """

    p: float
    iterations: int
    final_zero: bool = False

    @property
    def expand_calls(self) -> int:
        return self.iterations + (1 if self.final_zero else 0)


def _density_after(density: float, growth: float, iterations: int) -> float:
    return density * growth**iterations


def exact_form_schedule(n: int, D: int = 4) -> List[Round]:
    """The Sect. 2 schedule (n of the special form; no density trigger)."""
    if D < 4:
        raise ValueError("D must be >= 4 (Lemma 1)")
    n = max(2, n)
    seq = s_sequence(D, max(4, n))
    rounds: List[Round] = []
    density = 1.0
    for i, s_i in enumerate(seq):
        iterations = 1 if i == 0 else s_i + 1
        # Trim iterations that would push expected density far past n —
        # they would be no-ops on an already fully contracted graph.
        # (Compared in log space: s_i^iterations overflows floats.)
        needed = iterations
        need_log = math.log(n) - math.log(density)
        if iterations * math.log(s_i) > need_log:
            needed = max(1, math.ceil(need_log / math.log(s_i)))
            needed = min(needed, iterations)
        rounds.append(Round(p=1.0 / s_i, iterations=needed))
        density = _density_after(density, s_i, needed)
        if density >= n:
            break
    rounds[-1].final_zero = True
    return rounds


def build_schedule(n: int, D: int = 4, eps: float = 0.5) -> List[Round]:
    """Theorem 2's density-triggered schedule for arbitrary n.

    ``eps`` controls the maximum message length O(log^eps n) of the
    distributed implementation and, through it, the sampling probability
    (log n)^{-eps} of the two finishing rounds.
    """
    if D < 4:
        raise ValueError("D must be >= 4 (Lemma 1)")
    if not 0 < eps <= 1:
        raise ValueError("eps must be in (0, 1]")
    log_n = math.log2(max(4, n))
    if D > log_n**eps + 1e-9:
        raise ValueError(
            f"Theorem 2 requires D < log^eps n = {log_n ** eps:.2f}"
        )
    # log^eps n, clamped >= 2 so probabilities stay in (0, 1).
    q = max(2.0, log_n**eps)
    threshold = q * math.log2(q)

    seq = s_sequence(D, max(4, n))
    rounds: List[Round] = []
    density = 1.0
    for i, s_i in enumerate(seq):
        if density > threshold or density >= n:
            break
        max_iterations = 1 if i == 0 else s_i + 1
        taken = 0
        while taken < max_iterations:
            taken += 1
            density *= s_i
            if density > threshold:
                break  # premature round end (Theorem 2)
        rounds.append(Round(p=1.0 / s_i, iterations=taken))

    if density >= n:
        rounds[-1].final_zero = True
        return rounds

    # Round i*+2: amplify nominal density to at least log n.
    if density < log_n:
        j_star2 = max(1, math.ceil(math.log(log_n / density, q)))
        rounds.append(Round(p=1.0 / q, iterations=j_star2))
        density = _density_after(density, q, j_star2)

    # Round i*+3: finish; last iteration is the forced p = 0 call.
    j_star3 = max(0, math.ceil(math.log(max(1.0, n / density), q)))
    rounds.append(Round(p=1.0 / q, iterations=j_star3, final_zero=True))
    return rounds


def total_expand_calls(schedule: List[Round]) -> int:
    """Total number of Expand calls a schedule performs."""
    return sum(r.expand_calls for r in schedule)
