"""The paper's contributions: skeleton algorithm, Fibonacci spanners,
lower-bound adversary harness."""

from repro.core.clustering import Clustering
from repro.core.expand import ExpandResult, expand
from repro.core.schedule import Round, build_schedule, exact_form_schedule
from repro.core.skeleton import SkeletonTrace, build_skeleton
from repro.core.fibonacci import FibonacciParams, build_fibonacci_spanner
from repro.core.combined import build_combined_spanner
from repro.core.lower_bounds import (
    AdversaryOutcome,
    run_locality_adversary,
    tau_round_spanner,
)

__all__ = [
    "Clustering",
    "ExpandResult",
    "expand",
    "Round",
    "build_schedule",
    "exact_form_schedule",
    "SkeletonTrace",
    "build_skeleton",
    "FibonacciParams",
    "build_fibonacci_spanner",
    "build_combined_spanner",
    "AdversaryOutcome",
    "run_locality_adversary",
    "tau_round_spanner",
]
