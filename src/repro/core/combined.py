"""Corollary 1/2: the combined skeleton + Fibonacci spanner.

Theorem 7's bound for very close vertices is 2^{o+1} ~ (log n)^1.44 at the
sparsest order.  The paper fixes this by *unioning* a Fibonacci spanner
with a Theorem 2 skeleton: "Theorem 2 will give us an
O(log n / log log log n)-spanner with size O(n log log n).  By including
such a spanner with a Fibonacci spanner we obtain the distortion bounds
stated in Corollary 1."

The result is simultaneously (Corollary 2):

* an O(log n / log log log n)-spanner (from the skeleton part),
* a (3(log_phi log n + t), beta_1)-spanner,
* a (3 + rho, beta_2)-spanner,
* and a (1 + eps', beta_3)-spanner for every eps' >= eps
  (all from the Fibonacci part),

with size O(n (eps^-1 log log n)^phi).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.fibonacci import build_fibonacci_spanner
from repro.core.skeleton import build_skeleton
from repro.graphs.graph import Graph
from repro.spanner.spanner import Spanner
from repro.util.rng import SeedLike, ensure_rng


def build_combined_spanner(
    graph: Graph,
    order: Optional[int] = None,
    eps: float = 0.5,
    ell: Optional[int] = None,
    probabilities: Optional[Sequence[float]] = None,
    D: int = 4,
    seed: SeedLike = None,
) -> Spanner:
    """Union a Theorem 2 skeleton with a Fibonacci spanner (Corollary 1).

    The Fibonacci parameters (``order``, ``eps``, ``ell``,
    ``probabilities``) and the skeleton density ``D`` are forwarded to the
    respective constructions; both consume independent streams of the same
    seed.  The union inherits the skeleton's uniform multiplicative bound
    *and* the Fibonacci staged bounds, at the cost of a + O(n) size term.
    """
    rng = ensure_rng(seed)
    fib_seed = rng.getrandbits(48)
    skel_seed = rng.getrandbits(48)
    fib = build_fibonacci_spanner(
        graph,
        order=order,
        eps=eps,
        ell=ell,
        probabilities=probabilities,
        seed=fib_seed,
    )
    skeleton = build_skeleton(graph, D=D, seed=skel_seed)
    metadata = {
        "algorithm": "combined-spanner",
        "fibonacci_size": fib.size,
        "skeleton_size": skeleton.size,
        "order": fib.metadata["order"],
        "ell": fib.metadata["ell"],
        "eps": eps,
        "D": D,
        "level_sizes": fib.metadata["level_sizes"],
    }
    return Spanner(graph, fib.edges | skeleton.edges, metadata)


def distributed_combined_spanner(
    graph: Graph,
    order: Optional[int] = None,
    eps: float = 0.5,
    ell: Optional[int] = None,
    t: Optional[float] = None,
    D: int = 4,
    seed: SeedLike = None,
) -> Spanner:
    """Corollary 2, distributed: union of the two protocols' outputs.

    Both constructions run as message-passing protocols; the metadata
    aggregates their :class:`NetworkStats` (the rounds add — the paper
    runs them one after the other) under ``"network_stats"``.
    """
    from repro.distributed.fibonacci_protocol import (
        distributed_fibonacci_spanner,
    )
    from repro.distributed.skeleton_protocol import distributed_skeleton

    rng = ensure_rng(seed)
    fib = distributed_fibonacci_spanner(
        graph, order=order, eps=eps, ell=ell, t=t,
        seed=rng.getrandbits(48),
    )
    skeleton = distributed_skeleton(
        graph, D=D, eps=eps, seed=rng.getrandbits(48)
    )
    stats = fib.metadata["network_stats"].merged_with(
        skeleton.metadata["network_stats"]
    )
    metadata = {
        "algorithm": "combined-spanner-distributed",
        "fibonacci_size": fib.size,
        "skeleton_size": skeleton.size,
        "order": fib.metadata["order"],
        "ell": fib.metadata["ell"],
        "eps": eps,
        "D": D,
        "network_stats": stats,
        "budgeted_rounds": (
            skeleton.metadata["budgeted_rounds"]
            + fib.metadata["network_stats"].rounds
        ),
    }
    return Spanner(graph, fib.edges | skeleton.edges, metadata)


def corollary1_uniform_bound(n: int, D: int = 4) -> float:
    """The uniform multiplicative bound the skeleton part contributes
    (Theorem 2's distortion, the Corollary 1 first line)."""
    from repro.core.theory import skeleton_distortion_bound

    return skeleton_distortion_bound(n, D)
