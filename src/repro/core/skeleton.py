"""The linear-size spanner/skeleton algorithm of Section 2.

The algorithm runs a sequence of rounds; each round grows a clustering of
the current contracted graph by repeated :func:`repro.core.expand.expand`
calls, then contracts the final clusters into single vertices for the next
round.  Contraction keeps the spanner size linear; its price is the
``2^{log* n}`` factor in distortion (the "doubling effect" of Sect. 2).

Guarantees reproduced (Theorem 2 / Lemmas 5–6):

* expected size  D n / e + O(n log D);
* distortion     O(eps^-1 2^{log* n - log* D} log_D n);
* the spanner contains, at every moment, a spanning tree of pi^-1(C) for
  every live cluster C (the key invariant; tested property).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.clustering import Clustering
from repro.core.expand import expand
from repro.core.schedule import Round, build_schedule, exact_form_schedule
from repro.graphs.contraction import contract
from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.spanner.spanner import Spanner
from repro.util.rng import Prf, SeedLike, ensure_rng


@dataclass
class RoundTrace:
    """Per-round telemetry for tests and benches."""

    p: float
    expand_calls: int
    vertices_before: int
    vertices_after: int
    clusters_after: int
    died: int
    edges_added: int
    #: Lemma 2-style bound on cluster radius w.r.t. the original graph.
    radius_bound: int


@dataclass
class SkeletonTrace:
    """Full execution trace of one skeleton construction."""

    schedule: List[Round]
    rounds: List[RoundTrace] = field(default_factory=list)

    @property
    def total_expand_calls(self) -> int:
        return sum(r.expand_calls for r in self.rounds)

    @property
    def max_radius_bound(self) -> int:
        return max((r.radius_bound for r in self.rounds), default=0)


def _prf_sampler(prf: Prf, call_index: int, p: float) -> Callable[[int], bool]:
    """Shared-randomness cluster sampler for Expand call ``call_index``."""

    def sampler(center: int) -> bool:
        return prf(call_index, center) < p

    return sampler


def build_skeleton(
    graph: Graph,
    D: int = 4,
    eps: float = 0.5,
    seed: SeedLike = None,
    schedule: Optional[List[Round]] = None,
    exact_form: bool = False,
    prf: Optional[Prf] = None,
    collect_preimages: bool = False,
    collect_certificates: bool = False,
) -> Spanner:
    """Build a linear-size skeleton/spanner of ``graph``.

    Parameters mirror Theorem 2: ``D >= 4`` controls density (expected size
    ~ D n / e + O(n log D)); ``eps`` is the message-length exponent, which
    in the sequential setting only shapes the schedule's finishing rounds.
    ``exact_form=True`` uses the Sect. 2 special-form schedule instead of
    Theorem 2's density-triggered one (ablation E12); an explicit
    ``schedule`` overrides both.  ``prf(call_index, center) -> [0, 1)``
    injects shared randomness (see :func:`repro.util.rng.make_prf`) so
    the distributed protocol can be cross-validated call by call.
    ``collect_preimages=True`` records, after every Expand call, the
    original-vertex preimage of each live cluster (metadata key
    ``"preimages"``, one dict per call) — the hook behind the
    key-invariant test that "S contains a spanning tree of pi^-1(C)".
    ``collect_certificates=True`` additionally records, for every host
    edge the algorithm removes from consideration, the Lemma 4 distance
    bound it owes — ``(2j + 2)(2 r_i + 1) - 1`` for death removals and
    ``2 r_i`` for contraction removals — under metadata key
    ``"certificates"`` as ``(edge, bound)`` pairs (implies preimages).

    Returns a :class:`Spanner` whose metadata contains the execution
    trace under ``"trace"``.
    """
    rng = ensure_rng(seed)
    if collect_certificates:
        collect_preimages = True
    if schedule is None:
        if exact_form:
            schedule = exact_form_schedule(graph.n, D)
        else:
            # Theorem 2 caps D < log^eps n; for small graphs fall back to
            # the exact-form schedule, which has no such constraint.
            try:
                schedule = build_schedule(graph.n, D, eps)
            except ValueError:
                schedule = exact_form_schedule(graph.n, D)

    trace = SkeletonTrace(schedule=schedule)
    spanner_edges: Set[Edge] = set()
    cluster_counts: List[int] = []

    # The working (contracted) graph, its edge witnesses into the original
    # graph, and per-supervertex radius bound w.r.t. the original graph.
    work = graph.copy()
    witness: Dict[Edge, Edge] = {e: e for e in work.edges()}
    radius: Dict[int, int] = {v: 0 for v in work.vertices()}
    preimage: Dict[int, FrozenSet[int]] = {
        v: frozenset([v]) for v in work.vertices()
    }
    preimages: List[Dict[int, FrozenSet[int]]] = []
    edge_snapshots: List[FrozenSet[Edge]] = []
    certificates: List[Tuple[Edge, int]] = []

    for round_spec in schedule:
        if work.n == 0:
            break
        vertices_before = work.n
        round_died = 0
        round_edges = 0
        clustering = Clustering.trivial(work.vertices())
        probabilities = [round_spec.p] * round_spec.iterations
        if round_spec.final_zero:
            probabilities.append(0.0)
        calls_done = 0
        for p in probabilities:
            if work.n == 0:
                break
            sampler: Optional[Callable[[int], bool]] = None
            if prf is not None:
                call_index = trace.total_expand_calls + calls_done
                sampler = _prf_sampler(prf, call_index, p)
            result = expand(work, clustering, p, rng, sampler=sampler)
            # Lemma 4(1): every host edge between a dying supervertex u
            # and a work-neighbor v — the whole pi^-1(u) x pi^-1(v)
            # product, not just the witness — gets a spanner path of
            # length at most (2j + 2)(2 r_i + 1) - 1, where j is the
            # clustering radius at this call, r_i the supervertex radius.
            if collect_certificates:
                r_now = max(
                    (radius[v] for v in work.vertices()), default=0
                )
                death_bound = (
                    (2 * calls_done + 2) * (2 * r_now + 1) - 1
                )
                for u in result.died:
                    neighbor_pre = {
                        b: work_v
                        for work_v in work.neighbors(u)
                        for b in preimage[work_v]
                    }
                    for a in preimage[u]:
                        for b in graph.neighbors(a):
                            if b in neighbor_pre:
                                certificates.append(
                                    (canonical_edge(a, b), death_bound)
                                )
            calls_done += 1
            for e in result.selected_edges:
                spanner_edges.add(witness[canonical_edge(*e)])
            round_edges += len(result.selected_edges)
            round_died += len(result.died)
            for v in result.died:
                work.remove_vertex(v)
            clustering = result.clustering
            cluster_counts.append(clustering.num_clusters)
            if collect_preimages:
                snapshot: Dict[int, FrozenSet[int]] = {}
                for sv, center in clustering.cluster_of.items():
                    snapshot[center] = snapshot.get(
                        center, frozenset()
                    ) | preimage[sv]
                preimages.append(snapshot)
                edge_snapshots.append(frozenset(spanner_edges))

        # Contract the round's final clustering (Lemma 2's doubling step):
        # a radius-j cluster of radius-r supervertices spans a tree of
        # radius j (2r + 1) + r in the original graph.
        r_max = max((radius[v] for v in work.vertices()), default=0)
        new_radius_bound = calls_done * (2 * r_max + 1) + r_max
        if work.n > 0:
            members = clustering.members()
            work, witness = contract(work, clustering.cluster_of, witness)
            radius = {
                center: new_radius_bound for center in members
            }
            preimage = {
                center: frozenset().union(
                    *(preimage[sv] for sv in svs)
                )
                for center, svs in members.items()
            }
            # Lemma 4(2): host edges with both endpoints inside a
            # contracted cluster owe a spanner path of length <= 2 r.
            if collect_certificates:
                for cluster_preimage in preimage.values():
                    for a in cluster_preimage:
                        for b in graph.neighbors(a):
                            if a < b and b in cluster_preimage:
                                certificates.append(
                                    ((a, b), 2 * new_radius_bound)
                                )
        trace.rounds.append(
            RoundTrace(
                p=round_spec.p,
                expand_calls=calls_done,
                vertices_before=vertices_before,
                vertices_after=work.n,
                clusters_after=work.n,
                died=round_died,
                edges_added=round_edges,
                radius_bound=new_radius_bound,
            )
        )

    metadata: Dict[str, Any] = {
        "algorithm": "pettie-skeleton",
        "D": D,
        "eps": eps,
        "rounds": len(trace.rounds),
        "expand_calls": trace.total_expand_calls,
        "max_radius_bound": trace.max_radius_bound,
        "cluster_counts": cluster_counts,
        "trace": trace,
    }
    if collect_preimages:
        metadata["preimages"] = preimages
        metadata["edge_snapshots"] = edge_snapshots
    if collect_certificates:
        metadata["certificates"] = certificates
    return Spanner(graph, spanner_edges, metadata)


def skeleton_expected_size(n: int, D: int) -> float:
    """Convenience re-export of Lemma 6's explicit size bound."""
    from repro.core.theory import skeleton_size_bound

    return skeleton_size_bound(n, D)
