"""Closed-form bounds from the paper, for benches to compare against.

Each function cites the lemma/theorem it encodes.  Where the paper states an
O(.) bound, we implement the explicit expression proved in the text (with
its constants), so measured quantities can be checked against it directly.
"""

from __future__ import annotations

import math
from typing import List, Tuple

#: the golden ratio phi = (1 + sqrt 5)/2 (Sect. 4).
PHI = (1 + math.sqrt(5)) / 2

#: gamma = ln 2 - 1/e, the constant in Lemma 6's X^t_p bound.
GAMMA = math.log(2) - 1 / math.e


def log_star(n: float, base: float = 2.0) -> int:
    """Iterated logarithm log*_base(n): #logs until the value drops <= 1."""
    if n <= 1:
        return 0
    count = 0
    value = float(n)
    while value > 1:
        value = math.log(value, base)
        count += 1
    return count


# ----------------------------------------------------------------------
# Section 2: the (s_i) sequence and skeleton bounds
# ----------------------------------------------------------------------

def s_sequence(D: int, limit: float) -> List[int]:
    """The sequence s_0 = s_1 = D, s_i = s_{i-1}^{s_{i-1}} (Sect. 2),
    truncated once a term exceeds ``limit`` (they grow as a power tower).
    """
    if D < 4:
        raise ValueError("the analysis requires D >= 4 (Lemma 1)")
    seq = [D, D]
    while seq[-1] <= limit:
        prev = seq[-1]
        # s^s overflows floats quickly; cap via logarithm first.
        if prev * math.log(prev) > math.log(limit) + math.log(4):
            nxt = int(limit) + 1
        else:
            nxt = prev**prev
        seq.append(nxt)
    return seq


def num_phases(n: int, D: int) -> int:
    """The number of rounds L with n = s_1^2 ... s_{L-1}^2 s_L (Lemma 1(1)
    gives L <= log* n - log* D + 1); for arbitrary n, the L at which the
    cumulative density product first reaches n.
    """
    seq = s_sequence(D, n)
    density = 1.0
    for L in range(1, len(seq)):
        density *= seq[L] if L == len(seq) - 1 else seq[L] ** 2
        if density >= n:
            return L
    return max(1, len(seq) - 1)


def skeleton_size_bound(n: int, D: int) -> float:
    """Lemma 6's explicit expected-size bound:

    n (D/e + 1 - 2/e + (1 + 1/D)(ln(D+2) - gamma + 1) + (ln D + 0.2)/D).
    """
    if D < 4:
        raise ValueError("Lemma 6 requires D >= 4")
    return n * (
        D / math.e
        + 1
        - 2 / math.e
        + (1 + 1 / D) * (math.log(D + 2) - GAMMA + 1)
        + (math.log(D) + 0.2) / D
    )


def skeleton_distortion_bound(n: int, D: int, eps: float = 1.0) -> float:
    """Theorem 2's distortion bound eps^-1 2^{log* n - log* D + 7} log_D n.

    With ``eps = 1`` this reduces to (a constant times) Lemma 5's
    O(2^{log* n - log* D} log_D n) bound for the exact-n algorithm.
    """
    if n < 2:
        return 1.0
    return (
        (1.0 / eps)
        * 2.0 ** (log_star(n) - log_star(D) + 7)
        * math.log(n, D)
    )


def skeleton_time_bound(n: int, D: int, eps: float) -> float:
    """Theorem 2: O(t + log n) rounds with t = eps^-1 2^{log* n - log* D}
    log_D n.  Returned without the O-constant.
    """
    t = (1.0 / eps) * 2.0 ** (log_star(n) - log_star(D)) * math.log(n, D)
    return t + math.log2(max(2, n))


# ----------------------------------------------------------------------
# Section 4: Fibonacci numbers, sampling probabilities, C/I bounds
# ----------------------------------------------------------------------

def fib(k: int) -> int:
    """The k-th Fibonacci number (F_0 = 0, F_1 = 1)."""
    if k < 0:
        raise ValueError("k must be >= 0")
    a, b = 0, 1
    for _ in range(k):
        a, b = b, a + b
    return a


def fibonacci_spanner_order_max(n: int) -> int:
    """The maximum order o = floor(log_phi log n) (Sect. 4.1)."""
    if n < 4:
        return 1
    return max(1, int(math.log(math.log(n, 2), PHI)))


def golden_ratio_exponent(o: int) -> float:
    """alpha = 1/(F_{o+3} - 1), the size exponent of Lemma 8."""
    return 1.0 / (fib(o + 3) - 1)


def fib_sampling_probabilities(n: int, o: int, ell: float) -> List[float]:
    """Lemma 8's sampling probabilities q_1 .. q_o.

    q_i = n^{-f_i alpha} * ell^{-g_i beta + h_i}, with
    f_i = g_i = F_{i+2} - 1,  h_i = F_{i+3} - (i + 2),
    alpha = 1/(F_{o+3} - 1),  beta = phi.

    Probabilities are clamped into (0, 1]; q_{o+1} = 1/n is implicit.
    """
    if o < 1:
        raise ValueError("order must be >= 1")
    if ell <= 1:
        raise ValueError("ell must exceed 1")
    alpha = golden_ratio_exponent(o)
    qs = []
    for i in range(1, o + 1):
        f_i = fib(i + 2) - 1
        h_i = fib(i + 3) - (i + 2)
        log_q = -f_i * alpha * math.log(n) + (-f_i * PHI + h_i) * math.log(ell)
        qs.append(min(1.0, math.exp(log_q)))
    return qs


def fibonacci_size_bound(n: int, o: int, ell: float) -> float:
    """Lemma 8: E|S| <= o n + O(n^{1 + 1/(F_{o+3}-1)} ell^phi).

    Returned without the O-constant (we use constant 1, plus the forest
    term), which is what shape-checks in the benches compare growth against.
    """
    alpha = golden_ratio_exponent(o)
    return o * n + n ** (1 + alpha) * ell**PHI


def lemma9_recurrences(ell: int, i_max: int) -> Tuple[List[float], List[float]]:
    """Exact C^i_ell and I^i_ell values via Lemma 9's recurrences.

    I^0 = 1, I^1 = ell + 1, C^0 = 1, C^1 = ell + 2, and for i >= 2:
      I^i = 2 I^{i-2} + I^{i-1} + ell^i + (ell - 1) ell^{i-2}
      C^i = max(ell C^{i-1},
                (ell - 1) C^{i-1} + 2(I^{i-2} + I^{i-1}) + ell^{i-1})

    Returns ``(C, I)`` as lists indexed by i in [0, i_max].
    """
    if ell < 1:
        raise ValueError("ell must be >= 1")
    I = [1.0, float(ell + 1)]
    C = [1.0, float(ell + 2)]
    for i in range(2, i_max + 1):
        I.append(
            2 * I[i - 2] + I[i - 1] + float(ell) ** i
            + (ell - 1) * float(ell) ** (i - 2)
        )
        C.append(
            max(
                ell * C[i - 1],
                (ell - 1) * C[i - 1] + 2 * (I[i - 2] + I[i - 1])
                + float(ell) ** (i - 1),
            )
        )
    return C[: i_max + 1], I[: i_max + 1]


def lemma10_i_bound(ell: int, i: int) -> float:
    """Lemma 10's closed-form upper bound on I^i_ell."""
    if ell == 1:
        return (2 ** (i + 2)) / 3  # exact value is (2^{i+2} - 1 or 2)/3
    if ell == 2:
        return (i + 2 / 3) * 2**i + 1 / 3
    c_prime = 1 + (2 * ell + 1) / ((ell + 1) * (ell - 2))
    return c_prime * float(ell) ** i


def lemma10_c_bound(ell: int, i: int) -> float:
    """Lemma 10's closed-form upper bound on C^i_ell."""
    if ell == 1:
        return float(2 ** (i + 1))
    if ell == 2:
        return 3 * (i + 1) * 2.0**i
    c_prime = 1 + (2 * ell + 1) / ((ell + 1) * (ell - 2))
    c_ell = 3 + (6 * ell - 2) / (ell * (ell - 2))
    return min(
        c_ell * float(ell) ** i,
        float(ell) ** i + 2 * c_prime * i * float(ell) ** (i - 1),
    )


def theorem7_distortion_bound(d: int, o: int, eps: float) -> float:
    """Theorem 7's staged multiplicative distortion bound at distance d.

    With ell = 3o/eps + 2:
      d = 1        ->  2^{o+1}
      d = 2^o      ->  3(o + 1)
      d = ell'^o   ->  3 + (6 ell' - 2)/(ell' (ell' - 2))   for ell' >= 3
      d = (3o/e')^o -> 1 + e'   for e' in [eps, 1]

    For general d we take the bound of the largest stage whose threshold
    d meets, i.e. the best (smallest) multiplier the theorem guarantees.
    """
    if d < 1:
        raise ValueError("d must be >= 1")
    ell_max = 3 * o / eps + 2
    best = float(2 ** (o + 1))
    if d >= 2**o:
        best = min(best, 3.0 * (o + 1))
    # stage 3: largest integer ell' >= 3 with ell'^o <= d (capped by ell-2).
    if d >= 3**o:
        ell_prime = min(int(d ** (1.0 / o) + 1e-9), int(ell_max) - 2)
        if ell_prime >= 3:
            best = min(
                best,
                3 + (6 * ell_prime - 2) / (ell_prime * (ell_prime - 2)),
            )
    # stage 4: smallest eps' in [eps, 1] with (3o/eps')^o <= d.
    if d >= (3 * o) ** o:
        eps_prime = max(eps, (3 * o) / d ** (1.0 / o))
        if eps_prime <= 1:
            best = min(best, 1 + eps_prime)
    return best


def corollary2_betas(
    n: int, eps: float, t: float, ell_prime: int = 3
) -> Tuple[float, float, float]:
    """Corollary 2's additive terms for the combined spanner.

    With o = log_phi log n and message length O(n^{1/t}), the spanner is
    simultaneously a (3(log_phi log n + t), beta_1)-, (3 + rho, beta_2)-
    and (1 + eps', beta_3)-spanner, where

      beta_1 = 2^t (log n)^{log_phi 2},
      beta_2 = ell'^{log_phi log n + t}   (rho = (6 ell' - 2)/(ell'(ell'-2))),
      beta_3 = (3 (log_phi log n + t) / eps')^{log_phi log n + t}.

    Returns ``(beta_1, beta_2, beta_3)`` evaluated at eps' = eps.
    """
    if n < 4:
        raise ValueError("n too small for the asymptotic formulas")
    log_n = math.log2(n)
    o_plus_t = math.log(log_n, PHI) + t
    beta_1 = 2**t * log_n ** math.log(2, PHI)
    beta_2 = float(ell_prime) ** o_plus_t
    beta_3 = (3 * o_plus_t / eps) ** o_plus_t
    return beta_1, beta_2, beta_3


def elkin_zhang_beta(n: int, eps: float, t: float) -> float:
    """The beta of Elkin–Zhang's sparsest spanner (Sect. 1.2):

    beta = (eps^-1 t^2 log n log log n)^{t log log n}.

    The paper's comparison target for the Fibonacci beta (bench E15's
    asymptotic sidebar).
    """
    if n < 16:
        raise ValueError("n too small for log log n")
    log_n = math.log2(n)
    loglog_n = math.log2(log_n)
    base = (t**2) * log_n * loglog_n / eps
    return base ** (t * loglog_n)


# ----------------------------------------------------------------------
# Per-protocol budgets for the differential fuzzer (repro.fuzz)
# ----------------------------------------------------------------------

def baswana_sen_size_bound(n: int, k: int) -> float:
    """The corrected Baswana–Sen size recurrence (Lemma 6 discussion):

    E|S| <= k n + (1 + log2 k) n^{1 + 1/k}.

    The log k factor is this paper's correction to the commonly cited
    O(k n^{1+1/k}); the explicit (1 + log2 k) constant makes the bound a
    usable per-run budget for small n (a size-0 additive constant would
    reject honest runs on tiny hosts).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if n < 1:
        return 0.0
    if k == 1:
        # k = 1 returns the whole graph; the only bound is m <= n(n-1)/2.
        return n * (n - 1) / 2
    return k * n + (1 + math.log2(k)) * n ** (1 + 1 / k)


def additive2_size_bound(n: int) -> float:
    """Size budget for the additive-2 construction (Sect. 1.2 baseline):

    with threshold T = ceil(sqrt(n log n)), light edges contribute
    <= n T, heavy-vertex joining edges <= n, and the dominator BFS
    forests <= 4 sqrt(n log n) * n edges (twice the expected 2 n ln n / T
    dominators, each owning a spanning forest) — O(n^{3/2} log^{1/2} n)
    with explicit constants.
    """
    if n < 2:
        return 1.0
    log_n = max(1.0, math.log(n))
    threshold = math.ceil(math.sqrt(n * log_n))
    return n * threshold + n + 4 * math.sqrt(n * log_n) * n


def deterministic_threshold(D: int, i: int) -> int:
    """The superphase-``i`` degree threshold t_i = (D+1)^(2^i) - 1.

    The doubly-exponential threshold schedule of Elkin–Matar
    (arXiv:1907.10895, superclustering phases): a cluster is *high* in
    superphase i iff it sees >= t_i distinct adjacent clusters.
    """
    if D < 1:
        raise ValueError("D must be >= 1")
    if i < 0:
        raise ValueError("superphase index must be >= 0")
    return (D + 1) ** (2**i) - 1


def deterministic_phase_count(n: int, D: int) -> int:
    """Superphase budget L of the deterministic protocol.

    Superphase i shrinks the cluster count to
    n_{i+1} <= n_i / (t_i + 1) = n_i / (D+1)^(2^i) (each center absorbs
    its >= t_i + 1 closed-neighborhood clusters, and center closed
    neighborhoods are disjoint because centers of a distance-2 ruling
    set are pairwise at cluster-distance >= 3).  Once t_i >= n every
    cluster is low-degree and dies, so the protocol halts by the first
    superphase i with t_i >= n — L = i + 1 superphases in total
    (cf. the O(log log n) superclustering phases of arXiv:1907.10895).
    """
    if D < 1:
        raise ValueError("D must be >= 1")
    if n < 1:
        return 1
    i = 0
    while deterministic_threshold(D, i) < n:
        i += 1
    return i + 1


def deterministic_radius_bound(i: int) -> int:
    """Cluster-radius bound r_i = (5^i - 1)/2 at superphase i.

    A wave-1 joiner re-roots its radius-r tree (depth <= 2r) under a
    center vertex, and a wave-2 joiner hangs under a wave-1 joiner, so
    r_{i+1} <= r_i + 2 (2 r_i + 1) = 5 r_i + 2 with r_0 = 0.
    """
    if i < 0:
        raise ValueError("superphase index must be >= 0")
    return (5**i - 1) // 2


def deterministic_size_bound(n: int, D: int) -> float:
    """Size budget of the deterministic skeleton: n (D+1) L + n.

    A cluster dying in superphase i keeps < t_i interconnection edges
    (one minimum boundary edge per adjacent cluster), so deaths cost
    <= n_i (t_i - 1) <= n (D+1)^(2^i) / (D+1)^(2^i - 1) = n (D+1) edges
    per superphase; joins add one edge each, <= n overall.  Linear in n
    for fixed D, like Lemma 6's randomized bound — the deterministic
    construction trades its larger constant for a far tighter
    worst-case stretch (:func:`deterministic_stretch_bound`).
    """
    if n < 1:
        return 0.0
    return float(n * (D + 1) * deterministic_phase_count(n, D) + n)


def deterministic_stretch_bound(n: int, D: int) -> float:
    """Worst-case stretch 2 * 5^(L-1) - 1 of the deterministic skeleton.

    A host edge (u, v) is either eventually intra-cluster (tree detour
    <= 2 r_i when the shared cluster dies) or covered when u's cluster
    dies in superphase i by its interconnection edge to v's cluster:
    detour <= 2 r_i + 1 + 2 r_i = 4 r_i + 1 = 2 * 5^i - 1 tree edges.
    Deaths happen no later than superphase L - 1, giving 2 * 5^(L-1) - 1
    — a worst-case (not with-high-probability) guarantee, unlike the
    randomized skeleton's Theorem 2 distortion.
    """
    phases = deterministic_phase_count(n, D)
    return float(4 * deterministic_radius_bound(phases - 1) + 1)


def protocol_size_budget(protocol: str, n: int, **params: float) -> float:
    """The analytic edge-count budget the fuzzer holds ``protocol`` to.

    Dispatches to the closed-form bound of the matching lemma/theorem:
    ``skeleton`` -> :func:`skeleton_size_bound` (Lemma 6),
    ``baswana_sen`` -> :func:`baswana_sen_size_bound` (corrected Lemma 6
    recurrence), ``additive`` -> :func:`additive2_size_bound`,
    ``fibonacci`` -> :func:`fibonacci_size_bound` (Lemma 8).  ``survey``
    builds no spanner and has no size budget (raises ``ValueError``).
    Keyword parameters carry the per-protocol knobs (``D``, ``k``,
    ``order``, ``ell``).
    """
    if protocol == "skeleton":
        return skeleton_size_bound(n, int(params.get("D", 4)))
    if protocol == "baswana_sen":
        return baswana_sen_size_bound(n, int(params.get("k", 3)))
    if protocol == "additive":
        return additive2_size_bound(n)
    if protocol == "fibonacci":
        order = int(params.get("order", 2))
        eps = float(params.get("eps", 0.5))
        ell = float(params.get("ell", 3 * order / eps + 2))
        return fibonacci_size_bound(n, order, ell)
    if protocol == "deterministic":
        # Elkin-Matar-style superclustering (arXiv:1907.10895): a
        # worst-case n(D+1)L + n bound, not an expectation.
        return deterministic_size_bound(n, int(params.get("D", 4)))
    raise ValueError(f"no size budget for protocol {protocol!r}")


def protocol_stretch_budget(
    protocol: str, n: int, **params: float
) -> Tuple[float, float]:
    """The ``(alpha, beta)`` stretch guarantee the fuzzer verifies.

    ``skeleton`` -> Theorem 2's distortion bound (multiplicative),
    ``baswana_sen`` -> (2k - 1, 0), ``additive`` -> (1, 2).
    ``fibonacci``'s guarantee is staged by distance (Theorem 7); its
    uniform envelope here is the d = 1 stage 2^{o+1} (the per-distance
    curve is checked via :func:`theorem7_distortion_bound`).  ``survey``
    is not a spanner construction (raises ``ValueError``).
    """
    if protocol == "skeleton":
        D = int(params.get("D", 4))
        eps = float(params.get("eps", 0.5))
        return skeleton_distortion_bound(n, D, eps), 0.0
    if protocol == "baswana_sen":
        return 2 * int(params.get("k", 3)) - 1, 0.0
    if protocol == "additive":
        return 1.0, 2.0
    if protocol == "fibonacci":
        order = int(params.get("order", 2))
        return float(2 ** (order + 1)), 0.0
    if protocol == "deterministic":
        # Worst-case 4 r_{L-1} + 1 detour (arXiv:1907.10895 structure;
        # see deterministic_stretch_bound) — purely multiplicative.
        return deterministic_stretch_bound(n, int(params.get("D", 4))), 0.0
    raise ValueError(f"no stretch budget for protocol {protocol!r}")


# ----------------------------------------------------------------------
# Section 3: lower-bound predictions
# ----------------------------------------------------------------------

def theorem3_expected_stretch(
    d: int, tau: int, c: float, mu: int
) -> float:
    """Theorem 3's lower bound on E[delta_H(u, v)] for a pair at distance d:

    d + 2(1 - 1/c)/(tau + 2) * (d - 3 tau - 11) - 1.
    """
    discount = max(0.0, (d - 3 * tau - 11) / (tau + 2))
    return d + 2 * (1 - 1 / c) * discount - 1


def theorem5_time_lower_bound(n: int, delta: float, beta: float) -> float:
    """Theorem 5: any additive-beta spanner of size n^{1+delta} needs
    Omega(sqrt(n^{1-delta} / beta)) rounds.  Returned without the constant.
    """
    return math.sqrt(n ** (1 - delta) / beta)


def theorem6_time_lower_bound(n: int, sigma: float, eps: float) -> float:
    """Theorem 6: d + O(d^{1-eps}) spanners of size n^{1+sigma} need
    Omega(n^{eps (1 - sigma)/(1 + eps)}) rounds.
    """
    return n ** (eps * (1 - sigma) / (1 + eps))


def critical_edge_discard_probability(c: float, mu: int) -> float:
    """p = 1 - 1/c - 1/(c mu): the per-critical-edge discard probability a
    size-(n^{1+delta}) spanner is forced into on G(tau, chi, mu) (Sect. 3).
    """
    return 1 - 1 / c - 1 / (c * mu)
