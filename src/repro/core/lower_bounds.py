"""Empirical harness for the Section 3 lower bounds.

The proofs of Theorems 3–6 argue about *any* algorithm that (a) runs for
``tau`` rounds and (b) outputs at most ``n^{1+delta}`` edges in expectation
on G(tau, chi, mu):

1. only block edges may be discarded — chain edges look cycle-free within
   every ``tau``-neighborhood, so a correct algorithm must keep them;
2. by symmetry (identical unlabeled ``tau``-neighborhoods + randomly
   permuted identifiers) every block edge is discarded with the *same*
   probability, which the size budget forces to be at least
   ``p = 1 - 1/c - 1/(c mu)``.

:func:`tau_round_spanner` realizes the best such algorithm the adversary
permits: keep all chains, keep each block edge i.i.d. with probability
``1 - p``.  :func:`run_locality_adversary` repeats it and compares measured
additive distortion on the witness pair against the theorems' predictions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from repro.graphs.graph import Edge, canonical_edge
from repro.graphs.lower_bound import LowerBoundGraph
from repro.graphs.properties import bfs_distances
from repro.spanner.spanner import Spanner
from repro.util.rng import SeedLike, ensure_rng


def forced_discard_probability(lbg: LowerBoundGraph, c: float) -> float:
    """p = 1 - 1/c - 1/(c mu): the discard rate a size budget of
    ``m / c`` block edges forces (Sect. 3)."""
    if c < 1:
        raise ValueError("c must be >= 1")
    return max(0.0, 1 - 1 / c - 1 / (c * lbg.mu))


def tau_round_spanner(
    lbg: LowerBoundGraph,
    discard_probability: float,
    seed: SeedLike = None,
) -> Spanner:
    """The canonical tau-round algorithm output on G(tau, chi, mu).

    Keeps every chain edge (forced by correctness within tau rounds) and
    discards each block edge independently with ``discard_probability``
    (forced to be uniform across block edges by the symmetry argument).

    Correctness patch: a vertex whose block edges were *all* discarded
    would be cut off from its block, which no correct spanner algorithm
    may do — such a vertex keeps one edge to its block's min-id
    counterpart.  At the probabilities the theorems force (p <= 1 - 1/c)
    with chi >= 6 this fires with probability p^chi per vertex and barely
    perturbs the statistics.
    """
    if not 0 <= discard_probability <= 1:
        raise ValueError("discard probability must be in [0, 1]")
    rng = ensure_rng(seed)
    kept: Set[Edge] = set(lbg.chain_edges)
    for e in sorted(lbg.block_edges):
        if rng.random() >= discard_probability:
            kept.add(e)
    for i in range(lbg.mu):
        lefts, rights = lbg.left[i], lbg.right[i]
        covered = {
            v
            for e in kept & lbg.block_edges
            for v in e
            if v in set(lefts) | set(rights)
        }
        for v in lefts:
            if v not in covered:
                kept.add(canonical_edge(v, rights[0]))
        for v in rights:
            if v not in covered:
                kept.add(canonical_edge(v, lefts[0]))
    return Spanner(
        lbg.graph,
        kept,
        metadata={
            "algorithm": "tau-round-adversary",
            "tau": lbg.tau,
            "discard_probability": discard_probability,
        },
    )


@dataclass
class AdversaryOutcome:
    """Aggregated measurements from repeated adversary runs."""

    trials: int
    discard_probability: float
    #: measured / predicted expected number of discarded critical edges.
    mean_discarded_criticals: float
    predicted_discarded_criticals: float
    #: measured / predicted additive distortion on the witness pair.
    mean_additive_distortion: float
    predicted_additive_distortion: float
    #: measured mean spanner size (edges).
    mean_size: float
    witness_distance: int

    @property
    def distortion_ratio(self) -> float:
        """measured / predicted — should hover around (or above) 1."""
        if self.predicted_additive_distortion == 0:
            return float("inf")
        return (
            self.mean_additive_distortion / self.predicted_additive_distortion
        )


def run_locality_adversary(
    lbg: LowerBoundGraph,
    c: float = 2.0,
    trials: int = 20,
    seed: SeedLike = None,
    discard_probability: Optional[float] = None,
) -> AdversaryOutcome:
    """Measure additive distortion forced on G(tau, chi, mu).

    ``c`` sets the size budget (the spanner may keep about a 1/c fraction
    of block edges); ``discard_probability`` overrides the derived ``p``.
    The witness pair's shortest path crosses every critical edge, and every
    discarded critical edge costs +2 (the block detour), so the prediction
    is ``E[additive] = 2 p mu`` — Theorem 3's engine.
    """
    rng = ensure_rng(seed)
    p = (
        discard_probability
        if discard_probability is not None
        else forced_discard_probability(lbg, c)
    )
    u, v = lbg.witness_pair()
    base = lbg.witness_distance()

    total_discarded = 0
    total_additive = 0
    total_size = 0
    for _ in range(trials):
        spanner = tau_round_spanner(lbg, p, rng)
        discarded = sum(
            1 for e in lbg.critical_edges if e not in spanner.edges
        )
        dist = bfs_distances(spanner.subgraph(), u).get(v)
        if dist is None:
            raise AssertionError(
                "adversary spanner disconnected the witness pair"
            )
        total_discarded += discarded
        total_additive += dist - base
        total_size += spanner.size

    return AdversaryOutcome(
        trials=trials,
        discard_probability=p,
        mean_discarded_criticals=total_discarded / trials,
        predicted_discarded_criticals=p * lbg.mu,
        mean_additive_distortion=total_additive / trials,
        predicted_additive_distortion=2 * p * lbg.mu,
        mean_size=total_size / trials,
        witness_distance=base,
    )
