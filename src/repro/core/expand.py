"""The Expand procedure (Fig. 2) — the engine of the Section 2 algorithm.

``Expand(G_in, C_in, p)`` samples each cluster of the complete clustering
``C_in`` with probability ``p``, then grows the sampled clusters by one hop:

* a vertex whose own cluster was sampled stays put (contributes no edge);
* a vertex adjacent to a sampled cluster joins one of them, and the
  connecting edge enters the spanner (line 4);
* a vertex adjacent only to unsampled clusters contributes one edge to
  *each* adjacent cluster (line 7) and is marked **dead** — removed from
  further consideration.

The output clustering is complete over the surviving vertices and its
cluster radii (w.r.t. the input graph) are one larger than the input's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.core.clustering import Clustering
from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.util.rng import SeedLike, ensure_rng

#: selected edges are (work-graph edge, reason); reasons match Fig. 2 lines.
JOIN = "join"   # line 4: v joins a sampled cluster
DEATH = "death"  # line 7: v dies, one edge per adjacent cluster


@dataclass
class ExpandResult:
    """Everything a caller needs after one Expand call."""

    clustering: Clustering
    #: clusters sampled into the output clustering (by center id).
    sampled: Set[int]
    #: vertices marked dead in this call.
    died: List[int]
    #: line-4 edges (v joined a sampled cluster via this edge).
    join_edges: List[Edge] = field(default_factory=list)
    #: line-7 edges (one per adjacent cluster of a dying vertex).
    death_edges: List[Edge] = field(default_factory=list)

    @property
    def selected_edges(self) -> List[Edge]:
        """All spanner edges selected by this call (work-graph edges)."""
        return self.join_edges + self.death_edges


def expand(
    graph: Graph,
    clustering: Clustering,
    p: float,
    seed: SeedLike = None,
    sampler: Optional[Callable[[int], bool]] = None,
) -> ExpandResult:
    """One call to Expand on (``graph``, ``clustering``) with probability ``p``.

    ``clustering`` must be complete over ``graph``'s vertices.  ``p = 0``
    kills every vertex (the paper forces this in the final iteration).
    Vertex iteration order and tie-breaks are deterministic given the seed,
    so sequential and distributed implementations can be cross-validated;
    passing ``sampler`` (center -> bool) replaces the seeded coin flips
    with shared-randomness decisions, making the two *identical*.
    """
    if not 0 <= p < 1:
        raise ValueError("sampling probability must be in [0, 1)")
    rng = ensure_rng(seed)

    members = clustering.members()
    # Sample each cluster independently with probability p.  Iterating in
    # sorted center order makes the draw reproducible for a given seed.
    if sampler is not None:
        sampled: Set[int] = {c for c in members if p > 0 and sampler(c)}
    else:
        sampled = {c for c in sorted(members) if p > 0 and rng.random() < p}

    new_cluster_of: Dict[int, int] = {}
    died: List[int] = []
    join_edges: List[Edge] = []
    death_edges: List[Edge] = []

    for v in sorted(graph.vertices()):
        own = clustering.center(v)
        if own in sampled:
            # Own cluster survives; v stays with it and contributes nothing.
            new_cluster_of[v] = own
            continue
        # Group v's incident edges by the neighbor's cluster, remembering
        # the minimum-id neighbor per cluster as the candidate edge ("some
        # edge from v to C_i" — any one edge suffices; we pick the smallest
        # for determinism).
        candidate: Dict[int, int] = {}
        for u in graph.neighbors(v):
            c = clustering.center(u)
            if c == own:
                continue
            if c not in candidate or u < candidate[c]:
                candidate[c] = u
        sampled_adjacent = sorted(c for c in candidate if c in sampled)
        if sampled_adjacent:
            # Line 4: join the sampled cluster (smallest center id).
            target = sampled_adjacent[0]
            join_edges.append(canonical_edge(v, candidate[target]))
            new_cluster_of[v] = target
        else:
            # Line 7: no sampled cluster in sight — dump one edge per
            # adjacent cluster and die.
            for c in sorted(candidate):
                death_edges.append(canonical_edge(v, candidate[c]))
            died.append(v)

    return ExpandResult(
        clustering=Clustering(new_cluster_of),
        sampled=sampled,
        died=died,
        join_edges=join_edges,
        death_edges=death_edges,
    )
