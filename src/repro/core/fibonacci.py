"""Fibonacci spanners (Section 4).

The construction samples a vertex hierarchy V = V_0 ⊇ V_1 ⊇ ... ⊇ V_o
(⊇ V_{o+1} = ∅) with the golden-ratio probabilities of Lemma 8, then takes

  S_0 = ⋃_{v ∈ V}       ⋃_{u ∈ B_{1,ℓ}(v)}   P(v, u)
  S_i = ⋃_{v ∈ V_{i-1}} ⋃_{u ∈ B_{i+1,ℓ}(v)} P(v, u)
        ∪ ⋃_{v : δ(v, p_i(v)) ≤ ℓ^{i-1}}     P(v, p_i(v))

where B_{i+1,ℓ}(v) is the set of V_i-vertices in the ball of radius
min(δ(v, V_{i+1}) - 1, ℓ^i) around v, and p_i(v) is the nearest V_i vertex
(minimum identifier among ties).

The resulting spanner's multiplicative distortion improves with distance
through the four stages of Theorem 7; the size is
O(o n + (o/eps)^phi n^{1 + 1/(F_{o+3}-1)}) (Lemma 8).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.core.theory import (
    fib_sampling_probabilities,
    fibonacci_spanner_order_max,
)
from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.graphs.properties import multi_source_bfs
from repro.spanner.spanner import Spanner
from repro.util.rng import SeedLike, ensure_rng


@dataclass
class FibonacciParams:
    """Resolved construction parameters (order, eps, ell, probabilities)."""

    order: int
    eps: float
    ell: int
    probabilities: List[float] = field(default_factory=list)

    @classmethod
    def resolve(
        cls,
        n: int,
        order: Optional[int] = None,
        eps: float = 0.5,
        ell: Optional[int] = None,
        probabilities: Optional[Sequence[float]] = None,
    ) -> "FibonacciParams":
        """Fill in defaults: o = log_phi log n, ell = 3o/eps + 2 (Thm 7)."""
        if not 0 < eps <= 1:
            raise ValueError("eps must be in (0, 1]")
        o = order if order is not None else fibonacci_spanner_order_max(n)
        o = max(1, o)
        e = ell if ell is not None else math.ceil(3 * o / eps) + 2
        if e <= 1:
            raise ValueError("ell must be at least 2")
        if probabilities is not None:
            qs = list(probabilities)
            if len(qs) != o:
                raise ValueError("need exactly `order` probabilities")
        else:
            qs = fib_sampling_probabilities(max(2, n), o, e)
        return cls(order=o, eps=eps, ell=e, probabilities=qs)


def sample_levels(
    graph: Graph, params: FibonacciParams, seed: SeedLike = None
) -> List[Set[int]]:
    """Sample the hierarchy V_0 ⊇ V_1 ⊇ ... ⊇ V_o.

    V_i is drawn from V_{i-1} with probability q_i / q_{i-1}, so that
    Pr[v ∈ V_i] = q_i (Sect. 4.1).  V_0 = V; V_{o+1} = ∅ is implicit.
    """
    rng = ensure_rng(seed)
    levels: List[Set[int]] = [set(graph.vertices())]
    q_prev = 1.0
    for q in params.probabilities:
        keep_p = min(1.0, q / q_prev) if q_prev > 0 else 0.0
        levels.append(
            {v for v in sorted(levels[-1]) if rng.random() < keep_p}
        )
        q_prev = q
    return levels


def _ball_paths(
    graph: Graph,
    source: int,
    targets: Set[int],
    radius: float,
    spanner_edges: Set[Edge],
) -> int:
    """Add P(source, u) for each target u with 1 <= δ(source, u) <= radius.

    Runs a truncated BFS and walks parent pointers back from each target.
    Returns the number of targets connected.
    """
    if radius < 1:
        return 0
    dist = {source: 0}
    parent: Dict[int, int] = {}
    queue = deque([source])
    found: List[int] = []
    while queue:
        x = queue.popleft()
        if dist[x] >= radius:
            continue
        for y in graph.neighbors(x):
            if y not in dist:
                dist[y] = dist[x] + 1
                parent[y] = x
                queue.append(y)
                if y in targets:
                    found.append(y)
    for u in found:
        node = u
        while node != source:
            prev = parent[node]
            spanner_edges.add(canonical_edge(node, prev))
            node = prev
    return len(found)


def build_fibonacci_spanner(
    graph: Graph,
    order: Optional[int] = None,
    eps: float = 0.5,
    ell: Optional[int] = None,
    probabilities: Optional[Sequence[float]] = None,
    seed: SeedLike = None,
    levels: Optional[List[Set[int]]] = None,
) -> Spanner:
    """Build a Fibonacci spanner of ``graph`` (Theorem 7).

    ``order`` defaults to log_phi log n (the sparsest setting); ``ell``
    defaults to 3 * order / eps + 2.  ``levels`` injects a pre-sampled
    hierarchy (used by tests and the distributed cross-validation).
    """
    params = FibonacciParams.resolve(
        graph.n, order=order, eps=eps, ell=ell, probabilities=probabilities
    )
    if levels is None:
        levels = sample_levels(graph, params, seed)
    else:
        if len(levels) != params.order + 1:
            raise ValueError("levels must have order + 1 entries")
    o = params.order
    ell_val = params.ell

    spanner_edges: Set[Edge] = set()
    level_edge_counts: List[int] = []
    level_sizes = [len(lv) for lv in levels]

    # Distance fields δ(·, V_i) with min-id parents, for i = 1..o.
    # (δ(·, V_{o+1}) = ∞ since V_{o+1} = ∅.)
    dist_to: List[Dict[int, int]] = [dict()] * (o + 2)
    root_of: List[Dict[int, int]] = [dict()] * (o + 1)
    parent_of: List[Dict[int, Optional[int]]] = [dict()] * (o + 1)
    for i in range(1, o + 1):
        d, r, par = multi_source_bfs(graph, levels[i])
        dist_to[i], root_of[i], parent_of[i] = d, r, par
    dist_to[o + 1] = {}

    for i in range(0, o + 1):
        before = len(spanner_edges)
        sources = levels[i - 1] if i >= 1 else levels[0]
        targets = levels[i] if i <= o else set()
        next_dist = dist_to[i + 1] if i + 1 <= o else {}

        # Ball part: connect each source to every target in B_{i+1,ell}.
        cap = float(ell_val) ** i
        for v in sorted(sources):
            d_next = next_dist.get(v, math.inf) if i < o else math.inf
            radius = min(cap, d_next - 1)
            _ball_paths(graph, v, targets, radius, spanner_edges)

        # Forest part (i >= 1): P(v, p_i(v)) whenever
        # δ(v, p_i(v)) <= ell^{i-1}.  The union of these shortest paths is
        # a forest (Lemma 7); adding each qualifying vertex's parent edge
        # realizes exactly that forest.
        if i >= 1:
            forest_cap = float(ell_val) ** (i - 1)
            for v, d in dist_to[i].items():
                par = parent_of[i][v]
                if par is not None and 1 <= d <= forest_cap:
                    spanner_edges.add(canonical_edge(v, par))
        level_edge_counts.append(len(spanner_edges) - before)

    metadata = {
        "algorithm": "fibonacci-spanner",
        "order": o,
        "eps": params.eps,
        "ell": ell_val,
        "probabilities": params.probabilities,
        "level_sizes": level_sizes,
        "level_edge_counts": level_edge_counts,
    }
    return Spanner(graph, spanner_edges, metadata)
