"""Fanning the workload matrix across a process pool.

Cells are independent deterministic computations, so they parallelize
embarrassingly.  Two choices matter for measurement quality:

* ``maxtasksperchild=1`` — each cell runs in a *fresh* worker process,
  so its ``peak_rss_kb`` reflects that cell alone rather than the
  high-water mark of whichever cells the worker saw earlier;
* results are returned in matrix order (``Pool.map`` preserves input
  order) regardless of completion order, so reports are stable.

``jobs=1`` bypasses ``multiprocessing`` entirely and runs in-process —
used by the unit tests (no fork needed) and available for debugging
(``--jobs 1`` keeps tracebacks readable).
"""

from __future__ import annotations

import multiprocessing
import os
from typing import List, Optional, Sequence, Tuple, Union

from repro.perf.bench import (
    CellResult,
    run_cell,
    run_churn_cell,
    run_service_cell,
    run_sharded_cell,
)
from repro.perf.workloads import (
    ChurnCell,
    ServiceCell,
    ShardedCell,
    WorkloadCell,
)

__all__ = ["default_jobs", "run_matrix"]

_AnyCell = Union[WorkloadCell, ChurnCell, ServiceCell, ShardedCell]


def default_jobs() -> int:
    """Worker count default: the CPUs actually *available* (min 1).

    ``os.cpu_count()`` reports installed CPUs, which oversubscribes the
    pool under cgroup/taskset limits (CI runners, containers) and skews
    wall-clock numbers; the scheduling affinity mask is the real budget
    where the platform exposes it.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # non-Linux platforms
        return max(1, os.cpu_count() or 1)


def _bench_worker(task: Tuple[_AnyCell, int]) -> CellResult:
    """Module-level worker so it pickles under the spawn start method."""
    cell, reps = task
    if isinstance(cell, ChurnCell):
        return run_churn_cell(cell, reps=reps)
    if isinstance(cell, ServiceCell):
        return run_service_cell(cell, reps=reps)
    if isinstance(cell, ShardedCell):
        # Only reachable at jobs=1 (pool workers are daemonic and the
        # sharded engine must spawn its own children; the CLI forces
        # --sharded runs in-process).
        return run_sharded_cell(cell, reps=reps)
    return run_cell(cell, reps=reps)


def run_matrix(
    cells: Sequence[_AnyCell],
    jobs: Optional[int] = None,
    reps: int = 2,
) -> List[CellResult]:
    """Benchmark every cell; returns results in ``cells`` order."""
    if jobs is None:
        jobs = default_jobs()
    tasks = [(cell, reps) for cell in cells]
    if jobs <= 1 or len(cells) <= 1:
        return [_bench_worker(task) for task in tasks]
    # The spawn start method (not fork): a forked child *inherits* the
    # parent's ru_maxrss, so every cell would report the CLI process's
    # footprint instead of its own.  chunksize=1, or map() batches
    # several cells per worker and maxtasksperchild counts the batch as
    # one task — each cell must see a fresh interpreter for its
    # peak-RSS number to be its own.
    context = multiprocessing.get_context("spawn")
    with context.Pool(
        processes=min(jobs, len(cells)), maxtasksperchild=1
    ) as pool:
        return pool.map(_bench_worker, tasks, chunksize=1)
