"""Baseline comparison: the regression gate behind ``--baseline``.

Reports are joined on ``cell_id`` and compared on the intersection —
a smoke run against a full-matrix baseline simply compares the smoke
cells.  Two failure classes, deliberately distinct:

* **count drift** — rounds / messages / words (or n / m) differ for
  the same cell.  The workload is deterministic, so this means the
  *engine changed behavior*; no timing threshold excuses it.
* **wall regression** — ``new > old * (1 + threshold)`` AND
  ``new - old > min_wall`` seconds.  The absolute guard keeps tiny
  cells (sub-50ms, where pool scheduling noise dominates the signal)
  from tripping a percentage-only gate.

Timing comparisons are only meaningful between runs on comparable
hardware; count comparisons are meaningful everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = ["CellDelta", "ComparisonResult", "compare_reports"]

_COUNT_FIELDS = ("n", "m", "rounds", "messages", "words")


@dataclass(frozen=True)
class CellDelta:
    """One compared cell: old/new wall time and the verdict."""

    cell_id: str
    old_wall: float
    new_wall: float
    #: "ok", "faster", "regression", or "count-drift"
    verdict: str
    detail: str = ""

    @property
    def ratio(self) -> float:
        return self.new_wall / self.old_wall if self.old_wall > 0 else 1.0


@dataclass
class ComparisonResult:
    """Outcome of comparing a new report against a baseline."""

    deltas: List[CellDelta] = field(default_factory=list)
    only_in_baseline: List[str] = field(default_factory=list)
    only_in_new: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[CellDelta]:
        return [d for d in self.deltas if d.verdict == "regression"]

    @property
    def drifted(self) -> List[CellDelta]:
        return [d for d in self.deltas if d.verdict == "count-drift"]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.drifted and bool(self.deltas)

    def render(self) -> str:
        lines = [
            f"{'cell':40s} {'old(s)':>8s} {'new(s)':>8s} "
            f"{'ratio':>6s}  verdict"
        ]
        for d in self.deltas:
            lines.append(
                f"{d.cell_id:40s} {d.old_wall:8.3f} {d.new_wall:8.3f} "
                f"{d.ratio:5.2f}x  {d.verdict}"
                + (f" ({d.detail})" if d.detail else "")
            )
        if self.only_in_new:
            lines.append(
                f"not in baseline (ignored): {len(self.only_in_new)} cells"
            )
        if self.only_in_baseline:
            lines.append(
                f"not re-run (ignored): {len(self.only_in_baseline)} cells"
            )
        if not self.deltas:
            lines.append(
                "no common cells: baseline and run share no cell ids"
            )
        else:
            lines.append(
                f"{len(self.deltas)} compared, "
                f"{len(self.regressions)} regression(s), "
                f"{len(self.drifted)} count drift(s)"
            )
        return "\n".join(lines)


def _index(report: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    return {cell["cell_id"]: cell for cell in report.get("cells", [])}


def compare_reports(
    baseline: Dict[str, Any],
    new: Dict[str, Any],
    threshold: float = 0.2,
    min_wall: float = 0.05,
) -> ComparisonResult:
    """Compare ``new`` against ``baseline`` on their shared cells."""
    old_cells = _index(baseline)
    new_cells = _index(new)
    result = ComparisonResult(
        only_in_baseline=sorted(set(old_cells) - set(new_cells)),
        only_in_new=sorted(set(new_cells) - set(old_cells)),
    )
    for cell_id in sorted(set(old_cells) & set(new_cells)):
        old, cur = old_cells[cell_id], new_cells[cell_id]
        old_wall = float(old["wall_s"])
        new_wall = float(cur["wall_s"])
        drift = [
            f"{name} {old[name]} -> {cur[name]}"
            for name in _COUNT_FIELDS
            if old.get(name) != cur.get(name)
        ]
        if drift:
            verdict, detail = "count-drift", "; ".join(drift)
        elif (
            new_wall > old_wall * (1.0 + threshold)
            and new_wall - old_wall > min_wall
        ):
            verdict = "regression"
            detail = f"+{(new_wall / old_wall - 1.0) * 100:.0f}%"
        elif new_wall < old_wall * (1.0 - threshold):
            verdict, detail = "faster", ""
        else:
            verdict, detail = "ok", ""
        result.deltas.append(
            CellDelta(cell_id, old_wall, new_wall, verdict, detail)
        )
    return result
