"""The canonical benchmark workload matrix.

A :class:`WorkloadCell` pins everything a measurement depends on —
protocol, host family, scale, and seed — so two runs of the same cell
on the same interpreter execute the *identical* computation (identical
graph, identical coin flips, identical message schedule) and any
wall-clock difference is attributable to the engine, not the workload.

Two scales:

* ``smoke`` — small hosts for the CI gate (seconds in total);
* ``e1`` — the EXPERIMENTS.md E1 operating point (Erdős–Rényi
  ``G(600, 0.02)``) plus comparable grid/hypercube hosts, for the
  committed baseline and speedup claims.

The full matrix is a superset of the smoke matrix, so a smoke run can
always be compared against a committed full-matrix baseline on the
intersection of cell ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.graphs.generators import erdos_renyi_gnp, grid_2d, hypercube
from repro.graphs.graph import Graph

__all__ = [
    "BENCH_PROTOCOLS",
    "ChurnCell",
    "SCALES",
    "SEEDS",
    "WorkloadCell",
    "churn_matrix",
    "full_matrix",
    "smoke_matrix",
]

#: protocols benchmarked: the paper's two constructions plus the
#: Baswana–Sen comparison point (the survey/additive baselines are
#: sequential-dominated and say little about the simulator hot path).
BENCH_PROTOCOLS: Tuple[str, ...] = ("skeleton", "fibonacci", "baswana_sen")

#: protocol seeds per cell; the graph seed is derived (1000 + seed) so
#: graph randomness and protocol randomness never share a stream.
SEEDS: Tuple[int, ...] = (1, 2, 3)

#: host-family parameters per scale.  ``e1`` er matches EXPERIMENTS.md
#: E1 (n=600, p=0.02); grid/hypercube are sized to comparable n.
_ER_PARAMS: Dict[str, Tuple[int, float]] = {
    "smoke": (120, 0.06),
    "e1": (600, 0.02),
}
_GRID_PARAMS: Dict[str, Tuple[int, int]] = {
    "smoke": (10, 12),
    "e1": (24, 25),
}
_HYPERCUBE_DIM: Dict[str, int] = {"smoke": 7, "e1": 9}

SCALES: Tuple[str, ...] = ("smoke", "e1")

_GRAPH_KINDS: Tuple[str, ...] = ("er", "grid", "hypercube")


def _build_host(graph_kind: str, scale: str, graph_seed: int) -> Graph:
    """Shared host-graph dispatch for both cell families."""
    if graph_kind == "er":
        n, p = _ER_PARAMS[scale]
        return erdos_renyi_gnp(n, p, seed=graph_seed)
    if graph_kind == "grid":
        rows, cols = _GRID_PARAMS[scale]
        return grid_2d(rows, cols)
    if graph_kind == "hypercube":
        return hypercube(_HYPERCUBE_DIM[scale])
    raise ValueError(f"unknown graph kind: {graph_kind!r}")


@dataclass(frozen=True)
class WorkloadCell:
    """One benchmark point: a (protocol, host, scale, seed) tuple."""

    protocol: str
    graph_kind: str
    scale: str
    seed: int

    @property
    def cell_id(self) -> str:
        """Stable identifier used for baseline comparison joins."""
        return f"{self.protocol}/{self.graph_kind}/{self.scale}/s{self.seed}"

    @property
    def graph_seed(self) -> int:
        return 1000 + self.seed

    def build_graph(self) -> Graph:
        """Construct this cell's host graph (deterministic per cell)."""
        return _build_host(self.graph_kind, self.scale, self.graph_seed)


#: (batches, batch_size) of the churn update stream per scale.
_CHURN_PARAMS: Dict[str, Tuple[int, int]] = {
    "smoke": (4, 8),
    "e1": (12, 16),
}


@dataclass(frozen=True)
class ChurnCell:
    """One churn-workload point: host + seeded update stream + k.

    Counts map onto the report schema as repair work: ``rounds`` =
    repair rounds spent, ``messages`` = adjacency entries examined,
    ``words`` = girth-rule offers — so the count-drift gate pins the
    repair algorithm exactly as it pins the simulator hot path.
    Benchmarked into a separate ``BENCH_churn.json`` (cell ids never
    collide with the simulator matrix).
    """

    graph_kind: str
    scale: str
    seed: int
    k: int = 2

    @property
    def cell_id(self) -> str:
        return f"churn-k{self.k}/{self.graph_kind}/{self.scale}/s{self.seed}"

    @property
    def graph_seed(self) -> int:
        return 1000 + self.seed

    @property
    def stream_params(self) -> Tuple[int, int]:
        """``(batches, batch_size)`` for this cell's scale."""
        return _CHURN_PARAMS[self.scale]

    def build_graph(self) -> Graph:
        return _build_host(self.graph_kind, self.scale, self.graph_seed)


def churn_matrix(scales: Tuple[str, ...] = SCALES) -> List[ChurnCell]:
    """The churn workload matrix (smoke subset = ``("smoke",)``)."""
    return [
        ChurnCell(kind, scale, seed, k)
        for scale in scales
        for k in (2, 3)
        for kind in _GRAPH_KINDS
        for seed in SEEDS
    ]


def _matrix(scales: Tuple[str, ...]) -> List[WorkloadCell]:
    return [
        WorkloadCell(protocol, kind, scale, seed)
        for scale in scales
        for protocol in BENCH_PROTOCOLS
        for kind in _GRAPH_KINDS
        for seed in SEEDS
    ]


def smoke_matrix() -> List[WorkloadCell]:
    """The CI-gate matrix: every cell at ``smoke`` scale."""
    return _matrix(("smoke",))


def full_matrix() -> List[WorkloadCell]:
    """The baseline matrix: smoke cells plus the ``e1`` operating point.

    Strictly contains :func:`smoke_matrix`, so smoke runs always find
    their cells in a committed full baseline.
    """
    return _matrix(SCALES)
