"""The canonical benchmark workload matrix.

A :class:`WorkloadCell` pins everything a measurement depends on —
protocol, host family, scale, and seed — so two runs of the same cell
on the same interpreter execute the *identical* computation (identical
graph, identical coin flips, identical message schedule) and any
wall-clock difference is attributable to the engine, not the workload.

Two scales:

* ``smoke`` — small hosts for the CI gate (seconds in total);
* ``e1`` — the EXPERIMENTS.md E1 operating point (Erdős–Rényi
  ``G(600, 0.02)``) plus comparable grid/hypercube hosts, for the
  committed baseline and speedup claims.

The full matrix is a superset of the smoke matrix, so a smoke run can
always be compared against a committed full-matrix baseline on the
intersection of cell ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.graphs.graph import Graph
from repro.graphs.zoo import GRAPH_KINDS, HOST_SCALES, build_host

__all__ = [
    "BENCH_PROTOCOLS",
    "ChurnCell",
    "SCALES",
    "SEEDS",
    "SERVICE_MIXES",
    "SHARD_COUNTS",
    "ServiceCell",
    "ShardedCell",
    "WorkloadCell",
    "churn_matrix",
    "full_matrix",
    "service_matrix",
    "sharded_matrix",
    "smoke_matrix",
]

#: protocols benchmarked: the paper's two constructions, the
#: Baswana–Sen comparison point, and the deterministic skeleton (the
#: Fig. 1 randomized-vs-deterministic head-to-head; the survey/additive
#: baselines are sequential-dominated and say little about the
#: simulator hot path).
BENCH_PROTOCOLS: Tuple[str, ...] = (
    "skeleton",
    "fibonacci",
    "baswana_sen",
    "deterministic",
)

#: protocol seeds per cell; the graph seed is derived (1000 + seed) so
#: graph randomness and protocol randomness never share a stream.
SEEDS: Tuple[int, ...] = (1, 2, 3)

#: host parameters live in the shared graph zoo (repro.graphs.zoo);
#: the bench matrix, churn cells and the serving tier all build the
#: identical hosts through repro.graphs.build_host.  The single-process
#: matrices stop at ``e1`` — the zoo's ``e2`` (10^5-node) scale exists
#: for the sharded matrix only.
SCALES: Tuple[str, ...] = ("smoke", "e1")

assert set(SCALES) <= set(HOST_SCALES)

_GRAPH_KINDS: Tuple[str, ...] = GRAPH_KINDS


@dataclass(frozen=True)
class WorkloadCell:
    """One benchmark point: a (protocol, host, scale, seed) tuple."""

    protocol: str
    graph_kind: str
    scale: str
    seed: int

    @property
    def cell_id(self) -> str:
        """Stable identifier used for baseline comparison joins."""
        return f"{self.protocol}/{self.graph_kind}/{self.scale}/s{self.seed}"

    @property
    def graph_seed(self) -> int:
        return 1000 + self.seed

    def build_graph(self) -> Graph:
        """Construct this cell's host graph (deterministic per cell)."""
        return build_host(self.graph_kind, self.scale, self.graph_seed)


#: shard counts of the sharded-engine scaling curve (EXPERIMENTS.md
#: E24); 1 is included so every curve carries its own single-worker
#: reference point on the identical workload.
SHARD_COUNTS: Tuple[int, ...] = (1, 2, 4)


@dataclass(frozen=True)
class ShardedCell:
    """One sharded-engine point: a workload cell plus a shard count.

    Counts (rounds/messages/words) are engine-invariant — the sharded
    engine is pinned byte-identical to the single-process engine by
    ``tests/test_sharded_equivalence.py`` — so the count-drift gate can
    compare a sharded cell against *any* baseline row for the same
    workload, and the wall-clock column is the only thing the shard
    count may move.
    """

    protocol: str
    graph_kind: str
    scale: str
    seed: int
    shards: int

    @property
    def cell_id(self) -> str:
        return (
            f"{self.protocol}/{self.graph_kind}/{self.scale}/"
            f"s{self.seed}/shards{self.shards}"
        )

    @property
    def graph_seed(self) -> int:
        return 1000 + self.seed

    def build_graph(self) -> Graph:
        return build_host(self.graph_kind, self.scale, self.graph_seed)


def sharded_matrix(
    scales: Tuple[str, ...] = ("smoke", "e2"),
    shards: Tuple[int, ...] = SHARD_COUNTS,
) -> List[ShardedCell]:
    """The sharded scaling matrix (smoke subset = ``("smoke",)``).

    Small scales sweep every bench protocol and host family; the ``e2``
    (10^5-node) scale runs Baswana–Sen on the er host only — 2k rounds
    of unit messages is the workload whose per-round node iteration the
    sharding targets, while the skeleton's Expand machinery at that n
    is sequential-schedule-dominated and would swamp the curve.
    """
    cells: List[ShardedCell] = []
    for scale in scales:
        if scale == "e2":
            combos = [("baswana_sen", "er")]
        else:
            combos = [
                (protocol, kind)
                for protocol in BENCH_PROTOCOLS
                for kind in _GRAPH_KINDS
            ]
        for protocol, kind in combos:
            for count in shards:
                cells.append(ShardedCell(protocol, kind, scale, 1, count))
    return cells


#: (batches, batch_size) of the churn update stream per scale.
_CHURN_PARAMS: Dict[str, Tuple[int, int]] = {
    "smoke": (4, 8),
    "e1": (12, 16),
}


@dataclass(frozen=True)
class ChurnCell:
    """One churn-workload point: host + seeded update stream + k.

    Counts map onto the report schema as repair work: ``rounds`` =
    repair rounds spent, ``messages`` = adjacency entries examined,
    ``words`` = girth-rule offers — so the count-drift gate pins the
    repair algorithm exactly as it pins the simulator hot path.
    Benchmarked into a separate ``BENCH_churn.json`` (cell ids never
    collide with the simulator matrix).
    """

    graph_kind: str
    scale: str
    seed: int
    k: int = 2

    @property
    def cell_id(self) -> str:
        return f"churn-k{self.k}/{self.graph_kind}/{self.scale}/s{self.seed}"

    @property
    def graph_seed(self) -> int:
        return 1000 + self.seed

    @property
    def stream_params(self) -> Tuple[int, int]:
        """``(batches, batch_size)`` for this cell's scale."""
        return _CHURN_PARAMS[self.scale]

    def build_graph(self) -> Graph:
        return build_host(self.graph_kind, self.scale, self.graph_seed)


#: query mixes exercised by the service bench (see repro.serving.loadgen).
SERVICE_MIXES: Tuple[str, ...] = ("uniform", "zipf")

#: loadgen request count per scale: enough uniform/smoke traffic to
#: populate the cache, enough e1 traffic for stable percentiles.
_SERVICE_REQUESTS: Dict[str, int] = {"smoke": 400, "e1": 1500}


@dataclass(frozen=True)
class ServiceCell:
    """One serving-tier workload point: host + query mix + seed + k.

    Counts map onto the report schema as query work: ``rounds`` =
    requests issued, ``messages`` = responses answered, ``words`` =
    cache hits (LRU + landmark tiers) — all deterministic because the
    bench loadgen runs a single pipelined connection, so the server
    processes the seeded query stream in arrival order.  Benchmarked
    into a separate ``BENCH_service.json`` trajectory.
    """

    graph_kind: str
    scale: str
    seed: int
    mix: str = "uniform"
    k: int = 2

    @property
    def cell_id(self) -> str:
        return (
            f"service-k{self.k}/{self.graph_kind}/{self.scale}/"
            f"{self.mix}/s{self.seed}"
        )

    @property
    def graph_seed(self) -> int:
        return 1000 + self.seed

    @property
    def requests(self) -> int:
        """Loadgen request count for this cell's scale."""
        return _SERVICE_REQUESTS[self.scale]

    def build_graph(self) -> Graph:
        return build_host(self.graph_kind, self.scale, self.graph_seed)


def service_matrix(scales: Tuple[str, ...] = SCALES) -> List[ServiceCell]:
    """The serving workload matrix (smoke subset = ``("smoke",)``)."""
    return [
        ServiceCell(kind, scale, seed, mix)
        for scale in scales
        for mix in SERVICE_MIXES
        for kind in _GRAPH_KINDS
        for seed in (1,)
    ]


def churn_matrix(scales: Tuple[str, ...] = SCALES) -> List[ChurnCell]:
    """The churn workload matrix (smoke subset = ``("smoke",)``)."""
    return [
        ChurnCell(kind, scale, seed, k)
        for scale in scales
        for k in (2, 3)
        for kind in _GRAPH_KINDS
        for seed in SEEDS
    ]


def _matrix(scales: Tuple[str, ...]) -> List[WorkloadCell]:
    return [
        WorkloadCell(protocol, kind, scale, seed)
        for scale in scales
        for protocol in BENCH_PROTOCOLS
        for kind in _GRAPH_KINDS
        for seed in SEEDS
    ]


def smoke_matrix() -> List[WorkloadCell]:
    """The CI-gate matrix: every cell at ``smoke`` scale."""
    return _matrix(("smoke",))


def full_matrix() -> List[WorkloadCell]:
    """The baseline matrix: smoke cells plus the ``e1`` operating point.

    Strictly contains :func:`smoke_matrix`, so smoke runs always find
    their cells in a committed full baseline.
    """
    return _matrix(SCALES)
