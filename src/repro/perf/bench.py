"""Measuring one workload cell.

:func:`run_cell` builds the cell's host graph, runs the protocol on the
clean fast path (``obs=None``, no fault plan) ``reps`` times, and keeps
the *best* wall time — the standard noise-rejection choice for
microbenchmarks: the minimum over repetitions estimates the true cost,
while means absorb scheduler jitter.

Counts (rounds / messages / words) are recorded alongside the timing
and must be identical across reps and across engines: a baseline
comparison treats any count drift as a correctness failure, not a
performance regression (see :mod:`repro.perf.compare`).
"""

from __future__ import annotations

import resource
import sys
from time import perf_counter
from typing import Any, Dict, Optional, Tuple

from repro.obs.runners import run_traced
from repro.perf.workloads import (
    ChurnCell,
    ServiceCell,
    ShardedCell,
    WorkloadCell,
)

__all__ = [
    "CellResult",
    "run_cell",
    "run_churn_cell",
    "run_service_cell",
    "run_sharded_cell",
]

#: one measured cell, as serialized into ``BENCH_*.json``.
CellResult = Dict[str, Any]


def _peak_rss_kb() -> int:
    """Peak resident set size of this process, in KiB.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalize
    to KiB so reports are comparable.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak // 1024
    return peak


def run_cell(cell: WorkloadCell, reps: int = 2) -> CellResult:
    """Benchmark ``cell``: best-of-``reps`` wall time plus counts.

    The graph is built once (outside the timed region — generator cost
    is not simulator cost) and every rep runs the identical
    deterministic computation, so counts are asserted equal across
    reps.
    """
    if reps < 1:
        raise ValueError("reps must be >= 1")
    graph = cell.build_graph()
    best_wall = float("inf")
    counts: Optional[Tuple[int, int, int]] = None
    for _ in range(reps):
        start = perf_counter()
        _, stats = run_traced(cell.protocol, graph, seed=cell.seed, obs=None)
        wall = perf_counter() - start
        rep_counts = (stats.rounds, stats.messages, stats.total_words)
        if counts is None:
            counts = rep_counts
        elif counts != rep_counts:
            raise AssertionError(
                f"nondeterministic cell {cell.cell_id}: "
                f"{counts} != {rep_counts}"
            )
        if wall < best_wall:
            best_wall = wall
    assert counts is not None
    rounds, messages, words = counts
    return {
        "cell_id": cell.cell_id,
        "protocol": cell.protocol,
        "graph_kind": cell.graph_kind,
        "scale": cell.scale,
        "seed": cell.seed,
        "n": graph.n,
        "m": graph.m,
        "rounds": rounds,
        "messages": messages,
        "words": words,
        "wall_s": round(best_wall, 6),
        "rounds_per_s": round(rounds / best_wall, 1) if best_wall > 0 else 0.0,
        "messages_per_s": (
            round(messages / best_wall, 1) if best_wall > 0 else 0.0
        ),
        "peak_rss_kb": _peak_rss_kb(),
    }


def run_sharded_cell(cell: ShardedCell, reps: int = 2) -> CellResult:
    """Benchmark one sharded-engine cell: best-of-``reps`` plus counts.

    Mirrors :func:`run_cell` with the run dispatched to the sharded
    engine at the cell's shard count.  The worker pool is persistent,
    so the first rep absorbs the spawn cost and the best-of-reps wall
    measures steady-state round throughput; counts are engine-invariant
    (pinned by ``tests/test_sharded_equivalence.py``), so drift against
    a single-process baseline row is a correctness failure here too.

    Must run in a process that may spawn children — the one-cell-per-
    process bench pool's workers are daemonic, so the CLI forces
    ``jobs=1`` for sharded matrices.
    """
    if reps < 1:
        raise ValueError("reps must be >= 1")
    graph = cell.build_graph()
    best_wall = float("inf")
    counts: Optional[Tuple[int, int, int]] = None
    for _ in range(reps):
        start = perf_counter()
        _, stats = run_traced(
            cell.protocol, graph, seed=cell.seed, obs=None,
            shards=cell.shards,
        )
        wall = perf_counter() - start
        rep_counts = (stats.rounds, stats.messages, stats.total_words)
        if counts is None:
            counts = rep_counts
        elif counts != rep_counts:
            raise AssertionError(
                f"nondeterministic cell {cell.cell_id}: "
                f"{counts} != {rep_counts}"
            )
        if wall < best_wall:
            best_wall = wall
    assert counts is not None
    rounds, messages, words = counts
    return {
        "cell_id": cell.cell_id,
        "protocol": cell.protocol,
        "graph_kind": cell.graph_kind,
        "scale": cell.scale,
        "seed": cell.seed,
        "shards": cell.shards,
        "n": graph.n,
        "m": graph.m,
        "rounds": rounds,
        "messages": messages,
        "words": words,
        "wall_s": round(best_wall, 6),
        "rounds_per_s": round(rounds / best_wall, 1) if best_wall > 0 else 0.0,
        "messages_per_s": (
            round(messages / best_wall, 1) if best_wall > 0 else 0.0
        ),
        "peak_rss_kb": _peak_rss_kb(),
    }


def run_service_cell(cell: ServiceCell, reps: int = 2) -> CellResult:
    """Benchmark one serving cell: end-to-end query latency + counts.

    The artifact bundle is built once (outside the timed region — the
    batch side is not serving cost); each rep starts a *fresh*
    in-process server with fresh caches and drives the cell's seeded
    query stream through real localhost sockets on a single pipelined
    connection, so arrival order — and therefore every LRU/landmark
    hit — replays identically.  Counts are mapped onto the common
    report schema as ``rounds`` = requests issued, ``messages`` =
    responses received, ``words`` = cache hits (LRU + landmark) and
    asserted identical across reps; the baseline gate treats any
    drift as a correctness failure, same as simulator counts.  The
    best-latency rep also contributes service-specific extras
    (``qps``, ``p50_ms``, ``p99_ms``, ``hit_rate``) that ride along
    in the report but are not count-gated.
    """
    from repro.serving.artifact import build_bundle
    from repro.serving.loadgen import LoadgenSummary, run_service_benchmark

    if reps < 1:
        raise ValueError("reps must be >= 1")
    bundle = build_bundle(cell.graph_kind, cell.scale, cell.seed, k=cell.k)
    best: Optional[LoadgenSummary] = None
    counts: Optional[Tuple[int, int, int]] = None
    for _ in range(reps):
        summary = run_service_benchmark(
            bundle,
            requests=cell.requests,
            mix=cell.mix,
            seed=cell.seed,
        )
        rep_counts = (summary.requests, summary.answered, summary.cache_hits)
        if counts is None:
            counts = rep_counts
        elif counts != rep_counts:
            raise AssertionError(
                f"nondeterministic cell {cell.cell_id}: "
                f"{counts} != {rep_counts}"
            )
        if best is None or summary.wall_s < best.wall_s:
            best = summary
    assert counts is not None and best is not None
    rounds, messages, words = counts
    best_wall = best.wall_s
    return {
        "cell_id": cell.cell_id,
        "protocol": "service",
        "graph_kind": cell.graph_kind,
        "scale": cell.scale,
        "seed": cell.seed,
        "mix": cell.mix,
        "n": bundle.graph.n,
        "m": bundle.graph.m,
        "rounds": rounds,
        "messages": messages,
        "words": words,
        "wall_s": round(best_wall, 6),
        "rounds_per_s": round(rounds / best_wall, 1) if best_wall > 0 else 0.0,
        "messages_per_s": (
            round(messages / best_wall, 1) if best_wall > 0 else 0.0
        ),
        "peak_rss_kb": _peak_rss_kb(),
        "qps": best.qps,
        "p50_ms": best.p50_ms,
        "p99_ms": best.p99_ms,
        "hit_rate": best.hit_rate,
    }


def run_churn_cell(cell: ChurnCell, reps: int = 2) -> CellResult:
    """Benchmark one churn cell: full engine run, repair-work counts.

    The stream is drawn once (outside the timed region, like the host
    graph) and every rep replays the identical scenario.  Counts are
    the summed per-batch repair work — rounds spent repairing, host
    adjacency entries examined, girth-rule offers — asserted identical
    across reps exactly like the simulator counts.  Grading samples a
    fixed small source set and the distributed amnesia handshake is
    skipped: the bench measures the repair engine, not the verifier or
    the reliable-layer flood (which the churn CI smoke exercises at
    small scale).
    """
    from repro.churn.engine import run_churn
    from repro.churn.events import churn_stream
    from repro.churn.policy import RepairPolicy

    if reps < 1:
        raise ValueError("reps must be >= 1")
    graph = cell.build_graph()
    batches, batch_size = cell.stream_params
    stream = churn_stream(
        graph,
        batches=batches,
        batch_size=batch_size,
        seed=cell.seed,
        crash_fraction=0.15,
        amnesia_fraction=0.5,
    )
    best_wall = float("inf")
    counts: Optional[Tuple[int, int, int]] = None
    for _ in range(reps):
        start = perf_counter()
        result = run_churn(
            graph,
            cell.k,
            stream,
            policy=RepairPolicy(),
            handshakes=False,
            grade_num_sources=4,
        )
        wall = perf_counter() - start
        rep_counts = (
            sum(b.work.get("repair_rounds", 0) for b in result.batches),
            sum(b.work.get("edges_examined", 0) for b in result.batches),
            sum(b.work.get("offers", 0) for b in result.batches),
        )
        if counts is None:
            counts = rep_counts
        elif counts != rep_counts:
            raise AssertionError(
                f"nondeterministic cell {cell.cell_id}: "
                f"{counts} != {rep_counts}"
            )
        if wall < best_wall:
            best_wall = wall
    assert counts is not None
    rounds, messages, words = counts
    return {
        "cell_id": cell.cell_id,
        "protocol": "churn",
        "graph_kind": cell.graph_kind,
        "scale": cell.scale,
        "seed": cell.seed,
        "n": graph.n,
        "m": graph.m,
        "rounds": rounds,
        "messages": messages,
        "words": words,
        "wall_s": round(best_wall, 6),
        "rounds_per_s": round(rounds / best_wall, 1) if best_wall > 0 else 0.0,
        "messages_per_s": (
            round(messages / best_wall, 1) if best_wall > 0 else 0.0
        ),
        "peak_rss_kb": _peak_rss_kb(),
    }
