"""``python -m repro bench`` — run the matrix, write BENCH_*.json, gate.

Typical invocations::

    python -m repro bench --out BENCH_simulator.json          # full matrix
    python -m repro bench --smoke --baseline BENCH_simulator.json \\
                          --out BENCH_smoke.json              # CI gate
    python -m repro bench --list                              # show cells

The baseline (if given) is read *before* the new report is written, so
``--baseline X --out X`` safely compares against the previous contents
of ``X`` and then replaces it — the natural way to maintain a rolling
trajectory file.  Exit status is 1 when the comparison finds a wall
regression, a count drift, or no common cells at all.
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.perf.bench import CellResult
from repro.perf.compare import compare_reports
from repro.perf.runner import default_jobs, run_matrix
from repro.perf.workloads import (
    SHARD_COUNTS,
    churn_matrix,
    full_matrix,
    service_matrix,
    sharded_matrix,
    smoke_matrix,
)

__all__ = ["build_report", "main"]

_SCHEMA = 1


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description=(
            "Benchmark the simulator hot path across the canonical "
            "workload matrix (see docs/performance.md)."
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the small CI matrix instead of the full one",
    )
    parser.add_argument(
        "--churn",
        action="store_true",
        help="run the churn workload matrix instead of the simulator "
             "one (separate BENCH_churn.json trajectory)",
    )
    parser.add_argument(
        "--service",
        action="store_true",
        help="run the serving-tier workload matrix (query latency over "
             "an in-process server; separate BENCH_service.json "
             "trajectory)",
    )
    parser.add_argument(
        "--sharded",
        action="store_true",
        help="run the sharded-engine scaling matrix (ShardedNetwork at "
             "each shard count; cells join BENCH_simulator.json). "
             "Forces --jobs 1: shard workers are child processes the "
             "daemonic bench pool cannot spawn",
    )
    parser.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="shard counts for --sharded "
             f"(default: {' '.join(map(str, SHARD_COUNTS))})",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the JSON report here ('-' for stdout)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=f"worker processes (default: cpu count = {default_jobs()})",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=2,
        metavar="N",
        help="repetitions per cell; best wall time is kept (default 2)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="compare against this BENCH_*.json; exit 1 on regression",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        metavar="F",
        help="relative wall-time regression threshold (default 0.2)",
    )
    parser.add_argument(
        "--min-wall",
        type=float,
        default=0.05,
        metavar="S",
        help="absolute seconds a cell must regress by (default 0.05)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_cells",
        help="print the matrix cell ids and exit",
    )
    return parser


def build_report(
    results: List[CellResult],
    matrix: str,
    reps: int,
    kind: str = "BENCH_simulator",
) -> Dict[str, Any]:
    """Assemble the serializable report around measured cells."""
    return {
        "schema": _SCHEMA,
        "kind": kind,
        "matrix": matrix,
        "reps": reps,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "recorded": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "cells": results,
    }


def _render_cells(results: List[CellResult]) -> str:
    lines = [
        f"{'cell':40s} {'wall(s)':>8s} {'rounds/s':>9s} "
        f"{'msgs/s':>10s} {'rss(MB)':>8s}"
    ]
    for cell in results:
        lines.append(
            f"{cell['cell_id']:40s} {cell['wall_s']:8.3f} "
            f"{cell['rounds_per_s']:9.0f} {cell['messages_per_s']:10.0f} "
            f"{cell['peak_rss_kb'] / 1024:8.1f}"
        )
    total = sum(cell["wall_s"] for cell in results)
    lines.append(f"{len(results)} cells, total wall {total:.3f}s")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _parser()
    args = parser.parse_args(argv)
    if sum((args.churn, args.service, args.sharded)) > 1:
        parser.error(
            "--churn, --service and --sharded are mutually exclusive"
        )
    if args.shards is not None and not args.sharded:
        parser.error("--shards requires --sharded")
    cells: List[Any]
    if args.churn:
        cells = churn_matrix(("smoke",) if args.smoke else ("smoke", "e1"))
    elif args.service:
        cells = service_matrix(("smoke",) if args.smoke else ("smoke", "e1"))
    elif args.sharded:
        shard_counts = tuple(args.shards) if args.shards else SHARD_COUNTS
        if any(count < 1 for count in shard_counts):
            parser.error("--shards values must be >= 1")
        cells = sharded_matrix(
            ("smoke",) if args.smoke else ("smoke", "e2"),
            shards=shard_counts,
        )
        if args.jobs is not None and args.jobs != 1:
            print(
                "--sharded forces --jobs 1 (shard workers are child "
                "processes the daemonic bench pool cannot spawn)",
                file=sys.stderr,
            )
        args.jobs = 1
    else:
        cells = smoke_matrix() if args.smoke else full_matrix()
    if args.list_cells:
        for cell in cells:
            print(cell.cell_id)
        return 0

    # Read the baseline up front: --out may point at the same file.
    baseline: Optional[Dict[str, Any]] = None
    if args.baseline is not None:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)

    results = run_matrix(cells, jobs=args.jobs, reps=args.reps)
    if args.churn:
        kind = "BENCH_churn"
    elif args.service:
        kind = "BENCH_service"
    else:
        # Sharded cells share the simulator trajectory: counts are
        # engine-invariant, so they gate against the same baseline file.
        kind = "BENCH_simulator"
    matrix = "smoke" if args.smoke else "full"
    if args.sharded:
        matrix = f"sharded-{matrix}"
    report = build_report(
        results,
        matrix=matrix,
        reps=args.reps,
        kind=kind,
    )
    payload = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if args.out == "-":
        sys.stdout.write(payload)
    else:
        print(_render_cells(results))
        if args.out is not None:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(payload)
            print(f"report -> {args.out}")

    if baseline is None:
        return 0
    comparison = compare_reports(
        baseline, report, threshold=args.threshold, min_wall=args.min_wall
    )
    print()
    print(f"baseline: {args.baseline}")
    print(comparison.render())
    return 0 if comparison.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
