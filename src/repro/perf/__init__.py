"""Benchmark harness for the distributed simulator (``repro bench``).

Measures wall-clock performance of the simulator hot path across a
canonical workload matrix (protocol x host family x scale x seed),
fans the cells across a process pool, and emits a ``BENCH_*.json``
report that later runs compare against (``--baseline``), so the
repository carries a performance *trajectory* alongside its
correctness record.  See ``docs/performance.md``.
"""

from __future__ import annotations

from repro.perf.bench import CellResult, run_cell, run_service_cell
from repro.perf.compare import ComparisonResult, compare_reports
from repro.perf.runner import run_matrix
from repro.perf.workloads import (
    BENCH_PROTOCOLS,
    SCALES,
    SEEDS,
    SERVICE_MIXES,
    ServiceCell,
    WorkloadCell,
    full_matrix,
    service_matrix,
    smoke_matrix,
)

__all__ = [
    "BENCH_PROTOCOLS",
    "CellResult",
    "ComparisonResult",
    "SCALES",
    "SEEDS",
    "SERVICE_MIXES",
    "ServiceCell",
    "WorkloadCell",
    "compare_reports",
    "full_matrix",
    "run_cell",
    "run_matrix",
    "run_service_cell",
    "service_matrix",
    "smoke_matrix",
]
