"""CLI: `python -m repro` — Fig. 1 comparison, trace tooling, linting.

Legacy report (unchanged interface)::

    python -m repro [n] [p] [seed]

builds an Erdős–Rényi host with the given parameters (defaults n=400,
p=0.08, seed=2008) and prints the measured Fig. 1 comparison table.

Trace tooling (see ``docs/observability.md``)::

    python -m repro trace record OUT [--protocol P] [--n N] [--p P]
                                     [--seed S] [--reliable]
                                     [--drop-rate R] [--fault-seed S]
    python -m repro trace summary FILE
    python -m repro trace diff A B
    python -m repro trace filter FILE [--kind K] [--round R]
                                      [--node V] [--src V] [--dst V]

Static analysis (see ``docs/static_analysis.md``)::

    python -m repro lint [paths] [--project] [--select CODES]
                         [--format {text,json}] [--list-rules]
                         [--report-unused-suppressions]

Benchmarks (see ``docs/performance.md``)::

    python -m repro bench [--smoke] [--out PATH] [--jobs N] [--reps N]
                          [--baseline PATH] [--threshold F]
                          [--min-wall S] [--list]

Differential fuzzing (see ``docs/fuzzing.md``)::

    python -m repro fuzz [--cases N] [--seed S] [--protocols P ...]
                         [--corpus DIR] [--replay] [--no-shrink]

Churn scenario (see ``docs/robustness.md``)::

    python -m repro churn [--n N] [--k K] [--batches B] [--batch-size E]
                          [--crash-fraction F] [--amnesia-fraction F]
                          [--policy MODE] [--oracle] [--json PATH]

Serving tier (see ``docs/serving.md``)::

    python -m repro build-artifact OUT [--graph K] [--scale S] [--seed N]
    python -m repro serve BUNDLE [--port P | --unix PATH]
    python -m repro loadgen --bundle BUNDLE [--connect HOST:PORT]
                            [--requests N] [--mix M] [--shutdown]

Subcommand dispatch goes through the :data:`SUBCOMMANDS` registry;
``tests/test_cli_usage.py`` asserts every registered name is
documented in the usage string.
"""

from __future__ import annotations

import argparse
import sys
from importlib import import_module
from typing import Callable, Dict, List, Optional

from repro.obs import (
    MetricsRegistry,
    Obs,
    PhaseProfiler,
    PROTOCOLS,
    TraceRecorder,
    dumps_events,
    filter_events,
    first_divergence,
    load_events,
    run_traced,
    summarize,
)


def _fig1(argv: List[str]) -> int:
    """The original `python -m repro [n] [p] [seed]` report."""
    from repro.analysis.report import fig1_report, render_fig1
    from repro.graphs import erdos_renyi_gnp

    n = int(argv[0]) if len(argv) > 0 else 400
    p = float(argv[1]) if len(argv) > 1 else 0.08
    seed = int(argv[2]) if len(argv) > 2 else 2008

    graph = erdos_renyi_gnp(n, p, seed=seed)
    print(f"host: Erdos-Renyi G(n={n}, p={p}) -> m={graph.m}\n")
    rows = fig1_report(graph, seed=seed)
    print(render_fig1(rows, title="Fig. 1, measured on this host"))
    print(
        "\nSee EXPERIMENTS.md for the full reproduction record and\n"
        "`pytest benchmarks/ --benchmark-only` for every paper artifact."
    )
    return 0


def _trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Record, summarize, diff and filter simulator traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser(
        "record", help="run one protocol traced and write a JSONL trace"
    )
    record.add_argument("out", help="output JSONL path ('-' for stdout)")
    record.add_argument(
        "--protocol", choices=PROTOCOLS, default="skeleton"
    )
    record.add_argument("--n", type=int, default=120,
                        help="Erdős–Rényi host size (default 120)")
    record.add_argument("--p", type=float, default=0.08,
                        help="Erdős–Rényi edge probability (default 0.08)")
    record.add_argument("--seed", type=int, default=2008,
                        help="graph + protocol seed (default 2008)")
    record.add_argument("--reliable", action="store_true",
                        help="run under the reliable-delivery adapter")
    record.add_argument("--drop-rate", type=float, default=0.0,
                        help="FaultPlan drop rate (enables fault injection)")
    record.add_argument("--fault-seed", type=int, default=1,
                        help="FaultPlan seed (default 1)")
    record.add_argument("--metrics", action="store_true",
                        help="print the metrics registry after the run")
    record.add_argument("--profile", action="store_true",
                        help="print per-phase wall-clock attribution")

    summary = sub.add_parser("summary", help="print totals and the "
                             "per-phase breakdown of a trace")
    summary.add_argument("file", help="JSONL trace ('-' for stdin)")

    diff = sub.add_parser("diff", help="report the first divergent "
                          "(round, edge, event) of two traces")
    diff.add_argument("a", help="first JSONL trace")
    diff.add_argument("b", help="second JSONL trace")

    filt = sub.add_parser("filter", help="select events by type, round "
                          "or participating node")
    filt.add_argument("file", help="JSONL trace ('-' for stdin)")
    filt.add_argument("--kind", help="event type (send, fault, ...)")
    filt.add_argument("--round", type=int, dest="round_no")
    filt.add_argument("--node", type=int,
                      help="matches src, dst or node fields")
    filt.add_argument("--src", type=int)
    filt.add_argument("--dst", type=int)
    return parser


def _load(path: str):
    return load_events(sys.stdin if path == "-" else path)


def _trace_record(args: argparse.Namespace) -> int:
    from repro.distributed import FaultPlan
    from repro.graphs import erdos_renyi_gnp

    graph = erdos_renyi_gnp(args.n, args.p, seed=args.seed)
    recorder = TraceRecorder()
    obs = Obs(
        recorder=recorder,
        metrics=MetricsRegistry() if args.metrics else None,
        profiler=PhaseProfiler() if args.profile else None,
    )
    fault_plan = (
        FaultPlan(seed=args.fault_seed, drop_rate=args.drop_rate)
        if args.drop_rate > 0
        else None
    )
    run_traced(
        args.protocol,
        graph,
        seed=args.seed,
        obs=obs,
        reliable=args.reliable,
        fault_plan=fault_plan,
    )
    if args.out == "-":
        sys.stdout.write(recorder.dumps())
    else:
        recorder.dump(args.out)
        print(
            f"{args.protocol} on G(n={args.n}, p={args.p}) seed={args.seed}:"
            f" {len(recorder)} events -> {args.out}"
        )
    if obs.metrics is not None:
        print()
        print(obs.metrics.render())
    if obs.profiler is not None:
        print()
        print(obs.profiler.render())
    return 0


def _trace_main(argv: List[str]) -> int:
    args = _trace_parser().parse_args(argv)
    if args.command == "record":
        return _trace_record(args)
    if args.command == "summary":
        print(summarize(_load(args.file)).render())
        return 0
    if args.command == "diff":
        divergence = first_divergence(_load(args.a), _load(args.b))
        if divergence is None:
            print("traces are identical")
            return 0
        print(divergence.render())
        return 1
    if args.command == "filter":
        events = filter_events(
            _load(args.file),
            kind=args.kind,
            round_no=args.round_no,
            node=args.node,
            src=args.src,
            dst=args.dst,
        )
        sys.stdout.write(dumps_events(events))
        return 0
    raise AssertionError(args.command)


_USAGE = """\
usage: python -m repro [subcommand] ...

subcommands:
  lint [paths] [--project] [--select CODES] [--format {text,json}]
        run the repro-lint static analyzer (REP001-REP005 protocol
        invariants; --project adds whole-program rules REP010-REP013;
        exit 1 on findings) -- docs/static_analysis.md
  trace {record,summary,diff,filter} ...
        record and inspect simulator traces -- docs/observability.md
  bench [--smoke] [--out PATH] [--baseline PATH] ...
        run the simulator benchmark matrix in parallel and emit/compare
        BENCH_*.json reports (exit 1 on regression) -- docs/performance.md
  fuzz [--cases N] [--seed S] [--protocols P ...] [--corpus DIR]
        differential-fuzz the distributed protocols against their
        sequential references and theorem bounds; failures shrink to
        JSON reproducers (exit 1) -- docs/fuzzing.md
  churn [--n N] [--k K] [--batches B] [--policy MODE] [--oracle]
        run the self-healing spanner under a seeded edge-churn +
        crash/recovery stream with repair-vs-rebuild policy and
        per-batch grading (exit 1 on degradation) -- docs/robustness.md
  build-artifact OUT [--graph K] [--scale S] [--seed N] [--k K] [--D D]
        build a spanner + oracle bundle and save it as a canonical,
        checksummed artifact file -- docs/serving.md
  serve BUNDLE [--port P | --unix PATH] [--cache-size N] [--landmarks N]
        answer dist/route/label queries from a bundle over
        newline-delimited JSON (TCP or unix socket) -- docs/serving.md
  loadgen --bundle BUNDLE [--connect HOST:PORT | --unix PATH] ...
        drive a deterministic seeded query stream at a server (or an
        in-process one) and report p50/p99/QPS/cache -- docs/serving.md
  [n] [p] [seed]
        (no subcommand) print the measured Fig. 1 comparison table on
        an Erdos-Renyi host G(n, p) (defaults: n=400 p=0.08 seed=2008)

Use `python -m repro <subcommand> --help` for subcommand options.
"""


def _deferred(module: str, attr: str) -> Callable[[List[str]], int]:
    """A subcommand runner that imports its implementation lazily.

    Keeps ``python -m repro --help`` and the Fig. 1 path from paying
    the import cost of every subsystem (asyncio serving stack, bench
    matrix, fuzzing corpus machinery, ...).
    """

    def run(argv: List[str]) -> int:
        handler: Callable[[List[str]], int] = getattr(
            import_module(module), attr
        )
        return handler(argv)

    return run


#: subcommand name -> runner taking the remaining argv.  The usage
#: test walks this registry, so adding an entry here without a
#: ``_USAGE`` line (or vice versa) fails the suite.
SUBCOMMANDS: Dict[str, Callable[[List[str]], int]] = {
    "trace": _trace_main,
    "lint": _deferred("repro.lint.runner", "main"),
    "bench": _deferred("repro.perf.cli", "main"),
    "fuzz": _deferred("repro.fuzz.cli", "main"),
    "churn": _deferred("repro.churn.cli", "main"),
    "build-artifact": _deferred("repro.serving.cli", "build_artifact_main"),
    "serve": _deferred("repro.serving.cli", "serve_main"),
    "loadgen": _deferred("repro.serving.cli", "loadgen_main"),
}


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in ("-h", "--help", "help"):
        print(_USAGE, end="")
        return 0
    if argv and argv[0] in SUBCOMMANDS:
        return SUBCOMMANDS[argv[0]](argv[1:])
    return _fig1(argv)


if __name__ == "__main__":
    raise SystemExit(main())
