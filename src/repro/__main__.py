"""CLI: `python -m repro` — run the Fig. 1 comparison on a demo graph.

Options:
    python -m repro [n] [p] [seed]

Builds an Erdős–Rényi host with the given parameters (defaults
n=400, p=0.08, seed=2008) and prints the measured comparison table of
every implemented spanner construction.
"""

from __future__ import annotations

import sys

from repro.analysis.report import fig1_report, render_fig1
from repro.graphs import erdos_renyi_gnp


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    n = int(argv[0]) if len(argv) > 0 else 400
    p = float(argv[1]) if len(argv) > 1 else 0.08
    seed = int(argv[2]) if len(argv) > 2 else 2008

    graph = erdos_renyi_gnp(n, p, seed=seed)
    print(f"host: Erdos-Renyi G(n={n}, p={p}) -> m={graph.m}\n")
    rows = fig1_report(graph, seed=seed)
    print(render_fig1(rows, title="Fig. 1, measured on this host"))
    print(
        "\nSee EXPERIMENTS.md for the full reproduction record and\n"
        "`pytest benchmarks/ --benchmark-only` for every paper artifact."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
