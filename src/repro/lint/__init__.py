"""repro-lint: AST-based checker for the repo's protocol invariants.

The paper's guarantees only hold if the implementation plays by the
CONGEST-style rules the simulator assumes.  Each rule encodes one such
invariant with a stable ``REP0xx`` code:

====== ===================== =============================================
code   name                  invariant
====== ===================== =============================================
REP001 determinism           randomness/clock via ``util/rng.py`` only
REP002 simulation-honesty    nodes talk only through send/recv
REP003 message-discipline    payloads ordered + word-countable
REP004 obs-guard             obs calls behind ``if obs is not None``
REP005 iteration-order       no bare-set iteration where order escapes
====== ===================== =============================================

Run it as ``python -m repro lint [paths]``; see
``docs/static_analysis.md`` for the full catalog and suppression syntax.
"""

from repro.lint.base import ALGORITHMIC_PACKAGES, FileContext, Rule, make_context
from repro.lint.determinism import DeterminismRule
from repro.lint.diagnostics import Diagnostic, Suppressions, parse_suppressions
from repro.lint.honesty import HonestyRule
from repro.lint.iteration import IterationOrderRule
from repro.lint.messages import MessageDisciplineRule, static_payload_words
from repro.lint.obsguard import ObsGuardRule
from repro.lint.runner import ALL_RULES, lint_file, lint_paths, main

__all__ = [
    "ALGORITHMIC_PACKAGES",
    "ALL_RULES",
    "Diagnostic",
    "DeterminismRule",
    "FileContext",
    "HonestyRule",
    "IterationOrderRule",
    "MessageDisciplineRule",
    "ObsGuardRule",
    "Rule",
    "Suppressions",
    "lint_file",
    "lint_paths",
    "main",
    "make_context",
    "parse_suppressions",
    "static_payload_words",
]
