"""repro-lint: AST-based checker for the repo's protocol invariants.

The paper's guarantees only hold if the implementation plays by the
CONGEST-style rules the simulator assumes.  Each rule encodes one such
invariant with a stable ``REP0xx`` code:

====== ===================== =============================================
code   name                  invariant
====== ===================== =============================================
REP001 determinism           randomness/clock via ``util/rng.py`` only
REP002 simulation-honesty    nodes talk only through send/recv
REP003 message-discipline    payloads ordered + word-countable
REP004 obs-guard             obs calls behind ``if obs is not None``
REP005 iteration-order       no bare-set iteration where order escapes
====== ===================== =============================================

``--project`` mode builds a whole-program context (module-import
graph, symbol tables, call graph — :mod:`repro.lint.project`) and adds
the cross-module rule families:

====== ===================== =============================================
REP010 determinism-taint     no helper-call path to clock/entropy/set-order
REP011 layering              imports follow the declared layer DAG
REP012 congest-payload-bound payloads bounded by a constant word count
REP013 asyncio-safety        serving/ coroutines don't block/drop/race
====== ===================== =============================================

Run it as ``python -m repro lint [--project] [paths]``; see
``docs/static_analysis.md`` for the full catalog and suppression syntax.
"""

from repro.lint.asyncsafe import AsyncSafetyRule
from repro.lint.base import (
    ALGORITHMIC_PACKAGES,
    FileContext,
    ProjectRule,
    Rule,
    make_context,
)
from repro.lint.congest import CongestPayloadRule
from repro.lint.determinism import DeterminismRule
from repro.lint.diagnostics import (
    Diagnostic,
    Directive,
    Suppressions,
    parse_suppressions,
)
from repro.lint.honesty import HonestyRule
from repro.lint.iteration import IterationOrderRule
from repro.lint.layering import LAYER_DAG, LayeringRule
from repro.lint.messages import MessageDisciplineRule, static_payload_words
from repro.lint.obsguard import ObsGuardRule
from repro.lint.project import ProjectContext, build_project
from repro.lint.runner import (
    ALL_RULES,
    PROJECT_RULES,
    lint_file,
    lint_paths,
    lint_project,
    main,
)
from repro.lint.taint import TaintRule

__all__ = [
    "ALGORITHMIC_PACKAGES",
    "ALL_RULES",
    "AsyncSafetyRule",
    "CongestPayloadRule",
    "Diagnostic",
    "Directive",
    "DeterminismRule",
    "FileContext",
    "HonestyRule",
    "IterationOrderRule",
    "LAYER_DAG",
    "LayeringRule",
    "MessageDisciplineRule",
    "ObsGuardRule",
    "PROJECT_RULES",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "Suppressions",
    "TaintRule",
    "build_project",
    "lint_file",
    "lint_paths",
    "lint_project",
    "main",
    "make_context",
    "parse_suppressions",
    "static_payload_words",
]
