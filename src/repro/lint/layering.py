"""REP011 — architecture layering: the declared import DAG of repro.

The repo's correctness story is layered: ``util`` (RNG plumbing, word
accounting) sits at the bottom with no internal dependencies, the
sequential ``core`` and the ``distributed`` protocols build on it, and
operational tiers (``serving``, ``perf``, ``fuzz``, ``churn``) sit on
top.  A ``core`` module importing ``serving`` — or an import-time cycle
between packages — would mean the paper's algorithm layer depends on
the machinery that is supposed to *measure* it, and would make the
strict-typing / lint gates impossible to order.

:data:`LAYER_DAG` is the contract: for each ``repro`` subpackage, the
set of subpackages its *module-level* imports may target.  Function-
local imports (and ``if TYPE_CHECKING:`` blocks) are deliberately
exempt — they are the sanctioned escape hatch for late binding (e.g.
``perf`` loading ``serving`` workloads on demand), because they impose
no import-time ordering constraint.  The rule also runs Tarjan's SCC
over the eager import graph and reports every genuine import-time
cycle, package-internal ones included.

The DAG is documented as the repo's import-architecture contract in
``docs/static_analysis.md``; changing it is an API-design decision,
not a lint tweak.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, Optional, Set, Tuple

from repro.lint.base import ProjectRule
from repro.lint.diagnostics import Diagnostic
from repro.lint.project import ModuleInfo, ProjectContext

__all__ = ["LAYER_DAG", "LayeringRule"]

#: package -> subpackages its module-level imports may target.  Keep
#: alphabetical by key; the bottom of the stack has the empty tuple.
LAYER_DAG: Dict[str, Tuple[str, ...]] = {
    "analysis": (
        "baselines",
        "core",
        "distributed",
        "graphs",
        "obs",
        "spanner",
        "util",
    ),
    "applications": ("distributed", "graphs", "obs", "spanner", "util"),
    "baselines": ("graphs", "spanner", "util"),
    "churn": ("distributed", "graphs", "obs", "spanner", "util"),
    "core": ("graphs", "spanner", "util"),
    "distributed": ("core", "graphs", "obs", "spanner", "util"),
    "fuzz": (
        "analysis",
        "baselines",
        "churn",
        "core",
        "distributed",
        "graphs",
        "obs",
        "spanner",
        "util",
    ),
    "graphs": ("util",),
    "lint": ("util",),
    "obs": ("graphs", "util"),
    "perf": (
        "churn",
        "distributed",
        "graphs",
        "obs",
        "serving",
        "spanner",
        "util",
    ),
    "serving": ("applications", "core", "graphs", "obs", "spanner", "util"),
    "spanner": ("graphs", "util"),
    "util": (),
}


def _package_of(module: ModuleInfo) -> Optional[str]:
    """The repro subpackage a module belongs to, for layering purposes.

    ``None`` for modules outside any ``repro`` tree (loose fixture
    files) and for the package apex (``repro/__init__``,
    ``repro/__main__``) — the apex wires the tiers together and may
    import any of them.
    """
    if module.package is None or module.package == "":
        return None
    return module.package


class LayeringRule(ProjectRule):
    code = "REP011"
    name = "layering"
    summary = (
        "module-level imports must follow the declared layer DAG "
        "(util/core at the bottom, serving/perf/fuzz/churn on top) and "
        "the eager import graph must be acyclic"
    )

    def check(self, project: ProjectContext) -> Iterator[Diagnostic]:
        for module in project.sorted_modules():
            yield from self._check_module(project, module)
        yield from self._check_cycles(project)

    def _check_module(
        self, project: ProjectContext, module: ModuleInfo
    ) -> Iterator[Diagnostic]:
        package = _package_of(module)
        if package is None:
            return
        allowed: Optional[FrozenSet[str]] = (
            frozenset(LAYER_DAG[package]) if package in LAYER_DAG else None
        )
        seen: Set[Tuple[int, str]] = set()
        for edge in module.imports:
            if edge.deferred:
                continue  # fn-local / TYPE_CHECKING: sanctioned late binding
            target = project.modules.get(edge.target)
            if target is None:
                continue
            target_pkg = _package_of(target)
            if target_pkg is None or target_pkg == package:
                continue
            anchor = (edge.node.lineno, target_pkg)
            if anchor in seen:
                continue
            seen.add(anchor)
            if allowed is None:
                yield self.diag(
                    module.ctx,
                    edge.node,
                    f"package '{package}' has no declared layer in "
                    "LAYER_DAG but imports "
                    f"'{target_pkg}' at module level; add it to the "
                    "layer contract in repro/lint/layering.py",
                )
            elif target_pkg not in allowed:
                allowed_list = ", ".join(LAYER_DAG[package]) or "(nothing)"
                yield self.diag(
                    module.ctx,
                    edge.node,
                    f"layer violation: '{package}' must not import "
                    f"'{target_pkg}' at module level "
                    f"(allowed: {allowed_list}); use a function-local "
                    "import if late binding is genuinely needed",
                )

    def _check_cycles(
        self, project: ProjectContext
    ) -> Iterator[Diagnostic]:
        for cycle in project.import_cycles():
            members = set(cycle)
            first = project.modules[cycle[0]]
            anchor: ast.AST = first.ctx.tree
            for edge in first.imports:
                if not edge.deferred and edge.target in members:
                    anchor = edge.node
                    break
            yield self.diag(
                first.ctx,
                anchor,
                "import-time cycle: " + " -> ".join(cycle + [cycle[0]]) +
                "; break it by deferring one import into a function "
                "body",
            )
