"""REP002 — simulation honesty: nodes talk only through the simulator.

The round/message/width accounting of Theorem 2 (``O(t + log n)`` rounds
at ``O(log^eps n)``-word messages) is only meaningful if each node
program's knowledge really arrives via counted messages.  In Python
nothing stops a :class:`~repro.distributed.simulator.NodeProgram` from
reading a neighbor program's fields or the simulator's own queues —
"telepathy" that would make every measured bound fiction.  This rule
statically bans, *inside NodeProgram subclasses of protocol modules*
(``distributed/*_protocol.py``):

* attribute access on another object's underscore-private state
  (``api._network``, ``other._shared`` — anything ``x._y`` where ``x``
  is not ``self``);
* any reference to simulator internals (``_pending``, ``_apis``,
  ``_outbox``, ``_delayed``, ``_sorted_nbrs``, ``_setup_done``,
  ``_halted``, ``_network``, ``_nbrs``, ``_nbr_set``, ``_pairs``,
  ``_active``) anywhere in an attribute chain, even one rooted at
  ``self``;
* holding the global objects at all: bare reads of names ``network`` /
  ``simulator`` inside node-program code.

Driver functions in the same module (which *build* the network and
harvest program state after the run) are exempt — output collection
after quiescence is the model's "every processor knows its result",
not mid-protocol peeking.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Union

from repro.lint.base import FileContext, Rule, attribute_chain
from repro.lint.diagnostics import Diagnostic

__all__ = ["HonestyRule"]

#: Network/Api internals (see ``distributed/simulator.py``).  Touching
#: any of these from node code bypasses the message accounting.
_SIMULATOR_INTERNALS = frozenset(
    {
        "_network",
        "_pending",
        "_apis",
        "_outbox",
        "_delayed",
        "_sorted_nbrs",
        "_setup_done",
        "_halted",
        # hot-path caches added by the simulator overhaul: the per-api
        # neighbor list/set and the network's active/pair lists.
        "_nbrs",
        "_nbr_set",
        "_pairs",
        "_active",
    }
)

#: bare names a node program must never read: holding the global
#: simulator/network means the node can see the whole world.
_BANNED_GLOBALS = frozenset({"network", "simulator"})


def _is_node_program_base(base: ast.expr) -> bool:
    if isinstance(base, ast.Name):
        return base.id.endswith("NodeProgram") or base.id == "NodeProgram"
    if isinstance(base, ast.Attribute):
        return base.attr.endswith("NodeProgram") or base.attr == "NodeProgram"
    return False


def _node_program_classes(tree: ast.Module) -> List[ast.ClassDef]:
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef)
        and any(_is_node_program_base(base) for base in node.bases)
    ]


class HonestyRule(Rule):
    code = "REP002"
    name = "simulation-honesty"
    summary = (
        "node programs in *_protocol.py may not read other nodes' state or "
        "simulator internals; all knowledge arrives via send/recv "
        "(CONGEST accounting, Thm. 2)"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.is_protocol_file

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for cls in _node_program_classes(ctx.tree):
            yield from self._check_class(ctx, cls)

    def _check_class(
        self, ctx: FileContext, cls: ast.ClassDef
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(cls):
            if isinstance(node, ast.Attribute):
                yield from self._check_attribute(ctx, cls, node)
            elif isinstance(node, ast.Name):
                if (
                    isinstance(node.ctx, ast.Load)
                    and node.id in _BANNED_GLOBALS
                ):
                    yield self.diag(
                        ctx,
                        node,
                        f"node program {cls.name} reads global "
                        f"'{node.id}'; a processor only sees its own "
                        "state and its inbox (use the Api handle)",
                    )

    def _check_attribute(
        self,
        ctx: FileContext,
        cls: ast.ClassDef,
        node: ast.Attribute,
    ) -> Iterator[Diagnostic]:
        chain = attribute_chain(node)
        if chain is None:
            # Rooted at a call/subscript (e.g. ``programs[u].state``):
            # still catch simulator internals by attribute name.
            if node.attr in _SIMULATOR_INTERNALS:
                yield self.diag(
                    ctx,
                    node,
                    f"node program {cls.name} touches simulator internal "
                    f"'.{node.attr}'; communicate via api.send/broadcast",
                )
            return
        root, attrs = chain
        internals = [a for a in attrs if a in _SIMULATOR_INTERNALS]
        if internals:
            yield self.diag(
                ctx,
                node,
                f"node program {cls.name} touches simulator internal "
                f"'.{internals[0]}' (via "
                f"{'.'.join([root] + attrs)}); communicate via "
                "api.send/broadcast",
            )
            return
        if root == "self":
            return
        # Only the *first* attribute hop peeks into another object; a
        # leading private name (``x._y.z``) is what we flag.
        first = attrs[0]
        if first.startswith("_") and not first.startswith("__"):
            yield self.diag(
                ctx,
                node,
                f"node program {cls.name} reads private state "
                f"'{root}.{first}' of another object; nodes exchange "
                "information only through counted messages",
            )
