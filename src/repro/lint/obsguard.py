"""REP004 — obs guard: observability calls hide behind ``is not None``.

The observability bundle (PR 2) promises **zero overhead when
disabled**: an unobserved run must not pay even an attribute lookup plus
no-op call per message (benchmark E21 measures exactly this).  The
contract in hot-path code is therefore::

    obs = self.obs
    ...
    if obs is not None:
        obs.on_send(round_no, v, dst, words, payloads)

This rule finds method calls on an ``obs`` handle (a name ``obs``, or
any ``*.obs`` attribute) inside the algorithmic packages that are *not*
dominated by a ``None`` guard on that same expression.  Recognized
guards:

* ``if obs is not None:`` / truthiness ``if obs:`` (and the guarded
  else-branch of ``if obs is None:``),
* early exits — ``if obs is None: return`` guards the rest of the block,
* ``assert obs is not None``,
* ``and`` chains — ``obs is not None and obs.on_x()``,
* conditional expressions — ``obs.on_x() if obs is not None else None``.

Guards are matched by expression text, so the ``obs = self.obs``
aliasing idiom works: the guard and the call must spell the handle the
same way.  Plain function calls *taking* obs as an argument
(``phase_scope(obs, ...)``, ``build_network(..., obs=obs)``) are not
method calls on the handle and are fine — the callee owns the check.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List, Tuple

from repro.lint.base import ALGORITHMIC_PACKAGES, FileContext, Rule
from repro.lint.diagnostics import Diagnostic

__all__ = ["ObsGuardRule"]


def _is_obs_handle(expr: ast.expr) -> bool:
    """Whether ``expr`` spells an observability handle (obs / *.obs)."""
    if isinstance(expr, ast.Name):
        return expr.id == "obs"
    if isinstance(expr, ast.Attribute):
        return expr.attr == "obs"
    return False


def _key(expr: ast.expr) -> str:
    return ast.unparse(expr)


def _guards_from_test(
    test: ast.expr,
) -> Tuple[FrozenSet[str], FrozenSet[str]]:
    """(keys guarded when test is true, keys guarded when false)."""
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        left, op, right = test.left, test.ops[0], test.comparators[0]
        is_none = isinstance(right, ast.Constant) and right.value is None
        if is_none and _is_obs_handle(left):
            if isinstance(op, ast.IsNot):
                return frozenset({_key(left)}), frozenset()
            if isinstance(op, ast.Is):
                return frozenset(), frozenset({_key(left)})
        return frozenset(), frozenset()
    if _is_obs_handle(test):
        # truthiness: Obs instances are always truthy, so ``if obs:``
        # is an acceptable (if less idiomatic) None guard.
        return frozenset({_key(test)}), frozenset()
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        pos, neg = _guards_from_test(test.operand)
        return neg, pos
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        pos: FrozenSet[str] = frozenset()
        for value in test.values:
            sub_pos, _ = _guards_from_test(value)
            pos = pos | sub_pos
        return pos, frozenset()
    return frozenset(), frozenset()


def _diverges(body: List[ast.stmt]) -> bool:
    """Whether a block always leaves the enclosing block."""
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


class ObsGuardRule(Rule):
    code = "REP004"
    name = "obs-guard"
    summary = (
        "obs.* calls in algorithmic code must sit under an "
        "'if obs is not None' guard (zero-overhead-when-disabled "
        "contract, benchmark E21)"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_packages(ALGORITHMIC_PACKAGES)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        found: List[Diagnostic] = []
        for node in ctx.tree.body:
            self._scan_stmt(ctx, node, frozenset(), found)
        yield from found

    # -- statement-level guard tracking ---------------------------------

    def _scan_block(
        self,
        ctx: FileContext,
        body: List[ast.stmt],
        guarded: FrozenSet[str],
        out: List[Diagnostic],
    ) -> None:
        for stmt in body:
            guarded = self._scan_stmt(ctx, stmt, guarded, out)

    def _scan_stmt(
        self,
        ctx: FileContext,
        stmt: ast.stmt,
        guarded: FrozenSet[str],
        out: List[Diagnostic],
    ) -> FrozenSet[str]:
        """Scan one statement; returns guards active *after* it."""
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._scan_block(ctx, stmt.body, frozenset(), out)
            return guarded
        if isinstance(stmt, ast.ClassDef):
            self._scan_block(ctx, stmt.body, frozenset(), out)
            return guarded
        if isinstance(stmt, ast.If):
            pos, neg = _guards_from_test(stmt.test)
            self._check_expr(ctx, stmt.test, guarded, out)
            self._scan_block(ctx, stmt.body, guarded | pos, out)
            self._scan_block(ctx, stmt.orelse, guarded | neg, out)
            # ``if obs is None: return`` → the rest of the block is safe.
            if _diverges(stmt.body):
                guarded = guarded | neg
            if stmt.orelse and _diverges(stmt.orelse):
                guarded = guarded | pos
            return guarded
        if isinstance(stmt, ast.Assert):
            pos, _ = _guards_from_test(stmt.test)
            return guarded | pos
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._check_expr(ctx, stmt.iter, guarded, out)
            self._scan_block(ctx, stmt.body, guarded, out)
            self._scan_block(ctx, stmt.orelse, guarded, out)
            return guarded
        if isinstance(stmt, ast.While):
            self._check_expr(ctx, stmt.test, guarded, out)
            self._scan_block(ctx, stmt.body, guarded, out)
            self._scan_block(ctx, stmt.orelse, guarded, out)
            return guarded
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._check_expr(ctx, item.context_expr, guarded, out)
            self._scan_block(ctx, stmt.body, guarded, out)
            return guarded
        if isinstance(stmt, (ast.Try,)):
            self._scan_block(ctx, stmt.body, guarded, out)
            for handler in stmt.handlers:
                self._scan_block(ctx, handler.body, guarded, out)
            self._scan_block(ctx, stmt.orelse, guarded, out)
            self._scan_block(ctx, stmt.finalbody, guarded, out)
            return guarded
        # Plain statement: check every expression it contains.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._check_expr(ctx, child, guarded, out)
        return guarded

    # -- expression-level checking --------------------------------------

    def _check_expr(
        self,
        ctx: FileContext,
        expr: ast.expr,
        guarded: FrozenSet[str],
        out: List[Diagnostic],
    ) -> None:
        if isinstance(expr, ast.IfExp):
            pos, neg = _guards_from_test(expr.test)
            self._check_expr(ctx, expr.test, guarded, out)
            self._check_expr(ctx, expr.body, guarded | pos, out)
            self._check_expr(ctx, expr.orelse, guarded | neg, out)
            return
        if isinstance(expr, ast.BoolOp) and isinstance(expr.op, ast.And):
            # short-circuit: each operand sees the guards established by
            # the operands to its left.
            acc = guarded
            for value in expr.values:
                self._check_expr(ctx, value, acc, out)
                pos, _ = _guards_from_test(value)
                acc = acc | pos
            return
        if isinstance(expr, ast.Call):
            func = expr.func
            if (
                isinstance(func, ast.Attribute)
                and _is_obs_handle(func.value)
                and _key(func.value) not in guarded
            ):
                out.append(
                    self.diag(
                        ctx,
                        expr,
                        f"unguarded observability call "
                        f"{_key(func.value)}.{func.attr}(); wrap it in "
                        "'if obs is not None:' to keep disabled runs "
                        "zero-overhead",
                    )
                )
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr):
                    self._check_expr(ctx, child, guarded, out)
                elif isinstance(child, ast.keyword):
                    self._check_expr(ctx, child.value, guarded, out)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._check_expr(ctx, child, guarded, out)
            elif isinstance(child, ast.keyword):
                self._check_expr(ctx, child.value, guarded, out)
            elif isinstance(child, ast.comprehension):
                self._check_expr(ctx, child.iter, guarded, out)
                for cond in child.ifs:
                    self._check_expr(ctx, cond, guarded, out)
