"""repro-lint driver: file discovery, rule dispatch, CLI.

Usage (also reachable as ``python -m repro lint``)::

    python -m repro lint src               # lint a tree, exit 1 on findings
    python -m repro lint --select REP001,REP005 src/repro/core
    python -m repro lint --list-rules

Diagnostics print as ``path:line:col: REPxxx message`` and are sorted by
location, so output is deterministic and editor-clickable.  A file that
fails to parse yields a single ``REP000`` diagnostic instead of crashing
the run.  Inline ``# repro-lint: disable=REPxxx`` comments suppress
findings on their line (see :mod:`repro.lint.diagnostics`).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, TextIO

from repro.lint.base import FileContext, Rule, make_context
from repro.lint.determinism import DeterminismRule
from repro.lint.diagnostics import Diagnostic
from repro.lint.honesty import HonestyRule
from repro.lint.iteration import IterationOrderRule
from repro.lint.messages import MessageDisciplineRule
from repro.lint.obsguard import ObsGuardRule

__all__ = ["ALL_RULES", "lint_file", "lint_paths", "main"]

#: the full rule set, in code order.
ALL_RULES: List[Rule] = [
    DeterminismRule(),
    HonestyRule(),
    MessageDisciplineRule(),
    ObsGuardRule(),
    IterationOrderRule(),
]


def _select_rules(codes: Optional[Iterable[str]]) -> List[Rule]:
    if codes is None:
        return list(ALL_RULES)
    wanted = {c.strip().upper() for c in codes if c.strip()}
    unknown = wanted - {rule.code for rule in ALL_RULES}
    if unknown:
        raise ValueError(
            f"unknown rule code(s): {', '.join(sorted(unknown))}"
        )
    return [rule for rule in ALL_RULES if rule.code in wanted]


def lint_file(
    path: Path,
    rules: Optional[Sequence[Rule]] = None,
    display_path: Optional[str] = None,
) -> List[Diagnostic]:
    """Lint one file; returns sorted, suppression-filtered diagnostics."""
    shown = display_path or str(path)
    try:
        ctx = make_context(path, shown)
    except (SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", None) or 1
        return [
            Diagnostic(
                path=shown,
                line=line,
                col=1,
                code="REP000",
                message=f"file does not parse: {exc.msg if isinstance(exc, SyntaxError) else exc}",
            )
        ]
    return _run_rules(ctx, rules if rules is not None else ALL_RULES)


def _run_rules(
    ctx: FileContext, rules: Sequence[Rule]
) -> List[Diagnostic]:
    seen = set()
    findings: List[Diagnostic] = []
    for rule in rules:
        if not rule.applies(ctx):
            continue
        for diag in rule.check(ctx):
            if ctx.suppressions.active(diag.line, diag.code):
                continue
            anchor = (diag.path, diag.line, diag.col, diag.code)
            if anchor in seen:
                continue  # nested AST visits can re-find the same spot
            seen.add(anchor)
            findings.append(diag)
    return sorted(findings)


def _python_files(root: Path) -> Iterable[Path]:
    if root.is_file():
        yield root
        return
    yield from sorted(
        p
        for p in root.rglob("*.py")
        if not any(part.startswith(".") for part in p.parts)
    )


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Diagnostic]:
    """Lint files/trees; missing paths raise :class:`FileNotFoundError`."""
    active = list(rules) if rules is not None else list(ALL_RULES)
    findings: List[Diagnostic] = []
    for raw in paths:
        root = Path(raw)
        if not root.exists():
            raise FileNotFoundError(raw)
        for path in _python_files(root):
            findings.extend(lint_file(path, active))
    return sorted(findings)


def main(
    argv: Optional[Sequence[str]] = None, out: Optional[TextIO] = None
) -> int:
    """CLI entry point; returns the process exit code (1 on findings)."""
    stream = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based checker for the repo's protocol invariants "
            "(determinism, simulation honesty, message discipline, obs "
            "guards, iteration order). See docs/static_analysis.md."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code} {rule.name}: {rule.summary}", file=stream)
        return 0

    try:
        rules = _select_rules(
            args.select.split(",") if args.select else None
        )
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    try:
        findings = lint_paths(args.paths, rules)
    except FileNotFoundError as exc:
        print(f"repro lint: no such path: {exc}", file=sys.stderr)
        return 2
    for diag in findings:
        print(diag.render(), file=stream)
    if findings:
        print(
            f"repro lint: {len(findings)} finding(s)", file=stream
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
