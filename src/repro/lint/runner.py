"""repro-lint driver: file discovery, rule dispatch, CLI.

Usage (also reachable as ``python -m repro lint``)::

    python -m repro lint src               # lint a tree, exit 1 on findings
    python -m repro lint --project src     # + whole-program rules REP010-013
    python -m repro lint --select REP001,REP005 src/repro/core
    python -m repro lint --format json src # machine-readable (CI artifact)
    python -m repro lint --list-rules

Diagnostics print as ``path:line:col: REPxxx message`` and are sorted by
(path, line, col, code), so output is deterministic and editor-
clickable; ``--format json`` emits one object per diagnostic instead.
A file that fails to parse yields a single ``REP000`` diagnostic
instead of crashing the run.  Inline ``# repro-lint: disable=REPxxx``
comments suppress findings on their line (see
:mod:`repro.lint.diagnostics`); ``--report-unused-suppressions`` flags
directives that no longer suppress anything (code ``REP099``).

File discovery is hardened: duplicate CLI paths (or a file listed both
directly and via its parent directory) are linted once, and
``__pycache__``/hidden directories and non-``.py`` files are skipped
explicitly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, TextIO

from repro.lint.asyncsafe import AsyncSafetyRule
from repro.lint.base import FileContext, ProjectRule, Rule, make_context
from repro.lint.congest import CongestPayloadRule
from repro.lint.determinism import DeterminismRule
from repro.lint.diagnostics import Diagnostic
from repro.lint.honesty import HonestyRule
from repro.lint.iteration import IterationOrderRule
from repro.lint.layering import LayeringRule
from repro.lint.messages import MessageDisciplineRule
from repro.lint.obsguard import ObsGuardRule
from repro.lint.project import build_project, discover_files
from repro.lint.taint import TaintRule

__all__ = [
    "ALL_RULES",
    "PROJECT_RULES",
    "lint_file",
    "lint_paths",
    "lint_project",
    "main",
]

#: the per-file rule set, in code order.
ALL_RULES: List[Rule] = [
    DeterminismRule(),
    HonestyRule(),
    MessageDisciplineRule(),
    ObsGuardRule(),
    IterationOrderRule(),
]

#: the whole-program rule set (``--project`` mode), in code order.
PROJECT_RULES: List[ProjectRule] = [
    TaintRule(),
    LayeringRule(),
    CongestPayloadRule(),
    AsyncSafetyRule(),
]

#: pseudo-code for stale ``# repro-lint: disable=`` directives
#: (``--report-unused-suppressions``); not a selectable rule.
UNUSED_SUPPRESSION_CODE = "REP099"


def _select_rules(
    codes: Optional[Iterable[str]], project: bool = False
) -> "tuple[List[Rule], List[ProjectRule]]":
    project_rules: List[ProjectRule] = (
        list(PROJECT_RULES) if project else []
    )
    if codes is None:
        return list(ALL_RULES), project_rules
    wanted = {c.strip().upper() for c in codes if c.strip()}
    known = {rule.code for rule in ALL_RULES}
    known_project = {rule.code for rule in PROJECT_RULES}
    unknown = wanted - known - known_project
    if unknown:
        raise ValueError(
            f"unknown rule code(s): {', '.join(sorted(unknown))}"
        )
    if not project and wanted & known_project:
        needs = ", ".join(sorted(wanted & known_project))
        raise ValueError(
            f"rule(s) {needs} are whole-program rules; add --project"
        )
    return (
        [rule for rule in ALL_RULES if rule.code in wanted],
        [rule for rule in project_rules if rule.code in wanted],
    )


def lint_file(
    path: Path,
    rules: Optional[Sequence[Rule]] = None,
    display_path: Optional[str] = None,
) -> List[Diagnostic]:
    """Lint one file; returns sorted, suppression-filtered diagnostics."""
    shown = display_path or str(path)
    try:
        ctx = make_context(path, shown)
    except (SyntaxError, ValueError) as exc:
        return [_parse_failure(shown, exc)]
    return _run_rules(ctx, rules if rules is not None else ALL_RULES)


def _parse_failure(shown: str, exc: Exception) -> Diagnostic:
    line = getattr(exc, "lineno", None) or 1
    return Diagnostic(
        path=shown,
        line=line,
        col=1,
        code="REP000",
        message=(
            "file does not parse: "
            f"{exc.msg if isinstance(exc, SyntaxError) else exc}"
        ),
    )


def _run_rules(
    ctx: FileContext, rules: Sequence[Rule]
) -> List[Diagnostic]:
    findings: List[Diagnostic] = []
    for rule in rules:
        if not rule.applies(ctx):
            continue
        for diag in rule.check(ctx):
            if ctx.suppressions.active(diag.line, diag.code):
                continue
            findings.append(diag)
    return _dedupe(findings)


def _dedupe(findings: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Sort by (path, line, col, code) and drop exact re-finds.

    Nested AST visits can re-find the same spot; sorting first makes
    the surviving diagnostic deterministic when messages differ.
    """
    seen: "set[tuple[str, int, int, str]]" = set()
    out: List[Diagnostic] = []
    for diag in sorted(findings):
        anchor = (diag.path, diag.line, diag.col, diag.code)
        if anchor in seen:
            continue
        seen.add(anchor)
        out.append(diag)
    return out


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Diagnostic]:
    """Lint files/trees; missing paths raise :class:`FileNotFoundError`."""
    active = list(rules) if rules is not None else list(ALL_RULES)
    findings: List[Diagnostic] = []
    for path, shown in discover_files(paths):
        findings.extend(lint_file(path, active, display_path=shown))
    return _dedupe(findings)


def lint_project(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    project_rules: Optional[Sequence[ProjectRule]] = None,
    report_unused_suppressions: bool = False,
) -> List[Diagnostic]:
    """Whole-program lint: per-file rules + REP010-REP013 over ``paths``.

    Builds the project context once (module graph, symbol tables, call
    resolver), runs the per-file rules on every module and the project
    rules on the whole graph, and applies each file's inline
    suppressions to both.  With ``report_unused_suppressions``,
    directives that suppressed nothing in the entire run yield
    ``REP099`` findings.
    """
    file_rules = list(rules) if rules is not None else list(ALL_RULES)
    active_project = (
        list(project_rules)
        if project_rules is not None
        else list(PROJECT_RULES)
    )
    project, failures = build_project(paths)
    findings: List[Diagnostic] = []
    for _path, shown, exc in failures:
        findings.append(_parse_failure(shown, exc))

    suppressions_by_path = {
        module.ctx.display_path: module.ctx.suppressions
        for module in project.sorted_modules()
    }
    for module in project.sorted_modules():
        findings.extend(_run_rules(module.ctx, file_rules))
    for rule in active_project:
        for diag in rule.check(project):
            supp = suppressions_by_path.get(diag.path)
            if supp is not None and supp.active(diag.line, diag.code):
                continue
            findings.append(diag)

    if report_unused_suppressions:
        for module in project.sorted_modules():
            for directive in module.ctx.suppressions.unused_directives():
                scope = "file-wide " if directive.file_wide else ""
                findings.append(
                    Diagnostic(
                        path=module.ctx.display_path,
                        line=directive.line,
                        col=directive.col,
                        code=UNUSED_SUPPRESSION_CODE,
                        message=(
                            f"unused {scope}suppression of "
                            f"{directive.code}: no finding matches this "
                            "directive — remove it"
                        ),
                    )
                )
    return _dedupe(findings)


def _render(
    findings: Sequence[Diagnostic], fmt: str, stream: TextIO
) -> None:
    if fmt == "json":
        payload = [
            {
                "path": d.path,
                "line": d.line,
                "col": d.col,
                "code": d.code,
                "message": d.message,
            }
            for d in findings
        ]
        print(json.dumps(payload, indent=2), file=stream)
        return
    for diag in findings:
        print(diag.render(), file=stream)
    if findings:
        print(f"repro lint: {len(findings)} finding(s)", file=stream)


def main(
    argv: Optional[Sequence[str]] = None, out: Optional[TextIO] = None
) -> int:
    """CLI entry point; returns the process exit code (1 on findings)."""
    stream = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based checker for the repo's protocol invariants "
            "(determinism, simulation honesty, message discipline, obs "
            "guards, iteration order; --project adds cross-module "
            "taint, layering, CONGEST payload bounds and asyncio "
            "safety). See docs/static_analysis.md."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help=(
            "build the whole-program context (module graph, call "
            "graph) and run rules REP010-REP013 as well"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json: one object per diagnostic)",
    )
    parser.add_argument(
        "--report-unused-suppressions",
        action="store_true",
        help=(
            "flag repro-lint: disable= comments that suppress nothing "
            f"({UNUSED_SUPPRESSION_CODE}; implies --project)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code} {rule.name}: {rule.summary}", file=stream)
        for prule in PROJECT_RULES:
            print(
                f"{prule.code} {prule.name} (--project): {prule.summary}",
                file=stream,
            )
        return 0

    project_mode = args.project or args.report_unused_suppressions
    try:
        rules, project_rules = _select_rules(
            args.select.split(",") if args.select else None,
            project=project_mode,
        )
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    try:
        if project_mode:
            findings = lint_project(
                args.paths,
                rules,
                project_rules,
                report_unused_suppressions=args.report_unused_suppressions,
            )
        else:
            findings = lint_paths(args.paths, rules)
    except FileNotFoundError as exc:
        print(f"repro lint: no such path: {exc}", file=sys.stderr)
        return 2
    _render(findings, args.format, stream)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
