"""REP010 — interprocedural determinism taint.

REP001 bans wall-clock reads and unseeded randomness *inside* the
algorithmic packages, but it cannot see a helper one module away::

    # analysis/helpers.py          (outside REP001's scope)
    def fresh_token():
        return time.time()

    # distributed/foo_protocol.py  (inside the scope — looks clean)
    from repro.analysis.helpers import fresh_token
    self.token = fresh_token()          # nondeterminism smuggled in

This rule computes, for every function in the project, whether its
result can carry nondeterminism, and flags every *cross-module* call
from an algorithmic package into a tainted function.  Taint sources:

* external calls REP001 bans: ``time.time``/``time_ns``,
  ``os.urandom``, any ``random.*`` call, unseeded ``numpy.random.*``,
  plus ``secrets.*`` and ``uuid.uuid1``/``uuid.uuid4``;
* set-iteration order escaping a function — ``return list(s)`` /
  ``return tuple(s)`` / ``return [x for x in s]`` where ``s`` is
  statically set-typed (REP005's inference, reused);
* transitively, any call into a function already tainted.

``repro.util.rng`` is the sanctioned laundering point: its functions
are never taint sources and calls into it never propagate — that is
exactly the module whose job is to turn a run seed into replayable
draws.  Same-module calls to tainted helpers are not re-flagged either:
REP001/REP005 already convict the source line itself when it sits in
an algorithmic package.

Each diagnostic spells out the full call chain down to the source so
the finding is actionable without re-running the analysis by hand.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.lint.base import ALGORITHMIC_PACKAGES, ProjectRule
from repro.lint.diagnostics import Diagnostic
from repro.lint.iteration import (
    _function_set_names,
    _looks_like_set,
    _Scope,
)
from repro.lint.project import FunctionInfo, ModuleInfo, ProjectContext

__all__ = ["TaintRule"]

#: external dotted names that are taint sources whenever called.
_SOURCE_EXACT = frozenset(
    {
        "time.time",
        "time.time_ns",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)
#: dotted prefixes (module part) every call under which is a source.
_SOURCE_PREFIXES = ("random.", "secrets.")
#: numpy.random entry points that are fine *when given a seed argument*
#: (mirrors REP001's allowance).
_SEEDED_CONSTRUCTORS = frozenset(
    {"default_rng", "RandomState", "SeedSequence", "Generator"}
)


def _is_rng_module(module: ModuleInfo) -> bool:
    """The sanctioned randomness plumbing (``repro.util.rng``)."""
    return module.name == "rng" or module.name.endswith(".rng")


def _external_source(dotted: str, call: ast.Call) -> Optional[str]:
    """A source label if ``dotted`` is a banned external call."""
    if dotted in _SOURCE_EXACT:
        return dotted
    if dotted.startswith(_SOURCE_PREFIXES):
        return dotted
    if dotted.startswith("numpy.random."):
        fn = dotted.rsplit(".", 1)[1]
        if fn in _SEEDED_CONSTRUCTORS and (call.args or call.keywords):
            return None
        return dotted
    return None


class _Taint:
    """Why a function is tainted: source label + call chain to it."""

    __slots__ = ("source", "chain")

    def __init__(self, source: str, chain: Tuple[str, ...]) -> None:
        self.source = source
        self.chain = chain


class TaintRule(ProjectRule):
    code = "REP010"
    name = "determinism-taint"
    summary = (
        "cross-module calls from algorithmic packages must not reach "
        "wall-clock/entropy/unsorted-set sources through helpers — "
        "interprocedural extension of REP001/REP005"
    )

    def check(self, project: ProjectContext) -> Iterator[Diagnostic]:
        cache: Dict[int, Optional[_Taint]] = {}
        for module in project.sorted_modules():
            if not module.ctx.in_packages(ALGORITHMIC_PACKAGES):
                continue
            if _is_rng_module(module):
                continue
            for fn in module.all_functions():
                yield from self._check_function(project, module, fn, cache)

    # -- reporting ------------------------------------------------------
    def _check_function(
        self,
        project: ProjectContext,
        module: ModuleInfo,
        fn: FunctionInfo,
        cache: Dict[int, Optional[_Taint]],
    ) -> Iterator[Diagnostic]:
        cls = project.enclosing_class(module, fn)
        for call in self._calls_in(fn.node):
            target = project.resolve_call(module, call, cls)
            if target is None or target.module is module:
                continue  # same-module sources are REP001/REP005's job
            if _is_rng_module(target.module):
                continue
            taint = self._taint_of(project, target, cache, stack=set())
            if taint is None:
                continue
            chain = " -> ".join(taint.chain)
            yield self.diag(
                module.ctx,
                call,
                f"call into {target.dotted}() reaches nondeterminism "
                f"source {taint.source} (chain: {chain}); thread a "
                "seed/Prf from repro.util.rng or sort before the value "
                "escapes",
            )

    def _calls_in(self, fn_node: ast.AST) -> Iterator[ast.Call]:
        for node in ast.walk(fn_node):
            if isinstance(node, ast.Call):
                yield node

    # -- taint computation ----------------------------------------------
    def _taint_of(
        self,
        project: ProjectContext,
        fn: FunctionInfo,
        cache: Dict[int, Optional[_Taint]],
        stack: Set[int],
    ) -> Optional[_Taint]:
        key = id(fn)
        if key in cache:
            return cache[key]
        if key in stack:
            return None  # recursion: optimistic (cycle carries no new source)
        stack.add(key)
        taint = self._compute_taint(project, fn, cache, stack)
        stack.discard(key)
        cache[key] = taint
        return taint

    def _compute_taint(
        self,
        project: ProjectContext,
        fn: FunctionInfo,
        cache: Dict[int, Optional[_Taint]],
        stack: Set[int],
    ) -> Optional[_Taint]:
        module = fn.module
        if _is_rng_module(module):
            return None
        cls = project.enclosing_class(module, fn)
        direct = self._direct_source(project, module, fn)
        if direct is not None:
            return _Taint(direct, (fn.dotted,))
        for call in self._calls_in(fn.node):
            target = project.resolve_call(module, call, cls)
            if target is None or target is fn:
                continue
            if _is_rng_module(target.module):
                continue
            inner = self._taint_of(project, target, cache, stack)
            if inner is not None:
                return _Taint(inner.source, (fn.dotted,) + inner.chain)
        return None

    def _direct_source(
        self,
        project: ProjectContext,
        module: ModuleInfo,
        fn: FunctionInfo,
    ) -> Optional[str]:
        for call in self._calls_in(fn.node):
            dotted = project.resolve_external(module, call.func)
            if dotted is None:
                continue
            label = _external_source(dotted, call)
            if label is not None:
                return label
        escape = self._set_order_escape(fn)
        if escape is not None:
            return escape
        return None

    def _set_order_escape(self, fn: FunctionInfo) -> Optional[str]:
        """Does ``fn`` return a set's iteration order as a sequence?"""
        node = fn.node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return None
        scope = _Scope(_function_set_names(node), set())
        for stmt in ast.walk(node):
            if not isinstance(stmt, ast.Return) or stmt.value is None:
                continue
            value = stmt.value
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("list", "tuple")
                and len(value.args) == 1
                and _looks_like_set(value.args[0], scope)
            ):
                return (
                    f"unsorted set iteration ({value.func.id}() over a "
                    "set) escaping via return"
                )
            if isinstance(value, (ast.ListComp, ast.GeneratorExp)):
                for gen in value.generators:
                    if _looks_like_set(gen.iter, scope):
                        return (
                            "unsorted set iteration (comprehension over "
                            "a set) escaping via return"
                        )
        return None
