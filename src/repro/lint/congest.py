"""REP012 — CONGEST payload bounds: every message O(1) words, statically.

Pettie's model charges messages in *words* of ``O(log n)`` bits
(PAPER.md §2), and ``util/words.message_words`` is the runtime meter:
scalars cost one word, containers the sum of their items.  REP003's
``static_payload_words`` already prices payloads built from literals;
this rule closes the remaining gap — payloads assembled from
*variables, attributes and helper calls*, possibly in other modules.

For every ``api.send``/``api.broadcast`` payload in a
``*_protocol.py`` file the rule infers an upper bound on the word
count:

* literals price exactly (via ``static_payload_words``);
* names/attributes resolve through parameter and ``self`` annotations
  (``distributed/`` is mypy-strict, so these exist) and assignment
  right-hand sides;
* ``Tuple[a, b, c]`` sums its parts; ``List``/``Set``/``Dict``/
  ``Sequence``/``Iterable``/``Tuple[T, ...]``/``Any`` annotations are
  unbounded; project type aliases (``Edge = Tuple[int, int]``) resolve
  across modules;
* helper calls resolve through the project call graph to the callee's
  return annotation (or its return expressions);
* an explicit slice with an upper bound (``x[:self.cap]``) counts as a
  visible bounding gesture — capping a batch is exactly the discipline
  the rule exists to force;
* unknown bare names/attributes default to one word, matching
  ``message_words``' opaque-object fallback.

A payload whose bound comes out *unknown* (``None``) is flagged: the
protocol is putting a container of data-dependent size on the wire in
one round, which is exactly what the CONGEST accounting forbids.
Genuinely-unbounded protocols (the ``survey`` strawman, churn repair
records) carry audited inline suppressions explaining why.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.base import ProjectRule
from repro.lint.diagnostics import Diagnostic
from repro.lint.messages import _payload_args, static_payload_words
from repro.lint.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectContext,
)

__all__ = ["CongestPayloadRule"]

#: annotation heads that denote a single scalar word.
_SCALAR_TYPES = frozenset({"int", "float", "bool", "str", "bytes"})
#: annotation heads that denote containers of data-dependent size.
_UNBOUNDED_TYPES = frozenset(
    {
        "List",
        "list",
        "Set",
        "set",
        "FrozenSet",
        "frozenset",
        "Dict",
        "dict",
        "Sequence",
        "MutableSequence",
        "Iterable",
        "Iterator",
        "Collection",
        "Mapping",
        "MutableMapping",
        "Any",
    }
)
#: calls that reorder/convert a container without changing its size.
_SIZE_PRESERVING_CALLS = frozenset(
    {"tuple", "list", "sorted", "reversed", "set", "frozenset"}
)
#: calls that collapse their arguments to a single scalar word.
_SCALAR_CALLS = frozenset(
    {"len", "min", "max", "sum", "abs", "round", "int", "float", "bool", "str"}
)

_MAX_DEPTH = 12


class CongestPayloadRule(ProjectRule):
    code = "REP012"
    name = "congest-payload-bound"
    summary = (
        "send/broadcast payloads in *_protocol.py must have a "
        "statically constant word bound (util/words accounting; "
        "PAPER.md §2 CONGEST model)"
    )

    def check(self, project: ProjectContext) -> Iterator[Diagnostic]:
        for module in project.sorted_modules():
            if not module.ctx.is_protocol_file:
                continue
            for fn in module.all_functions():
                yield from self._check_function(project, module, fn)

    def _check_function(
        self,
        project: ProjectContext,
        module: ModuleInfo,
        fn: FunctionInfo,
    ) -> Iterator[Diagnostic]:
        cls = project.enclosing_class(module, fn)
        env = _FunctionEnv(project, module, fn, cls)
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            for payload in _payload_args(node):
                bound = env.bound(payload, depth=0)
                if bound is None:
                    snippet = ast.unparse(payload)
                    yield self.diag(
                        module.ctx,
                        payload,
                        f"payload '{snippet}' has no constant word "
                        "bound — a data-dependent container reaches the "
                        "wire in one round; cap the batch (slice to a "
                        "constant) or spread it across rounds "
                        "(util/words accounting, PAPER.md §2)",
                    )


class _FunctionEnv:
    """Bound inference scoped to one function (locals + self attrs)."""

    def __init__(
        self,
        project: ProjectContext,
        module: ModuleInfo,
        fn: FunctionInfo,
        cls: Optional[ClassInfo],
    ) -> None:
        self.project = project
        self.module = module
        self.fn = fn
        self.cls = cls
        self._local_ann: Dict[str, ast.expr] = {}
        self._local_assigns: Dict[str, List[ast.expr]] = {}
        self._collect_locals()
        self._attr_ann: Dict[str, ast.expr] = {}
        self._attr_assigns: Dict[str, List[ast.expr]] = {}
        if cls is not None:
            self._collect_attrs(cls.node)
        self._return_stack: Set[int] = set()

    # -- fact collection ------------------------------------------------
    def _collect_locals(self) -> None:
        node = self.fn.node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
            ):
                if arg.annotation is not None:
                    self._local_ann[arg.arg] = arg.annotation
        for sub in ast.walk(node):
            if isinstance(sub, ast.AnnAssign) and isinstance(
                sub.target, ast.Name
            ):
                self._local_ann[sub.target.id] = sub.annotation
                if sub.value is not None:
                    self._local_assigns.setdefault(
                        sub.target.id, []
                    ).append(sub.value)
            elif isinstance(sub, ast.Assign):
                for target in sub.targets:
                    if isinstance(target, ast.Name):
                        self._local_assigns.setdefault(
                            target.id, []
                        ).append(sub.value)

    def _collect_attrs(self, cls_node: ast.ClassDef) -> None:
        for sub in ast.walk(cls_node):
            if isinstance(sub, ast.AnnAssign):
                target = sub.target
                if isinstance(target, ast.Name):
                    self._attr_ann[target.id] = sub.annotation
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    self._attr_ann[target.attr] = sub.annotation
            elif isinstance(sub, ast.Assign):
                for target in sub.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        self._attr_assigns.setdefault(
                            target.attr, []
                        ).append(sub.value)

    # -- the bound lattice ----------------------------------------------
    def bound(self, expr: ast.expr, depth: int) -> Optional[int]:
        """Upper bound in words, or None if data-dependent/unknown."""
        if depth > _MAX_DEPTH:
            return None
        exact = static_payload_words(expr)
        if exact is not None:
            return exact
        if isinstance(expr, (ast.Tuple, ast.List)):
            return self._sum(expr.elts, depth)
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
            return self._sum([expr.left, expr.right], depth)
        if isinstance(expr, ast.IfExp):
            return self._max([expr.body, expr.orelse], depth)
        if isinstance(expr, ast.BoolOp):
            return self._max(expr.values, depth)
        if isinstance(expr, (ast.Compare, ast.UnaryOp)):
            return 1
        if isinstance(expr, ast.Name):
            return self._name_bound(expr.id, depth)
        if isinstance(expr, ast.Attribute):
            return self._attr_bound(expr, depth)
        if isinstance(expr, ast.Subscript):
            return self._subscript_bound(expr, depth)
        if isinstance(expr, ast.Call):
            return self._call_bound(expr, depth)
        if isinstance(expr, ast.Starred):
            return self.bound(expr.value, depth + 1)
        return None

    def _sum(
        self, parts: List[ast.expr], depth: int
    ) -> Optional[int]:
        total = 0
        for part in parts:
            b = self.bound(part, depth + 1)
            if b is None:
                return None
            total += b
        return total

    def _max(
        self, parts: List[ast.expr], depth: int
    ) -> Optional[int]:
        best = 0
        for part in parts:
            b = self.bound(part, depth + 1)
            if b is None:
                return None
            best = max(best, b)
        return best

    def _name_bound(self, name: str, depth: int) -> Optional[int]:
        ann = self._local_ann.get(name)
        if ann is not None:
            return self._ann_bound(self.module, ann, depth + 1)
        assigns = self._local_assigns.get(name)
        if assigns:
            return self._max(assigns, depth)
        # Loop targets, closure names: a bare unannotated name defaults
        # to one word — message_words charges opaque objects exactly 1.
        return 1

    def _attr_bound(
        self, expr: ast.Attribute, depth: int
    ) -> Optional[int]:
        if not (
            isinstance(expr.value, ast.Name) and expr.value.id == "self"
        ):
            return 1  # foo.bar on a non-self object: opaque scalar
        ann = self._attr_ann.get(expr.attr)
        if ann is not None:
            return self._ann_bound(self.module, ann, depth + 1)
        assigns = self._attr_assigns.get(expr.attr)
        if assigns:
            return self._max(assigns, depth)
        return 1

    def _subscript_bound(
        self, expr: ast.Subscript, depth: int
    ) -> Optional[int]:
        sl = expr.slice
        if isinstance(sl, ast.Slice):
            # An explicit upper bound is the sanctioned capping idiom
            # (batch = queue[: self.cap]); without one the slice is as
            # unbounded as its source.
            if sl.upper is not None:
                return 1
            return self.bound(expr.value, depth + 1)
        return 1  # single-element access

    def _call_bound(self, expr: ast.Call, depth: int) -> Optional[int]:
        func = expr.func
        if isinstance(func, ast.Name):
            if func.id in _SCALAR_CALLS:
                return 1
            if (
                func.id in _SIZE_PRESERVING_CALLS
                and len(expr.args) == 1
                and not expr.keywords
            ):
                return self.bound(expr.args[0], depth + 1)
        resolved = self.project.resolve_call(self.module, expr, self.cls)
        if resolved is not None:
            return self._return_bound(resolved, depth + 1)
        return None

    def _return_bound(
        self, fn: FunctionInfo, depth: int
    ) -> Optional[int]:
        node = fn.node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return None
        if node.returns is not None:
            return self._ann_bound(fn.module, node.returns, depth)
        key = id(fn)
        if key in self._return_stack:
            return None
        self._return_stack.add(key)
        try:
            env = _FunctionEnv(
                self.project,
                fn.module,
                fn,
                self.project.enclosing_class(fn.module, fn),
            )
            env._return_stack = self._return_stack
            returns = [
                stmt.value
                for stmt in ast.walk(node)
                if isinstance(stmt, ast.Return) and stmt.value is not None
            ]
            if not returns:
                return 0
            return env._max(returns, depth)
        finally:
            self._return_stack.discard(key)

    # -- annotations -----------------------------------------------------
    def _ann_bound(
        self, module: ModuleInfo, ann: ast.expr, depth: int
    ) -> Optional[int]:
        if depth > _MAX_DEPTH:
            return None
        if isinstance(ann, ast.Constant):
            if ann.value is None:
                return 0
            if isinstance(ann.value, str):
                # Quoted forward reference: parse and recurse.
                try:
                    parsed = ast.parse(ann.value, mode="eval")
                except SyntaxError:
                    return 1
                return self._ann_bound(module, parsed.body, depth + 1)
            return 1
        head = _ann_head(ann)
        if head is None:
            return 1
        if isinstance(ann, ast.Subscript):
            return self._generic_bound(module, head, ann, depth)
        if head in _SCALAR_TYPES:
            return 1
        if head == "None":
            return 0
        if head in _UNBOUNDED_TYPES:
            return None
        alias = self.project.resolve_type_alias(module, head)
        if alias is not None:
            alias_module, alias_expr = alias
            return self._ann_bound(alias_module, alias_expr, depth + 1)
        return 1  # unknown class: opaque token, one word

    def _generic_bound(
        self,
        module: ModuleInfo,
        head: str,
        ann: ast.Subscript,
        depth: int,
    ) -> Optional[int]:
        params = (
            list(ann.slice.elts)
            if isinstance(ann.slice, ast.Tuple)
            else [ann.slice]
        )
        if head == "Optional":
            bounds = [
                self._ann_bound(module, p, depth + 1) for p in params
            ]
            return _max_or_none(bounds)
        if head == "Union":
            bounds = [
                self._ann_bound(module, p, depth + 1) for p in params
            ]
            return _max_or_none(bounds)
        if head in ("Tuple", "tuple"):
            if any(
                isinstance(p, ast.Constant) and p.value is Ellipsis
                for p in params
            ):
                return None  # Tuple[T, ...]: data-dependent length
            total = 0
            for p in params:
                b = self._ann_bound(module, p, depth + 1)
                if b is None:
                    return None
                total += b
            return total
        if head in _UNBOUNDED_TYPES:
            return None
        if head in _SCALAR_TYPES:
            return 1
        alias = self.project.resolve_type_alias(module, head)
        if alias is not None:
            alias_module, alias_expr = alias
            return self._ann_bound(alias_module, alias_expr, depth + 1)
        return 1


def _ann_head(ann: ast.expr) -> Optional[str]:
    target = ann
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):  # typing.Tuple, t.List
        return target.attr
    return None


def _max_or_none(bounds: List[Optional[int]]) -> Optional[int]:
    best = 0
    for b in bounds:
        if b is None:
            return None
        best = max(best, b)
    return best
