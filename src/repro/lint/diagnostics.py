"""Diagnostics and inline suppressions for the repro-lint analyzer.

A :class:`Diagnostic` is one finding: a stable rule code (``REP0xx``),
a ``file:line:col`` anchor and a human-readable message.  Diagnostics
sort by location so output is deterministic regardless of rule order.

Suppressions are inline comments on the offending line::

    for v in self.children:  # repro-lint: disable=REP005

Multiple codes are comma-separated (``disable=REP001,REP005``) and the
special code ``all`` silences every rule on that line.  A
``disable-file=`` comment anywhere in the file suppresses the listed
codes for the whole file (used sparingly, e.g. in fixtures).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set

__all__ = ["Diagnostic", "Directive", "Suppressions", "parse_suppressions"]

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?P<filewide>-file)?\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One static-analysis finding, sortable by location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass(frozen=True, order=True)
class Directive:
    """One parsed suppression directive: where it sits and what it names.

    ``line``/``col`` anchor the comment; ``code`` is a single rule code
    (a comma-separated comment yields one Directive per code);
    ``file_wide`` marks ``disable-file=`` directives, which apply to
    the whole file rather than their own line.
    """

    line: int
    col: int
    code: str
    file_wide: bool


class Suppressions:
    """Per-line and file-wide ``# repro-lint: disable=...`` directives.

    Tracks which directives actually suppressed something, so the
    runner can report stale ones (``--report-unused-suppressions``).
    """

    def __init__(
        self,
        by_line: Mapping[int, FrozenSet[str]],
        file_wide: FrozenSet[str] = frozenset(),
        directives: Optional[Sequence[Directive]] = None,
    ) -> None:
        self._by_line = dict(by_line)
        self._file_wide = file_wide
        self.directives: List[Directive] = (
            sorted(directives) if directives is not None else []
        )
        self._used: Set[Directive] = set()

    def active(self, line: int, code: str) -> bool:
        """Whether ``code`` is suppressed at ``line`` (marks uses)."""
        codes = self._by_line.get(line, frozenset()) | self._file_wide
        hit = "all" in codes or code in codes
        if hit:
            for directive in self.directives:
                if directive.code not in ("all", code):
                    continue
                if directive.file_wide or directive.line == line:
                    self._used.add(directive)
        return hit

    def unused_directives(self) -> List[Directive]:
        """Directives that never suppressed a finding, sorted by location."""
        return [d for d in self.directives if d not in self._used]


def parse_suppressions(source: str) -> Suppressions:
    """Extract suppression directives from ``source``'s comments.

    Uses the tokenizer (not a per-line regex) so ``#`` characters inside
    string literals can never masquerade as directives.  A directive
    applies to the physical line its comment sits on.
    """
    by_line: Dict[int, FrozenSet[str]] = {}
    file_wide: FrozenSet[str] = frozenset()
    directives: List[Directive] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            codes = frozenset(
                c.strip() for c in match.group("codes").split(",") if c.strip()
            )
            line, col = tok.start
            for code in sorted(codes):
                directives.append(
                    Directive(
                        line=line,
                        col=col + 1,
                        code=code,
                        file_wide=bool(match.group("filewide")),
                    )
                )
            if match.group("filewide"):
                file_wide = file_wide | codes
            else:
                by_line[line] = by_line.get(line, frozenset()) | codes
    except tokenize.TokenError:
        # Unterminated constructs: the AST parse will report the real
        # problem; treat the file as having no suppressions.
        pass
    return Suppressions(by_line, file_wide, directives)
