"""Whole-program analysis context for repro-lint (``--project`` mode).

The per-file rules (REP001-REP005) see one AST at a time, so a
wall-clock read or an unbounded payload hidden *one helper call away*
is invisible to them.  This module builds the three structures the
project-level rule families (REP010-REP013) share:

* a **module map** — every ``.py`` file under the linted roots, keyed
  by dotted module name (``src/repro/util/rng.py`` -> ``repro.util.rng``;
  bare fixture files -> their stem), each carrying its parsed
  :class:`~repro.lint.base.FileContext`;
* a **module-import graph** — one edge per resolved project-internal
  import, split into *eager* (module scope, executed at import time)
  and *deferred* (inside a function body, or under an
  ``if TYPE_CHECKING:`` block — these impose no load-order
  constraint).  Importing a submodule also executes its ancestor
  packages' ``__init__``, so eager edges to those ancestors are added
  too (except a module's own ancestors, which are already live when it
  runs);
* a **symbol table + call resolver** — top-level functions, classes
  with their methods, and the import bindings of each module, so a
  call expression can be resolved across module boundaries
  (``helper()``, ``mod.helper()``, ``self.method()``) without running
  any code.

Everything is deterministic: modules iterate in sorted name order and
resolution never consults hashes or filesystem order.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.lint.base import FileContext, make_context

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ImportEdge",
    "ModuleInfo",
    "ProjectContext",
    "build_project",
    "discover_files",
    "module_name_for",
]


# ----------------------------------------------------------------------
# File discovery (shared with the runner)
# ----------------------------------------------------------------------
def discover_files(paths: Sequence[str]) -> List[Tuple[Path, str]]:
    """Expand CLI paths into a deduplicated, ordered list of .py files.

    Returns ``(path, display_path)`` pairs sorted by display path.
    Duplicate entries (the same file reached twice, e.g. ``src src`` or
    a file plus its parent directory) are linted once; ``__pycache__``
    directories, hidden directories and non-``.py`` files are skipped
    explicitly.  Missing paths raise :class:`FileNotFoundError`.
    """
    seen: Dict[Path, str] = {}
    for raw in paths:
        root = Path(raw)
        if not root.exists():
            raise FileNotFoundError(raw)
        for path in _python_files(root):
            resolved = path.resolve()
            if resolved not in seen:
                seen[resolved] = str(path)
    return sorted(
        ((resolved, shown) for resolved, shown in seen.items()),
        key=lambda pair: pair[1],
    )


def _skip_dir(name: str) -> bool:
    return name.startswith(".") or name == "__pycache__"


def _python_files(root: Path) -> Iterator[Path]:
    if root.is_file():
        if root.suffix == ".py":
            yield root
        return
    for path in sorted(root.rglob("*.py")):
        if any(_skip_dir(part) for part in path.parts[:-1]):
            continue
        yield path


def module_name_for(path: Path, root: Path) -> str:
    """Dotted module name of ``path`` relative to the discovery root.

    ``src/repro/util/rng.py`` under root ``src`` -> ``repro.util.rng``;
    a package ``__init__.py`` names the package itself; a file given
    directly (or unrooted fixture files) -> its stem.
    """
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = Path(path.name)
    parts = list(rel.parts)
    if not parts:
        return path.stem
    parts[-1] = Path(parts[-1]).stem
    if parts[-1] == "__init__":
        parts.pop()
    if not parts:
        return path.stem
    return ".".join(parts)


# ----------------------------------------------------------------------
# Symbols
# ----------------------------------------------------------------------
class FunctionInfo:
    """One function or method: where it lives and its AST."""

    __slots__ = ("module", "qualname", "node", "cls")

    def __init__(
        self,
        module: "ModuleInfo",
        qualname: str,
        node: ast.AST,
        cls: Optional[str] = None,
    ) -> None:
        self.module = module
        self.qualname = qualname
        self.node = node
        self.cls = cls

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)

    @property
    def dotted(self) -> str:
        return f"{self.module.name}.{self.qualname}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionInfo({self.dotted})"


class ClassInfo:
    """One class: its methods and (syntactic) base-class names."""

    __slots__ = ("module", "name", "node", "methods", "bases")

    def __init__(
        self, module: "ModuleInfo", name: str, node: ast.ClassDef
    ) -> None:
        self.module = module
        self.name = name
        self.node = node
        self.methods: Dict[str, FunctionInfo] = {}
        self.bases: List[str] = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                self.bases.append(base.id)
            elif isinstance(base, ast.Attribute):
                self.bases.append(base.attr)


class ImportEdge:
    """One resolved project-internal import."""

    __slots__ = ("source", "target", "node", "deferred")

    def __init__(
        self, source: str, target: str, node: ast.stmt, deferred: bool
    ) -> None:
        self.source = source
        self.target = target
        self.node = node
        self.deferred = deferred


#: import-binding kinds: a bound name is either a module alias
#: (``import x.y as z``) or a symbol pulled out of a module
#: (``from m import s``).  ``module`` is the dotted source module,
#: which may or may not be part of the project.
class Binding:
    __slots__ = ("kind", "module", "symbol")

    def __init__(
        self, kind: str, module: str, symbol: Optional[str] = None
    ) -> None:
        self.kind = kind  # "module" | "symbol"
        self.module = module
        self.symbol = symbol


class ModuleInfo:
    """Everything the project rules know about one module."""

    def __init__(self, name: str, ctx: FileContext) -> None:
        self.name = name
        self.ctx = ctx
        #: first component of the repro subpackage path, or None for
        #: fixture files / "" for the package root.
        sub = ctx.subpackage
        self.package: Optional[str] = (
            None if sub is None else (sub[0] if sub else "")
        )
        self.imports: List[ImportEdge] = []
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.bindings: Dict[str, Binding] = {}
        #: module-level ``Name = <annotation-like expr>`` aliases
        #: (``Edge = Tuple[int, int]``), for annotation resolution.
        self.type_aliases: Dict[str, ast.expr] = {}
        self._collect_symbols()

    # -- symbol collection ---------------------------------------------
    def _collect_symbols(self) -> None:
        for stmt in self.ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[stmt.name] = FunctionInfo(
                    self, stmt.name, stmt
                )
            elif isinstance(stmt, ast.ClassDef):
                info = ClassInfo(self, stmt.name, stmt)
                for child in stmt.body:
                    if isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        info.methods[child.name] = FunctionInfo(
                            self,
                            f"{stmt.name}.{child.name}",
                            child,
                            cls=stmt.name,
                        )
                self.classes[stmt.name] = info
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name) and isinstance(
                    stmt.value, (ast.Subscript, ast.Name, ast.Attribute)
                ):
                    self.type_aliases[target.id] = stmt.value
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self.bindings[alias.asname] = Binding(
                            "module", alias.name
                        )
                    else:
                        root = alias.name.split(".")[0]
                        self.bindings[root] = Binding("module", root)
            elif isinstance(node, ast.ImportFrom):
                module = self._absolute_module(node)
                if module is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.bindings[bound] = Binding(
                        "symbol", module, alias.name
                    )

    def _absolute_module(self, node: ast.ImportFrom) -> Optional[str]:
        """Resolve an ImportFrom's source module to a dotted name."""
        if node.level == 0:
            return node.module
        # Relative import: strip ``level`` components off this module's
        # package path (the module's own name counts as one component
        # unless it *is* a package __init__).
        parts = self.name.split(".")
        if not self.ctx.filename == "__init__.py":
            parts = parts[:-1]
        drop = node.level - 1
        if drop > len(parts):
            return None
        base = parts[: len(parts) - drop]
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base) if base else None

    # -- convenience ----------------------------------------------------
    def all_functions(self) -> Iterator[FunctionInfo]:
        for name in sorted(self.functions):
            yield self.functions[name]
        for cls_name in sorted(self.classes):
            cls = self.classes[cls_name]
            for meth_name in sorted(cls.methods):
                yield cls.methods[meth_name]


class ProjectContext:
    """The whole-program view: module map + import graph + resolver."""

    def __init__(self, modules: Dict[str, ModuleInfo]) -> None:
        self.modules = modules
        for info in self.sorted_modules():
            self._extract_imports(info)

    def sorted_modules(self) -> List[ModuleInfo]:
        return [self.modules[name] for name in sorted(self.modules)]

    # -- import graph ---------------------------------------------------
    def _extract_imports(self, info: ModuleInfo) -> None:
        self._walk_imports(info, info.ctx.tree.body, deferred=False)

    def _walk_imports(
        self, info: ModuleInfo, body: List[ast.stmt], deferred: bool
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._walk_imports(info, stmt.body, deferred=True)
            elif isinstance(stmt, ast.ClassDef):
                self._walk_imports(info, stmt.body, deferred=deferred)
            elif isinstance(stmt, ast.If):
                branch_deferred = deferred or _is_type_checking(stmt.test)
                self._walk_imports(info, stmt.body, branch_deferred)
                self._walk_imports(info, stmt.orelse, deferred)
            elif isinstance(stmt, (ast.Try,)):
                self._walk_imports(info, stmt.body, deferred)
                for handler in stmt.handlers:
                    self._walk_imports(info, handler.body, deferred)
                self._walk_imports(info, stmt.orelse, deferred)
                self._walk_imports(info, stmt.finalbody, deferred)
            elif isinstance(
                stmt, (ast.With, ast.For, ast.While)
            ):
                self._walk_imports(info, stmt.body, deferred)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    self._add_edges(info, alias.name, stmt, deferred)
            elif isinstance(stmt, ast.ImportFrom):
                module = info._absolute_module(stmt)
                if module is None:
                    continue
                targets = set()
                for alias in stmt.names:
                    sub = f"{module}.{alias.name}"
                    targets.add(sub if sub in self.modules else module)
                for target in sorted(targets):
                    self._add_edges(info, target, stmt, deferred)

    def _add_edges(
        self,
        info: ModuleInfo,
        dotted: str,
        node: ast.stmt,
        deferred: bool,
    ) -> None:
        """Edge to ``dotted`` plus its ancestor package __init__ chain."""
        targets = []
        if dotted in self.modules:
            targets.append(dotted)
        parts = dotted.split(".")
        own = info.name.split(".")
        for i in range(1, len(parts)):
            ancestor = ".".join(parts[:i])
            if ancestor not in self.modules:
                continue
            # A module's own ancestor packages are already (partially)
            # initialized whenever it runs — no new load-order edge.
            if own[: i] == parts[:i]:
                continue
            targets.append(ancestor)
        for target in sorted(set(targets)):
            if target != info.name:
                info.imports.append(
                    ImportEdge(info.name, target, node, deferred)
                )

    def eager_graph(self) -> Dict[str, List[str]]:
        """Module -> sorted eager (import-time) project dependencies."""
        graph: Dict[str, List[str]] = {}
        for info in self.sorted_modules():
            eager = {e.target for e in info.imports if not e.deferred}
            graph[info.name] = sorted(eager)
        return graph

    def import_cycles(self) -> List[List[str]]:
        """Strongly connected components (size > 1) of the eager graph.

        Returned as sorted lists of module names, ordered by their
        smallest member — deterministic regardless of discovery order.
        """
        graph = self.eager_graph()
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Dict[str, bool] = {}
        stack: List[str] = []
        counter = [0]
        sccs: List[List[str]] = []

        def strongconnect(v: str) -> None:
            # Iterative Tarjan: (node, iterator position) frames.
            work: List[Tuple[str, int]] = [(v, 0)]
            while work:
                node, i = work.pop()
                if i == 0:
                    index[node] = lowlink[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack[node] = True
                recurse = False
                succs = graph.get(node, [])
                while i < len(succs):
                    succ = succs[i]
                    i += 1
                    if succ not in index:
                        work.append((node, i))
                        work.append((succ, 0))
                        recurse = True
                        break
                    if on_stack.get(succ):
                        lowlink[node] = min(lowlink[node], index[succ])
                if recurse:
                    continue
                if lowlink[node] == index[node]:
                    component = []
                    while True:
                        w = stack.pop()
                        on_stack[w] = False
                        component.append(w)
                        if w == node:
                            break
                    if len(component) > 1:
                        sccs.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])

        for name in sorted(graph):
            if name not in index:
                strongconnect(name)
        return sorted(sccs, key=lambda c: c[0])

    # -- call resolution ------------------------------------------------
    def resolve_external(
        self, info: ModuleInfo, func: ast.expr
    ) -> Optional[str]:
        """Dotted name of a call target *outside* the project, if known.

        ``time.time`` via ``import time``; ``sleep`` via
        ``from time import sleep`` -> ``time.sleep``.  Returns ``None``
        for project-internal or unresolvable targets.
        """
        if isinstance(func, ast.Name):
            binding = info.bindings.get(func.id)
            if (
                binding is not None
                and binding.kind == "symbol"
                and binding.module not in self.modules
                and not self._project_prefix(binding.module)
            ):
                return f"{binding.module}.{binding.symbol}"
            return None
        chain = _attribute_parts(func)
        if chain is None:
            return None
        root, attrs = chain
        binding = info.bindings.get(root)
        if binding is None or binding.kind != "module":
            return None
        if binding.module in self.modules or self._project_prefix(
            binding.module
        ):
            return None
        return ".".join([binding.module] + attrs)

    def _project_prefix(self, dotted: str) -> bool:
        prefix = dotted.split(".")[0]
        return any(
            name == prefix or name.startswith(prefix + ".")
            for name in self.modules
        )

    def resolve_call(
        self,
        info: ModuleInfo,
        call: ast.Call,
        cls: Optional[ClassInfo] = None,
    ) -> Optional[FunctionInfo]:
        """Resolve a call to a project function/method, if possible."""
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(info, func.id)
        chain = _attribute_parts(func)
        if chain is None:
            return None
        root, attrs = chain
        if root == "self" and cls is not None and len(attrs) == 1:
            return self._resolve_method(info, cls, attrs[0])
        binding = info.bindings.get(root)
        if binding is None:
            return None
        if binding.kind == "symbol":
            sub = f"{binding.module}.{binding.symbol}"
            base = sub if sub in self.modules else None
            if base is None:
                return None
            dotted_parts = [base] + attrs
        else:
            dotted_parts = [binding.module] + attrs
        # Longest module prefix + trailing function name.
        dotted = ".".join(dotted_parts[:-1]) if len(dotted_parts) > 1 else ""
        fn_name = attrs[-1] if attrs else None
        if fn_name is None:
            return None
        joined = ".".join(dotted_parts[:-1])
        target = self.modules.get(joined) if joined else None
        if target is None and dotted:
            return None
        if target is not None:
            return target.functions.get(fn_name) or self._constructor(
                target, fn_name
            )
        return None

    def _resolve_name(
        self, info: ModuleInfo, name: str
    ) -> Optional[FunctionInfo]:
        if name in info.functions:
            return info.functions[name]
        if name in info.classes:
            return self._constructor(info, name)
        binding = info.bindings.get(name)
        if binding is None or binding.kind != "symbol":
            return None
        target = self.modules.get(binding.module)
        if target is None:
            return None
        symbol = binding.symbol or name
        if symbol in target.functions:
            return target.functions[symbol]
        if symbol in target.classes:
            return self._constructor(target, symbol)
        return None

    def _constructor(
        self, where: "ModuleInfo | ClassInfo", name: str
    ) -> Optional[FunctionInfo]:
        classes = (
            where.classes if isinstance(where, ModuleInfo) else None
        )
        if classes is None or name not in classes:
            return None
        return classes[name].methods.get("__init__")

    def _resolve_method(
        self, info: ModuleInfo, cls: ClassInfo, name: str
    ) -> Optional[FunctionInfo]:
        if name in cls.methods:
            return cls.methods[name]
        for base in cls.bases:
            base_cls = info.classes.get(base)
            if base_cls is None:
                resolved = self._resolve_class(info, base)
                base_cls = resolved
            if base_cls is not None and name in base_cls.methods:
                return base_cls.methods[name]
        return None

    def _resolve_class(
        self, info: ModuleInfo, name: str
    ) -> Optional[ClassInfo]:
        binding = info.bindings.get(name)
        if binding is None or binding.kind != "symbol":
            return None
        target = self.modules.get(binding.module)
        if target is None:
            return None
        return target.classes.get(binding.symbol or name)

    def enclosing_class(
        self, info: ModuleInfo, fn: FunctionInfo
    ) -> Optional[ClassInfo]:
        if fn.cls is None:
            return None
        return info.classes.get(fn.cls)

    def resolve_type_alias(
        self, info: ModuleInfo, name: str
    ) -> Optional[Tuple[ModuleInfo, ast.expr]]:
        """Find a module-level ``Name = <type expr>`` alias for ``name``."""
        if name in info.type_aliases:
            return info, info.type_aliases[name]
        binding = info.bindings.get(name)
        if binding is not None and binding.kind == "symbol":
            target = self.modules.get(binding.module)
            symbol = binding.symbol or name
            if target is not None and symbol in target.type_aliases:
                return target, target.type_aliases[symbol]
        return None


def _is_type_checking(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _attribute_parts(
    node: ast.expr,
) -> Optional[Tuple[str, List[str]]]:
    attrs: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        attrs.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        return current.id, list(reversed(attrs))
    return None


def build_project(
    paths: Sequence[str],
) -> Tuple[ProjectContext, List[Tuple[Path, str, Exception]]]:
    """Parse every file under ``paths`` into a :class:`ProjectContext`.

    Returns ``(project, failures)`` where failures are
    ``(path, display_path, error)`` for files that did not parse (the
    runner reports them as REP000 and analyzes the rest).
    """
    modules: Dict[str, ModuleInfo] = {}
    failures: List[Tuple[Path, str, Exception]] = []
    for raw in paths:
        root = Path(raw)
        if not root.exists():
            raise FileNotFoundError(raw)
    for raw in paths:
        root = Path(raw)
        base = root if root.is_dir() else root.parent
        for path in _python_files(root):
            name = module_name_for(path, base)
            if name in modules:
                continue
            display = str(path)
            try:
                ctx = make_context(path, display)
            except (SyntaxError, ValueError) as exc:
                failures.append((path, display, exc))
                continue
            modules[name] = ModuleInfo(name, ctx)
    return ProjectContext(modules), failures
