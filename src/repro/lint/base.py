"""Shared infrastructure for repro-lint rules.

Every rule is an AST pass over one file, scoped by where the file lives
inside the ``repro`` package (the paper's correctness arguments only
constrain the algorithmic core, not e.g. ``analysis/`` plotting code).
Files *outside* any ``repro`` package — the unit-test fixtures — are
treated as in-scope for every rule, so fixtures exercise rules without
having to fake a package layout.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import TYPE_CHECKING, FrozenSet, Iterator, List, Optional, Tuple

from repro.lint.diagnostics import Diagnostic, Suppressions, parse_suppressions

if TYPE_CHECKING:
    from repro.lint.project import ProjectContext

__all__ = [
    "ALGORITHMIC_PACKAGES",
    "FileContext",
    "ProjectRule",
    "Rule",
    "attribute_chain",
    "make_context",
]

#: subpackages whose code the paper's guarantees constrain (REP001/REP005
#: scope): the sequential core, the protocols, the graph layer and the
#: spanner layer.  ``util/`` hosts the sanctioned RNG plumbing and
#: ``analysis``/``baselines``/``obs`` are off the simulated network.
#: ``perf/`` is included so the benchmark harness can never introduce
#: unseeded randomness or wall-clock reads other than ``perf_counter``
#: into its workload construction — benchmark cells must replay exactly.
#: ``fuzz/`` is included for the same reason: a fuzzer whose case
#: streams or shrinker are not bit-reproducible cannot emit trustworthy
#: reproducers.  ``churn/`` joins because its byte-identical replay
#: contract (same stream, same repair trajectory) is load-bearing for
#: the rebuild-equivalence oracle.  ``serving/`` joins because both of
#: its determinism contracts — byte-identical artifact bundles and
#: replayable loadgen streams / cache-hit counts — break the moment
#: unseeded randomness or a wall-clock read sneaks in.
ALGORITHMIC_PACKAGES = frozenset(
    {
        "core",
        "distributed",
        "graphs",
        "spanner",
        "perf",
        "fuzz",
        "churn",
        "serving",
    }
)


class FileContext:
    """Everything a rule needs to check one parsed file."""

    def __init__(
        self,
        path: Path,
        display_path: str,
        source: str,
        tree: ast.Module,
        suppressions: Suppressions,
    ) -> None:
        self.path = path
        self.display_path = display_path
        self.source = source
        self.tree = tree
        self.suppressions = suppressions
        self.filename = path.name
        self.subpackage = _subpackage_of(path)

    def in_packages(self, names: FrozenSet[str]) -> bool:
        """Whether this file sits under one of the given repro subpackages.

        Files outside any ``repro`` package (``subpackage is None``) are
        fixture files and count as in-scope everywhere.
        """
        if self.subpackage is None:
            return True
        return bool(self.subpackage) and self.subpackage[0] in names

    @property
    def is_protocol_file(self) -> bool:
        """Protocol node-program modules (``*_protocol.py``) — REP002 scope."""
        return self.filename.endswith("_protocol.py")


def _subpackage_of(path: Path) -> Optional[Tuple[str, ...]]:
    """Path components between the ``repro`` package root and the file.

    ``.../src/repro/distributed/foo.py`` -> ``("distributed",)``;
    ``.../src/repro/__init__.py`` -> ``()``; a path with no ``repro``
    component (test fixtures in tmp dirs) -> ``None``.
    """
    parts = path.parts[:-1]
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return tuple(parts[index + 1:])
    return None


def make_context(path: Path, display_path: Optional[str] = None) -> FileContext:
    """Read + parse ``path`` into a :class:`FileContext`.

    Raises :class:`SyntaxError` if the file does not parse; the runner
    turns that into a ``REP000`` diagnostic.
    """
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return FileContext(
        path=path,
        display_path=display_path or str(path),
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
    )


class Rule:
    """One lint rule: a stable code plus an AST check over a file."""

    code: str = "REP000"
    name: str = ""
    #: one-line summary for ``--list-rules`` and the docs catalog.
    summary: str = ""

    def applies(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diag(self, ctx: FileContext, node: ast.AST, message: str) -> Diagnostic:
        return Diagnostic(
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
        )


class ProjectRule:
    """One whole-program rule: a stable code plus a project-wide check.

    Unlike :class:`Rule`, a project rule sees the full
    :class:`~repro.lint.project.ProjectContext` (module graph, symbol
    tables, call resolver) and anchors each diagnostic in whichever
    module it convicts.  Project rules only run under
    ``repro lint --project``.
    """

    code: str = "REP000"
    name: str = ""
    #: one-line summary for ``--list-rules`` and the docs catalog.
    summary: str = ""

    def check(self, project: "ProjectContext") -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diag(self, ctx: FileContext, node: ast.AST, message: str) -> Diagnostic:
        return Diagnostic(
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
        )


def attribute_chain(node: ast.expr) -> Optional[Tuple[str, List[str]]]:
    """Decompose ``a.b.c`` into ``("a", ["b", "c"])``.

    Returns ``None`` when the chain is not rooted at a plain name
    (e.g. ``f().x`` or ``d[k].x``).
    """
    attrs: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        attrs.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        return current.id, list(reversed(attrs))
    return None
