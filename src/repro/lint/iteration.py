"""REP005 — iteration order: never iterate a bare ``set`` into output.

Python set iteration order depends on insertion history and hash
seeding of the *process*, not on the algorithm.  Any protocol that
iterates a set while emitting messages or selecting edges can produce
different message interleavings — or different spanners — across runs,
which breaks the byte-identical trace guarantee (PR 2) and the
sequential/distributed cross-validation the test suite leans on.  The
repo-wide idiom is ``for v in sorted(the_set):``.

This rule infers set-ness statically (no type checker needed at lint
time) from:

* set/frozenset displays, comprehensions and constructor calls,
* set-algebra results — ``a & b``, ``a | b``, ``a - b``, ``a ^ b`` and
  ``.intersection/.union/.difference/.symmetric_difference`` calls where
  either operand is itself set-typed,
* local names and parameters, via assignments and ``Set[...]`` /
  ``FrozenSet[...]`` annotations in the enclosing function,
* ``self.<attr>``, via assignments and annotations anywhere in the
  enclosing class.

It then flags ``for`` statements and *order-producing* comprehensions
(list comprehensions, generator expressions) whose iterable is
set-typed.  Set and dict comprehensions over a set are exempt — their
results carry no meaningful order out of the loop.  ``sorted(s)``,
``min(s)``, ``len(s)``, ``x in s`` are all order-insensitive and never
flagged (they are not iteration *over a bare set expression*).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.lint.base import ALGORITHMIC_PACKAGES, FileContext, Rule
from repro.lint.diagnostics import Diagnostic

__all__ = ["IterationOrderRule"]

_SET_ANNOTATION_NAMES = frozenset(
    {"Set", "FrozenSet", "AbstractSet", "MutableSet", "set", "frozenset"}
)
_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_SET_METHODS = frozenset(
    {"intersection", "union", "difference", "symmetric_difference", "copy"}
)
_SET_BINOPS = (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
#: expressions that are visibly NOT sets — used to veto a name whose
#: other assignments look set-like.
_NON_SET_NODES = (
    ast.List,
    ast.Tuple,
    ast.Dict,
    ast.ListComp,
    ast.DictComp,
    ast.GeneratorExp,
    ast.Constant,
)
#: calls that produce ordered (non-set) results; ``points = sorted(points)``
#: re-binds a former set name to a list, so the name stops being a set
#: for this (flow-insensitive) analysis.
_ORDERING_CALLS = frozenset({"sorted", "list", "tuple", "dict"})


def _visibly_non_set(expr: ast.expr) -> bool:
    if isinstance(expr, _NON_SET_NODES):
        return True
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in _ORDERING_CALLS
    )


def _annotation_is_set(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    target = annotation
    if isinstance(target, ast.Subscript):  # Set[int], FrozenSet[Edge]
        target = target.value
    if isinstance(target, ast.Name):
        return target.id in _SET_ANNOTATION_NAMES
    if isinstance(target, ast.Attribute):  # typing.Set, t.FrozenSet
        return target.attr in _SET_ANNOTATION_NAMES
    return False


class _Scope:
    """Set-ness facts for one function: local names + self attributes."""

    def __init__(
        self, set_names: Set[str], self_set_attrs: Set[str]
    ) -> None:
        self.set_names = set_names
        self.self_set_attrs = self_set_attrs


def _class_set_attrs(cls: ast.ClassDef) -> Set[str]:
    """Attributes of ``self`` that are set-typed anywhere in the class."""
    set_attrs: Set[str] = set()
    non_set_attrs: Set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.AnnAssign):
            target = node.target
            name: Optional[str] = None
            if isinstance(target, ast.Name):
                name = target.id
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                name = target.attr
            if name is not None and _annotation_is_set(node.annotation):
                set_attrs.add(name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    if _looks_like_set(node.value):
                        set_attrs.add(target.attr)
                    elif _visibly_non_set(node.value):
                        non_set_attrs.add(target.attr)
    return set_attrs - non_set_attrs


def _function_set_names(fn: ast.AST) -> Set[str]:
    """Local names (incl. parameters) that are set-typed in ``fn``."""
    set_names: Set[str] = set()
    non_set_names: Set[str] = set()
    if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = fn.args
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
        ):
            if _annotation_is_set(arg.annotation):
                set_names.add(arg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    if _looks_like_set(node.value):
                        set_names.add(target.id)
                    elif _visibly_non_set(node.value):
                        non_set_names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            if _annotation_is_set(node.annotation):
                set_names.add(node.target.id)
    return set_names - non_set_names


def _looks_like_set(
    expr: ast.expr, scope: Optional[_Scope] = None
) -> bool:
    """Static set-ness of an expression (conservative, syntax-driven)."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in _SET_CONSTRUCTORS:
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SET_METHODS
            and _looks_like_set(func.value, scope)
        ):
            return True
        return False
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, _SET_BINOPS):
        return _looks_like_set(expr.left, scope) or _looks_like_set(
            expr.right, scope
        )
    if scope is not None:
        if isinstance(expr, ast.Name):
            return expr.id in scope.set_names
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return expr.attr in scope.self_set_attrs
    return False


def _walk_within(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk ``fn``'s body without crossing into nested function scopes.

    Nested functions get their own scope pass from :meth:`check`, so
    descending here would double-report their loops under the wrong
    scope."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class IterationOrderRule(Rule):
    code = "REP005"
    name = "iteration-order"
    summary = (
        "no iteration over bare sets where order escapes (for loops, "
        "list/generator comprehensions) — use sorted(...) so traces and "
        "edge selections are reproducible"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_packages(ALGORITHMIC_PACKAGES)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        # Map each function to the set-typed self-attrs of its class.
        class_attrs: Dict[ast.AST, Set[str]] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                attrs = _class_set_attrs(node)
                for child in ast.walk(node):
                    if isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        class_attrs[child] = attrs
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope = _Scope(
                    _function_set_names(node),
                    class_attrs.get(node, set()),
                )
                yield from self._check_function(ctx, node, scope)

    def _check_function(
        self,
        ctx: FileContext,
        fn: ast.AST,
        scope: _Scope,
    ) -> Iterator[Diagnostic]:
        for node in _walk_within(fn):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._flag_if_set(
                    ctx, node.iter, scope, "for loop"
                )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                kind = (
                    "list comprehension"
                    if isinstance(node, ast.ListComp)
                    else "generator expression"
                )
                for gen in node.generators:
                    yield from self._flag_if_set(ctx, gen.iter, scope, kind)

    def _flag_if_set(
        self,
        ctx: FileContext,
        iterable: ast.expr,
        scope: _Scope,
        where: str,
    ) -> Iterator[Diagnostic]:
        if _looks_like_set(iterable, scope):
            yield self.diag(
                ctx,
                iterable,
                f"{where} iterates bare set "
                f"'{ast.unparse(iterable)}' whose order escapes; wrap "
                "in sorted(...) for reproducible traces/edge selection",
            )
