"""REP013 — asyncio safety for the serving tier.

The query tier (``serving/``) is the one place the repo runs an event
loop, and its determinism contract (seeded loadgen streams, replayable
cache-hit counts) only holds if the loop actually stays single-threaded
and non-blocking.  Three failure modes, all invisible to the per-file
rules:

* **blocking calls inside a coroutine** — ``time.sleep``, sync
  file/socket/subprocess IO — stall every connection on the loop and
  turn latency measurements into noise;
* **coroutine calls never awaited** — ``self._drain()`` as a bare
  statement creates a coroutine object and drops it; the work silently
  never happens (Python only warns at GC time, if ever);
* **shared server state mutated from multiple coroutines** — every
  field that two coroutines write is a race against interleaved
  awaits.  The serving design routes all mutation through the single
  drain-loop coroutine; the only sanctioned exception is a constant
  shutdown flag (``self._shutting_down = True``), which is atomic and
  order-insensitive.

Scope: modules under ``serving/`` (plus loose test fixtures).  The
never-awaited check resolves callees through the project call graph,
so an async helper defined in another serving module is still caught.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.base import ProjectRule
from repro.lint.diagnostics import Diagnostic
from repro.lint.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectContext,
)

__all__ = ["AsyncSafetyRule"]

#: external calls that block the event loop (dotted names after alias
#: resolution, so ``from time import sleep`` is caught too).
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.wait",
        "os.waitpid",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.create_connection",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
        "requests.request",
    }
)


def _in_scope(module: ModuleInfo) -> bool:
    if module.package is None:
        return True  # loose fixture files exercise the rule directly
    return module.package == "serving"


class AsyncSafetyRule(ProjectRule):
    code = "REP013"
    name = "asyncio-safety"
    summary = (
        "serving/ coroutines must not block the event loop, drop "
        "un-awaited coroutines, or mutate shared server state outside "
        "the drain loop"
    )

    def check(self, project: ProjectContext) -> Iterator[Diagnostic]:
        for module in project.sorted_modules():
            if not _in_scope(module):
                continue
            for fn in module.all_functions():
                if fn.is_async:
                    yield from self._check_coroutine(project, module, fn)
            for cls_name in sorted(module.classes):
                yield from self._check_shared_state(
                    module, module.classes[cls_name]
                )

    # -- blocking calls + dropped coroutines -----------------------------
    def _check_coroutine(
        self,
        project: ProjectContext,
        module: ModuleInfo,
        fn: FunctionInfo,
    ) -> Iterator[Diagnostic]:
        cls = project.enclosing_class(module, fn)
        for node in _walk_coroutine_body(fn.node):
            if isinstance(node, ast.Call):
                yield from self._check_blocking(project, module, node)
            if isinstance(node, ast.Expr) and isinstance(
                node.value, ast.Call
            ):
                yield from self._check_unawaited(
                    project, module, cls, node.value
                )

    def _check_blocking(
        self,
        project: ProjectContext,
        module: ModuleInfo,
        call: ast.Call,
    ) -> Iterator[Diagnostic]:
        if isinstance(call.func, ast.Name) and call.func.id == "open":
            yield self.diag(
                module.ctx,
                call,
                "sync open() inside a coroutine blocks the event loop; "
                "do file IO before entering async code or hand it to a "
                "thread",
            )
            return
        dotted = project.resolve_external(module, call.func)
        if dotted is not None and dotted in _BLOCKING_CALLS:
            yield self.diag(
                module.ctx,
                call,
                f"blocking call {dotted}() inside a coroutine stalls "
                "every connection on the event loop; use the asyncio "
                "equivalent (e.g. await asyncio.sleep) or move it off "
                "the loop",
            )

    def _check_unawaited(
        self,
        project: ProjectContext,
        module: ModuleInfo,
        cls: Optional[ClassInfo],
        call: ast.Call,
    ) -> Iterator[Diagnostic]:
        dotted = project.resolve_external(module, call.func)
        if dotted == "asyncio.sleep":
            yield self.diag(
                module.ctx,
                call,
                "asyncio.sleep() is never awaited — the coroutine "
                "object is created and dropped, so the pause never "
                "happens",
            )
            return
        target = project.resolve_call(module, call, cls)
        if target is not None and target.is_async:
            yield self.diag(
                module.ctx,
                call,
                f"coroutine {target.dotted}() is called but never "
                "awaited — the coroutine object is dropped and its "
                "body never runs",
            )

    # -- shared mutable state --------------------------------------------
    def _check_shared_state(
        self, module: ModuleInfo, cls: ClassInfo
    ) -> Iterator[Diagnostic]:
        #: attr -> [(method name, assignment node, is_constant_flag)]
        writes: Dict[str, List[Tuple[str, ast.stmt, bool]]] = {}
        for meth_name in sorted(cls.methods):
            meth = cls.methods[meth_name]
            if not meth.is_async:
                continue
            for stmt in _walk_coroutine_body(meth.node):
                for attr, constant in _self_attr_writes(stmt):
                    writes.setdefault(attr, []).append(
                        (meth_name, stmt, constant)
                    )
        for attr in sorted(writes):
            entries = writes[attr]
            methods = sorted({name for name, _, _ in entries})
            if len(methods) < 2:
                continue
            if all(constant for _, _, constant in entries):
                continue  # constant flags (shutdown sentinel) are atomic
            first = entries[0][1]
            yield self.diag(
                module.ctx,
                first,
                f"shared field self.{attr} is mutated in "
                f"{len(methods)} coroutines ({', '.join(methods)}); "
                "route mutations through the single drain-loop "
                "coroutine so interleaved awaits cannot race",
            )


def _walk_coroutine_body(fn_node: ast.AST) -> Iterator[ast.AST]:
    """Walk a coroutine's body without entering nested function defs."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn_node))
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _self_attr_writes(
    stmt: ast.AST,
) -> Iterator[Tuple[str, bool]]:
    """(attr, rhs_is_constant) for every ``self.X = ...`` in ``stmt``."""
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                yield target.attr, isinstance(stmt.value, ast.Constant)
    elif isinstance(stmt, ast.AugAssign):
        target = stmt.target
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            yield target.attr, False
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        target = stmt.target
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            yield target.attr, isinstance(stmt.value, ast.Constant)
