"""REP001 — determinism: all randomness flows through ``repro.util.rng``.

The paper's protocols rely on *shared randomness*: every processor
derives identical sampling decisions from a common seed, with zero
communication spent on coin flips (Sect. 2.1, Sect. 4.1; see
``util/rng.py``).  The sequential/distributed cross-validation tests and
the byte-identical trace guarantee (PR 2) both assume it.  A single
``random.random()`` or ``time.time()`` call in the algorithmic core
silently breaks every one of those properties, so this rule bans them
statically in ``core/``, ``distributed/``, ``graphs/`` and ``spanner/``:

* any call ``random.<fn>(...)`` (including seeded ``random.Random(s)`` —
  construct generators via :func:`repro.util.rng.ensure_rng` /
  :func:`repro.util.rng.spawn_rng` so seeding policy lives in one place);
* ``from random import ...`` in any form;
* wall-clock reads ``time.time()`` / ``time.time_ns()`` (round counting
  is the model's only clock; ``perf_counter`` is allowed for profiling);
* ``os.urandom(...)``;
* ``numpy.random`` calls, except explicitly seeded ``default_rng(seed)``
  / ``RandomState(seed)`` / ``SeedSequence(seed)`` constructions.

Type annotations such as ``rng: random.Random`` are *not* calls and are
deliberately permitted.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator

from repro.lint.base import (
    ALGORITHMIC_PACKAGES,
    FileContext,
    Rule,
    attribute_chain,
)
from repro.lint.diagnostics import Diagnostic

__all__ = ["DeterminismRule"]

#: numpy.random entry points that are fine *when given a seed argument*.
_SEEDED_CONSTRUCTORS = frozenset(
    {"default_rng", "RandomState", "SeedSequence", "Generator"}
)
_BANNED_TIME = frozenset({"time", "time_ns"})


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map bound names to dotted module paths for every ``import`` stmt."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    aliases[root] = root
    return aliases


class DeterminismRule(Rule):
    code = "REP001"
    name = "determinism"
    summary = (
        "randomness and wall-clock reads in the algorithmic core must go "
        "through repro.util.rng (shared-randomness model, Sect. 2.1/4.1)"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_packages(ALGORITHMIC_PACKAGES)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        aliases = _import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                yield from self._check_import_from(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, aliases)

    def _check_import_from(
        self, ctx: FileContext, node: ast.ImportFrom
    ) -> Iterator[Diagnostic]:
        module = node.module or ""
        if module == "random" or module.startswith("random."):
            yield self.diag(
                ctx,
                node,
                "import from the stdlib random module; route randomness "
                "through repro.util.rng (ensure_rng/make_prf/spawn_rng)",
            )
        elif module == "numpy.random":
            yield self.diag(
                ctx,
                node,
                "import from numpy.random; use an explicitly seeded "
                "generator threaded from repro.util.rng",
            )
        elif module == "time":
            names = {alias.name for alias in node.names}
            if names & _BANNED_TIME:
                yield self.diag(
                    ctx,
                    node,
                    "wall-clock import (time.time/time_ns); rounds are the "
                    "model's only clock",
                )
        elif module == "os":
            names = {alias.name for alias in node.names}
            if "urandom" in names:
                yield self.diag(
                    ctx,
                    node,
                    "os.urandom import; entropy must come from the run seed "
                    "via repro.util.rng",
                )

    def _check_call(
        self, ctx: FileContext, node: ast.Call, aliases: Dict[str, str]
    ) -> Iterator[Diagnostic]:
        chain = attribute_chain(node.func)
        if chain is None:
            return
        root, attrs = chain
        module = aliases.get(root)
        if module is None or not attrs:
            return
        dotted = ".".join([module] + attrs)
        if dotted.startswith("random."):
            yield self.diag(
                ctx,
                node,
                f"call to {dotted}(); use repro.util.rng "
                "(ensure_rng/make_prf/spawn_rng) so every draw is seeded "
                "and replayable",
            )
        elif dotted in ("time.time", "time.time_ns"):
            yield self.diag(
                ctx,
                node,
                f"wall-clock read {dotted}(); synchronous rounds are the "
                "model's only clock (use the round counter, or "
                "perf_counter in obs/ profiling code)",
            )
        elif dotted == "os.urandom":
            yield self.diag(
                ctx,
                node,
                "os.urandom() draws OS entropy; derive bytes from the run "
                "seed via repro.util.rng instead",
            )
        elif dotted.startswith("numpy.random."):
            fn = attrs[-1]
            if fn in _SEEDED_CONSTRUCTORS and (node.args or node.keywords):
                return
            yield self.diag(
                ctx,
                node,
                f"unseeded numpy.random call {dotted}(); construct an "
                "explicitly seeded generator (numpy.random.default_rng("
                "seed)) with a seed threaded from repro.util.rng",
            )
