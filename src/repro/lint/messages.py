"""REP003 — message discipline: payloads are word-countable and ordered.

Two guarantees hang off what protocols put on the wire:

* the width accounting of ``util/words.py`` (Theorem 2's
  ``O(log^eps n)``-word messages are *measured* by it), and
* the byte-identical trace guarantee of PR 2, whose
  ``payload_fingerprint`` is a CRC-32 of ``repr(payload)``.

Both need payloads built from ``None``/ints/floats/strs nested in
*ordered* containers (tuples/lists).  A ``set`` or ``dict`` payload has
interpreter-dependent iteration order: its repr — hence its fingerprint,
hence the whole trace — stops being reproducible, and a generator or
lambda is charged a flat 1 word no matter how much information it
smuggles.  This rule statically inspects every ``api.send(dst, payload)``
/ ``api.broadcast(payload)`` call in ``distributed/`` and flags payload
expressions that are visibly:

* ``dict``/``set`` displays or comprehensions (``{...}``),
* generator expressions or lambdas,
* ``set(...)`` / ``frozenset(...)`` / ``dict(...)`` constructor calls.

Payloads the analyzer cannot see through (a variable, a function call)
are trusted — the dynamic trace layer still checks them at run time.

:func:`static_payload_words` is the static twin of
:func:`repro.util.words.message_words`: on a payload expression built
from literals it computes the exact word count the simulator will
charge.  A hypothesis property test keeps the two models in agreement.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.lint.base import FileContext, Rule
from repro.lint.diagnostics import Diagnostic

__all__ = ["MessageDisciplineRule", "static_payload_words"]

_DISPLAY_KINDS = {
    ast.Dict: "dict display",
    ast.Set: "set display",
    ast.DictComp: "dict comprehension",
    ast.SetComp: "set comprehension",
    ast.GeneratorExp: "generator expression",
    ast.Lambda: "lambda",
}

_BANNED_CONSTRUCTORS = frozenset({"set", "frozenset", "dict"})

_SEND_METHODS = frozenset({"send", "broadcast"})


def _payload_args(call: ast.Call) -> Iterator[ast.expr]:
    """The payload expression(s) of an ``api.send``/``broadcast`` call."""
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in _SEND_METHODS:
        return
    if func.attr == "send":
        # send(dst, payload) — payload is the 2nd positional argument.
        if len(call.args) >= 2:
            yield call.args[1]
    else:
        # broadcast(payload)
        if len(call.args) >= 1:
            yield call.args[0]
    for kw in call.keywords:
        if kw.arg == "payload":
            yield kw.value


def _classify_bad(expr: ast.expr) -> Optional[str]:
    """A human-readable label if ``expr`` is a visibly bad payload."""
    for kind, label in _DISPLAY_KINDS.items():
        if isinstance(expr, kind):
            return label
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        if expr.func.id in _BANNED_CONSTRUCTORS:
            return f"{expr.func.id}(...) call"
    return None


class MessageDisciplineRule(Rule):
    code = "REP003"
    name = "message-discipline"
    summary = (
        "send/broadcast payloads must be ordered, word-countable values "
        "(None/int/float/str nested in tuples/lists) — no dict/set/"
        "generator payloads (trace fingerprints, util/words accounting)"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_packages(frozenset({"distributed"}))

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            for payload in _payload_args(node):
                yield from self._check_payload(ctx, payload)

    def _check_payload(
        self, ctx: FileContext, payload: ast.expr
    ) -> Iterator[Diagnostic]:
        # The payload itself, and anything nested inside an ordered
        # container: ``api.send(u, (x, {1, 2}))`` is just as broken.
        for sub in ast.walk(payload):
            label = _classify_bad(sub)
            if label is not None:
                yield self.diag(
                    ctx,
                    sub,
                    f"payload contains a {label}; unordered/opaque values "
                    "break trace fingerprints and words accounting — send "
                    "a sorted tuple instead",
                )


def static_payload_words(node: ast.expr) -> Optional[int]:
    """Word count of a literal payload expression, or None if unknown.

    Mirrors :func:`repro.util.words.message_words` on the static side:
    ``None`` is 0 words; int/float/bool/str constants are 1; tuples,
    lists, sets and frozensets cost the sum of their items; dicts the sum
    over keys and values; a negated number literal (``-1``) is still one
    constant.  Any expression outside that grammar (names, calls,
    f-strings, starred items) returns ``None`` — statically unknown.
    """
    if isinstance(node, ast.Constant):
        value = node.value
        if value is None:
            return 0
        if isinstance(value, (bool, int, float, str)):
            return 1
        if isinstance(value, bytes):
            return 1  # opaque token, like message_words' fallback
        return None
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        operand = node.operand
        if isinstance(operand, ast.Constant) and isinstance(
            operand.value, (int, float)
        ):
            return 1
        return None
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return _sum_words(node.elts)
    if isinstance(node, ast.Call):
        # frozenset({...}) / set([...]) of a literal container.
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset", "tuple", "list")
            and len(node.args) == 1
            and not node.keywords
        ):
            return static_payload_words(node.args[0])
        return None
    if isinstance(node, ast.Dict):
        total = 0
        for key, value in zip(node.keys, node.values):
            if key is None:  # ``{**other}`` expansion — unknown
                return None
            for part in (key, value):
                words = static_payload_words(part)
                if words is None:
                    return None
                total += words
        return total
    return None


def _sum_words(elts: List[ast.expr]) -> Optional[int]:
    total = 0
    for elt in elts:
        words = static_payload_words(elt)
        if words is None:
            return None
        total += words
    return total
