"""Case execution: distributed runs, re-runs, fault runs, references.

A :class:`CaseExecution` owns one :class:`~repro.fuzz.cases.FuzzCase`'s
host graph and lazily materializes the four executions the oracle
battery (:mod:`repro.fuzz.oracles`) compares:

* ``clean()``    — the traced distributed run;
* ``second()``   — an independent re-run with the same seed (replay
  determinism: traces must be byte-identical);
* ``faulty()``   — the same run under the case's :class:`~repro.
  distributed.faults.FaultPlan` with ``reliable=True`` (the adapter
  must reproduce the fault-free output exactly);
* ``reference()`` — the sequential reference construction
  (:mod:`repro.core` / :mod:`repro.baselines`) under shared randomness.

Each execution is cached, so an oracle battery runs every protocol at
most four times per case regardless of how many oracles consult it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Optional, Tuple

from repro.baselines.additive_spanner import additive2_spanner
from repro.baselines.baswana_sen import baswana_sen_spanner
from repro.baselines.deterministic_skeleton import sequential_deterministic
from repro.core.fibonacci import build_fibonacci_spanner
from repro.core.skeleton import build_skeleton
from repro.distributed.additive_protocol import distributed_additive2
from repro.distributed.baswana_sen_protocol import distributed_baswana_sen
from repro.distributed.deterministic_protocol import (
    distributed_deterministic,
)
from repro.distributed.faults import FaultPlan
from repro.distributed.fibonacci_protocol import (
    distributed_fibonacci_spanner,
)
from repro.distributed.skeleton_protocol import distributed_skeleton
from repro.distributed.survey_protocol import neighborhood_survey
from repro.fuzz.cases import FuzzCase, build_case_graph
from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.obs.trace import Obs, TraceRecorder
from repro.spanner.spanner import Spanner
from repro.util.rng import make_prf

__all__ = ["CaseExecution", "RunResult", "build_fault_plan"]


@dataclass(frozen=True)
class RunResult:
    """One execution's output, normalized across the six protocols.

    Spanner protocols fill ``edges``; the survey protocol fills
    ``known`` (per-vertex canonical edge sets).  ``trace`` is the
    canonical JSONL dump of the run's event stream.
    """

    edges: Optional[FrozenSet[Edge]]
    known: Optional[Dict[int, FrozenSet[Edge]]]
    metadata: Dict[str, Any]
    trace: str

    @property
    def size(self) -> int:
        return len(self.edges) if self.edges is not None else 0


def _opt_int(params: Dict[str, Any], key: str) -> Optional[int]:
    return int(params[key]) if key in params else None


def build_fault_plan(case: FuzzCase) -> Optional[FaultPlan]:
    """The case's :class:`FaultPlan` (``None`` for clean cases)."""
    if case.fault is None:
        return None
    spec = dict(case.fault)
    return FaultPlan(
        seed=int(spec.get("seed", 1)),
        drop_rate=spec.get("drop_rate", 0.0),
        duplicate_rate=spec.get("duplicate_rate", 0.0),
        delay_rate=spec.get("delay_rate", 0.0),
        reorder_rate=spec.get("reorder_rate", 0.0),
    )


def _run_distributed(
    case: FuzzCase,
    graph: Graph,
    fault_plan: Optional[FaultPlan],
    reliable: bool,
) -> RunResult:
    recorder = TraceRecorder()
    obs = Obs(recorder=recorder)
    params = case.params
    seed = case.protocol_seed
    common: Dict[str, Any] = {
        "seed": seed,
        "fault_plan": fault_plan,
        "reliable": reliable,
        "obs": obs,
    }
    spanner: Optional[Spanner] = None
    known: Optional[Dict[int, FrozenSet[Edge]]] = None
    if case.protocol == "skeleton":
        spanner = distributed_skeleton(
            graph,
            D=int(params.get("D", 4)),
            eps=float(params.get("eps", 0.5)),
            **common,
        )
    elif case.protocol == "baswana_sen":
        spanner = distributed_baswana_sen(
            graph, int(params.get("k", 3)), **common
        )
    elif case.protocol == "additive":
        spanner = distributed_additive2(
            graph, threshold=_opt_int(params, "threshold"), **common
        )
    elif case.protocol == "fibonacci":
        spanner = distributed_fibonacci_spanner(
            graph,
            order=int(params.get("order", 2)),
            eps=float(params.get("eps", 0.5)),
            ell=_opt_int(params, "ell"),
            **common,
        )
    elif case.protocol == "deterministic":
        spanner = distributed_deterministic(
            graph, D=int(params.get("D", 4)), **common
        )
    elif case.protocol == "survey":
        common.pop("seed")
        raw, _stats = neighborhood_survey(
            graph, int(params.get("radius", 2)), **common
        )
        known = {
            v: frozenset(canonical_edge(a, b) for a, b in raw[v])
            for v in sorted(raw)
        }
    else:
        raise ValueError(f"unknown protocol {case.protocol!r}")
    if spanner is not None:
        return RunResult(
            edges=frozenset(spanner.edges),
            known=None,
            metadata=dict(spanner.metadata),
            trace=recorder.dumps(),
        )
    return RunResult(
        edges=None, known=known, metadata={}, trace=recorder.dumps()
    )


def _run_reference(case: FuzzCase, graph: Graph) -> Optional[Spanner]:
    """The sequential reference construction.

    ``skeleton`` drives :func:`build_skeleton` with the same PRF as the
    protocol (identical cluster evolution); ``fibonacci`` passes the
    same seed, so both sides sample the identical level hierarchy.
    ``baswana_sen``/``additive`` draw their own randomness (``ensure_rng``
    vs the protocol's PRF), so their differential check compares sizes
    within a band rather than demanding equality.  ``deterministic``
    draws no randomness at all, so the differential oracle demands the
    *exact* edge set and telemetry.  ``survey`` has no sequential
    spanner (its reference is the exact BFS neighborhood, computed
    directly by the coverage oracle).
    """
    params = case.params
    seed = case.protocol_seed
    if case.protocol == "skeleton":
        return build_skeleton(
            graph,
            D=int(params.get("D", 4)),
            eps=float(params.get("eps", 0.5)),
            prf=make_prf(seed),
        )
    if case.protocol == "baswana_sen":
        return baswana_sen_spanner(graph, int(params.get("k", 3)), seed=seed)
    if case.protocol == "additive":
        return additive2_spanner(
            graph, threshold=_opt_int(params, "threshold"), seed=seed
        )
    if case.protocol == "fibonacci":
        return build_fibonacci_spanner(
            graph,
            order=int(params.get("order", 2)),
            eps=float(params.get("eps", 0.5)),
            ell=_opt_int(params, "ell"),
            seed=seed,
        )
    if case.protocol == "deterministic":
        edges, info = sequential_deterministic(
            graph, D=int(params.get("D", 4))
        )
        return Spanner(graph, edges, info)
    return None


@dataclass
class CaseExecution:
    """Lazy, cached executions of one fuzz case."""

    case: FuzzCase
    graph: Graph = field(init=False)
    _clean: Optional[RunResult] = field(default=None, repr=False)
    _second: Optional[RunResult] = field(default=None, repr=False)
    _faulty: Optional[RunResult] = field(default=None, repr=False)
    _reference: Optional[Spanner] = field(default=None, repr=False)
    _reference_done: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        self.graph = build_case_graph(self.case)

    def clean(self) -> RunResult:
        if self._clean is None:
            self._clean = _run_distributed(
                self.case, self.graph, fault_plan=None, reliable=False
            )
        return self._clean

    def second(self) -> RunResult:
        if self._second is None:
            self._second = _run_distributed(
                self.case, self.graph, fault_plan=None, reliable=False
            )
        return self._second

    def faulty(self) -> Optional[RunResult]:
        if self.case.fault is None:
            return None
        if self._faulty is None:
            self._faulty = _run_distributed(
                self.case,
                self.graph,
                fault_plan=build_fault_plan(self.case),
                reliable=True,
            )
        return self._faulty

    def reference(self) -> Optional[Spanner]:
        if not self._reference_done:
            self._reference = _run_reference(self.case, self.graph)
            self._reference_done = True
        return self._reference

    def spanner_subgraph(self) -> Graph:
        """The clean run's spanner as a graph on all host vertices."""
        edges: Tuple[Edge, ...] = tuple(sorted(self.clean().edges or ()))
        return self.graph.edge_subgraph(edges)
