"""Greedy delta-debugging shrinker for failing fuzz cases.

Given a case that fails some oracle, produce the smallest host graph
(and simplest case) we can find that *still fails the same oracle*:

1. drop the fault specification if the failure survives without it;
2. ddmin over vertices — remove chunks (half, quarter, ... single
   vertices) together with their incident edges;
3. ddmin over edges — remove chunks of the surviving edge list;
4. for churn cases, ddmin over the update events (batch structure
   preserved; emptied batches are pruned at the end);
5. prune vertices left isolated by the edge pass;

repeating to a fixpoint under a bounded re-check budget (each re-check
runs the full protocol, so the budget is what keeps shrinking cheap).
The shrinker is fully deterministic: chunks are tried in sorted order
and no randomness is drawn, so a given failure always shrinks to the
same reproducer.

Churn cases carry their frozen update stream in ``case.churn["events"]``
(:func:`repro.fuzz.cases.materialize`).  Vertex drops rewrite the stream
to remove events naming a dropped vertex; the engine's no-op tolerance
(duplicate inserts, deletes of absent edges, unpaired crash/recover)
keeps every rewritten stream well-formed, so the two ddmin dimensions
compose freely.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, FrozenSet, List, Optional, Sequence, Tuple

from repro.fuzz.cases import FuzzCase, materialize
from repro.fuzz.oracles import OracleFailure, check_case

__all__ = ["ShrinkResult", "shrink_case"]


def _event_vertices(event: Sequence[Any]) -> FrozenSet[int]:
    """Vertices an update event names (JSON list form).

    Edge events carry two endpoints; node events carry one (a crash's
    third element is the amnesia flag, not a vertex).
    """
    if event[0] in ("ins", "del"):
        return frozenset((int(event[1]), int(event[2])))
    return frozenset((int(event[1]),))


def _restrict_events(
    case: FuzzCase, keep: FrozenSet[int]
) -> FuzzCase:
    """Drop churn events naming vertices outside ``keep``."""
    if case.churn is None or "events" not in case.churn:
        return case
    batches = [
        [ev for ev in batch if _event_vertices(ev) <= keep]
        for batch in case.churn["events"]
    ]
    return replace(case, churn={**case.churn, "events": batches})


class ShrinkResult:
    """The shrunk case plus shrink bookkeeping."""

    __slots__ = ("case", "failure", "checks", "original_size")

    def __init__(
        self,
        case: FuzzCase,
        failure: OracleFailure,
        checks: int,
        original_size: Tuple[int, int],
    ) -> None:
        self.case = case
        self.failure = failure
        self.checks = checks
        self.original_size = original_size

    def __repr__(self) -> str:
        n = len(self.case.vertices or ())
        m = len(self.case.edges or ())
        return (
            f"ShrinkResult(n={n}, m={m}, from={self.original_size}, "
            f"checks={self.checks}, oracle={self.failure.oracle!r})"
        )


class _Budget:
    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.used = 0

    def take(self) -> bool:
        if self.used >= self.limit:
            return False
        self.used += 1
        return True


def _still_fails(
    case: FuzzCase,
    oracle: str,
    size_slack: float,
    budget: _Budget,
) -> Optional[OracleFailure]:
    """Re-run the battery restricted to the failing oracle (full battery
    for ``crash`` pseudo-failures, which have no oracle of their own)."""
    if not budget.take():
        return None
    wanted = None if oracle == "crash" else (oracle,)
    for failure in check_case(case, oracles=wanted, size_slack=size_slack):
        if failure.oracle == oracle:
            return failure
    return None


def shrink_case(
    case: FuzzCase,
    failure: OracleFailure,
    size_slack: float = 1.0,
    max_checks: int = 400,
) -> ShrinkResult:
    """Shrink ``case`` while ``failure.oracle`` keeps failing.

    Returns the smallest failing case found within ``max_checks``
    oracle re-runs (the original, materialized, if nothing smaller
    fails).  The result always carries an explicit edge list, ready for
    :func:`repro.fuzz.corpus.save_reproducer`.
    """
    budget = _Budget(max_checks)
    current = materialize(case)
    original = (len(current.vertices or ()), len(current.edges or ()))
    best_failure = failure

    def attempt(candidate: FuzzCase) -> Optional[OracleFailure]:
        return _still_fails(
            candidate, failure.oracle, size_slack, budget
        )

    changed = True
    while changed and budget.used < budget.limit:
        changed = False

        if current.fault is not None:
            refound = attempt(replace(current, fault=None))
            if refound is not None:
                current = replace(current, fault=None)
                best_failure = refound
                changed = True

        # Vertex pass: drop chunks of vertices with their incident edges.
        verts: List[int] = list(current.vertices or ())
        chunk = max(1, len(verts) // 2)
        while chunk >= 1 and budget.used < budget.limit:
            i = 0
            while i < len(verts):
                drop = frozenset(verts[i : i + chunk])
                keep_v = tuple(v for v in verts if v not in drop)
                if len(keep_v) < 2:
                    i += chunk
                    continue
                keep_e = tuple(
                    e
                    for e in (current.edges or ())
                    if e[0] not in drop and e[1] not in drop
                )
                candidate = _restrict_events(
                    replace(
                        current,
                        vertices=keep_v,
                        edges=keep_e,
                        n=len(keep_v),
                    ),
                    frozenset(keep_v),
                )
                refound = attempt(candidate)
                if refound is not None:
                    current = candidate
                    verts = list(keep_v)
                    best_failure = refound
                    changed = True
                else:
                    i += chunk
            chunk //= 2

        # Edge pass: drop chunks of edges, vertices untouched.
        edges: List[Tuple[int, int]] = list(current.edges or ())
        chunk = max(1, len(edges) // 2)
        while chunk >= 1 and budget.used < budget.limit:
            i = 0
            while i < len(edges):
                keep_e = tuple(edges[:i] + edges[i + chunk :])
                candidate = replace(current, edges=keep_e)
                refound = attempt(candidate)
                if refound is not None:
                    current = candidate
                    edges = list(keep_e)
                    best_failure = refound
                    changed = True
                else:
                    i += chunk
            chunk //= 2

        # Event pass (churn cases): drop chunks of update events while
        # preserving the batch structure, then prune emptied batches.
        if current.churn is not None and "events" in current.churn:
            positions: List[Tuple[int, int]] = [
                (bi, ei)
                for bi, batch in enumerate(current.churn["events"])
                for ei in range(len(batch))
            ]
            chunk = max(1, len(positions) // 2)
            while chunk >= 1 and budget.used < budget.limit:
                i = 0
                while i < len(positions):
                    drop = frozenset(positions[i : i + chunk])
                    if not drop:
                        break
                    batches = [
                        [
                            ev
                            for ei, ev in enumerate(batch)
                            if (bi, ei) not in drop
                        ]
                        for bi, batch in enumerate(
                            current.churn["events"]
                        )
                    ]
                    candidate = replace(
                        current,
                        churn={**current.churn, "events": batches},
                    )
                    refound = attempt(candidate)
                    if refound is not None:
                        current = candidate
                        positions = [
                            (bi, ei)
                            for bi, batch in enumerate(batches)
                            for ei in range(len(batch))
                        ]
                        best_failure = refound
                        changed = True
                    else:
                        i += chunk
                chunk //= 2
            kept_batches = [
                b for b in current.churn["events"] if b
            ]
            if not kept_batches and current.churn["events"]:
                # A batch is a grading point even when empty — keep one
                # so size/grade oracles still have something to check.
                kept_batches = [[]]
            if len(kept_batches) < len(current.churn["events"]):
                candidate = replace(
                    current,
                    churn={**current.churn, "events": kept_batches},
                )
                refound = attempt(candidate)
                if refound is not None:
                    current = candidate
                    best_failure = refound
                    changed = True

        # Prune vertices the edge pass isolated (if the failure allows).
        touched = frozenset(
            v for e in (current.edges or ()) for v in e
        )
        lonely = [
            v for v in (current.vertices or ()) if v not in touched
        ]
        if lonely and len(current.vertices or ()) - len(lonely) >= 2:
            keep_v = tuple(
                v for v in (current.vertices or ()) if v in touched
            )
            candidate = replace(
                current, vertices=keep_v, n=len(keep_v)
            )
            refound = attempt(candidate)
            if refound is not None:
                current = candidate
                best_failure = refound
                changed = True

    current = replace(
        current,
        note=(
            f"shrunk from n={original[0]}, m={original[1]} "
            f"({budget.used} checks); failing oracle: "
            f"{best_failure.oracle}"
        ),
    )
    return ShrinkResult(current, best_failure, budget.used, original)
