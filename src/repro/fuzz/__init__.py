"""Differential fuzzing for the distributed protocols (``repro fuzz``).

Seed-driven random cases (graph × protocol × faults) are run through an
oracle battery — subgraph containment, analytic size budgets, theorem
stretch bounds, connectivity/coverage, replay determinism, reliable-
under-faults equivalence, and sequential/distributed differential
checks.  Failures are shrunk to minimal JSON reproducers and stored in
the committed corpus (``tests/fuzz_corpus/``), which CI replays as a
regression suite.  See ``docs/fuzzing.md``.
"""

from repro.fuzz.cases import (
    FUZZ_PROTOCOLS,
    FuzzCase,
    build_case_graph,
    case_stream,
    dumps_cases,
    materialize,
)
from repro.fuzz.corpus import (
    DEFAULT_CORPUS_DIR,
    load_corpus,
    replay_corpus,
    save_reproducer,
)
from repro.fuzz.oracles import (
    ORACLE_NAMES,
    OracleFailure,
    check_case,
    run_battery,
)
from repro.fuzz.runner import CaseExecution, RunResult
from repro.fuzz.shrink import ShrinkResult, shrink_case

__all__ = [
    "CaseExecution",
    "DEFAULT_CORPUS_DIR",
    "FUZZ_PROTOCOLS",
    "FuzzCase",
    "ORACLE_NAMES",
    "OracleFailure",
    "RunResult",
    "ShrinkResult",
    "build_case_graph",
    "case_stream",
    "check_case",
    "dumps_cases",
    "load_corpus",
    "materialize",
    "replay_corpus",
    "run_battery",
    "save_reproducer",
    "shrink_case",
]
