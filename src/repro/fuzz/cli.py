"""``python -m repro fuzz`` — the differential-fuzzing entry point.

Runs a deterministic, seeded stream of cases through the oracle battery
(:mod:`repro.fuzz.oracles`); on the first failure it shrinks the case
(:mod:`repro.fuzz.shrink`) and writes a minimal JSON reproducer into the
corpus directory (:mod:`repro.fuzz.corpus`), then exits 1.  A clean
sweep exits 0.

Examples::

    python -m repro fuzz --cases 50 --seed 0
    python -m repro fuzz --cases 200 --protocols skeleton fibonacci
    python -m repro fuzz --replay            # re-check the corpus
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.fuzz.cases import FUZZ_PROTOCOLS, case_stream, materialize
from repro.fuzz.corpus import (
    DEFAULT_CORPUS_DIR,
    replay_corpus,
    save_reproducer,
)
from repro.fuzz.oracles import check_case
from repro.fuzz.shrink import shrink_case

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro fuzz",
        description=(
            "Differential fuzzing of the distributed protocols against "
            "their sequential references and theorem bounds, plus the "
            "churn engine against from-scratch rebuilds."
        ),
    )
    parser.add_argument(
        "--cases", type=int, default=100,
        help="number of cases to run (default 100)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="case-stream seed; same seed => identical stream (default 0)",
    )
    parser.add_argument(
        "--protocols", nargs="+", choices=FUZZ_PROTOCOLS, metavar="P",
        help=f"restrict to these protocols (default: all of "
             f"{', '.join(FUZZ_PROTOCOLS)})",
    )
    parser.add_argument(
        "--corpus", default=DEFAULT_CORPUS_DIR,
        help=f"reproducer directory (default {DEFAULT_CORPUS_DIR})",
    )
    parser.add_argument(
        "--size-slack", type=float, default=1.0,
        help="multiplier on the analytic size budgets (default 1.0)",
    )
    parser.add_argument(
        "--fault-fraction", type=float, default=0.3,
        help="fraction of cases run with fault injection (default 0.3)",
    )
    parser.add_argument(
        "--max-shrink-checks", type=int, default=400,
        help="oracle re-runs the shrinker may spend (default 400)",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="report the first failure without shrinking it",
    )
    parser.add_argument(
        "--replay", action="store_true",
        help="replay the corpus instead of fuzzing new cases",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="only report failures and the final summary",
    )
    return parser


def _replay(args: argparse.Namespace) -> int:
    results = replay_corpus(args.corpus, size_slack=args.size_slack)
    if not results:
        print(f"corpus {args.corpus}: no entries")
        return 0
    bad = 0
    for path, failures in results:
        if failures:
            bad += 1
            print(f"FAIL {path}")
            for failure in failures:
                print(f"     {failure}")
        elif not args.quiet:
            print(f"ok   {path}")
    print(f"corpus: {len(results) - bad}/{len(results)} passing")
    return 1 if bad else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.replay:
        return _replay(args)

    cases = case_stream(
        args.seed,
        args.cases,
        protocols=args.protocols,
        fault_fraction=args.fault_fraction,
    )
    for i, case in enumerate(cases):
        failures = check_case(case, size_slack=args.size_slack)
        if not failures:
            if not args.quiet:
                print(f"[{i + 1:4d}/{args.cases}] ok   {case.label}")
            continue

        print(f"[{i + 1:4d}/{args.cases}] FAIL {case.label}")
        for failure in failures:
            print(f"       {failure}")
        worst = failures[0]
        if args.no_shrink:
            path = save_reproducer(materialize(case), worst, args.corpus)
        else:
            result = shrink_case(
                case,
                worst,
                size_slack=args.size_slack,
                max_checks=args.max_shrink_checks,
            )
            n = len(result.case.vertices or ())
            m = len(result.case.edges or ())
            print(
                f"       shrunk to n={n}, m={m} "
                f"(from n={result.original_size[0]}, "
                f"m={result.original_size[1]}; "
                f"{result.checks} checks)"
            )
            path = save_reproducer(result.case, result.failure, args.corpus)
        print(f"       reproducer: {path}")
        print(
            "       replay with: python -m repro fuzz --replay "
            f"--corpus {args.corpus}"
        )
        return 1

    print(f"fuzz: {args.cases} cases passed (seed {args.seed})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
