"""Deterministic case sampling and the reproducer format.

A :class:`FuzzCase` pins everything one differential-fuzzing run depends
on: the host graph (a generator recipe *or* an explicit edge list), the
protocol and its parameters, the protocol seed, and an optional fault
specification run under the reliable-delivery adapter.  Case streams are
drawn from a single seeded RNG (:func:`repro.util.rng.ensure_rng`), so
``case_stream(seed, count)`` is a pure function of its arguments: the
same seed yields a byte-identical JSON dump of the stream on every run
(asserted by ``tests/test_fuzz.py``).

Shrunk reproducers always carry an explicit ``edges`` list (the shrinker
cannot express "this generator minus those vertices" as a recipe), which
is also the committed corpus format — see :mod:`repro.fuzz.corpus`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.graphs.generators import (
    balanced_tree,
    cycle,
    erdos_renyi_gnp,
    grid_2d,
    hypercube,
    path,
)
from repro.graphs.graph import Graph
from repro.util.rng import ensure_rng

__all__ = [
    "FUZZ_PROTOCOLS",
    "GRAPH_KINDS",
    "FuzzCase",
    "build_case_graph",
    "case_stream",
    "dumps_cases",
    "materialize",
]

#: the six distributed protocols the fuzzer exercises (Fig. 1 order,
#: the deterministic skeleton last), plus the churn scenario (update
#: streams against the incremental spanner, checked by the
#: rebuild-equivalence battery).
FUZZ_PROTOCOLS: Tuple[str, ...] = (
    "skeleton",
    "baswana_sen",
    "additive",
    "fibonacci",
    "survey",
    "deterministic",
    "churn",
)

#: host-graph recipes; weights bias toward the random families, where
#: the interesting coin-flip interactions live.
GRAPH_KINDS: Tuple[str, ...] = (
    "er",
    "er",
    "er",
    "grid",
    "cycle",
    "path",
    "tree",
    "hypercube",
)


@dataclass(frozen=True)
class FuzzCase:
    """One differential-fuzzing input, JSON-serializable end to end."""

    case_id: int
    protocol: str
    graph_kind: str
    n: int
    density: float
    graph_seed: int
    protocol_seed: int
    params: Dict[str, Any] = field(default_factory=dict)
    #: FaultPlan kwargs (rates + ``seed``); ``None`` = clean case.  Fault
    #: cases run under ``reliable=True`` and must match the clean output.
    fault: Optional[Dict[str, float]] = None
    #: explicit host graph (shrunk reproducers / corpus entries).
    vertices: Optional[Tuple[int, ...]] = None
    edges: Optional[Tuple[Tuple[int, int], ...]] = None
    #: churn cases only: the update-stream recipe (``batches``,
    #: ``batch_size``, ``stream_seed``, fractions), plus — once
    #: materialized — the frozen ``events`` (batched JSON event lists,
    #: :func:`repro.churn.events.events_to_json` format) the shrinker
    #: ddmins over.
    churn: Optional[Dict[str, Any]] = None
    note: str = ""

    @property
    def label(self) -> str:
        host = (
            f"edges[{len(self.edges)}]" if self.edges is not None
            else f"{self.graph_kind}(n={self.n}, d={self.density:g})"
        )
        fault = " +faults" if self.fault is not None else ""
        churn = ""
        if self.churn is not None:
            events = self.churn.get("events")
            count = (
                sum(len(b) for b in events)
                if events is not None
                else f"{self.churn.get('batches', '?')}x"
                     f"{self.churn.get('batch_size', '?')}"
            )
            churn = f" +churn[{count}]"
        return (
            f"{self.protocol} on {host} seed={self.protocol_seed}"
            f"{fault}{churn}"
        )

    def to_json(self) -> Dict[str, Any]:
        """Canonical dict form (stable key order via sort_keys dumps)."""
        data: Dict[str, Any] = {
            "case_id": self.case_id,
            "protocol": self.protocol,
            "graph_kind": self.graph_kind,
            "n": self.n,
            "density": self.density,
            "graph_seed": self.graph_seed,
            "protocol_seed": self.protocol_seed,
            "params": dict(self.params),
            "fault": dict(self.fault) if self.fault is not None else None,
            "vertices": (
                list(self.vertices) if self.vertices is not None else None
            ),
            "edges": (
                [list(e) for e in self.edges]
                if self.edges is not None
                else None
            ),
            "churn": dict(self.churn) if self.churn is not None else None,
            "note": self.note,
        }
        return data

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "FuzzCase":
        return cls(
            case_id=int(data.get("case_id", 0)),
            protocol=str(data["protocol"]),
            graph_kind=str(data.get("graph_kind", "explicit")),
            n=int(data.get("n", 0)),
            density=float(data.get("density", 0.0)),
            graph_seed=int(data.get("graph_seed", 0)),
            protocol_seed=int(data.get("protocol_seed", 0)),
            params=dict(data.get("params") or {}),
            fault=(
                {str(k): float(v) for k, v in data["fault"].items()}
                if data.get("fault") is not None
                else None
            ),
            vertices=(
                tuple(int(v) for v in data["vertices"])
                if data.get("vertices") is not None
                else None
            ),
            edges=(
                tuple((int(u), int(v)) for u, v in data["edges"])
                if data.get("edges") is not None
                else None
            ),
            churn=(
                dict(data["churn"])
                if data.get("churn") is not None
                else None
            ),
            note=str(data.get("note", "")),
        )


def build_case_graph(case: FuzzCase) -> Graph:
    """The case's host graph — explicit edge list or generator recipe."""
    if case.edges is not None:
        return Graph(vertices=case.vertices or (), edges=case.edges)
    n = case.n
    if case.graph_kind == "er":
        return erdos_renyi_gnp(n, case.density, seed=case.graph_seed)
    if case.graph_kind == "grid":
        cols = max(2, int(n**0.5))
        return grid_2d(max(2, n // cols), cols)
    if case.graph_kind == "cycle":
        return cycle(max(3, n))
    if case.graph_kind == "path":
        return path(max(2, n))
    if case.graph_kind == "tree":
        # branching 2 or 3 keyed off the graph seed, height to reach ~n.
        branching = 2 + case.graph_seed % 2
        height, total = 1, 1 + branching
        while total < n:
            height += 1
            total += branching ** (height)
        return balanced_tree(branching, height)
    if case.graph_kind == "hypercube":
        dim = max(2, n.bit_length() - 1)
        return hypercube(dim)
    raise ValueError(f"unknown graph kind {case.graph_kind!r}")


def materialize(case: FuzzCase, graph: Optional[Graph] = None) -> FuzzCase:
    """Freeze the case's host graph into an explicit edge list.

    The result runs the identical computation (same vertices, same
    edges, same protocol seed) but no longer depends on the generator —
    the starting point for shrinking and the corpus format.  Churn
    cases additionally freeze their update stream: the seeded recipe is
    expanded once against the frozen host and stored as explicit JSON
    event batches under ``churn["events"]``.
    """
    if case.edges is not None and case.vertices is None:
        endpoints = tuple(sorted({v for e in case.edges for v in e}))
        case = replace(case, vertices=endpoints)
    if case.edges is None:
        g = graph if graph is not None else build_case_graph(case)
        case = replace(
            case,
            vertices=tuple(sorted(g.vertices())),
            edges=tuple(sorted(g.edges())),
        )
        graph = g
    if case.churn is not None and "events" not in case.churn:
        from repro.churn.events import churn_stream, events_to_json

        g = graph if graph is not None else build_case_graph(case)
        recipe = case.churn
        stream = churn_stream(
            g,
            batches=int(recipe.get("batches", 3)),
            batch_size=int(recipe.get("batch_size", 4)),
            seed=int(recipe.get("stream_seed", 0)),
            delete_fraction=float(recipe.get("delete_fraction", 0.45)),
            crash_fraction=float(recipe.get("crash_fraction", 0.2)),
            amnesia_fraction=float(recipe.get("amnesia_fraction", 0.5)),
        )
        case = replace(
            case, churn={**recipe, "events": events_to_json(stream)}
        )
    return case


def _sample_params(
    protocol: str, rng: Any
) -> Dict[str, Any]:
    if protocol == "skeleton":
        return {"D": 4, "eps": 0.5}
    if protocol == "baswana_sen":
        return {"k": int(rng.choice((2, 3, 4)))}
    if protocol == "additive":
        return {}
    if protocol == "fibonacci":
        # eps-default ell (= 3o/eps + 2), so the staged Theorem 7
        # distortion oracle is exactly the theorem's claim.
        return {"order": 2, "eps": 0.5}
    if protocol == "survey":
        return {"radius": int(rng.choice((1, 2, 3)))}
    if protocol == "deterministic":
        return {"D": int(rng.choice((2, 3, 4, 5)))}
    if protocol == "churn":
        return {"k": int(rng.choice((2, 3)))}
    raise ValueError(f"unknown protocol {protocol!r}")


def case_stream(
    seed: int,
    count: int,
    protocols: Optional[Sequence[str]] = None,
    fault_fraction: float = 0.3,
) -> List[FuzzCase]:
    """Draw ``count`` cases deterministically from ``seed``.

    Protocols rotate round-robin (every protocol gets coverage even in
    short runs); graph family, size, density, seeds, per-protocol knobs
    and the optional fault specification are all drawn from one seeded
    RNG, so the stream — including its JSON serialization — is a pure
    function of ``(seed, count, protocols, fault_fraction)``.
    """
    chosen = tuple(protocols) if protocols else FUZZ_PROTOCOLS
    for p in chosen:
        if p not in FUZZ_PROTOCOLS:
            raise ValueError(
                f"unknown protocol {p!r}; choose from {FUZZ_PROTOCOLS}"
            )
    rng = ensure_rng(seed)
    cases: List[FuzzCase] = []
    for i in range(count):
        protocol = chosen[i % len(chosen)]
        kind = rng.choice(GRAPH_KINDS)
        n = rng.randrange(8, 73)
        density = round(rng.uniform(0.05, 0.35), 3)
        fault: Optional[Dict[str, float]] = None
        if protocol != "churn" and rng.random() < fault_fraction:
            fault = {
                "seed": float(rng.randrange(1, 10_000)),
                "drop_rate": round(rng.uniform(0.0, 0.15), 3),
                "duplicate_rate": round(rng.uniform(0.0, 0.1), 3),
                "delay_rate": round(rng.uniform(0.0, 0.1), 3),
                "reorder_rate": round(rng.uniform(0.0, 0.2), 3),
            }
        churn: Optional[Dict[str, Any]] = None
        if protocol == "churn":
            # Faults are the stream's own crash/recover events here, so
            # the message-layer fault spec stays off.
            churn = {
                "batches": int(rng.randrange(2, 6)),
                "batch_size": int(rng.randrange(3, 8)),
                "stream_seed": int(rng.randrange(2**31)),
                "delete_fraction": 0.45,
                "crash_fraction": round(rng.uniform(0.0, 0.3), 3),
                "amnesia_fraction": 0.5,
            }
        cases.append(
            FuzzCase(
                case_id=i,
                protocol=protocol,
                graph_kind=kind,
                n=n,
                density=density,
                graph_seed=rng.randrange(2**31),
                protocol_seed=rng.randrange(2**31),
                params=_sample_params(protocol, rng),
                fault=fault,
                churn=churn,
            )
        )
    return cases


def dumps_cases(cases: Sequence[FuzzCase]) -> str:
    """Canonical JSONL dump of a case stream (sorted keys, no spaces) —
    byte-identical for identical streams, the replayability contract."""
    return "".join(
        json.dumps(c.to_json(), sort_keys=True, separators=(",", ":"))
        + "\n"
        for c in cases
    )
