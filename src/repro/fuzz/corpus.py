"""The committed reproducer corpus (``tests/fuzz_corpus/``).

When the fuzzer finds a failure it shrinks the case and saves a small
JSON reproducer here.  The corpus is committed: every entry is a bug
that once existed (or a hand-picked regression case), and
``tests/test_fuzz_corpus.py`` replays the whole directory on every CI
run, asserting that each entry now **passes** the oracle battery — the
corpus is a regression suite distilled from fuzzing, not a graveyard.

Format (one file per case, schema 1)::

    {
      "schema": 1,
      "case": { ...FuzzCase.to_json()... },
      "found": {"oracle": "...", "message": "..."} | null,
      "oracles": ["size", ...] | null     # restrict replay (optional)
    }
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.fuzz.cases import FuzzCase
from repro.fuzz.oracles import OracleFailure, check_case

__all__ = [
    "DEFAULT_CORPUS_DIR",
    "load_corpus",
    "replay_corpus",
    "save_reproducer",
]

SCHEMA_VERSION = 1

#: repo-relative default; the CLI resolves it against the cwd.
DEFAULT_CORPUS_DIR = os.path.join("tests", "fuzz_corpus")


def _reproducer_payload(
    case: FuzzCase, failure: Optional[OracleFailure]
) -> Dict[str, Any]:
    return {
        "schema": SCHEMA_VERSION,
        "case": case.to_json(),
        "found": (
            {"oracle": failure.oracle, "message": failure.message}
            if failure is not None
            else None
        ),
        "oracles": None,
    }


def save_reproducer(
    case: FuzzCase,
    failure: Optional[OracleFailure],
    directory: str = DEFAULT_CORPUS_DIR,
) -> str:
    """Write a reproducer JSON; returns its path.

    The filename encodes protocol, oracle and host size, plus the case
    seed for uniqueness: ``skeleton_size_n12_s123456.json``.
    """
    os.makedirs(directory, exist_ok=True)
    n = len(case.vertices or ()) or case.n
    oracle = failure.oracle if failure is not None else "case"
    name = (
        f"{case.protocol}_{oracle}_n{n}_s{case.protocol_seed}.json"
    )
    path = os.path.join(directory, name)
    with open(path, "w") as fh:
        json.dump(
            _reproducer_payload(case, failure),
            fh,
            indent=2,
            sort_keys=True,
        )
        fh.write("\n")
    return path


def load_corpus(
    directory: str = DEFAULT_CORPUS_DIR,
) -> List[Tuple[str, FuzzCase, Optional[Tuple[str, ...]]]]:
    """All corpus entries as ``(path, case, oracle_restriction)``."""
    if not os.path.isdir(directory):
        return []
    entries: List[Tuple[str, FuzzCase, Optional[Tuple[str, ...]]]] = []
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        with open(path) as fh:
            payload = json.load(fh)
        if payload.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"{path}: unknown corpus schema {payload.get('schema')!r}"
            )
        restriction = (
            tuple(str(o) for o in payload["oracles"])
            if payload.get("oracles")
            else None
        )
        entries.append(
            (path, FuzzCase.from_json(payload["case"]), restriction)
        )
    return entries


def replay_corpus(
    directory: str = DEFAULT_CORPUS_DIR,
    size_slack: float = 1.0,
) -> List[Tuple[str, List[OracleFailure]]]:
    """Re-run the battery over every corpus entry.

    Returns ``(path, failures)`` per entry; a healthy repo yields empty
    failure lists throughout (asserted by ``tests/test_fuzz_corpus.py``).
    """
    results: List[Tuple[str, List[OracleFailure]]] = []
    for path, case, restriction in load_corpus(directory):
        results.append(
            (
                path,
                check_case(case, oracles=restriction, size_slack=size_slack),
            )
        )
    return results
