"""The differential-fuzzing oracle battery.

Each oracle inspects a :class:`~repro.fuzz.runner.CaseExecution` and
returns ``None`` (pass) or a human-readable failure message.  The
battery is the union of every correctness claim the repo already tests
pointwise, applied to arbitrary sampled cases:

``subgraph``
    Every output edge exists in the host graph (spanners and survey
    knowledge alike must never invent edges).
``size``
    Edge count within the analytic budget of the matching
    lemma/theorem (:func:`repro.analysis.theory.protocol_size_budget`),
    scaled by ``size_slack``.
``stretch``
    The theorem's stretch guarantee via
    :func:`~repro.spanner.stretch.stretch_statistics` /
    :func:`~repro.spanner.stretch.distance_profile`.  Fibonacci is held
    to Theorem 7's *staged* per-distance curve, not just its uniform
    envelope.
``connectivity``
    The spanner preserves the host's connected components exactly; for
    the survey protocol this instead checks r-neighborhood coverage
    (``known[v]`` contains every edge with both endpoints within
    ``radius - 1`` hops).
``determinism``
    Two runs with the same seed produce byte-identical traces and
    identical outputs.
``fault_equivalence``
    Under the case's fault plan with the reliable-delivery adapter, the
    output equals the fault-free output exactly.
``differential``
    Distributed vs sequential reference: exact cluster-evolution
    equality for the skeleton (shared PRF), exact level-hierarchy
    sharing for Fibonacci (same seed), a size band for
    Baswana–Sen / additive (independent randomness), and *exact*
    edge-set plus telemetry equality for the deterministic skeleton
    (no randomness anywhere).
``rand_vs_det``
    Deterministic cases only: run the randomized Section 2 skeleton on
    the identical host (same ``D``, the case's protocol seed) and hold
    both constructions to their own analytic size budgets and to host
    connectivity — the paper's Fig. 1 comparison as an executable
    head-to-head.
"""

from __future__ import annotations

import math
import traceback
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.theory import (
    protocol_size_budget,
    protocol_stretch_budget,
    theorem7_distortion_bound,
)
from repro.churn.events import events_from_json
from repro.churn.oracle import CHURN_ORACLE_NAMES, check_churn
from repro.fuzz.cases import FuzzCase, build_case_graph, materialize
from repro.fuzz.runner import CaseExecution
from repro.graphs.properties import bfs_distances
from repro.spanner.verification import (
    verify_connectivity,
    verify_spanner_guarantee,
    verify_subgraph,
)
from repro.spanner.stretch import distance_profile

__all__ = [
    "CHURN_ORACLES",
    "ORACLE_NAMES",
    "OracleFailure",
    "check_case",
    "run_battery",
]

#: battery order: cheap structural checks first, differential and the
#: randomized-vs-deterministic head-to-head (which runs a second
#: protocol) last.
ORACLE_NAMES: Tuple[str, ...] = (
    "subgraph",
    "size",
    "stretch",
    "connectivity",
    "determinism",
    "fault_equivalence",
    "differential",
    "rand_vs_det",
)

#: the churn scenario runs its own rebuild-equivalence battery
#: (:mod:`repro.churn.oracle`) instead of the protocol oracles above.
CHURN_ORACLES: Tuple[str, ...] = CHURN_ORACLE_NAMES


class OracleFailure:
    """One failed oracle: which check, and what it saw."""

    __slots__ = ("oracle", "message")

    def __init__(self, oracle: str, message: str) -> None:
        self.oracle = oracle
        self.message = message

    def __repr__(self) -> str:
        return f"OracleFailure({self.oracle!r}, {self.message!r})"

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.message}"


def oracle_subgraph(ex: CaseExecution) -> Optional[str]:
    clean = ex.clean()
    if clean.edges is not None:
        if not verify_subgraph(ex.graph, sorted(clean.edges)):
            bad = [
                e for e in sorted(clean.edges)
                if not ex.graph.has_edge(*e)
            ]
            return f"spanner edges not in host: {bad[:5]}"
        return None
    assert clean.known is not None
    for v in sorted(clean.known):
        for u, w in sorted(clean.known[v]):
            if not ex.graph.has_edge(u, w):
                return f"survey known[{v}] has non-host edge ({u}, {w})"
    return None


def oracle_size(ex: CaseExecution, size_slack: float = 1.0) -> Optional[str]:
    case = ex.case
    if case.protocol == "survey":
        return None
    clean = ex.clean()
    if case.protocol == "skeleton":
        # Lemma 6 bounds the *expected* size.  When the first Expand
        # call samples zero cluster centers (a legitimate
        # probability-delta Monte-Carlo outcome on small hosts), the
        # skeleton correctly keeps every edge, and the per-instance
        # budget does not apply — the differential oracle still pins
        # the run to its sequential reference in that case.
        counts = clean.metadata.get("cluster_counts")
        if isinstance(counts, list) and counts and counts[0] == 0:
            return None
    budget = size_slack * protocol_size_budget(
        case.protocol, ex.graph.n, **case.params
    )
    # Edge counts are integers: exceeding the real-valued analytic
    # formula by a fraction of an edge is rounding, not a violation
    # (the honest skeleton hits exactly ceil(budget) on near-complete
    # 12-vertex hosts — tests/fuzz_corpus keeps the boundary witness).
    size = clean.size
    if size > math.ceil(budget):
        return (
            f"size {size} exceeds analytic budget {budget:.1f} "
            f"(n={ex.graph.n}, params={case.params})"
        )
    return None


def oracle_stretch(ex: CaseExecution) -> Optional[str]:
    case = ex.case
    if case.protocol == "survey":
        return None
    sub = ex.spanner_subgraph()
    if not verify_connectivity(ex.graph, sub):
        # oracle_connectivity reports this; stretch over a disconnected
        # spanner would only drown that signal in inf noise.
        return None
    if case.protocol == "fibonacci":
        order = int(case.params.get("order", 2))
        eps = float(case.params.get("eps", 0.5))
        profile = distance_profile(ex.graph, sub)
        for d in sorted(profile):
            _, _, max_mult, _ = profile[d]
            bound = theorem7_distortion_bound(d, order, eps)
            if max_mult > bound + 1e-9:
                return (
                    f"stage bound violated at distance {d}: "
                    f"max stretch {max_mult:.3f} > {bound:.3f} "
                    f"(o={order}, eps={eps})"
                )
        return None
    alpha, beta = protocol_stretch_budget(
        case.protocol, ex.graph.n, **case.params
    )
    ok, worst = verify_spanner_guarantee(ex.graph, sub, alpha, beta)
    if not ok:
        assert worst is not None
        u, v, dg, ds = worst
        return (
            f"stretch bound ({alpha:.2f}, {beta:.1f}) violated: "
            f"pair ({u}, {v}) host distance {dg}, spanner distance {ds}"
        )
    return None


def oracle_connectivity(ex: CaseExecution) -> Optional[str]:
    case = ex.case
    if case.protocol != "survey":
        if not verify_connectivity(ex.graph, ex.spanner_subgraph()):
            return "spanner does not preserve host connectivity"
        return None
    known = ex.clean().known
    assert known is not None
    radius = int(case.params.get("radius", 2))
    for v in sorted(ex.graph.vertices()):
        dist = bfs_distances(ex.graph, v, cutoff=radius - 1)
        got = known.get(v, frozenset())
        for u in sorted(dist):
            for w in sorted(ex.graph.neighbors(u)):
                if w in dist and (min(u, w), max(u, w)) not in got:
                    return (
                        f"survey known[{v}] misses edge ({u}, {w}) with "
                        f"both endpoints within {radius - 1} hops"
                    )
    return None


def oracle_determinism(ex: CaseExecution) -> Optional[str]:
    first, second = ex.clean(), ex.second()
    if first.edges != second.edges or first.known != second.known:
        return "same seed produced different outputs across two runs"
    if first.trace != second.trace:
        return "same seed produced different traces across two runs"
    return None


def oracle_fault_equivalence(ex: CaseExecution) -> Optional[str]:
    faulty = ex.faulty()
    if faulty is None:
        return None
    clean = ex.clean()
    if clean.edges != faulty.edges or clean.known != faulty.known:
        plan = ex.case.fault
        return (
            "reliable run under faults diverged from the clean run "
            f"(fault spec {plan})"
        )
    return None


def oracle_differential(ex: CaseExecution) -> Optional[str]:
    case = ex.case
    ref = ex.reference()
    if ref is None:
        return None
    dist = ex.clean()
    assert dist.edges is not None
    if case.protocol == "skeleton":
        seq_counts = ref.metadata.get("cluster_counts")
        dist_counts = dist.metadata.get("cluster_counts")
        if seq_counts != dist_counts:
            return (
                "cluster evolution diverged from sequential reference "
                f"under shared PRF: {seq_counts} != {dist_counts}"
            )
        # The exact differential signal is the cluster-count equality
        # above.  Identical clustering still allows different edge
        # choices (per-cluster-pair duplication, cap-limited candidate
        # views), with observed divergence up to ~22% on dense small
        # hosts — the size band is a sanity envelope, not an equality.
        band = max(10.0, 0.35 * max(ref.size, dist.size))
        if abs(ref.size - dist.size) > band:
            return (
                f"skeleton sizes diverged: sequential {ref.size}, "
                f"distributed {dist.size}"
            )
        return None
    if case.protocol == "fibonacci":
        if abs(ref.size - dist.size) > max(4, 0.1 * ref.size):
            return (
                f"fibonacci sizes diverged under shared levels: "
                f"sequential {ref.size}, distributed {dist.size}"
            )
        return None
    if case.protocol == "deterministic":
        # No randomness anywhere: the sequential reference reproduces
        # the exact edge set and per-superphase telemetry.
        ref_edges = frozenset(ref.edges)
        if ref_edges != dist.edges:
            missing = sorted(ref_edges - dist.edges)[:5]
            extra = sorted(dist.edges - ref_edges)[:5]
            return (
                "deterministic edge sets diverged: sequential has "
                f"{ref.size}, distributed {dist.size} "
                f"(missing={missing}, extra={extra})"
            )
        for key in (
            "superphases",
            "cluster_counts",
            "ruling_iterations",
            "superphase_tallies",
        ):
            if ref.metadata.get(key) != dist.metadata.get(key):
                return (
                    f"deterministic telemetry diverged on {key!r}: "
                    f"sequential {ref.metadata.get(key)}, "
                    f"distributed {dist.metadata.get(key)}"
                )
        return None
    # baswana_sen / additive: independent randomness — hold the
    # distributed size to a band around the sequential reference.
    band = max(16.0, 1.0 * max(ref.size, dist.size))
    if abs(ref.size - dist.size) > band:
        return (
            f"{case.protocol} sizes implausibly far apart: "
            f"sequential {ref.size}, distributed {dist.size}"
        )
    return None


def oracle_rand_vs_det(ex: CaseExecution) -> Optional[str]:
    """Head-to-head on the same host: deterministic vs randomized.

    Deterministic cases only.  Runs the randomized Section 2 skeleton
    (:func:`~repro.distributed.skeleton_protocol.distributed_skeleton`)
    on the identical host graph with the same sparsity parameter ``D``
    and the case's protocol seed, then holds *both* constructions to
    their own analytic size budgets
    (:func:`~repro.analysis.theory.protocol_size_budget`) and to host
    connectivity.  The randomized side keeps the Lemma 6 expected-size
    caveat (zero sampled centers exempts the per-instance budget).
    """
    case = ex.case
    if case.protocol != "deterministic":
        return None
    from repro.distributed.skeleton_protocol import distributed_skeleton

    D = int(case.params.get("D", 4))
    det = ex.clean()
    assert det.edges is not None
    # Lemma 1 needs D >= 4 on the randomized side; the deterministic
    # protocol is meaningful from D >= 1, so clamp the comparison run.
    rand_D = max(4, D)
    rand = distributed_skeleton(
        ex.graph, D=rand_D, eps=0.5, seed=case.protocol_seed
    )
    rand_sub = ex.graph.edge_subgraph(tuple(sorted(rand.edges)))
    if not verify_connectivity(ex.graph, rand_sub):
        return (
            "randomized skeleton lost host connectivity on the shared "
            f"host (n={ex.graph.n}, D={rand_D}, "
            f"seed={case.protocol_seed})"
        )
    det_budget = protocol_size_budget("deterministic", ex.graph.n, D=D)
    if det.size > math.ceil(det_budget):
        return (
            f"deterministic size {det.size} exceeds its budget "
            f"{det_budget:.1f} on the shared host (n={ex.graph.n}, D={D})"
        )
    counts = rand.metadata.get("cluster_counts")
    sampled_nothing = (
        isinstance(counts, list) and counts and counts[0] == 0
    )
    rand_budget = protocol_size_budget(
        "skeleton", ex.graph.n, D=rand_D, eps=0.5
    )
    if not sampled_nothing and len(rand.edges) > math.ceil(rand_budget):
        return (
            f"randomized size {len(rand.edges)} exceeds its budget "
            f"{rand_budget:.1f} on the shared host (deterministic "
            f"managed {det.size}; n={ex.graph.n}, D={rand_D})"
        )
    return None


_ORACLES: Dict[str, Callable[[CaseExecution], Optional[str]]] = {
    "subgraph": oracle_subgraph,
    "size": oracle_size,
    "stretch": oracle_stretch,
    "connectivity": oracle_connectivity,
    "determinism": oracle_determinism,
    "fault_equivalence": oracle_fault_equivalence,
    "differential": oracle_differential,
    "rand_vs_det": oracle_rand_vs_det,
}


def check_case(
    case: FuzzCase,
    oracles: Optional[Tuple[str, ...]] = None,
    size_slack: float = 1.0,
) -> List[OracleFailure]:
    """Run the battery (or a named subset) against one case.

    Returns the list of failures, empty when the case passes.  A crash
    inside the protocol itself is reported as a ``crash`` pseudo-oracle
    failure rather than propagated — a fuzzer must survive its finds.
    Churn cases route to the rebuild-equivalence battery
    (:mod:`repro.churn.oracle`) instead of the protocol oracles.
    """
    if case.protocol == "churn":
        return _check_churn_case(case, oracles, size_slack)
    wanted = oracles if oracles is not None else ORACLE_NAMES
    for name in wanted:
        if name not in _ORACLES:
            raise ValueError(
                f"unknown oracle {name!r}; choose from {ORACLE_NAMES}"
            )
    ex = CaseExecution(case)
    failures: List[OracleFailure] = []
    for name in wanted:
        try:
            if name == "size":
                message = oracle_size(ex, size_slack=size_slack)
            else:
                message = _ORACLES[name](ex)
        except Exception as exc:  # noqa: BLE001 — fuzzer must not die
            # Keep the full traceback: a shrunk reproducer whose whole
            # failure message is "KeyError: 5" is undebuggable.
            failures.append(
                OracleFailure(
                    "crash",
                    f"{name}: {type(exc).__name__}: {exc}\n"
                    f"{traceback.format_exc()}",
                )
            )
            break
        if message is not None:
            failures.append(OracleFailure(name, message))
    return failures


def _check_churn_case(
    case: FuzzCase,
    oracles: Optional[Tuple[str, ...]],
    size_slack: float,
) -> List[OracleFailure]:
    """Run the churn rebuild-equivalence battery against one case.

    Materializes the case first (freezing host *and* update stream), so
    recipe cases and shrunk explicit-event cases check identically.
    """
    wanted = oracles if oracles is not None else CHURN_ORACLE_NAMES
    for name in wanted:
        if name not in CHURN_ORACLE_NAMES:
            raise ValueError(
                f"unknown churn oracle {name!r}; "
                f"choose from {CHURN_ORACLE_NAMES}"
            )
    if case.churn is None:
        return [
            OracleFailure(
                "crash", "churn case without a churn specification"
            )
        ]
    try:
        mat = materialize(case)
        assert mat.churn is not None
        graph = build_case_graph(mat)
        batches = events_from_json(mat.churn["events"])
        k = int(mat.params.get("k", 2))
        failure = check_churn(
            graph,
            k,
            batches,
            size_slack=size_slack,
            oracles=wanted,
            grade_seed=mat.protocol_seed,
        )
    except Exception as exc:  # noqa: BLE001 — fuzzer must not die
        # Full traceback for the same reason as check_case above.
        return [
            OracleFailure(
                "crash",
                f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
            )
        ]
    if failure is None:
        return []
    return [OracleFailure(failure[0], failure[1])]


def run_battery(
    case: FuzzCase,
    oracles: Optional[Tuple[str, ...]] = None,
    size_slack: float = 1.0,
) -> Optional[OracleFailure]:
    """The battery's first failure (or ``None``) — what the shrinker
    re-checks at every candidate."""
    failures = check_case(case, oracles=oracles, size_slack=size_slack)
    return failures[0] if failures else None
