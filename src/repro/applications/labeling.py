"""Distance labeling schemes (intro application [26, 38]).

A distance labeling assigns every vertex a short label such that the
distance between u and v can be approximated from label(u) and label(v)
*alone* — no access to the graph, the defining property of the scheme
(Gavoille–Peleg–Pérennes–Raz [26]).  The Thorup–Zwick structure is
exactly such a scheme: label(v) = (pivots of v with their distances,
bunch of v with its distances); the bouncing query walks only the two
labels.  Expected label size: O(k n^{1/k}) entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.applications.distance_oracle import DistanceOracle
from repro.graphs.graph import Graph
from repro.util.rng import SeedLike

INF = float("inf")


@dataclass
class DistanceLabel:
    """One vertex's label: per-level pivots and the witness bunch."""

    vertex: int
    #: pivots[i] = (p_i(v), delta(v, A_i)); None when A_i is unreachable.
    pivots: List[Optional[Tuple[int, float]]]
    #: bunch entries: witness -> exact distance.
    bunch: Dict[int, float]

    @property
    def size_words(self) -> int:
        """Label size in O(log n)-bit words (2 per entry)."""
        return 2 * len(self.bunch) + 2 * sum(
            1 for p in self.pivots if p is not None
        )


class DistanceLabeling:
    """A (2k-1)-approximate distance labeling of ``graph``."""

    def __init__(self, graph: Graph, k: int, seed: SeedLike = None):
        oracle = DistanceOracle(graph, k, seed=seed)
        self.k = k
        self._labels = self._labels_from_oracle(oracle)

    @classmethod
    def from_oracle(cls, oracle: DistanceOracle) -> "DistanceLabeling":
        """Project an existing oracle's structure into labels.

        Labels are a pure function of the oracle state (pivots plus
        bunches), so an artifact bundle stores the oracle once and the
        serving tier derives the labeling with this hook — byte-for-
        byte the same labels a fresh construction would produce.
        """
        labeling = cls.__new__(cls)
        labeling.k = oracle.k
        labeling._labels = cls._labels_from_oracle(oracle)
        return labeling

    @staticmethod
    def _labels_from_oracle(
        oracle: DistanceOracle,
    ) -> Dict[int, DistanceLabel]:
        labels: Dict[int, DistanceLabel] = {}
        k = oracle.k
        for v in oracle.graph.vertices():
            pivots: List[Optional[Tuple[int, float]]] = []
            for i in range(k):
                pivot = oracle.pivot[i].get(v)
                if pivot is None:
                    pivots.append(None)
                else:
                    pivots.append((pivot, oracle.dist_to_level[i][v]))
            labels[v] = DistanceLabel(
                vertex=v, pivots=pivots, bunch=dict(oracle.bunch[v])
            )
        return labels

    def label(self, v: int) -> DistanceLabel:
        return self._labels[v]

    def vertices(self) -> List[int]:
        """The labeled vertex set, sorted."""
        return sorted(self._labels)

    @property
    def max_label_words(self) -> int:
        return max(
            (label.size_words for label in self._labels.values()),
            default=0,
        )

    @property
    def total_words(self) -> int:
        return sum(label.size_words for label in self._labels.values())

    @staticmethod
    def query(label_u: DistanceLabel, label_v: DistanceLabel) -> float:
        """Approximate delta(u, v) from the two labels alone.

        The same bouncing walk as the oracle, but every lookup hits one
        of the two labels — the decentralized property.  The pair is
        canonicalized by vertex id exactly like
        :meth:`DistanceOracle.query`, so label queries agree with
        oracle queries on every pair and are symmetric.
        """
        if label_u.vertex == label_v.vertex:
            return 0
        if label_u.vertex > label_v.vertex:
            label_u, label_v = label_v, label_u
        a, b = label_u, label_v
        w = a.vertex
        i = 0
        k = len(a.pivots)
        while w not in b.bunch:
            i += 1
            if i >= k:
                return INF
            a, b = b, a
            pivot = a.pivots[i]
            if pivot is None:
                return INF
            w = pivot[0]
        if i == 0:
            return b.bunch[w]  # w == a.vertex, delta(a, w) = 0
        return a.pivots[i][1] + b.bunch[w]
