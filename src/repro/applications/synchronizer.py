"""Synchronizer overlay accounting.

"Many applications in distributed computation use ... a sparse substitute
for the underlying communications network" — the canonical one being
synchronizers [30], whose every pulse floods messages across the overlay.
This module quantifies the trade a spanner overlay buys: per-pulse message
cost drops from 2m to 2|S|, while pulse latency inflates by at most the
spanner's stretch.

The flood is executed on the real message-passing simulator, so the
numbers are measured, not modeled.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distributed.simulator import Api, Network, NodeProgram
from repro.graphs.graph import Graph
from repro.spanner.spanner import Spanner


class _FloodProgram(NodeProgram):
    """Forward the wave token on first arrival, then halt."""

    def __init__(self, node_id: int, is_root: bool) -> None:
        self.node_id = node_id
        self.reached_at = 0 if is_root else None
        self._is_root = is_root

    def setup(self, api: Api) -> None:
        if self._is_root:
            api.broadcast(1)

    def on_round(self, api, round_index, inbox) -> None:
        if self.reached_at is None and inbox:
            self.reached_at = round_index
            api.broadcast(1)
        elif self.reached_at is not None and round_index > self.reached_at:
            api.halt()


@dataclass
class FloodCost:
    """Measured cost of one flood pulse."""

    completion_rounds: int
    messages: int
    reached: int


@dataclass
class OverlayReport:
    """Full-graph vs spanner-overlay flood comparison."""

    full: FloodCost
    overlay: FloodCost
    spanner_size: int
    host_edges: int

    @property
    def message_savings(self) -> float:
        return self.full.messages / max(1, self.overlay.messages)

    @property
    def latency_penalty(self) -> float:
        return self.overlay.completion_rounds / max(
            1, self.full.completion_rounds
        )


def flood_cost(graph: Graph, root: int) -> FloodCost:
    """Flood a pulse from ``root``; measured rounds/messages/coverage."""
    programs = {
        v: _FloodProgram(v, v == root) for v in graph.vertices()
    }
    network = Network(graph, programs=programs)
    stats = network.run(max_rounds=max(4, 4 * graph.n))
    reached = [
        p.reached_at for p in programs.values() if p.reached_at is not None
    ]
    return FloodCost(
        completion_rounds=max(reached) if reached else 0,
        messages=stats.messages,
        reached=len(reached),
    )


def overlay_report(
    graph: Graph, spanner: Spanner, root: int = None
) -> OverlayReport:
    """Compare flooding on the host graph vs on the spanner overlay."""
    if root is None:
        root = min(graph.vertices())
    full = flood_cost(graph, root)
    overlay = flood_cost(spanner.subgraph(), root)
    return OverlayReport(
        full=full,
        overlay=overlay,
        spanner_size=spanner.size,
        host_edges=graph.m,
    )
