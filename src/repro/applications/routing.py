"""Compact routing over spanners via interval tree-routing.

The introduction lists "compact routing tables with small stretch" among
the applications; the conclusion asks for routing schemes whose
space/stretch trade-offs follow the best spanners.  This module provides
the classical building block: *interval routing* on a spanning tree of a
spanner.  Every vertex stores O(1) words per tree neighbor (a DFS
interval), next-hop decisions are O(deg) lookups, and the route taken is
the unique tree path — so the scheme's stretch over the original graph is
exactly the tree's stretch, which the spanner machinery lets us measure.

``spanner_router`` picks a BFS tree *inside* a given spanner, rooted at a
center of the spanner subgraph, yielding a router whose table size is
independent of the spanner used while its stretch reflects the spanner's
quality.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.graphs.graph import Graph
from repro.graphs.properties import bfs_distances, bfs_parents
from repro.spanner.spanner import Spanner


class TreeRouter:
    """Interval routing on a spanning tree (one tree per component).

    Labels: every vertex gets a DFS entry/exit interval; the next hop
    toward ``target`` is the child whose interval contains the target's
    entry time, else the parent.  Tables are O(1) words per incident tree
    edge — "compact" in the routing-scheme sense.
    """

    def __init__(self, tree: Graph) -> None:
        self.tree = tree
        self.parent: Dict[int, Optional[int]] = {}
        self.interval: Dict[int, Tuple[int, int]] = {}
        self._children: Dict[int, List[int]] = {
            v: [] for v in tree.vertices()
        }
        clock = 0
        for root in sorted(tree.vertices()):
            if root in self.interval:
                continue
            clock = self._dfs_label(root, clock)

    def _dfs_label(self, root: int, clock: int) -> int:
        """Iterative DFS assigning [entry, exit] intervals."""
        self.parent[root] = None
        stack = [(root, iter(sorted(self.tree.neighbors(root))))]
        self.interval[root] = (clock, clock)
        clock += 1
        while stack:
            v, nbrs = stack[-1]
            advanced = False
            for u in nbrs:
                if u in self.interval:
                    continue
                self.parent[u] = v
                self._children[v].append(u)
                self.interval[u] = (clock, clock)
                clock += 1
                stack.append((u, iter(sorted(self.tree.neighbors(u)))))
                advanced = True
                break
            if not advanced:
                stack.pop()
                entry, _ = self.interval[v]
                self.interval[v] = (entry, clock - 1)
        return clock

    def next_hop(self, current: int, target: int) -> Optional[int]:
        """The neighbor to forward to; None if arrived or unreachable."""
        if current == target:
            return None
        t_entry = self.interval.get(target)
        if t_entry is None:
            return None
        t_entry = t_entry[0]
        for child in self._children[current]:
            lo, hi = self.interval[child]
            if lo <= t_entry <= hi:
                return child
        parent = self.parent[current]
        if parent is None:
            # Target outside this subtree and no parent: other component.
            lo, hi = self.interval[current]
            if not (lo <= t_entry <= hi):
                return None
            return None
        return parent

    def route(self, source: int, target: int) -> Optional[List[int]]:
        """Full route (vertex list); None when disconnected."""
        path = [source]
        current = source
        for _ in range(len(self.interval) + 1):
            if current == target:
                return path
            hop = self.next_hop(current, target)
            if hop is None:
                return None
            path.append(hop)
            current = hop
        return None  # pragma: no cover - cycle guard

    def table_words(self, v: int) -> int:
        """Routing-table size at ``v`` in words (2 per child + parent)."""
        return 2 * len(self._children[v]) + (
            1 if self.parent[v] is not None else 0
        ) + 2


def spanner_router(spanner: Spanner) -> TreeRouter:
    """Build a TreeRouter over a BFS tree of the spanner.

    Each component's tree is rooted at an (approximate) center — the
    farthest-point double-sweep midpoint — to halve worst-case routes.
    """
    sub = spanner.subgraph()
    tree = Graph(vertices=sub.vertices())
    seen = set()
    for start in sorted(sub.vertices()):
        if start in seen:
            continue
        # Double sweep to find a low-eccentricity root.
        dist = bfs_distances(sub, start)
        far = max(dist, key=lambda u: dist[u])
        dist2, parent2 = bfs_parents(sub, far)
        other = max(dist2, key=lambda u: dist2[u])
        # Midpoint of the far-other path approximates the center.
        mid = other
        walk = dist2[other] // 2
        for _ in range(walk):
            mid = parent2[mid] if parent2[mid] is not None else mid
        _, parent = bfs_parents(sub, mid)
        seen.update(parent)
        for v, par in parent.items():
            if par is not None:
                tree.add_edge(v, par)
    return TreeRouter(tree)
