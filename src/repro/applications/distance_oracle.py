"""Thorup–Zwick approximate distance oracles [38].

The conclusion asks whether distance-oracle space/stretch trade-offs can
match the best spanners'; this module provides the classical baseline the
question is measured against: for any integer k >= 1, expected space
O(k n^{1+1/k}) and query stretch at most 2k - 1 in O(k) time.

Construction (unweighted specialization):

* sample A_0 = V ⊇ A_1 ⊇ ... ⊇ A_{k-1} (⊇ A_k = ∅), each level keeping
  vertices with probability n^{-1/k};
* for every v store the *pivots* p_i(v) (nearest A_i vertex, min-id ties)
  and the *bunch* B(v) = ∪_i { w ∈ A_i \\ A_{i+1} : δ(v,w) < δ(v,A_{i+1}) }
  with exact distances;
* query(u, v) walks the levels, bouncing between u and v, until the
  current pivot w = p_i(u) lands in B(v); then it returns
  δ(u, w) + δ(w, v) <= (2i + 1) δ(u, v).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set

from repro.graphs.graph import Graph
from repro.graphs.properties import multi_source_bfs
from repro.util.rng import SeedLike, ensure_rng

INF = float("inf")


class DistanceOracle:
    """A (2k-1)-approximate distance oracle for an unweighted graph."""

    def __init__(
        self, graph: Graph, k: int, seed: SeedLike = None
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.graph = graph
        self.k = k
        rng = ensure_rng(seed)
        n = graph.n

        # --- level sampling -----------------------------------------
        levels: List[Set[int]] = [set(graph.vertices())]
        keep_p = n ** (-1.0 / k) if n > 1 else 0.0
        for _ in range(1, k):
            levels.append(
                {v for v in sorted(levels[-1]) if rng.random() < keep_p}
            )
        levels.append(set())  # A_k = empty
        self.levels = levels

        # --- pivots and witness distances ---------------------------
        # pivot[i][v] = p_i(v); dist_to_level[i][v] = delta(v, A_i);
        # pivot_parent[i][v] = next hop from v toward p_i(v) (the BFS
        # forest pointer the compact-routing scheme follows).
        self.pivot: List[Dict[int, int]] = [
            {v: v for v in graph.vertices()}
        ]
        self.dist_to_level: List[Dict[int, float]] = [
            {v: 0 for v in graph.vertices()}
        ]
        self.pivot_parent: List[Dict[int, Optional[int]]] = [
            {v: None for v in graph.vertices()}
        ]
        for i in range(1, k):
            dist, root, parent = multi_source_bfs(graph, levels[i])
            self.pivot.append(root)
            self.dist_to_level.append(dict(dist))
            self.pivot_parent.append(parent)
        self.dist_to_level.append({})  # delta(., A_k) = infinity

        # --- bunches -------------------------------------------------
        # w in B(v) iff v in C(w) = {v : delta(w, v) < delta(v, A_{i+1})}
        # for w in A_i \ A_{i+1}.  Grow each cluster by a pruned BFS,
        # keeping the cluster's shortest-path tree for compact routing.
        self.bunch: Dict[int, Dict[int, int]] = {
            v: {} for v in graph.vertices()
        }
        #: cluster_tree[w][v] = v's parent toward w within C(w).
        self.cluster_tree: Dict[int, Dict[int, Optional[int]]] = {}
        for i in range(k):
            cutoff = self.dist_to_level[i + 1] if i + 1 < len(
                self.dist_to_level
            ) else {}
            for w in sorted(levels[i] - levels[i + 1]):
                self._grow_cluster(w, cutoff)

    def _grow_cluster(self, w: int, cutoff: Dict[int, float]) -> None:
        """Pruned BFS from w: only enter v while dist < delta(v, A_{i+1})."""
        dist = {w: 0}
        parent: Dict[int, Optional[int]] = {w: None}
        queue = deque([w])
        while queue:
            x = queue.popleft()
            d = dist[x] + 1
            for y in self.graph.neighbors(x):
                if y in dist:
                    continue
                if d < cutoff.get(y, INF):
                    dist[y] = d
                    parent[y] = x
                    queue.append(y)
        for v, d in dist.items():
            self.bunch[v][w] = d
        self.cluster_tree[w] = parent

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, u: int, v: int) -> float:
        """Approximate distance: at most (2k - 1) * delta(u, v).

        The classical bouncing walk: while p_i(u) is outside B(v), swap
        the endpoints and climb a level.  Termination is guaranteed for
        connected pairs because top-level clusters are unbounded.
        """
        if u == v:
            return 0
        w, i = u, 0
        while w not in self.bunch[v]:
            i += 1
            if i >= self.k:
                return INF  # different components (or unreachable A_i)
            u, v = v, u
            w = self.pivot[i].get(u)
            if w is None:
                return INF
        return self.dist_to_level[i].get(u, INF) + self.bunch[v][w]

    def dist_to_level_of(self, u: int, i: int) -> float:
        """delta(u, A_i) (infinity when A_i is unreachable from u)."""
        return self.dist_to_level[i].get(u, INF)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Total stored (vertex, witness) distance entries."""
        return sum(len(b) for b in self.bunch.values())

    def expected_size_bound(self) -> float:
        """The k n^{1 + 1/k} space bound (expected, without constants)."""
        n = max(2, self.graph.n)
        return self.k * n ** (1 + 1 / self.k)

    def __repr__(self) -> str:
        return (
            f"DistanceOracle(k={self.k}, n={self.graph.n}, "
            f"size={self.size})"
        )
