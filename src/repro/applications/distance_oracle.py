"""Thorup–Zwick approximate distance oracles [38].

The conclusion asks whether distance-oracle space/stretch trade-offs can
match the best spanners'; this module provides the classical baseline the
question is measured against: for any integer k >= 1, expected space
O(k n^{1+1/k}) and query stretch at most 2k - 1 in O(k) time.

Construction (unweighted specialization):

* sample A_0 = V ⊇ A_1 ⊇ ... ⊇ A_{k-1} (⊇ A_k = ∅), each level keeping
  vertices with probability n^{-1/k};
* for every v store the *pivots* p_i(v) (nearest A_i vertex, min-id ties)
  and the *bunch* B(v) = ∪_i { w ∈ A_i \\ A_{i+1} : δ(v,w) < δ(v,A_{i+1}) }
  with exact distances;
* query(u, v) walks the levels, bouncing between u and v, until the
  current pivot w = p_i(u) lands in B(v); then it returns
  δ(u, w) + δ(w, v) <= (2i + 1) δ(u, v).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Set

from repro.graphs.graph import Graph
from repro.graphs.properties import multi_source_bfs
from repro.util.rng import SeedLike, ensure_rng

INF = float("inf")


class DistanceOracle:
    """A (2k-1)-approximate distance oracle for an unweighted graph."""

    def __init__(
        self, graph: Graph, k: int, seed: SeedLike = None
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.graph = graph
        self.k = k
        rng = ensure_rng(seed)
        n = graph.n

        # --- level sampling -----------------------------------------
        levels: List[Set[int]] = [set(graph.vertices())]
        keep_p = n ** (-1.0 / k) if n > 1 else 0.0
        for _ in range(1, k):
            levels.append(
                {v for v in sorted(levels[-1]) if rng.random() < keep_p}
            )
        levels.append(set())  # A_k = empty
        self.levels = levels

        # --- pivots and witness distances ---------------------------
        # pivot[i][v] = p_i(v); dist_to_level[i][v] = delta(v, A_i);
        # pivot_parent[i][v] = next hop from v toward p_i(v) (the BFS
        # forest pointer the compact-routing scheme follows).
        self.pivot: List[Dict[int, int]] = [
            {v: v for v in graph.vertices()}
        ]
        self.dist_to_level: List[Dict[int, float]] = [
            {v: 0 for v in graph.vertices()}
        ]
        self.pivot_parent: List[Dict[int, Optional[int]]] = [
            {v: None for v in graph.vertices()}
        ]
        for i in range(1, k):
            dist, root, parent = multi_source_bfs(graph, levels[i])
            self.pivot.append(root)
            self.dist_to_level.append(dict(dist))
            self.pivot_parent.append(parent)
        self.dist_to_level.append({})  # delta(., A_k) = infinity

        # --- bunches -------------------------------------------------
        # w in B(v) iff v in C(w) = {v : delta(w, v) < delta(v, A_{i+1})}
        # for w in A_i \ A_{i+1}.  Grow each cluster by a pruned BFS,
        # keeping the cluster's shortest-path tree for compact routing.
        self.bunch: Dict[int, Dict[int, int]] = {
            v: {} for v in graph.vertices()
        }
        #: cluster_tree[w][v] = v's parent toward w within C(w).
        self.cluster_tree: Dict[int, Dict[int, Optional[int]]] = {}
        for i in range(k):
            cutoff = self.dist_to_level[i + 1] if i + 1 < len(
                self.dist_to_level
            ) else {}
            for w in sorted(levels[i] - levels[i + 1]):
                self._grow_cluster(w, cutoff)

    def _grow_cluster(self, w: int, cutoff: Dict[int, float]) -> None:
        """Pruned BFS from w: only enter v while dist < delta(v, A_{i+1})."""
        dist = {w: 0}
        parent: Dict[int, Optional[int]] = {w: None}
        queue = deque([w])
        while queue:
            x = queue.popleft()
            d = dist[x] + 1
            for y in self.graph.neighbors(x):
                if y in dist:
                    continue
                if d < cutoff.get(y, INF):
                    dist[y] = d
                    parent[y] = x
                    queue.append(y)
        for v, d in dist.items():
            self.bunch[v][w] = d
        self.cluster_tree[w] = parent

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, u: int, v: int) -> float:
        """Approximate distance: at most (2k - 1) * delta(u, v).

        The classical bouncing walk: while p_i(u) is outside B(v), swap
        the endpoints and climb a level.  Termination is guaranteed for
        connected pairs because top-level clusters are unbounded.

        The raw walk is *not* symmetric (its first probe asks whether u
        lands in B(v), and bunch membership is one-directional), so the
        pair is canonicalized up front: ``query(u, v) == query(v, u)``
        always, which is what lets the serving tier cache answers under
        the unordered pair key.  Both orientations satisfy the same
        stretch bound, so canonicalizing loses nothing.
        """
        if u == v:
            return 0
        if u > v:
            u, v = v, u
        w, i = u, 0
        while w not in self.bunch[v]:
            i += 1
            if i >= self.k:
                return INF  # different components (or unreachable A_i)
            u, v = v, u
            w = self.pivot[i].get(u)
            if w is None:
                return INF
        return self.dist_to_level[i].get(u, INF) + self.bunch[v][w]

    def dist_to_level_of(self, u: int, i: int) -> float:
        """delta(u, A_i) (infinity when A_i is unreachable from u)."""
        return self.dist_to_level[i].get(u, INF)

    # ------------------------------------------------------------------
    # Serialization (repro.serving.artifact hooks)
    # ------------------------------------------------------------------
    def to_state(self) -> Dict[str, Any]:
        """The oracle's complete structure as canonical plain data.

        Every mapping is rendered as a key-sorted pair list, so two
        oracles built from the same seed serialize to *byte-identical*
        JSON — the invariant the artifact bundle's checksum (and the
        service tier's build→save→load round-trip test) relies on.
        All stored distances are unweighted BFS distances, hence ints;
        unreachable entries are simply absent.
        """
        return {
            "k": self.k,
            "levels": [sorted(level) for level in self.levels],
            "pivot": [sorted(p.items()) for p in self.pivot],
            "dist_to_level": [
                sorted(d.items()) for d in self.dist_to_level
            ],
            "pivot_parent": [
                sorted(p.items()) for p in self.pivot_parent
            ],
            "bunch": [
                [v, sorted(b.items())]
                for v, b in sorted(self.bunch.items())
            ],
            "cluster_tree": [
                [w, sorted(p.items())]
                for w, p in sorted(self.cluster_tree.items())
            ],
        }

    @classmethod
    def from_state(
        cls, graph: Graph, state: Dict[str, Any]
    ) -> "DistanceOracle":
        """Rebuild an oracle from :meth:`to_state` output (no BFS run).

        Accepts pair lists as either tuples or lists (the shape JSON
        deserialization produces), so ``from_state(g, to_state())`` and
        a JSON round trip reconstruct the identical structure.
        """

        def _pairs(items: Sequence[Sequence[Any]]) -> Dict[int, int]:
            return {int(a): int(b) for a, b in items}

        def _opt_pairs(
            items: Sequence[Sequence[Any]],
        ) -> Dict[int, Optional[int]]:
            return {
                int(a): (None if b is None else int(b)) for a, b in items
            }

        oracle = cls.__new__(cls)
        oracle.graph = graph
        oracle.k = int(state["k"])
        oracle.levels = [{int(v) for v in lvl} for lvl in state["levels"]]
        oracle.pivot = [_pairs(p) for p in state["pivot"]]
        oracle.dist_to_level = [
            {int(v): int(d) for v, d in pairs}
            for pairs in state["dist_to_level"]
        ]
        oracle.pivot_parent = [
            _opt_pairs(p) for p in state["pivot_parent"]
        ]
        oracle.bunch = {
            int(v): _pairs(pairs) for v, pairs in state["bunch"]
        }
        oracle.cluster_tree = {
            int(w): _opt_pairs(pairs)
            for w, pairs in state["cluster_tree"]
        }
        return oracle

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Total stored (vertex, witness) distance entries."""
        return sum(len(b) for b in self.bunch.values())

    def expected_size_bound(self) -> float:
        """The k n^{1 + 1/k} space bound (expected, without constants)."""
        n = max(2, self.graph.n)
        return self.k * n ** (1 + 1 / self.k)

    def __repr__(self) -> str:
        return (
            f"DistanceOracle(k={self.k}, n={self.graph.n}, "
            f"size={self.size})"
        )
