"""Applications built on spanners — the paper's motivating use cases.

The introduction motivates spanners via synchronizers, compact routing
tables and approximate shortest paths; the conclusion singles out
approximate distance oracles and compact routing as "perhaps the most
interesting applications".  This package implements them:

* :mod:`repro.applications.distance_oracle` — the Thorup–Zwick
  approximate distance oracle [38];
* :mod:`repro.applications.routing` — compact interval tree routing over
  a spanner;
* :mod:`repro.applications.synchronizer` — overlay cost accounting for
  synchronizer-style flooding.
"""

from repro.applications.compact_routing import CompactRouter
from repro.applications.distance_oracle import DistanceOracle
from repro.applications.labeling import DistanceLabel, DistanceLabeling
from repro.applications.routing import TreeRouter, spanner_router
from repro.applications.synchronizer import OverlayReport, overlay_report

__all__ = [
    "CompactRouter",
    "DistanceOracle",
    "DistanceLabel",
    "DistanceLabeling",
    "TreeRouter",
    "spanner_router",
    "OverlayReport",
    "overlay_report",
]
