"""Thorup–Zwick compact routing (conclusion application [37]).

Routing with small tables and bounded stretch — the application the
conclusion measures against spanners ("compact routing tables that
guarantee approximately shortest routes").  The scheme rides the oracle
structure:

* every vertex stores, per level i, the next hop toward its pivot
  p_i(v) (the A_i BFS-forest pointer), and, per bunch witness w, its
  parent inside the cluster tree of C(w) — O(k + k n^{1/k}) entries;
* a packet's header carries the target's distance label;
* delivery: the bouncing walk over (source label, header) names a
  witness w with v in C(w); the packet climbs the A_i forest from u to
  w (every vertex on that forest path shares the pivot, so local
  pointers suffice), then descends C(w)'s shortest-path tree to v.

Route length = delta(u, w) + delta_{C(w)}(w, v) — exactly the oracle
estimate, hence stretch at most 2k - 1.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.applications.distance_oracle import DistanceOracle
from repro.graphs.graph import Graph
from repro.util.rng import SeedLike

INF = float("inf")


class CompactRouter:
    """A (2k-1)-stretch compact routing scheme over ``graph``.

    Pass ``oracle`` to ride an already-built (or artifact-loaded)
    :class:`DistanceOracle` instead of constructing a fresh one — the
    serving tier loads one oracle from disk and derives the router and
    the labeling from it (see :mod:`repro.serving.artifact`).
    """

    def __init__(
        self,
        graph: Graph,
        k: int,
        seed: SeedLike = None,
        oracle: Optional[DistanceOracle] = None,
    ):
        self.graph = graph
        self.k = k
        self.oracle = (
            oracle if oracle is not None
            else DistanceOracle(graph, k, seed=seed)
        )
        # Descend pointers: for each cluster tree, children lists.
        self._children: Dict[int, Dict[int, List[int]]] = {}
        for w, parents in sorted(self.oracle.cluster_tree.items()):
            children: Dict[int, List[int]] = {}
            for v, parent in sorted(parents.items()):
                if parent is not None:
                    children.setdefault(parent, []).append(v)
            self._children[w] = children

    @classmethod
    def from_oracle(cls, oracle: DistanceOracle) -> "CompactRouter":
        """Wrap an existing oracle (no reconstruction, same answers)."""
        return cls(oracle.graph, oracle.k, oracle=oracle)

    # ------------------------------------------------------------------
    def _select_witness(self, u: int, v: int):
        """The bouncing walk: returns (w, swapped) or None.

        ``swapped`` tells whether the roles flipped an odd number of
        times (the climb happens from the current "u" side).
        """
        oracle = self.oracle
        a, b = u, v
        w = a
        i = 0
        swapped = False
        while w not in oracle.bunch[b]:
            i += 1
            if i >= self.k:
                return None
            a, b = b, a
            swapped = not swapped
            w = oracle.pivot[i].get(a)
            if w is None:
                return None
        return w, i, swapped

    def _climb(self, start: int, w: int, level: int) -> Optional[List[int]]:
        """Follow level-``level`` forest pointers from start up to w."""
        path = [start]
        node = start
        for _ in range(self.graph.n + 1):
            if node == w:
                return path
            nxt = self.oracle.pivot_parent[level].get(node)
            if nxt is None:
                return None if node != w else path
            path.append(nxt)
            node = nxt
        return None  # pragma: no cover - cycle guard

    def _descend(self, w: int, target: int) -> Optional[List[int]]:
        """Walk down C(w)'s tree from w to target (parent-chain reversed)."""
        parents = self.oracle.cluster_tree.get(w)
        if parents is None or target not in parents:
            return None
        chain = [target]
        node = target
        while parents[node] is not None:
            node = parents[node]
            chain.append(node)
        if node != w:
            return None  # pragma: no cover - defensive
        chain.reverse()
        return chain

    def route(self, u: int, v: int) -> Optional[List[int]]:
        """The packet's vertex path from u to v (None if disconnected).

        The pair is canonicalized like :meth:`DistanceOracle.query`
        (the u > v route is the u < v route reversed), so the route
        length always equals the oracle estimate for the same pair and
        a serving cache may key routes on the unordered pair.
        """
        if u == v:
            return [u]
        if u > v:
            back = self.route(v, u)
            return None if back is None else back[::-1]
        selected = self._select_witness(u, v)
        if selected is None:
            return None
        w, level, swapped = selected
        climb_from, descend_to = (v, u) if swapped else (u, v)
        up = (
            [climb_from] if w == climb_from
            else self._climb(climb_from, w, level)
        )
        down = self._descend(w, descend_to)
        if up is None or down is None:
            return None
        path = up + down[1:]
        if swapped:
            path.reverse()
        return path

    # ------------------------------------------------------------------
    def table_entries(self, v: int) -> int:
        """Local routing-table size: pivot pointers + bunch tree slots."""
        pivots = sum(
            1 for i in range(self.k)
            if self.oracle.pivot_parent[i].get(v) is not None
        )
        return pivots + len(self.oracle.bunch[v])

    def max_table_entries(self) -> int:
        return max(
            (self.table_entries(v) for v in self.graph.vertices()),
            default=0,
        )

    def verify_route(self, path: List[int]) -> bool:
        """All hops are real edges (test hook)."""
        return all(
            self.graph.has_edge(a, b) for a, b in zip(path, path[1:])
        )
