"""Spanner result objects, stretch evaluation and guarantee verification."""

from repro.spanner.spanner import Spanner
from repro.spanner.stretch import (
    StretchStats,
    distance_profile,
    pair_stretch,
    stretch_statistics,
)
from repro.spanner.verification import (
    INVALID,
    VALID,
    VALID_DENSER,
    DegradationReport,
    classify_outcome,
    repair_connectivity,
    verify_connectivity,
    verify_spanner_guarantee,
    verify_subgraph,
)

__all__ = [
    "DegradationReport",
    "INVALID",
    "Spanner",
    "StretchStats",
    "VALID",
    "VALID_DENSER",
    "classify_outcome",
    "distance_profile",
    "pair_stretch",
    "repair_connectivity",
    "stretch_statistics",
    "verify_connectivity",
    "verify_spanner_guarantee",
    "verify_subgraph",
]
