"""Spanner result objects, stretch evaluation and guarantee verification."""

from repro.spanner.spanner import Spanner
from repro.spanner.stretch import (
    StretchStats,
    distance_profile,
    pair_stretch,
    stretch_statistics,
)
from repro.spanner.verification import (
    verify_connectivity,
    verify_spanner_guarantee,
    verify_subgraph,
)

__all__ = [
    "Spanner",
    "StretchStats",
    "distance_profile",
    "pair_stretch",
    "stretch_statistics",
    "verify_connectivity",
    "verify_spanner_guarantee",
    "verify_subgraph",
]
