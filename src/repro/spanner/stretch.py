"""Stretch measurement: how much a spanner distorts the host metric.

For a host graph G and spanner subgraph S we report, over (sampled) vertex
pairs (u, v) in the same component:

* multiplicative stretch  delta_S(u, v) / delta_G(u, v),
* additive distortion     delta_S(u, v) - delta_G(u, v),

and a *distance profile* (bucketed by delta_G) for the Fibonacci-stage
experiments, where distortion is a function of distance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.graphs.graph import Graph
from repro.graphs.properties import bfs_distances
from repro.util.rng import SeedLike, ensure_rng

INF = float("inf")


@dataclass
class StretchStats:
    """Aggregate stretch over a set of measured pairs."""

    num_pairs: int
    max_multiplicative: float
    mean_multiplicative: float
    max_additive: float
    mean_additive: float
    #: pairs where the spanner disconnects vertices the host connects.
    disconnected_pairs: int
    #: multiplicative-stretch percentiles {50: ..., 90: ..., 99: ...};
    #: empty when percentile collection was off.
    percentiles: Dict[int, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the spanner preserved connectivity on measured pairs."""
        return self.disconnected_pairs == 0

    def __str__(self) -> str:
        return (
            f"pairs={self.num_pairs} mult(max={self.max_multiplicative:.3f}, "
            f"mean={self.mean_multiplicative:.3f}) "
            f"add(max={self.max_additive:.1f}, mean={self.mean_additive:.3f})"
            + (f" DISCONNECTED={self.disconnected_pairs}" if not self.ok else "")
        )


def _pick_sources(
    graph: Graph, num_sources: Optional[int], seed: SeedLike
) -> List[int]:
    vertices = sorted(graph.vertices())
    if num_sources is None or num_sources >= len(vertices):
        return vertices
    rng = ensure_rng(seed)
    return rng.sample(vertices, num_sources)


def stretch_statistics(
    host: Graph,
    spanner_graph: Graph,
    num_sources: Optional[int] = None,
    seed: SeedLike = None,
    sources: Optional[Iterable[int]] = None,
    percentiles: Iterable[int] = (),
) -> StretchStats:
    """Measure stretch from BFS at every (or ``num_sources`` sampled) source.

    Each source contributes exact distances to *all* reachable targets, so
    sampling sources still measures n-1 pairs per source.  ``sources``
    overrides sampling when given.  Pass ``percentiles=(50, 90, 99)`` to
    additionally collect multiplicative-stretch percentiles (costs a sort
    over all measured pairs).
    """
    src_list = (
        sorted(set(sources)) if sources is not None
        else _pick_sources(host, num_sources, seed)
    )
    wanted_percentiles = sorted(set(percentiles))
    for p in wanted_percentiles:
        if not 0 <= p <= 100:
            raise ValueError("percentiles must be in [0, 100]")
    samples: List[float] = []
    total_pairs = 0
    max_mult = 0.0
    sum_mult = 0.0
    max_add = 0.0
    sum_add = 0.0
    disconnected = 0
    for s in src_list:
        dist_g = bfs_distances(host, s)
        dist_s = bfs_distances(spanner_graph, s)
        for v, dg in dist_g.items():
            if v == s:
                continue
            total_pairs += 1
            ds = dist_s.get(v)
            if ds is None:
                disconnected += 1
                continue
            mult = ds / dg
            add = ds - dg
            sum_mult += mult
            sum_add += add
            if wanted_percentiles:
                samples.append(mult)
            if mult > max_mult:
                max_mult = mult
            if add > max_add:
                max_add = add
    measured = total_pairs - disconnected
    pct: Dict[int, float] = {}
    if wanted_percentiles and samples:
        samples.sort()
        for p in wanted_percentiles:
            idx = min(
                len(samples) - 1, int(p / 100 * (len(samples) - 1) + 0.5)
            )
            pct[p] = samples[idx]
    return StretchStats(
        num_pairs=total_pairs,
        max_multiplicative=max_mult,
        mean_multiplicative=(sum_mult / measured) if measured else 0.0,
        max_additive=max_add,
        mean_additive=(sum_add / measured) if measured else 0.0,
        disconnected_pairs=disconnected,
        percentiles=pct,
    )


def pair_stretch(
    host: Graph, spanner_graph: Graph, u: int, v: int
) -> Tuple[float, float]:
    """(multiplicative, additive) stretch for one pair; inf if cut apart."""
    dg = bfs_distances(host, u).get(v)
    if dg is None:
        raise ValueError(f"{u} and {v} are disconnected in the host graph")
    if dg == 0:
        return 1.0, 0.0
    ds = bfs_distances(spanner_graph, u).get(v)
    if ds is None:
        return INF, INF
    return ds / dg, float(ds - dg)


def distance_profile(
    host: Graph,
    spanner_graph: Graph,
    num_sources: Optional[int] = None,
    seed: SeedLike = None,
    sources: Optional[Iterable[int]] = None,
) -> Dict[int, Tuple[int, int, float, float]]:
    """Per-distance stretch: ``{d: (count, disconnected, max_mult, mean_mult)}``.

    The Fibonacci spanner's signature claim (Theorem 7) is that
    multiplicative stretch *shrinks* as delta(u, v) grows; this profile is
    the measured version of that curve.  ``count`` is the number of
    measured pairs at host distance ``d``; ``disconnected`` is how many of
    them the spanner cuts apart.  ``max_mult``/``mean_mult`` are taken over
    the connected pairs only (0.0 when a bucket has none), so a single cut
    pair cannot poison a bucket's mean with infinity.
    """
    src_list = (
        sorted(set(sources)) if sources is not None
        else _pick_sources(host, num_sources, seed)
    )
    counts: Dict[int, int] = {}
    cut: Dict[int, int] = {}
    max_mult: Dict[int, float] = {}
    sum_mult: Dict[int, float] = {}
    for s in src_list:
        dist_g = bfs_distances(host, s)
        dist_s = bfs_distances(spanner_graph, s)
        for v, dg in dist_g.items():
            if v == s:
                continue
            counts[dg] = counts.get(dg, 0) + 1
            ds = dist_s.get(v)
            if ds is None:
                cut[dg] = cut.get(dg, 0) + 1
                continue
            mult = ds / dg
            sum_mult[dg] = sum_mult.get(dg, 0.0) + mult
            if mult > max_mult.get(dg, 0.0):
                max_mult[dg] = mult
    profile: Dict[int, Tuple[int, int, float, float]] = {}
    for d in sorted(counts):
        connected = counts[d] - cut.get(d, 0)
        profile[d] = (
            counts[d],
            cut.get(d, 0),
            max_mult.get(d, 0.0),
            (sum_mult.get(d, 0.0) / connected) if connected else 0.0,
        )
    return profile
