"""Spanner guarantee verification.

Three checks, in increasing strength:

1. :func:`verify_subgraph` — every spanner edge exists in the host
   ("S \\subseteq E", the definition's precondition);
2. :func:`verify_connectivity` — the spanner preserves the host's connected
   components ("at the very least the substitute should preserve
   connectivity", Sect. 1);
3. :func:`verify_spanner_guarantee` — the (alpha, beta) inequality
   ``delta_S(u, v) <= alpha * delta(u, v) + beta`` holds on (sampled) pairs.

For runs under fault injection (:mod:`repro.distributed.faults`) two
post-mortem helpers grade and patch the outcome:
:func:`classify_outcome` buckets a run as *valid* / *valid-but-denser* /
*invalid*, and :func:`repair_connectivity` is the local repair pass that
re-adds the boundary edges of crashed (super)vertices and then completes
any remaining cut with a deterministic union-find sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set, Tuple

from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.graphs.properties import bfs_distances, connected_components
from repro.spanner.stretch import _pick_sources
from repro.util.rng import SeedLike
from repro.util.unionfind import UnionFind


def verify_subgraph(host: Graph, edges: Iterable[Edge]) -> bool:
    """Every edge of ``edges`` exists in ``host``."""
    return all(host.has_edge(u, v) for u, v in edges)


def verify_connectivity(host: Graph, spanner_graph: Graph) -> bool:
    """The spanner has exactly the host's connected components."""
    host_components = {frozenset(c) for c in connected_components(host)}
    spanner_components = {
        frozenset(c) for c in connected_components(spanner_graph)
    }
    return host_components == spanner_components


def verify_spanner_guarantee(
    host: Graph,
    spanner_graph: Graph,
    alpha: float,
    beta: float = 0.0,
    num_sources: Optional[int] = None,
    seed: SeedLike = None,
) -> Tuple[bool, Optional[Tuple[int, int, int, float]]]:
    """Check ``delta_S(u, v) <= alpha * delta(u, v) + beta``.

    Returns ``(ok, worst)`` where ``worst`` is ``None`` when the guarantee
    holds and otherwise ``(u, v, delta_G, delta_S)`` for the most violating
    pair found.
    """
    worst: Optional[Tuple[int, int, int, float]] = None
    worst_excess = 0.0
    for s in _pick_sources(host, num_sources, seed):
        dist_g = bfs_distances(host, s)
        dist_s = bfs_distances(spanner_graph, s)
        for v, dg in dist_g.items():
            if v == s:
                continue
            ds = dist_s.get(v, float("inf"))
            excess = ds - (alpha * dg + beta)
            if excess > worst_excess:
                worst_excess = excess
                worst = (s, v, dg, ds)
    return worst is None, worst


VALID = "valid"
VALID_DENSER = "valid-but-denser"
INVALID = "invalid"


@dataclass
class DegradationReport:
    """Post-run grade of a (possibly fault-degraded) spanner.

    ``status`` is one of :data:`VALID` (all requested checks pass and the
    size is within ``size_slack`` of the fault-free baseline),
    :data:`VALID_DENSER` (correct but paid for fault tolerance with extra
    edges), or :data:`INVALID` (a safety check failed — the run must be
    treated as a loud failure).
    """

    status: str
    subgraph_ok: bool
    connectivity_ok: bool
    stretch_ok: Optional[bool]
    size: int
    baseline_size: Optional[int] = None
    worst_pair: Optional[Tuple[int, int, int, float]] = None
    reasons: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status != INVALID

    def __str__(self) -> str:
        note = f" ({'; '.join(self.reasons)})" if self.reasons else ""
        return f"{self.status}: {self.size} edges{note}"


def classify_outcome(
    host: Graph,
    edges: Iterable[Edge],
    alpha: Optional[float] = None,
    beta: float = 0.0,
    baseline_size: Optional[int] = None,
    size_slack: float = 1.0,
    num_sources: Optional[int] = None,
    seed: SeedLike = None,
) -> DegradationReport:
    """Grade a run's edge set: valid / valid-but-denser / invalid.

    Safety checks (subgraph containment, component preservation, and —
    when ``alpha`` is given — the (alpha, beta) stretch inequality) decide
    valid vs. invalid; ``baseline_size`` (e.g. the fault-free run's edge
    count) times ``size_slack`` separates :data:`VALID` from
    :data:`VALID_DENSER`, the graceful-degradation bucket where faults
    cost density but not correctness.
    """
    edge_set = {canonical_edge(u, v) for u, v in edges}
    spanner_graph = Graph(host.vertices(), edge_set)
    reasons: List[str] = []

    subgraph_ok = verify_subgraph(host, edge_set)
    if not subgraph_ok:
        reasons.append("edges outside the host graph")
    connectivity_ok = verify_connectivity(host, spanner_graph)
    if not connectivity_ok:
        reasons.append("host components not preserved")

    stretch_ok: Optional[bool] = None
    worst: Optional[Tuple[int, int, int, float]] = None
    if alpha is not None and subgraph_ok and connectivity_ok:
        stretch_ok, worst = verify_spanner_guarantee(
            host, spanner_graph, alpha, beta,
            num_sources=num_sources, seed=seed,
        )
        if not stretch_ok:
            reasons.append(
                f"stretch ({alpha}, {beta}) violated at {worst}"
            )

    if not subgraph_ok or not connectivity_ok or stretch_ok is False:
        status = INVALID
    elif (
        baseline_size is not None
        and len(edge_set) > size_slack * baseline_size
    ):
        status = VALID_DENSER
        reasons.append(
            f"{len(edge_set)} edges vs. baseline {baseline_size}"
        )
    else:
        status = VALID
    return DegradationReport(
        status=status,
        subgraph_ok=subgraph_ok,
        connectivity_ok=connectivity_ok,
        stretch_ok=stretch_ok,
        size=len(edge_set),
        baseline_size=baseline_size,
        worst_pair=worst,
        reasons=reasons,
    )


def repair_connectivity(
    host: Graph,
    edges: Iterable[Edge],
    crashed: Iterable[int] = (),
) -> Tuple[Set[Edge], List[Edge]]:
    """Local repair pass for runs with crashed (super)vertices.

    Crashed nodes drop out of the protocol mid-run, so the edges their
    supervertices were responsible for may be missing from the output.
    The repair is the obvious local one: every boundary edge of a crashed
    vertex rejoins the spanner (its live endpoint knows the edge exists
    and that the other side went silent), then a deterministic union-find
    sweep over the host's remaining edges closes any cut that is still
    open.  Returns ``(repaired_edges, added)`` with ``added`` sorted.
    """
    repaired = {canonical_edge(u, v) for u, v in edges}
    added: Set[Edge] = set()
    crashed_set = set(crashed)
    for v in sorted(crashed_set):
        if v not in host:
            continue
        for u in host.neighbors(v):
            e = canonical_edge(u, v)
            if e not in repaired:
                added.add(e)
                repaired.add(e)

    uf = UnionFind(host.vertices())
    for u, v in sorted(repaired):
        uf.union(u, v)
    for u, v in sorted(host.edges()):
        if not uf.connected(u, v):
            e = canonical_edge(u, v)
            repaired.add(e)
            added.add(e)
            uf.union(u, v)
    return repaired, sorted(added)
