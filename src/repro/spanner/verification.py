"""Spanner guarantee verification.

Three checks, in increasing strength:

1. :func:`verify_subgraph` — every spanner edge exists in the host
   ("S \\subseteq E", the definition's precondition);
2. :func:`verify_connectivity` — the spanner preserves the host's connected
   components ("at the very least the substitute should preserve
   connectivity", Sect. 1);
3. :func:`verify_spanner_guarantee` — the (alpha, beta) inequality
   ``delta_S(u, v) <= alpha * delta(u, v) + beta`` holds on (sampled) pairs.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.graphs.graph import Edge, Graph
from repro.graphs.properties import bfs_distances, connected_components
from repro.spanner.stretch import _pick_sources
from repro.util.rng import SeedLike


def verify_subgraph(host: Graph, edges: Iterable[Edge]) -> bool:
    """Every edge of ``edges`` exists in ``host``."""
    return all(host.has_edge(u, v) for u, v in edges)


def verify_connectivity(host: Graph, spanner_graph: Graph) -> bool:
    """The spanner has exactly the host's connected components."""
    host_components = {frozenset(c) for c in connected_components(host)}
    spanner_components = {
        frozenset(c) for c in connected_components(spanner_graph)
    }
    return host_components == spanner_components


def verify_spanner_guarantee(
    host: Graph,
    spanner_graph: Graph,
    alpha: float,
    beta: float = 0.0,
    num_sources: Optional[int] = None,
    seed: SeedLike = None,
) -> Tuple[bool, Optional[Tuple[int, int, int, float]]]:
    """Check ``delta_S(u, v) <= alpha * delta(u, v) + beta``.

    Returns ``(ok, worst)`` where ``worst`` is ``None`` when the guarantee
    holds and otherwise ``(u, v, delta_G, delta_S)`` for the most violating
    pair found.
    """
    worst: Optional[Tuple[int, int, int, float]] = None
    worst_excess = 0.0
    for s in _pick_sources(host, num_sources, seed):
        dist_g = bfs_distances(host, s)
        dist_s = bfs_distances(spanner_graph, s)
        for v, dg in dist_g.items():
            if v == s:
                continue
            ds = dist_s.get(v, float("inf"))
            excess = ds - (alpha * dg + beta)
            if excess > worst_excess:
                worst_excess = excess
                worst = (s, v, dg, ds)
    return worst is None, worst
