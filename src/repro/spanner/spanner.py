"""The Spanner result object shared by all construction algorithms."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Set

from repro.graphs.graph import Edge, Graph, canonical_edge
from repro.util.rng import SeedLike


class Spanner:
    """A spanner of a host graph: an edge subset plus provenance metadata.

    Every algorithm in :mod:`repro.core` and :mod:`repro.baselines` returns
    one of these.  ``metadata`` records the algorithm, its parameters and —
    for distributed constructions — round counts and message statistics, so
    the benchmark harness can print paper-style rows without re-deriving
    anything.
    """

    def __init__(
        self,
        host: Graph,
        edges: Iterable[Edge],
        metadata: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.host = host
        self.edges: Set[Edge] = {canonical_edge(u, v) for u, v in edges}
        for u, v in sorted(self.edges):
            if not host.has_edge(u, v):
                raise ValueError(f"spanner edge {(u, v)} not in host graph")
        self.metadata: Dict[str, Any] = dict(metadata or {})
        self._subgraph: Optional[Graph] = None

    @property
    def size(self) -> int:
        """Number of spanner edges."""
        return len(self.edges)

    @property
    def density(self) -> float:
        """Edges per vertex — the sparseness axis of Fig. 1."""
        return self.size / max(1, self.host.n)

    def subgraph(self) -> Graph:
        """The spanner as a graph on all host vertices (cached)."""
        if self._subgraph is None:
            self._subgraph = self.host.edge_subgraph(self.edges)
        return self._subgraph

    def stretch(
        self,
        num_sources: Optional[int] = None,
        seed: SeedLike = None,
    ):
        """Measured stretch statistics (see :func:`stretch_statistics`)."""
        from repro.spanner.stretch import stretch_statistics

        return stretch_statistics(
            self.host, self.subgraph(), num_sources=num_sources, seed=seed
        )

    def verify(
        self,
        alpha: float,
        beta: float = 0.0,
        num_sources: Optional[int] = None,
        seed: SeedLike = None,
    ) -> bool:
        """Check the (alpha, beta) guarantee on (sampled) vertex pairs."""
        from repro.spanner.verification import verify_spanner_guarantee

        ok, _ = verify_spanner_guarantee(
            self.host,
            self.subgraph(),
            alpha,
            beta,
            num_sources=num_sources,
            seed=seed,
        )
        return ok

    def __repr__(self) -> str:
        algo = self.metadata.get("algorithm", "?")
        return (
            f"Spanner(algorithm={algo!r}, size={self.size}, "
            f"host_n={self.host.n}, host_m={self.host.m})"
        )
