"""Tests for the Fibonacci spanner construction (Section 4)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.theory import theorem7_distortion_bound
from repro.core.fibonacci import (
    FibonacciParams,
    build_fibonacci_spanner,
    sample_levels,
)
from repro.graphs import (
    Graph,
    bfs_distances,
    chain_of_cliques,
    erdos_renyi_gnp,
    grid_2d,
    path,
)
from repro.spanner import verify_connectivity, verify_subgraph


class TestParams:
    def test_defaults(self):
        params = FibonacciParams.resolve(10**6)
        assert params.order >= 1
        assert params.ell == math.ceil(3 * params.order / 0.5) + 2
        assert len(params.probabilities) == params.order

    def test_explicit_order_and_ell(self):
        params = FibonacciParams.resolve(1000, order=3, ell=7)
        assert params.order == 3 and params.ell == 7

    def test_probability_injection(self):
        params = FibonacciParams.resolve(
            1000, order=2, probabilities=[0.5, 0.1]
        )
        assert params.probabilities == [0.5, 0.1]

    def test_probability_count_validated(self):
        with pytest.raises(ValueError):
            FibonacciParams.resolve(1000, order=3, probabilities=[0.5])

    def test_eps_validated(self):
        with pytest.raises(ValueError):
            FibonacciParams.resolve(1000, eps=0)


class TestSampleLevels:
    def test_nested_hierarchy(self):
        g = erdos_renyi_gnp(200, 0.05, seed=1)
        params = FibonacciParams.resolve(g.n, order=3)
        levels = sample_levels(g, params, seed=2)
        assert len(levels) == 4
        assert levels[0] == set(g.vertices())
        for upper, lower in zip(levels, levels[1:]):
            assert lower <= upper

    def test_expected_sizes_track_probabilities(self):
        g = Graph(vertices=range(4000))
        params = FibonacciParams.resolve(
            g.n, order=2, probabilities=[0.5, 0.1]
        )
        levels = sample_levels(g, params, seed=3)
        assert 0.4 * 4000 < len(levels[1]) < 0.6 * 4000
        assert 0.05 * 4000 < len(levels[2]) < 0.18 * 4000

    def test_deterministic(self):
        g = Graph(vertices=range(100))
        params = FibonacciParams.resolve(g.n, order=2)
        assert sample_levels(g, params, seed=4) == sample_levels(
            g, params, seed=4
        )


class TestConstruction:
    def test_subgraph_and_connectivity(self, any_graph):
        sp = build_fibonacci_spanner(any_graph, order=2, seed=5)
        assert verify_subgraph(any_graph, sp.edges)
        assert verify_connectivity(any_graph, sp.subgraph())

    def test_ball_paths_are_exact(self):
        """For u in B_{i+1,ell}(v) the spanner holds a full shortest path,
        so delta_S(v, u) = delta(v, u) — checked against the definition."""
        g = erdos_renyi_gnp(120, 0.05, seed=6)
        params = FibonacciParams.resolve(g.n, order=2, ell=4)
        levels = sample_levels(g, params, seed=7)
        sp = build_fibonacci_spanner(
            g, order=2, ell=4, levels=levels, seed=7
        )
        sub = sp.subgraph()
        for i in (1, 2):
            sources = levels[i - 1]
            targets = levels[i]
            next_level = levels[i + 1] if i + 1 < len(levels) else set()
            for v in sorted(sources)[:20]:
                dist_v = bfs_distances(g, v)
                d_next = min(
                    (dist_v[u] for u in next_level if u in dist_v),
                    default=math.inf,
                )
                radius = min(4.0**i, d_next - 1)
                dist_s = bfs_distances(sub, v)
                for u in targets:
                    d = dist_v.get(u)
                    if d is not None and 1 <= d <= radius:
                        assert dist_s.get(u) == d

    def test_forest_edges_connect_to_pi(self):
        """Every v with delta(v, V_i) <= ell^{i-1} reaches p_i(v) at true
        distance inside the spanner (the P(v, p_i(v)) forest)."""
        from repro.graphs.properties import multi_source_bfs

        g = grid_2d(10, 10)
        params = FibonacciParams.resolve(g.n, order=2, ell=5)
        levels = sample_levels(g, params, seed=8)
        sp = build_fibonacci_spanner(g, order=2, ell=5, levels=levels)
        sub = sp.subgraph()
        for i in (1, 2):
            if not levels[i]:
                continue
            dist, root, _ = multi_source_bfs(g, levels[i])
            for v in g.vertices():
                d = dist.get(v)
                if d is not None and 1 <= d <= 5 ** (i - 1):
                    assert bfs_distances(sub, v).get(root[v]) == d

    def test_metadata_levels(self):
        g = erdos_renyi_gnp(150, 0.05, seed=9)
        sp = build_fibonacci_spanner(g, order=3, seed=10)
        assert len(sp.metadata["level_sizes"]) == 4
        assert len(sp.metadata["level_edge_counts"]) == 4

    def test_levels_length_validated(self):
        g = path(10)
        with pytest.raises(ValueError):
            build_fibonacci_spanner(g, order=2, levels=[set(g.vertices())])

    def test_empty_top_level_degenerates_gracefully(self):
        # With V_1 empty the spanner is the whole graph (B_1 uncut).
        g = path(20)
        sp = build_fibonacci_spanner(
            g, order=1, levels=[set(g.vertices()), set()]
        )
        assert sp.size == g.m


class TestDistortion:
    def test_stage_bounds_on_grid(self):
        """Measured stretch per distance must respect Theorem 7's staged
        bound (checked with the construction's own o, eps)."""
        g = grid_2d(14, 14)
        o, eps = 2, 0.5
        sp = build_fibonacci_spanner(g, order=o, eps=eps, seed=11)
        from repro.spanner import distance_profile

        profile = distance_profile(
            g, sp.subgraph(), num_sources=25, seed=12
        )
        for d, (_, _, max_mult, _) in profile.items():
            assert max_mult <= theorem7_distortion_bound(d, o, eps) + 1e-9

    def test_long_range_pairs_near_optimal(self):
        # Stage 4: distant pairs approach stretch 1 + eps.
        g = chain_of_cliques(8, 4, link_length=6)
        sp = build_fibonacci_spanner(g, order=2, eps=0.5, seed=13)
        from repro.spanner import distance_profile

        profile = distance_profile(g, sp.subgraph(), num_sources=30, seed=1)
        far = [mx for d, (_, _, mx, _) in profile.items() if d >= 30]
        assert far and max(far) <= 1.5
