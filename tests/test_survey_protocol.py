"""Tests for the neighborhood-survey protocol."""

from __future__ import annotations

from repro.distributed.survey_protocol import neighborhood_survey
from repro.graphs import bfs_distances, cycle, grid_2d, path


class TestNeighborhoodSurvey:
    def test_radius_one_learns_incident_plus_neighbor_edges(self):
        g = path(5)
        known, _ = neighborhood_survey(g, radius=1)
        # Vertex 2 hears 1's and 3's incident edges.
        assert known[2] == {(1, 2), (2, 3), (0, 1), (3, 4)}

    def test_full_radius_learns_whole_graph(self):
        g = grid_2d(4, 4)
        known, _ = neighborhood_survey(g, radius=10)
        for v in g.vertices():
            assert known[v] == g.edge_set()

    def test_knowledge_contains_true_neighborhood(self):
        # After r rounds a vertex knows at least every edge whose
        # endpoints are both within r-1 hops (standard LOCAL simulation).
        g = cycle(12)
        r = 3
        known, _ = neighborhood_survey(g, radius=r)
        for v in g.vertices():
            dist = bfs_distances(g, v, cutoff=r - 1)
            for u, w in g.edges():
                if dist.get(u, 99) <= r - 1 and dist.get(w, 99) <= r - 1:
                    assert (u, w) in known[v]

    def test_width_scales_with_neighborhood_size(self):
        sparse = path(30)
        dense = grid_2d(6, 6)
        _, sparse_stats = neighborhood_survey(sparse, radius=4)
        _, dense_stats = neighborhood_survey(dense, radius=4)
        assert dense_stats.max_message_words > (
            sparse_stats.max_message_words
        )

    def test_message_words_two_per_edge(self):
        g = path(3)
        _, stats = neighborhood_survey(g, radius=1)
        # Setup round: endpoints send their (<=2)-edge lists.
        assert stats.max_message_words == 4
