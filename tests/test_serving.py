"""Tests for the serving tier: artifacts, server, loadgen, bench cell."""

from __future__ import annotations

import asyncio
import itertools
import json

import pytest

from repro.graphs import bfs_distances
from repro.perf import ServiceCell, run_service_cell, service_matrix
from repro.serving import (
    ArtifactError,
    QueryService,
    SpannerServer,
    build_bundle,
    dumps_bundle,
    load_bundle,
    loads_bundle,
    make_queries,
    run_loadgen,
    run_service_benchmark,
    save_bundle,
)
from repro.serving.loadgen import percentile


def _smoke_bundle(seed: int = 1, k: int = 2):
    return build_bundle("er", "smoke", seed, k=k)


@pytest.fixture(scope="module")
def bundle():
    return _smoke_bundle()


class TestArtifactFormat:
    def test_same_seed_twice_is_byte_identical(self):
        # The acceptance criterion: two independent builds from the
        # same recipe serialize to the same bytes.
        assert dumps_bundle(_smoke_bundle()) == dumps_bundle(_smoke_bundle())

    def test_different_seed_differs(self, bundle):
        assert dumps_bundle(bundle) != dumps_bundle(_smoke_bundle(seed=2))

    def test_roundtrip_is_byte_identical(self, bundle):
        text = dumps_bundle(bundle)
        assert dumps_bundle(loads_bundle(text)) == text

    def test_save_load_file_roundtrip(self, bundle, tmp_path):
        path = tmp_path / "bundle.json"
        checksum = save_bundle(bundle, path)
        assert checksum.startswith("sha256:")
        loaded = load_bundle(path)
        assert dumps_bundle(loaded) == dumps_bundle(bundle)
        assert loaded.recipe == bundle.recipe

    def test_loaded_oracle_answers_match_in_memory(self, bundle):
        loaded = loads_bundle(dumps_bundle(bundle))
        vertices = sorted(bundle.graph.vertices())
        pairs = itertools.islice(itertools.combinations(vertices, 2), 500)
        for u, v in pairs:
            assert bundle.oracle.query(u, v) == loaded.oracle.query(u, v)
            assert bundle.router.route(u, v) == loaded.router.route(u, v)

    def test_loaded_labeling_matches_in_memory(self, bundle):
        loaded = loads_bundle(dumps_bundle(bundle))
        for v in bundle.labeling.vertices()[:40]:
            ours, theirs = bundle.labeling.label(v), loaded.labeling.label(v)
            assert ours.pivots == theirs.pivots
            assert ours.bunch == theirs.bunch

    def test_checksum_tamper_detected(self, bundle):
        document = json.loads(dumps_bundle(bundle))
        document["payload"]["oracle"]["k"] = 99
        with pytest.raises(ArtifactError, match="checksum"):
            loads_bundle(json.dumps(document))

    def test_wrong_format_and_schema_rejected(self, bundle):
        document = json.loads(dumps_bundle(bundle))
        foreign = dict(document, format="other")
        with pytest.raises(ArtifactError, match="format"):
            loads_bundle(json.dumps(foreign))
        future = dict(document, schema=999)
        with pytest.raises(ArtifactError, match="schema"):
            loads_bundle(json.dumps(future))

    def test_garbage_rejected(self):
        with pytest.raises(ArtifactError, match="JSON"):
            loads_bundle("not json{")
        with pytest.raises(ArtifactError):
            loads_bundle('"a string"')


class TestQueryService:
    def test_cache_on_off_identical_answers(self, bundle):
        cached = QueryService(bundle, cache_size=256, landmarks=8)
        raw = QueryService(bundle, cache_size=0, landmarks=0)
        queries = make_queries(
            sorted(bundle.graph.vertices()), 300, mix="zipf", seed=7
        )
        for request in queries:
            assert cached.handle_request(request) == raw.handle_request(
                dict(request)
            )
        assert cached.hits > 0  # the cached tier actually engaged
        assert raw.hits == 0

    def test_dist_matches_oracle_and_is_symmetric(self, bundle):
        service = QueryService(bundle)
        vertices = sorted(bundle.graph.vertices())
        for u, v in itertools.islice(
            itertools.combinations(vertices, 2), 200
        ):
            estimate = service.dist(u, v)
            assert estimate == service.dist(v, u)
            assert estimate == bundle.oracle.query(u, v)

    def test_served_stretch_bound_vs_exact_bfs(self, bundle):
        # The end-to-end guarantee: every served distance sits within
        # [d, (2k-1) d] of the exact BFS distance.
        service = QueryService(bundle)
        k = bundle.k
        for source in (0, 17, 55):
            truth = bfs_distances(bundle.graph, source)
            for v, d in sorted(truth.items()):
                if v == source:
                    continue
                estimate = service.dist(source, v)
                assert estimate is not None
                assert d <= estimate <= (2 * k - 1) * d

    def test_route_reverses_and_verifies(self, bundle):
        service = QueryService(bundle)
        vertices = sorted(bundle.graph.vertices())
        for u, v in itertools.islice(
            itertools.combinations(vertices, 2), 100
        ):
            path = service.route(u, v)
            assert path is not None
            assert path[0] == u and path[-1] == v
            assert bundle.router.verify_route(path)
            assert service.route(v, u) == path[::-1]

    def test_route_cache_returns_copies(self, bundle):
        service = QueryService(bundle)
        first = service.route(0, 5)
        assert first is not None
        first.append(999)  # caller mutation must not poison the cache
        assert service.route(0, 5)[-1] == 5

    def test_label_op_is_plain_data(self, bundle):
        service = QueryService(bundle)
        label = service.label(3)
        assert label["vertex"] == 3
        assert label["size_words"] == bundle.labeling.label(3).size_words
        json.dumps(label)  # wire-encodable

    def test_unknown_vertex_is_service_error(self, bundle):
        service = QueryService(bundle)
        response = service.handle_request(
            {"id": 1, "op": "dist", "u": 0, "v": 10**9}
        )
        assert response == {
            "id": 1,
            "ok": False,
            "error": "unknown vertex: 1000000000",
        }

    def test_malformed_requests_answered_not_fatal(self, bundle):
        service = QueryService(bundle)
        for request in (
            {"id": 2, "op": "dist"},  # missing vertices
            {"id": 3, "op": "warp", "u": 0, "v": 1},  # unknown op
            {"id": 4, "op": "dist", "u": "x", "v": 1},  # non-int vertex
        ):
            response = service.handle_request(request)
            assert response["ok"] is False
            assert response["id"] == request["id"]

    def test_stats_counts_probes(self, bundle):
        service = QueryService(bundle, cache_size=64, landmarks=4)
        service.dist(0, 1)
        service.dist(0, 1)
        stats = service.stats()
        assert stats["requests"] == 2
        cache = stats["cache"]
        assert cache["hits_lru"] + cache["hits_landmark"] >= 1
        assert 0.0 <= cache["hit_rate"] <= 1.0


class TestSpannerServer:
    def _ask(self, bundle, lines):
        """Start a server, send raw lines on one connection, collect
        one response per line, shut down."""

        async def _run():
            service = QueryService(bundle)
            server = SpannerServer(service, port=0)
            await server.start()
            assert server.address is not None
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            responses = []
            for line in lines:
                writer.write(line.encode() + b"\n")
                await writer.drain()
                responses.append(json.loads(await reader.readline()))
            writer.write(b'{"id": "bye", "op": "shutdown"}\n')
            await writer.drain()
            responses.append(json.loads(await reader.readline()))
            writer.close()
            await server.wait_closed()
            return responses

        return asyncio.run(_run())

    def test_end_to_end_query_roundtrip(self, bundle):
        responses = self._ask(
            bundle,
            [
                '{"id": 0, "op": "ping"}',
                '{"id": 1, "op": "dist", "u": 0, "v": 7}',
                '{"id": 2, "op": "route", "u": 0, "v": 7}',
                '{"id": 3, "op": "label", "v": 7}',
                '{"id": 4, "op": "stats"}',
            ],
        )
        ping, dist, route, label, stats, bye = responses
        assert ping == {"id": 0, "ok": True, "value": "pong"}
        assert dist["ok"] and dist["value"] == bundle.oracle.query(0, 7)
        assert route["ok"] and route["value"][0] == 0
        assert route["value"][-1] == 7
        assert len(route["value"]) - 1 == dist["value"]
        assert label["ok"] and label["value"]["vertex"] == 7
        assert stats["ok"] and stats["value"]["n"] == bundle.graph.n
        assert bye == {"id": "bye", "ok": True, "value": "bye"}

    def test_malformed_lines_answered_inline(self, bundle):
        responses = self._ask(
            bundle, ["this is not json", '["not", "an", "object"]']
        )
        bad_json, bad_shape, _bye = responses
        assert bad_json["ok"] is False and "JSON" in bad_json["error"]
        assert bad_shape["ok"] is False

    def test_max_requests_stops_server(self, bundle):
        async def _run():
            service = QueryService(bundle)
            server = SpannerServer(service, port=0, max_requests=3)
            await server.start()
            assert server.address is not None
            reader, writer = await asyncio.open_connection(*server.address)
            for rid in range(3):
                writer.write(
                    json.dumps({"id": rid, "op": "ping"}).encode() + b"\n"
                )
            await writer.drain()
            answers = [json.loads(await reader.readline()) for _ in range(3)]
            await asyncio.wait_for(server.wait_closed(), timeout=5)
            writer.close()
            return answers

        answers = asyncio.run(_run())
        assert all(a["ok"] for a in answers)

    def test_unix_socket_transport(self, bundle, tmp_path):
        sock = str(tmp_path / "svc.sock")

        async def _run():
            service = QueryService(bundle)
            server = SpannerServer(service, unix_path=sock)
            await server.start()
            reader, writer = await asyncio.open_unix_connection(sock)
            writer.write(b'{"id": 1, "op": "dist", "u": 0, "v": 3}\n')
            await writer.drain()
            answer = json.loads(await reader.readline())
            writer.write(b'{"id": 2, "op": "shutdown"}\n')
            await writer.drain()
            await reader.readline()
            writer.close()
            await server.wait_closed()
            return answer

        answer = asyncio.run(_run())
        assert answer["ok"] and answer["value"] == bundle.oracle.query(0, 3)

    def test_pipelined_batching_observed(self, bundle):
        # A burst written in one flush should be served in few batches:
        # the drainer takes everything queued per tick.
        async def _run():
            service = QueryService(bundle)
            server = SpannerServer(service, port=0)
            await server.start()
            assert server.address is not None
            reader, writer = await asyncio.open_connection(*server.address)
            burst = b"".join(
                json.dumps({"id": rid, "op": "ping"}).encode() + b"\n"
                for rid in range(50)
            )
            writer.write(burst)
            await writer.drain()
            got = [json.loads(await reader.readline()) for _ in range(50)]
            writer.write(b'{"id": "bye", "op": "shutdown"}\n')
            await writer.drain()
            await reader.readline()
            writer.close()
            await server.wait_closed()
            histogram = service.metrics.histogram("serving_batch_size")
            return got, histogram.max or 0

        got, max_batch = asyncio.run(_run())
        assert [r["id"] for r in got] == list(range(50))  # arrival order
        assert max_batch > 1


class TestLoadgen:
    def test_query_stream_is_deterministic(self, bundle):
        vertices = sorted(bundle.graph.vertices())
        a = make_queries(vertices, 100, mix="zipf", seed=3)
        b = make_queries(vertices, 100, mix="zipf", seed=3)
        assert a == b
        assert a != make_queries(vertices, 100, mix="zipf", seed=4)

    def test_zipf_mix_is_skewed_uniform_is_not(self, bundle):
        vertices = sorted(bundle.graph.vertices())

        def top_share(mix):
            queries = make_queries(vertices, 2000, mix=mix, seed=5)
            hits = {}
            for query in queries:
                for key in ("u", "v"):
                    if key in query:
                        hits[query[key]] = hits.get(query[key], 0) + 1
            ranked = sorted(hits.values(), reverse=True)
            return sum(ranked[:5]) / sum(ranked)

        assert top_share("zipf") > 2 * top_share("uniform")

    def test_queries_only_touch_known_vertices(self, bundle):
        vertices = set(bundle.graph.vertices())
        for query in make_queries(sorted(vertices), 200, mix="zipf", seed=6):
            assert query["v"] in vertices
            if "u" in query:
                assert query["u"] in vertices

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError, match="mix"):
            make_queries([1, 2], 5, mix="bursty")
        with pytest.raises(ValueError, match="universe"):
            make_queries([], 5)

    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 99) == 4.0
        assert percentile([], 50) == 0.0

    def test_percentile_edges(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        # q=25 on n=4 is exactly element 1 (nearest-rank, 1-indexed).
        assert percentile(values, 25) == 1.0
        assert percentile(values, 25.0001) == 2.0

    def test_percentile_float_q_no_overshoot(self):
        # 1000 * 99.9 / 100 = 999.0000000000001 in floats; the nearest
        # rank is 999 (1-indexed), i.e. the 999th value, not the 1000th.
        values = [float(i) for i in range(1, 1001)]
        assert percentile(values, 99.9) == 999.0
        assert percentile(values, 99.99) == 1000.0
        assert percentile(values, 0.1) == 1.0

    def test_percentile_tiny_inputs(self):
        assert percentile([7.0], 0) == 7.0
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 100) == 7.0
        two = [1.0, 2.0]
        assert percentile(two, 0) == 1.0
        assert percentile(two, 50) == 1.0
        assert percentile(two, 50.001) == 2.0
        assert percentile(two, 100) == 2.0

    def test_percentile_rejects_bad_q(self):
        with pytest.raises(ValueError, match="q must be"):
            percentile([1.0], -1)
        with pytest.raises(ValueError, match="q must be"):
            percentile([1.0], 100.5)

    def test_benchmark_counts_replay_exactly(self, bundle):
        # The BENCH_service gate: a fresh server + the same seeded
        # stream must reproduce every cache hit.
        first = run_service_benchmark(bundle, requests=150, mix="zipf", seed=2)
        second = run_service_benchmark(
            bundle, requests=150, mix="zipf", seed=2
        )
        assert first.answered == second.answered == 150
        assert first.errors == second.errors == 0
        assert first.cache_hits_lru == second.cache_hits_lru
        assert first.cache_hits_landmark == second.cache_hits_landmark
        assert first.cache_misses == second.cache_misses
        assert first.p99_ms >= first.p50_ms >= 0

    def test_open_loop_and_concurrency(self, bundle):
        summary = run_service_benchmark(
            bundle,
            requests=40,
            mix="uniform",
            seed=3,
            mode="open",
            concurrency=2,
            rate=4000.0,
        )
        assert summary.answered == 40 and summary.errors == 0

    def test_loadgen_against_external_server(self, bundle):
        async def _run():
            service = QueryService(bundle)
            server = SpannerServer(service, port=0)
            await server.start()
            assert server.address is not None
            host, port = server.address
            queries = make_queries(
                sorted(bundle.graph.vertices()), 80, mix="uniform", seed=9
            )
            summary = await run_loadgen(
                ("tcp", host, port), queries, shutdown=True
            )
            await server.wait_closed()
            return summary

        summary = asyncio.run(_run())
        assert summary.answered == 80 and summary.errors == 0
        assert summary.server_stats is not None
        assert summary.server_stats["requests"] == 80


class TestServiceBenchCell:
    def test_matrix_shape_and_ids_unique(self):
        cells = service_matrix()
        ids = [cell.cell_id for cell in cells]
        assert len(ids) == len(set(ids))
        # kinds x mixes x scales x one seed
        assert len(cells) == 3 * 2 * 2
        smoke_ids = {cell.cell_id for cell in service_matrix(("smoke",))}
        assert smoke_ids < set(ids)

    def test_run_service_cell_fields(self):
        cell = ServiceCell("grid", "smoke", 1, "zipf")
        result = run_service_cell(cell, reps=1)
        assert result["protocol"] == "service"
        assert result["cell_id"] == cell.cell_id
        assert result["rounds"] == cell.requests  # requests issued
        assert result["messages"] == cell.requests  # all answered
        assert result["words"] > 0  # zipf mix must produce cache hits
        assert 0.0 <= result["hit_rate"] <= 1.0
        assert result["p99_ms"] >= result["p50_ms"]

    def test_cell_counts_stable_across_reps(self):
        # reps=2 exercises the in-run nondeterminism assertion.
        cell = ServiceCell("er", "smoke", 1, "uniform")
        first = run_service_cell(cell, reps=2)
        second = run_service_cell(cell, reps=1)
        for name in ("rounds", "messages", "words", "n", "m"):
            assert first[name] == second[name]
