"""Tests for the Section 2 linear-size skeleton algorithm."""

from __future__ import annotations


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.theory import skeleton_distortion_bound, skeleton_size_bound
from repro.core import build_skeleton
from repro.core.schedule import Round
from repro.graphs import (
    Graph,
    complete,
    erdos_renyi_gnp,
    grid_2d,
    hypercube,
    path,
)
from repro.spanner import verify_connectivity, verify_subgraph
from repro.util import make_prf


class TestBasicGuarantees:
    def test_spanner_is_subgraph(self, any_graph):
        sp = build_skeleton(any_graph, D=4, seed=1)
        assert verify_subgraph(any_graph, sp.edges)

    def test_connectivity_preserved(self, any_graph):
        sp = build_skeleton(any_graph, D=4, seed=2)
        assert verify_connectivity(any_graph, sp.subgraph())

    def test_distortion_within_theory_bound(self, any_graph):
        sp = build_skeleton(any_graph, D=4, seed=3)
        bound = skeleton_distortion_bound(any_graph.n, 4)
        stats = sp.stretch()
        assert stats.max_multiplicative <= bound

    def test_empty_graph(self):
        sp = build_skeleton(Graph(), D=4, seed=1)
        assert sp.size == 0

    def test_single_vertex(self):
        sp = build_skeleton(Graph(vertices=[3]), D=4, seed=1)
        assert sp.size == 0

    def test_single_edge(self):
        g = path(2)
        sp = build_skeleton(g, D=4, seed=1)
        assert sp.edges == {(0, 1)}

    def test_disconnected_graph(self):
        g = Graph(edges=[(0, 1), (1, 2), (5, 6), (6, 7)])
        g.add_vertex(99)
        sp = build_skeleton(g, D=4, seed=4)
        assert verify_connectivity(g, sp.subgraph())


class TestSize:
    def test_linear_size_on_dense_graph(self):
        # m ~ n^2/8 but the skeleton must be ~ D n / e + O(n log D).
        g = erdos_renyi_gnp(400, 0.25, seed=5)
        sp = build_skeleton(g, D=4, seed=6)
        assert sp.size < skeleton_size_bound(g.n, 4) * 1.5

    def test_size_bound_over_many_seeds(self):
        # Lemma 6 bounds the EXPECTATION; average over seeds obeys it.
        g = erdos_renyi_gnp(250, 0.15, seed=7)
        sizes = [
            build_skeleton(g, D=4, seed=s).size for s in range(8)
        ]
        assert sum(sizes) / len(sizes) <= skeleton_size_bound(g.n, 4)

    def test_larger_d_gives_larger_spanner_budget(self):
        g = erdos_renyi_gnp(300, 0.3, seed=8)
        small = [build_skeleton(g, D=4, seed=s).size for s in range(4)]
        # Budget grows with D; we check the bound scales, and measured
        # stays under the matching bound on both sides.
        assert skeleton_size_bound(g.n, 8) > skeleton_size_bound(g.n, 4)
        assert sum(small) / 4 <= skeleton_size_bound(g.n, 4)
        big = [build_skeleton(g, D=8, seed=s).size for s in range(4)]
        assert sum(big) / 4 <= skeleton_size_bound(g.n, 8)

    def test_never_larger_than_host(self):
        g = complete(40)
        sp = build_skeleton(g, D=4, seed=9)
        assert sp.size <= g.m


class TestTraceAndMetadata:
    def test_trace_round_accounting(self):
        g = erdos_renyi_gnp(200, 0.1, seed=10)
        sp = build_skeleton(g, D=4, seed=11)
        trace = sp.metadata["trace"]
        assert trace.total_expand_calls == sp.metadata["expand_calls"]
        assert trace.rounds[0].vertices_before == g.n
        # Vertices never increase between rounds.
        for a, b in zip(trace.rounds, trace.rounds[1:]):
            assert b.vertices_before <= a.vertices_after

    def test_all_vertices_die_by_the_end(self):
        g = erdos_renyi_gnp(150, 0.1, seed=12)
        sp = build_skeleton(g, D=4, seed=13)
        trace = sp.metadata["trace"]
        assert trace.rounds[-1].vertices_after == 0

    def test_cluster_counts_decrease(self):
        g = erdos_renyi_gnp(200, 0.1, seed=14)
        sp = build_skeleton(g, D=4, seed=15)
        counts = sp.metadata["cluster_counts"]
        assert counts[-1] == 0
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_deterministic_given_seed(self):
        g = erdos_renyi_gnp(150, 0.08, seed=16)
        a = build_skeleton(g, D=4, seed=17)
        b = build_skeleton(g, D=4, seed=17)
        assert a.edges == b.edges

    def test_prf_mode_deterministic(self):
        g = erdos_renyi_gnp(150, 0.08, seed=18)
        a = build_skeleton(g, D=4, prf=make_prf(19))
        b = build_skeleton(g, D=4, prf=make_prf(19))
        assert a.edges == b.edges


class TestVariants:
    def test_exact_form_schedule_variant(self):
        g = erdos_renyi_gnp(200, 0.1, seed=20)
        sp = build_skeleton(g, D=4, seed=21, exact_form=True)
        assert verify_connectivity(g, sp.subgraph())

    def test_custom_schedule(self):
        g = grid_2d(8, 8)
        schedule = [Round(p=0.25, iterations=2, final_zero=True)]
        sp = build_skeleton(g, D=4, seed=22, schedule=schedule)
        assert verify_connectivity(g, sp.subgraph())

    def test_eps_variants_all_valid(self):
        g = erdos_renyi_gnp(200, 0.08, seed=23)
        for eps in (0.25, 0.5, 1.0):
            sp = build_skeleton(g, D=4, eps=eps, seed=24)
            assert verify_connectivity(g, sp.subgraph())

    def test_large_d_falls_back_to_exact_form(self):
        # D = 16 > log^0.5 n for small n; the builder must still work.
        g = erdos_renyi_gnp(120, 0.2, seed=25)
        sp = build_skeleton(g, D=16, seed=26)
        assert verify_connectivity(g, sp.subgraph())


class TestScale:
    def test_twenty_thousand_vertices(self):
        """Laptop-scale stress: the O(m)-ish build holds up at n = 20k."""
        g = erdos_renyi_gnp(20_000, 6.0 / 20_000, seed=77)
        sp = build_skeleton(g, D=4, seed=78)
        assert sp.size <= skeleton_size_bound(g.n, 4)
        stats = sp.stretch(num_sources=5, seed=1)
        assert stats.ok
        assert stats.max_multiplicative <= skeleton_distortion_bound(
            g.n, 4
        )


class TestPropertyBased:
    @given(
        st.integers(10, 80),
        st.floats(0.05, 0.4),
        st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_graphs_connectivity_and_subgraph(self, n, p, seed):
        g = erdos_renyi_gnp(n, p, seed=seed)
        sp = build_skeleton(g, D=4, seed=seed + 1)
        assert verify_subgraph(g, sp.edges)
        assert verify_connectivity(g, sp.subgraph())

    @given(st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_hypercube_distortion(self, seed):
        g = hypercube(5)
        sp = build_skeleton(g, D=4, seed=seed)
        bound = skeleton_distortion_bound(g.n, 4)
        assert sp.stretch(num_sources=8, seed=0).max_multiplicative <= bound
