"""Tests for the applications layer: distance oracle, routing,
synchronizer, and the Corollary 1 combined spanner."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.applications import (
    DistanceOracle,
    TreeRouter,
    overlay_report,
    spanner_router,
)
from repro.core import build_combined_spanner, build_skeleton
from repro.core.combined import corollary1_uniform_bound
from repro.graphs import (
    Graph,
    balanced_tree,
    bfs_distances,
    erdos_renyi_gnp,
    grid_2d,
    path,
)
from repro.spanner import verify_connectivity


class TestDistanceOracle:
    def test_k1_is_exact(self):
        g = grid_2d(6, 6)
        oracle = DistanceOracle(g, k=1, seed=1)
        truth = bfs_distances(g, 0)
        for v, d in truth.items():
            assert oracle.query(0, v) == d

    def test_stretch_bound_holds(self):
        g = erdos_renyi_gnp(200, 0.05, seed=2)
        for k in (2, 3):
            oracle = DistanceOracle(g, k=k, seed=3)
            for source in (0, 50, 100):
                truth = bfs_distances(g, source)
                for v, d in truth.items():
                    if v == source:
                        continue
                    est = oracle.query(source, v)
                    assert d <= est <= (2 * k - 1) * d

    def test_query_never_underestimates(self):
        g = grid_2d(8, 8)
        oracle = DistanceOracle(g, k=2, seed=4)
        truth = bfs_distances(g, 0)
        for v, d in truth.items():
            assert oracle.query(0, v) >= d

    def test_disconnected_pairs_are_infinite(self):
        g = Graph(edges=[(0, 1), (2, 3)])
        oracle = DistanceOracle(g, k=2, seed=5)
        assert oracle.query(0, 2) == float("inf")

    def test_same_vertex(self):
        g = path(5)
        oracle = DistanceOracle(g, k=2, seed=6)
        assert oracle.query(3, 3) == 0

    def test_space_bound(self):
        g = erdos_renyi_gnp(300, 0.05, seed=7)
        oracle = DistanceOracle(g, k=3, seed=8)
        # Expected size O(k n^{1+1/k}); allow a small constant.
        assert oracle.size <= 4 * oracle.expected_size_bound()

    def test_space_shrinks_with_k(self):
        g = erdos_renyi_gnp(300, 0.08, seed=9)
        sizes = [DistanceOracle(g, k=k, seed=10).size for k in (1, 3)]
        assert sizes[1] < sizes[0]

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            DistanceOracle(path(3), k=0)

    @given(st.integers(0, 300))
    @settings(max_examples=10, deadline=None)
    def test_random_graph_stretch_property(self, seed):
        g = erdos_renyi_gnp(60, 0.1, seed=seed)
        oracle = DistanceOracle(g, k=2, seed=seed + 1)
        truth = bfs_distances(g, 0)
        for v, d in truth.items():
            if v:
                assert d <= oracle.query(0, v) <= 3 * d


class TestTreeRouter:
    def test_routes_follow_tree_paths(self):
        tree = balanced_tree(2, 3)
        router = TreeRouter(tree)
        route = router.route(7, 14)
        assert route is not None
        assert route[0] == 7 and route[-1] == 14
        # Every hop is a tree edge.
        for a, b in zip(route, route[1:]):
            assert tree.has_edge(a, b)
        # Tree routes are exactly the tree distance.
        assert len(route) - 1 == bfs_distances(tree, 7)[14]

    def test_all_pairs_on_small_tree(self):
        tree = balanced_tree(3, 2)
        router = TreeRouter(tree)
        truth = {v: bfs_distances(tree, v) for v in tree.vertices()}
        for u in tree.vertices():
            for v in tree.vertices():
                route = router.route(u, v)
                assert len(route) - 1 == truth[u][v]

    def test_path_graph_routing(self):
        tree = path(10)
        router = TreeRouter(tree)
        assert router.route(0, 9) == list(range(10))
        assert router.route(9, 0) == list(range(9, -1, -1))

    def test_disconnected_forest(self):
        forest = Graph(edges=[(0, 1), (2, 3)])
        router = TreeRouter(forest)
        assert router.route(0, 1) == [0, 1]
        assert router.route(0, 3) is None

    def test_table_sizes_compact(self):
        tree = balanced_tree(2, 5)
        router = TreeRouter(tree)
        for v in tree.vertices():
            assert router.table_words(v) <= 2 * tree.degree(v) + 3

    def test_next_hop_at_target_is_none(self):
        router = TreeRouter(path(4))
        assert router.next_hop(2, 2) is None


class TestSpannerRouter:
    def test_routing_over_skeleton(self):
        g = erdos_renyi_gnp(150, 0.08, seed=11)
        skeleton = build_skeleton(g, D=4, seed=12)
        router = spanner_router(skeleton)
        truth = bfs_distances(g, 0)
        worst = 0.0
        for v in sorted(truth)[:40]:
            if v == 0:
                continue
            route = router.route(0, v)
            assert route is not None
            worst = max(worst, (len(route) - 1) / truth[v])
        # Tree routing over a skeleton: stretch bounded by twice the
        # tree's radius over the true distance — finite and modest here.
        assert worst < 4 * math.log2(g.n)

    def test_router_covers_all_components(self):
        g = Graph(edges=[(0, 1), (1, 2), (5, 6)])
        g.add_vertex(9)
        skeleton = build_skeleton(g, D=4, seed=13)
        router = spanner_router(skeleton)
        assert router.route(0, 2) is not None
        assert router.route(5, 6) is not None
        assert router.route(0, 6) is None


class TestSynchronizerOverlay:
    def test_report_measures_tradeoff(self):
        g = erdos_renyi_gnp(250, 0.06, seed=14)
        skeleton = build_skeleton(g, D=4, seed=15)
        report = overlay_report(g, skeleton, root=0)
        assert report.full.reached == report.overlay.reached == g.n
        assert report.message_savings > 1.0
        assert report.latency_penalty >= 1.0
        # Latency penalty is bounded by the skeleton's measured stretch.
        stretch = skeleton.stretch(num_sources=10, seed=1)
        assert report.latency_penalty <= stretch.max_multiplicative + 1e-9

    def test_flood_on_tree_overlay(self):
        from repro.baselines import bfs_forest

        g = grid_2d(8, 8)
        forest = bfs_forest(g)
        report = overlay_report(g, forest, root=0)
        assert report.overlay.messages < report.full.messages
        assert report.overlay.reached == g.n


class TestCombinedSpanner:
    def test_union_of_both_constructions(self):
        g = erdos_renyi_gnp(200, 0.06, seed=16)
        combined = build_combined_spanner(g, order=2, seed=17)
        assert combined.size >= combined.metadata["skeleton_size"]
        assert combined.size >= combined.metadata["fibonacci_size"]
        assert verify_connectivity(g, combined.subgraph())

    def test_inherits_uniform_bound(self):
        g = erdos_renyi_gnp(200, 0.06, seed=18)
        combined = build_combined_spanner(g, order=2, seed=19)
        bound = corollary1_uniform_bound(g.n)
        stats = combined.stretch(num_sources=25, seed=1)
        assert stats.max_multiplicative <= bound

    def test_distributed_combined_spanner(self):
        from repro.core.combined import distributed_combined_spanner

        g = erdos_renyi_gnp(120, 0.07, seed=30)
        combined = distributed_combined_spanner(g, order=2, seed=31)
        assert verify_connectivity(g, combined.subgraph())
        stats = combined.metadata["network_stats"]
        assert stats.rounds > 0
        assert combined.size >= max(
            combined.metadata["fibonacci_size"],
            combined.metadata["skeleton_size"],
        )

    def test_combined_no_worse_than_parts(self):
        # Union distortion <= min of the two parts' distortion.
        g = grid_2d(12, 12)
        combined = build_combined_spanner(
            g, order=2, ell=5, probabilities=[0.15, 0.02], D=4, seed=20
        )
        skeleton = build_skeleton(g, D=4, seed=21)
        cs = combined.stretch(num_sources=20, seed=2)
        ss = skeleton.stretch(num_sources=20, seed=2)
        assert cs.mean_multiplicative <= ss.mean_multiplicative + 1e-9
