"""Smoke tests: every example script runs to completion."""

from __future__ import annotations

import os
import runpy

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples"
)
SCRIPTS = sorted(
    f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
)


def test_examples_directory_has_required_scripts():
    assert "quickstart.py" in SCRIPTS
    assert len(SCRIPTS) >= 3


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs(script, capsys):
    runpy.run_path(
        os.path.join(EXAMPLES_DIR, script), run_name="__main__"
    )
    out = capsys.readouterr().out
    assert out.strip()  # every example narrates what it did
