"""Tests for the weighted substrate and weighted Baswana–Sen."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.baswana_sen_weighted import baswana_sen_weighted
from repro.graphs import erdos_renyi_gnp, grid_2d, path
from repro.graphs.weighted import (
    WeightedGraph,
    dijkstra,
    weighted_stretch,
)


class TestWeightedGraph:
    def test_construction(self):
        g = WeightedGraph([(0, 1, 2.5), (1, 2, 1.0)])
        assert g.n == 3 and g.m == 2
        assert g.weight(0, 1) == 2.5
        assert g.weight(1, 0) == 2.5

    def test_rejects_nonpositive_weights(self):
        g = WeightedGraph()
        with pytest.raises(ValueError):
            g.add_edge(0, 1, 0)
        with pytest.raises(ValueError):
            g.add_edge(0, 1, -1)

    def test_no_loops_or_duplicates(self):
        g = WeightedGraph()
        assert not g.add_edge(1, 1, 1.0)
        assert g.add_edge(0, 1, 1.0)
        assert not g.add_edge(1, 0, 5.0)
        assert g.weight(0, 1) == 1.0

    def test_from_graph_unit_lift(self):
        base = grid_2d(3, 3)
        wg = WeightedGraph.from_graph(
            base, weights={e: 1.0 for e in base.edges()}
        )
        assert wg.n == base.n and wg.m == base.m

    def test_from_graph_random_weights_deterministic(self):
        base = erdos_renyi_gnp(30, 0.2, seed=1)
        a = WeightedGraph.from_graph(base, seed=2)
        b = WeightedGraph.from_graph(base, seed=2)
        assert list(a.edges()) == list(b.edges())

    def test_edge_subgraph_keeps_weights(self):
        g = WeightedGraph([(0, 1, 3.0), (1, 2, 4.0)])
        sub = g.edge_subgraph([(0, 1)])
        assert sub.m == 1 and sub.weight(0, 1) == 3.0
        assert sub.n == 3

    def test_edge_subgraph_rejects_foreign(self):
        g = WeightedGraph([(0, 1, 1.0)])
        with pytest.raises(ValueError):
            g.edge_subgraph([(0, 2)])

    def test_unweighted_projection(self):
        g = WeightedGraph([(0, 1, 3.0), (1, 2, 4.0)])
        ug = g.unweighted()
        assert ug.m == 2 and ug.has_edge(0, 1)


class TestDijkstra:
    def test_weighted_path(self):
        g = WeightedGraph([(0, 1, 2.0), (1, 2, 3.0), (0, 2, 10.0)])
        dist = dijkstra(g, 0)
        assert dist == {0: 0.0, 1: 2.0, 2: 5.0}

    def test_unit_weights_match_bfs(self):
        base = grid_2d(5, 5)
        wg = WeightedGraph.from_graph(
            base, weights={e: 1.0 for e in base.edges()}
        )
        from repro.graphs import bfs_distances

        assert dijkstra(wg, 0) == {
            v: float(d) for v, d in bfs_distances(base, 0).items()
        }

    def test_cutoff(self):
        wg = WeightedGraph.from_graph(
            path(10), weights={(i, i + 1): 1.0 for i in range(9)}
        )
        dist = dijkstra(wg, 0, cutoff=3.5)
        assert max(dist.values()) <= 3.5

    def test_disconnected(self):
        g = WeightedGraph([(0, 1, 1.0)])
        g.add_vertex(5)
        assert 5 not in dijkstra(g, 0)


class TestWeightedBaswanaSen:
    def _random_weighted(self, n, p, seed):
        return WeightedGraph.from_graph(
            erdos_renyi_gnp(n, p, seed=seed), seed=seed + 1
        )

    def test_stretch_guarantee(self):
        g = self._random_weighted(120, 0.08, seed=1)
        for k in (2, 3):
            edges = baswana_sen_weighted(g, k, seed=3)
            worst, _ = weighted_stretch(g, edges, num_sources=25, seed=4)
            assert worst <= 2 * k - 1 + 1e-9

    def test_k1_keeps_all(self):
        g = self._random_weighted(40, 0.2, seed=5)
        assert len(baswana_sen_weighted(g, 1)) == g.m

    def test_size_shrinks_with_k(self):
        g = self._random_weighted(300, 0.15, seed=6)
        size2 = sum(
            len(baswana_sen_weighted(g, 2, seed=s)) for s in range(3)
        )
        size4 = sum(
            len(baswana_sen_weighted(g, 4, seed=s)) for s in range(3)
        )
        assert size4 < size2

    def test_validates_k(self):
        with pytest.raises(ValueError):
            baswana_sen_weighted(WeightedGraph(), 0)

    def test_empty_graph(self):
        assert baswana_sen_weighted(WeightedGraph(), 3) == set()

    @given(st.integers(0, 500))
    @settings(max_examples=10, deadline=None)
    def test_property_stretch_on_random_graphs(self, seed):
        g = self._random_weighted(40, 0.15, seed=seed)
        edges = baswana_sen_weighted(g, 2, seed=seed + 7)
        worst, _ = weighted_stretch(g, edges, seed=1)
        assert worst <= 3 + 1e-9
