"""Tests for the workload graph generators."""

from __future__ import annotations

import pytest

from repro.graphs import (
    balanced_tree,
    barbell,
    chain_of_cliques,
    complete,
    complete_bipartite,
    cycle,
    erdos_renyi_gnm,
    erdos_renyi_gnp,
    grid_2d,
    hypercube,
    path,
    preferential_attachment,
    random_regular,
    star,
)
from repro.graphs.generators import relabel_shuffled
from repro.graphs.properties import diameter, girth, is_connected


class TestDeterministicFamilies:
    def test_path(self):
        g = path(10)
        assert g.n == 10 and g.m == 9
        assert diameter(g) == 9

    def test_cycle(self):
        g = cycle(8)
        assert g.n == 8 and g.m == 8
        assert girth(g) == 8

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle(2)

    def test_star(self):
        g = star(7)
        assert g.m == 6 and g.degree(0) == 6

    def test_complete(self):
        g = complete(6)
        assert g.m == 15 and girth(g) == 3

    def test_complete_bipartite(self):
        g = complete_bipartite(3, 4)
        assert g.n == 7 and g.m == 12
        assert girth(g) == 4

    def test_grid(self):
        g = grid_2d(4, 5)
        assert g.n == 20 and g.m == 4 * 4 + 3 * 5
        assert girth(g) == 4
        assert diameter(g) == 3 + 4

    def test_torus_is_regular(self):
        g = grid_2d(4, 4, torus=True)
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_hypercube(self):
        g = hypercube(4)
        assert g.n == 16 and g.m == 32
        assert diameter(g) == 4 and girth(g) == 4

    def test_balanced_tree(self):
        g = balanced_tree(2, 3)
        assert g.n == 15 and g.m == 14
        assert girth(g) == float("inf")

    def test_barbell(self):
        g = barbell(4, 5)
        assert is_connected(g)
        assert g.m == 2 * 6 + 5

    def test_chain_of_cliques(self):
        g = chain_of_cliques(3, 4, link_length=2)
        assert is_connected(g)
        assert g.m == 3 * 6 + 2 * 2
        assert girth(g) == 3


class TestRandomFamilies:
    def test_gnp_seed_determinism(self):
        a = erdos_renyi_gnp(100, 0.05, seed=1)
        b = erdos_renyi_gnp(100, 0.05, seed=1)
        assert a == b

    def test_gnp_edge_count_plausible(self):
        g = erdos_renyi_gnp(200, 0.05, seed=2)
        expected = 0.05 * 200 * 199 / 2
        assert 0.6 * expected < g.m < 1.4 * expected

    def test_gnp_extremes(self):
        assert erdos_renyi_gnp(10, 0.0, seed=1).m == 0
        assert erdos_renyi_gnp(10, 1.0, seed=1).m == 45

    def test_gnm_exact_count(self):
        g = erdos_renyi_gnm(50, 100, seed=3)
        assert g.n == 50 and g.m == 100

    def test_gnm_rejects_impossible(self):
        with pytest.raises(ValueError):
            erdos_renyi_gnm(5, 11)

    def test_random_regular(self):
        g = random_regular(30, 4, seed=4)
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_random_regular_parity_check(self):
        with pytest.raises(ValueError):
            random_regular(5, 3)

    def test_random_regular_degree_bound(self):
        with pytest.raises(ValueError):
            random_regular(4, 4)

    def test_preferential_attachment(self):
        g = preferential_attachment(60, 2, seed=5)
        assert g.n == 60
        assert g.m == 3 + 2 * (60 - 3)
        assert is_connected(g)

    def test_preferential_attachment_validation(self):
        with pytest.raises(ValueError):
            preferential_attachment(5, 0)

    def test_relabel_shuffled_preserves_structure(self):
        g = grid_2d(4, 4)
        shuffled, mapping = relabel_shuffled(g, seed=6)
        assert shuffled.n == g.n and shuffled.m == g.m
        assert girth(shuffled) == girth(g)
        for u, v in g.edges():
            assert shuffled.has_edge(mapping[u], mapping[v])
