"""Tests for the Section 3 lower-bound adversary harness."""

from __future__ import annotations

import pytest

from repro.core.lower_bounds import (
    forced_discard_probability,
    run_locality_adversary,
    tau_round_spanner,
)
from repro.graphs import lower_bound_graph
from repro.spanner import verify_connectivity


class TestForcedDiscardProbability:
    def test_formula(self):
        lbg = lower_bound_graph(tau=1, chi=3, mu=10)
        assert forced_discard_probability(lbg, 2.0) == pytest.approx(
            1 - 0.5 - 1 / 20
        )

    def test_clamped_at_zero(self):
        lbg = lower_bound_graph(tau=1, chi=3, mu=1)
        assert forced_discard_probability(lbg, 1.0) == 0.0

    def test_rejects_c_below_one(self):
        lbg = lower_bound_graph(tau=1, chi=3, mu=2)
        with pytest.raises(ValueError):
            forced_discard_probability(lbg, 0.5)


class TestTauRoundSpanner:
    def test_keeps_all_chain_edges(self):
        lbg = lower_bound_graph(tau=2, chi=4, mu=4)
        sp = tau_round_spanner(lbg, 0.9, seed=1)
        assert lbg.chain_edges <= sp.edges

    def test_discard_zero_keeps_everything(self):
        lbg = lower_bound_graph(tau=1, chi=3, mu=3)
        sp = tau_round_spanner(lbg, 0.0, seed=2)
        assert sp.size == lbg.m

    def test_discard_one_keeps_chains_plus_correctness_patch(self):
        # At discard probability 1 every vertex is stranded, so each of
        # the 2 chi block vertices per block keeps one patch edge.
        lbg = lower_bound_graph(tau=1, chi=3, mu=3)
        sp = tau_round_spanner(lbg, 1.0, seed=3)
        assert lbg.chain_edges <= sp.edges
        block_kept = sp.edges & lbg.block_edges
        # left j -> right 0 (3 edges) plus right 1, 2 -> left 0, per block.
        assert len(block_kept) == 3 * 5

    def test_connectivity_always_preserved(self):
        # Chains alone connect the graph (every block vertex has a chain).
        lbg = lower_bound_graph(tau=2, chi=5, mu=3)
        sp = tau_round_spanner(lbg, 1.0, seed=4)
        assert verify_connectivity(lbg.graph, sp.subgraph())

    def test_discard_rate_statistics(self):
        lbg = lower_bound_graph(tau=1, chi=8, mu=6)
        sp = tau_round_spanner(lbg, 0.5, seed=5)
        kept_blocks = len(sp.edges & lbg.block_edges)
        total_blocks = len(lbg.block_edges)
        assert 0.35 < kept_blocks / total_blocks < 0.65

    def test_validation(self):
        lbg = lower_bound_graph(tau=1, chi=3, mu=2)
        with pytest.raises(ValueError):
            tau_round_spanner(lbg, 1.5)


class TestAdversaryOutcome:
    def test_measured_tracks_prediction(self):
        lbg = lower_bound_graph(tau=2, chi=8, mu=12)
        out = run_locality_adversary(lbg, c=2.0, trials=40, seed=6)
        # Expected discarded criticals = p mu; allow Monte-Carlo slack.
        assert out.mean_discarded_criticals == pytest.approx(
            out.predicted_discarded_criticals, rel=0.25
        )
        # Each discarded critical edge costs exactly +2 (chi is large
        # enough that a detour always survives).
        assert out.mean_additive_distortion == pytest.approx(
            2 * out.mean_discarded_criticals, rel=0.05, abs=0.5
        )

    def test_distortion_ratio_near_one(self):
        lbg = lower_bound_graph(tau=1, chi=8, mu=10)
        out = run_locality_adversary(lbg, c=2.0, trials=60, seed=7)
        assert 0.7 < out.distortion_ratio < 1.3

    def test_explicit_discard_probability(self):
        lbg = lower_bound_graph(tau=1, chi=6, mu=8)
        out = run_locality_adversary(
            lbg, trials=20, seed=8, discard_probability=0.25
        )
        assert out.discard_probability == 0.25

    def test_larger_budget_means_less_distortion(self):
        lbg = lower_bound_graph(tau=1, chi=6, mu=10)
        tight = run_locality_adversary(lbg, c=4.0, trials=30, seed=9)
        loose = run_locality_adversary(lbg, c=1.2, trials=30, seed=9)
        assert (
            tight.predicted_additive_distortion
            > loose.predicted_additive_distortion
        )

    def test_witness_distance_recorded(self):
        lbg = lower_bound_graph(tau=3, chi=4, mu=5)
        out = run_locality_adversary(lbg, c=2.0, trials=5, seed=10)
        assert out.witness_distance == lbg.witness_distance()
