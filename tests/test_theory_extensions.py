"""Tests for the Corollary 2 / Elkin–Zhang closed-form additions."""

from __future__ import annotations

import math

import pytest

from repro.analysis.theory import (
    PHI,
    corollary2_betas,
    elkin_zhang_beta,
    fibonacci_spanner_order_max,
)


class TestCorollary2Betas:
    def test_returns_triple(self):
        b1, b2, b3 = corollary2_betas(10**6, eps=0.5, t=2)
        assert b1 > 0 and b2 > 0 and b3 > 0

    def test_beta1_grows_with_t(self):
        assert corollary2_betas(10**6, 0.5, 4)[0] > corollary2_betas(
            10**6, 0.5, 2
        )[0]

    def test_beta2_grows_with_ell_prime(self):
        n = 10**6
        assert corollary2_betas(n, 0.5, 2, ell_prime=5)[1] > (
            corollary2_betas(n, 0.5, 2, ell_prime=3)[1]
        )

    def test_beta3_shrinks_with_eps(self):
        n = 10**6
        assert corollary2_betas(n, 1.0, 2)[2] < corollary2_betas(
            n, 0.25, 2
        )[2]

    def test_beta1_formula(self):
        n, t = 2**32, 3
        b1, _, _ = corollary2_betas(n, 0.5, t)
        assert b1 == pytest.approx(2**t * 32 ** math.log(2, PHI))

    def test_small_n_rejected(self):
        with pytest.raises(ValueError):
            corollary2_betas(2, 0.5, 2)


class TestElkinZhangBeta:
    def test_positive_and_growing_in_t(self):
        n = 10**6
        assert elkin_zhang_beta(n, 0.5, 3) > elkin_zhang_beta(n, 0.5, 2) > 0

    def test_shrinks_with_eps(self):
        n = 10**6
        assert elkin_zhang_beta(n, 1.0, 2) < elkin_zhang_beta(n, 0.1, 2)

    def test_paper_comparison_fibonacci_wins_asymptotically(self):
        # Sect. 1.2: the Fibonacci beta (t-aware Corollary 2 beta_3)
        # "compares favorably" with Elkin-Zhang's.  At large n and equal
        # (eps, t) the EZ expression dominates.
        n, eps, t = 2**64, 0.5, 2
        fib_beta3 = corollary2_betas(n, eps, t)[2]
        ez_beta = elkin_zhang_beta(n, eps, t)
        assert fib_beta3 < ez_beta

    def test_small_n_rejected(self):
        with pytest.raises(ValueError):
            elkin_zhang_beta(8, 0.5, 2)


class TestOrderMax:
    def test_known_regimes(self):
        # log_phi log2(n): n = 2^16 -> log2 = 16 -> log_phi 16 ~ 5.76.
        assert fibonacci_spanner_order_max(2**16) == 5
        assert fibonacci_spanner_order_max(2**64) == 8
