"""The deterministic skeleton protocol and its analytic budgets.

The protocol draws no randomness, so the contract is strict: the
distributed run must reproduce the sequential reference *exactly*
(edge set and per-superphase telemetry), hold the closed-form size and
stretch budgets from :mod:`repro.core.theory`, ignore its ``seed``
argument, and survive faults under the reliable adapter without any
output change.
"""

import math

import pytest

from repro.baselines.deterministic_skeleton import sequential_deterministic
from repro.core.theory import (
    deterministic_phase_count,
    deterministic_radius_bound,
    deterministic_size_bound,
    deterministic_stretch_bound,
    deterministic_threshold,
    protocol_size_budget,
    protocol_stretch_budget,
)
from repro.distributed.deterministic_protocol import (
    distributed_deterministic,
)
from repro.distributed.faults import FaultPlan
from repro.graphs.generators import (
    barbell,
    complete,
    cycle,
    erdos_renyi_gnp,
    grid_2d,
    hypercube,
    path,
)
from repro.spanner.verification import (
    verify_connectivity,
    verify_spanner_guarantee,
    verify_subgraph,
)

HOSTS = [
    ("path9", lambda: path(9)),
    ("cycle12", lambda: cycle(12)),
    ("grid5", lambda: grid_2d(5, 5)),
    ("k7", lambda: complete(7)),
    ("hypercube4", lambda: hypercube(4)),
    ("barbell", lambda: barbell(5, 3)),
    ("er30", lambda: erdos_renyi_gnp(30, 0.15, seed=3)),
    ("er60", lambda: erdos_renyi_gnp(60, 0.08, seed=1)),
]


class TestTheory:
    def test_threshold_doubly_exponential(self):
        assert deterministic_threshold(4, 0) == 4
        assert deterministic_threshold(4, 1) == 24
        assert deterministic_threshold(4, 2) == 624
        assert deterministic_threshold(1, 0) == 1
        assert deterministic_threshold(1, 2) == 15

    def test_threshold_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            deterministic_threshold(0, 0)
        with pytest.raises(ValueError):
            deterministic_threshold(4, -1)

    def test_phase_count(self):
        # L = (first i with t_i >= n) + 1.
        assert deterministic_phase_count(1, 4) == 1
        assert deterministic_phase_count(4, 4) == 1
        assert deterministic_phase_count(5, 4) == 2
        assert deterministic_phase_count(24, 4) == 2
        assert deterministic_phase_count(25, 4) == 3
        assert deterministic_phase_count(600, 4) == 3

    def test_radius_bound_recurrence(self):
        # r_{i+1} = 5 r_i + 2, r_0 = 0.
        assert deterministic_radius_bound(0) == 0
        assert deterministic_radius_bound(1) == 2
        assert deterministic_radius_bound(2) == 12
        assert deterministic_radius_bound(3) == 62

    def test_size_and_stretch_bounds_linear_regime(self):
        n, D = 600, 4
        L = deterministic_phase_count(n, D)
        assert deterministic_size_bound(n, D) == float(n * (D + 1) * L + n)
        assert deterministic_stretch_bound(n, D) == float(
            4 * deterministic_radius_bound(L - 1) + 1
        )

    def test_budget_dispatchers_have_deterministic_branch(self):
        assert protocol_size_budget(
            "deterministic", 600, D=4
        ) == deterministic_size_bound(600, 4)
        alpha, beta = protocol_stretch_budget("deterministic", 600, D=4)
        assert alpha == deterministic_stretch_bound(600, 4)
        assert beta == 0.0

    def test_budget_dispatchers_reject_unknown_protocols(self):
        with pytest.raises(ValueError, match="nosuch"):
            protocol_size_budget("nosuch", 50)
        with pytest.raises(ValueError, match="nosuch"):
            protocol_stretch_budget("nosuch", 50)


class TestDistributed:
    @pytest.mark.parametrize("name,build", HOSTS)
    @pytest.mark.parametrize("D", [2, 4])
    def test_matches_sequential_reference_exactly(self, name, build, D):
        g = build()
        spanner = distributed_deterministic(g, D=D)
        ref_edges, info = sequential_deterministic(g, D=D)
        assert set(spanner.edges) == ref_edges
        for key in (
            "superphases",
            "cluster_counts",
            "ruling_iterations",
            "superphase_tallies",
        ):
            assert spanner.metadata[key] == info[key], key

    @pytest.mark.parametrize("name,build", HOSTS)
    def test_budgets_and_connectivity(self, name, build):
        g = build()
        spanner = distributed_deterministic(g, D=4)
        edges = tuple(sorted(spanner.edges))
        assert verify_subgraph(g, edges)
        sub = g.edge_subgraph(edges)
        assert verify_connectivity(g, sub)
        assert len(edges) <= math.ceil(deterministic_size_bound(g.n, 4))
        alpha = deterministic_stretch_bound(g.n, 4)
        ok, worst = verify_spanner_guarantee(g, sub, alpha, 0.0)
        assert ok, worst

    def test_seed_is_ignored(self):
        g = erdos_renyi_gnp(40, 0.12, seed=9)
        a = distributed_deterministic(g, D=4, seed=1)
        b = distributed_deterministic(g, D=4, seed=999)
        assert set(a.edges) == set(b.edges)
        assert a.metadata["superphases"] == b.metadata["superphases"]

    def test_rejects_bad_D(self):
        g = path(4)
        with pytest.raises(ValueError):
            distributed_deterministic(g, D=0)
        with pytest.raises(ValueError):
            sequential_deterministic(g, D=0)

    def test_reliable_under_faults_matches_clean(self):
        g = erdos_renyi_gnp(36, 0.12, seed=5)
        plan = FaultPlan(
            seed=7,
            drop_rate=0.1,
            duplicate_rate=0.05,
            delay_rate=0.05,
            reorder_rate=0.1,
        )
        clean = distributed_deterministic(g, D=4)
        faulty = distributed_deterministic(
            g, D=4, reliable=True, fault_plan=plan
        )
        assert set(clean.edges) == set(faulty.edges)
        assert not faulty.metadata["degraded"]

    def test_lossy_faults_degrade_without_raising(self):
        # Without the reliable adapter, dropped messages may starve the
        # progress argument; the driver must degrade, not raise.
        g = erdos_renyi_gnp(30, 0.15, seed=2)
        plan = FaultPlan(seed=3, drop_rate=0.4)
        spanner = distributed_deterministic(g, D=4, fault_plan=plan)
        assert verify_subgraph(g, tuple(sorted(spanner.edges)))

    def test_budgeted_rounds_cover_actual_rounds(self):
        g = grid_2d(6, 6)
        spanner = distributed_deterministic(g, D=4)
        stats = spanner.metadata["network_stats"]
        assert stats.rounds <= spanner.metadata["budgeted_rounds"]

    def test_empty_and_singleton_hosts(self):
        from repro.graphs.graph import Graph

        empty = Graph(vertices=(), edges=())
        assert set(distributed_deterministic(empty, D=4).edges) == set()
        single = Graph(vertices=(0,), edges=())
        assert set(distributed_deterministic(single, D=4).edges) == set()
        ref_edges, info = sequential_deterministic(single, D=4)
        assert ref_edges == set()
