"""Tests for the distributed weighted Baswana–Sen protocol."""

from __future__ import annotations

import pytest

from repro.distributed.baswana_sen_protocol import (
    distributed_baswana_sen_weighted,
)
from repro.graphs import erdos_renyi_gnp
from repro.graphs.weighted import WeightedGraph, weighted_stretch


def _random_weighted(n, p, seed):
    return WeightedGraph.from_graph(
        erdos_renyi_gnp(n, p, seed=seed), seed=seed + 1
    )


class TestDistributedWeightedBaswanaSen:
    def test_weighted_stretch_guarantee(self):
        g = _random_weighted(120, 0.08, seed=1)
        for k in (2, 3):
            edges, stats = distributed_baswana_sen_weighted(g, k, seed=2)
            worst, _ = weighted_stretch(g, edges, num_sources=20, seed=3)
            assert worst <= 2 * k - 1 + 1e-9

    def test_round_and_width_budget(self):
        g = _random_weighted(100, 0.1, seed=4)
        k = 3
        _, stats = distributed_baswana_sen_weighted(g, k, seed=5)
        assert stats.rounds <= 2 * k + 1
        assert stats.max_message_words == 1

    def test_k1_keeps_everything(self):
        g = _random_weighted(30, 0.2, seed=6)
        edges, _ = distributed_baswana_sen_weighted(g, 1)
        assert len(edges) == g.m

    def test_size_in_sequential_regime(self):
        from repro.baselines import baswana_sen_weighted

        g = _random_weighted(250, 0.1, seed=7)
        dist_edges, _ = distributed_baswana_sen_weighted(g, 3, seed=8)
        seq_edges = baswana_sen_weighted(g, 3, seed=9)
        assert 0.4 < len(dist_edges) / max(1, len(seq_edges)) < 2.5

    def test_validates_k(self):
        with pytest.raises(ValueError):
            distributed_baswana_sen_weighted(WeightedGraph(), 0)

    def test_light_edges_preferred(self):
        # A triangle where the heavy edge should be dropped whenever the
        # algorithm has the choice: with k=2 the spanner either keeps all
        # (if the triangle edge survives filtering) or drops exactly the
        # heaviest.
        g = WeightedGraph([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 100.0)])
        edges, _ = distributed_baswana_sen_weighted(g, 2, seed=10)
        worst, _ = weighted_stretch(g, edges, seed=1)
        assert worst <= 3 + 1e-9
