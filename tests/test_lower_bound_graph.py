"""Tests for the G(tau, chi, mu) lower-bound family (Section 3)."""

from __future__ import annotations

import pytest

from repro.graphs import (
    bfs_distances,
    is_connected,
    lower_bound_graph,
    theorem3_parameters,
    theorem5_parameters,
    theorem6_parameters,
)
from repro.graphs.properties import distance


class TestStructure:
    def test_block_and_chain_edge_partition(self):
        lbg = lower_bound_graph(tau=2, chi=4, mu=3)
        all_edges = lbg.graph.edge_set()
        assert lbg.block_edges | lbg.chain_edges == all_edges
        assert not (lbg.block_edges & lbg.chain_edges)

    def test_block_edge_count(self):
        lbg = lower_bound_graph(tau=1, chi=5, mu=4)
        assert len(lbg.block_edges) == 4 * 25

    def test_critical_edges_are_block_edges(self):
        lbg = lower_bound_graph(tau=2, chi=3, mu=5)
        assert len(lbg.critical_edges) == 5
        assert all(e in lbg.block_edges for e in lbg.critical_edges)

    def test_connected(self):
        assert is_connected(lower_bound_graph(tau=3, chi=3, mu=4).graph)

    def test_vertex_count_close_to_paper_formula(self):
        tau, chi, mu = 4, 6, 5
        lbg = lower_bound_graph(tau, chi, mu)
        # n_tau < (mu + 1) chi (tau + 6) per Sect. 3.
        assert lbg.n < (mu + 1) * chi * (tau + 6)

    def test_edge_count_exceeds_blocks(self):
        tau, chi, mu = 2, 5, 4
        lbg = lower_bound_graph(tau, chi, mu)
        assert lbg.m > mu * chi**2

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            lower_bound_graph(tau=1, chi=1, mu=2)
        with pytest.raises(ValueError):
            lower_bound_graph(tau=1, chi=3, mu=0)
        with pytest.raises(ValueError):
            lower_bound_graph(tau=-1, chi=3, mu=2)


class TestMetric:
    def test_witness_distance_formula(self):
        lbg = lower_bound_graph(tau=3, chi=4, mu=5)
        u, v = lbg.witness_pair()
        assert distance(lbg.graph, u, v) == lbg.witness_distance()

    def test_short_chain_is_shortest_route(self):
        # Column 1 (short chains + critical edges) carries the shortest
        # path; column j >= 2 chains are 4 longer per block gap.
        lbg = lower_bound_graph(tau=2, chi=3, mu=2)
        d_col1 = distance(lbg.graph, lbg.right[0][0], lbg.left[1][0])
        d_col2 = distance(lbg.graph, lbg.right[0][1], lbg.left[1][1])
        assert d_col1 == lbg.tau + 1
        assert d_col2 == lbg.tau + 5

    def test_discarding_critical_edge_costs_exactly_two(self):
        lbg = lower_bound_graph(tau=2, chi=4, mu=3)
        u, v = lbg.witness_pair()
        base = distance(lbg.graph, u, v)
        g = lbg.graph.copy()
        g.remove_edge(*lbg.critical_edges[1])
        assert distance(g, u, v) == base + 2

    def test_discarding_all_criticals_costs_two_each(self):
        lbg = lower_bound_graph(tau=1, chi=4, mu=4)
        u, v = lbg.witness_pair()
        base = distance(lbg.graph, u, v)
        g = lbg.graph.copy()
        for e in lbg.critical_edges:
            g.remove_edge(*e)
        assert distance(g, u, v) == base + 2 * len(lbg.critical_edges)
        assert lbg.detour_distance(len(lbg.critical_edges)) == base + 8

    def test_pendant_chains_pad_tau_neighborhoods(self):
        # Every block vertex should see no "end of graph" within tau hops:
        # its tau-neighborhood contains no vertex of degree 1 closer than
        # tau hops... i.e. pendants have length tau + 1.
        tau = 3
        lbg = lower_bound_graph(tau=tau, chi=3, mu=2)
        for j in range(lbg.chi):
            v = lbg.left[0][j]
            dist = bfs_distances(lbg.graph, v, cutoff=tau)
            leaves = [
                u for u, d in dist.items()
                if lbg.graph.degree(u) == 1 and d < tau
            ]
            assert leaves == []


class TestParameterPickers:
    def test_theorem3(self):
        tau, chi, mu = theorem3_parameters(10_000, delta=0.2, c=2, tau=3)
        assert tau == 3 and chi >= 2 and mu >= 1

    def test_theorem5_mu_tracks_beta(self):
        # Theorem 5 sets mu = 2 beta.
        _, _, mu = theorem5_parameters(200_000, delta=0.1, beta=8)
        assert abs(mu - 16) <= 8  # integer rounding of tau skews this a bit

    def test_theorem6_valid(self):
        tau, chi, mu = theorem6_parameters(
            50_000, sigma=0.2, eps=0.5, c=1.0
        )
        assert tau >= 1 and chi >= 2 and mu >= 1

    def test_pickers_produce_buildable_graphs(self):
        for tau, chi, mu in (
            theorem3_parameters(2000, 0.1, 2, 2),
            theorem5_parameters(2000, 0.1, 4),
            theorem6_parameters(2000, 0.1, 0.5, 1.0),
        ):
            chi = min(chi, 8)
            mu = min(mu, 8)
            tau = min(tau, 5)
            lbg = lower_bound_graph(tau, chi, mu)
            assert is_connected(lbg.graph)
