"""Tests for the distributed spanner protocols (Baswana–Sen, Fibonacci,
skeleton) — guarantees, model compliance, and sequential cross-validation."""

from __future__ import annotations

import math

import pytest

from repro.analysis.theory import skeleton_distortion_bound
from repro.core import build_skeleton
from repro.core.fibonacci import FibonacciParams, sample_levels
from repro.distributed import (
    distributed_baswana_sen,
    distributed_fibonacci_spanner,
    distributed_skeleton,
)
from repro.distributed.fibonacci_protocol import adjust_probabilities_for_cap
from repro.graphs import erdos_renyi_gnp, grid_2d, path
from repro.spanner import (
    verify_connectivity,
    verify_spanner_guarantee,
    verify_subgraph,
)
from repro.util import make_prf


class TestDistributedBaswanaSen:
    def test_guarantee(self, any_graph):
        k = 3
        sp = distributed_baswana_sen(any_graph, k, seed=1)
        ok, worst = verify_spanner_guarantee(
            any_graph, sp.subgraph(), alpha=2 * k - 1
        )
        assert ok, worst
        assert verify_connectivity(any_graph, sp.subgraph())

    def test_round_complexity_2k(self):
        g = erdos_renyi_gnp(150, 0.08, seed=2)
        k = 4
        sp = distributed_baswana_sen(g, k, seed=3)
        assert sp.metadata["network_stats"].rounds <= 2 * k + 1

    def test_unit_messages(self):
        g = erdos_renyi_gnp(120, 0.08, seed=4)
        sp = distributed_baswana_sen(g, 3, seed=5)
        assert sp.metadata["network_stats"].max_message_words == 1

    def test_k1_whole_graph(self):
        g = grid_2d(4, 4)
        assert distributed_baswana_sen(g, 1).size == g.m

    def test_size_comparable_to_sequential(self):
        g = erdos_renyi_gnp(300, 0.1, seed=6)
        dist_sizes = [
            distributed_baswana_sen(g, 3, seed=s).size for s in range(3)
        ]
        from repro.baselines import baswana_sen_spanner

        seq_sizes = [
            baswana_sen_spanner(g, 3, seed=s).size for s in range(3)
        ]
        assert (
            0.5
            < (sum(dist_sizes) / 3) / (sum(seq_sizes) / 3)
            < 2.0
        )


class TestDistributedFibonacci:
    def test_guarantee_and_connectivity(self, any_graph):
        sp = distributed_fibonacci_spanner(any_graph, order=2, seed=7)
        assert verify_subgraph(any_graph, sp.edges)
        assert verify_connectivity(any_graph, sp.subgraph())

    def test_matches_sequential_with_shared_levels(self):
        from repro.core.fibonacci import build_fibonacci_spanner

        g = erdos_renyi_gnp(150, 0.05, seed=8)
        params = FibonacciParams.resolve(g.n, order=2, eps=0.5)
        levels = sample_levels(g, params, seed=9)
        seq = build_fibonacci_spanner(g, order=2, eps=0.5, levels=levels)
        dist = distributed_fibonacci_spanner(
            g, order=2, eps=0.5, levels=levels
        )
        # Same balls, same forests — possibly different (equally short)
        # path tie-breaks, so sizes agree closely but not exactly.
        assert abs(seq.size - dist.size) <= 0.1 * max(seq.size, 1)
        # Both must satisfy the same metric guarantee on sampled pairs.
        assert seq.stretch(num_sources=15, seed=1).ok
        assert dist.stretch(num_sources=15, seed=1).ok

    def test_rounds_scale_with_ell_power_order(self):
        g = grid_2d(9, 9)
        sp = distributed_fibonacci_spanner(g, order=2, eps=1.0, seed=10)
        ell, o = sp.metadata["ell"], sp.metadata["order"]
        budget = 6 * sum(ell**i + 1 for i in range(o + 1))
        assert sp.metadata["network_stats"].rounds <= budget

    def test_message_cap_respected_or_ceased(self):
        # With a harsh cap the protocol must stay correct via the
        # Las-Vegas fallback, never silently wrong.
        g = erdos_renyi_gnp(100, 0.08, seed=11)
        sp = distributed_fibonacci_spanner(
            g, order=2, seed=12, max_message_words=2
        )
        assert verify_connectivity(g, sp.subgraph())

    def test_fallback_commands_recorded(self):
        g = erdos_renyi_gnp(100, 0.1, seed=13)
        sp = distributed_fibonacci_spanner(
            g, order=2, seed=14, max_message_words=1
        )
        assert "fallback_commands" in sp.metadata

    def test_phase_stats_cover_stages(self):
        g = grid_2d(6, 6)
        sp = distributed_fibonacci_spanner(g, order=2, seed=15)
        names = [name for name, _ in sp.metadata["phase_stats"]]
        assert any(name.startswith("forest") for name in names)
        assert any(name.startswith("ball") for name in names)
        assert any(name.startswith("retrace") for name in names)

    def test_t_parameter_sets_cap(self):
        g = erdos_renyi_gnp(120, 0.06, seed=16)
        sp = distributed_fibonacci_spanner(g, order=3, t=2, seed=17)
        assert sp.metadata["message_cap"] == math.ceil(g.n ** 0.5)


class TestAdjustProbabilities:
    def test_untouched_when_ratios_small(self):
        qs = [0.5, 0.4, 0.3]
        assert adjust_probabilities_for_cap(10**6, qs, t=2) == qs

    def test_replaces_steep_tail_with_geometric(self):
        n = 10**4
        qs = [0.5, 1e-4]
        out = adjust_probabilities_for_cap(n, qs, t=4)
        ratio = n ** (1 / 4)
        for a, b in zip(out, out[1:]):
            assert a / b <= ratio + 1e-6

    def test_order_grows_at_most_by_t_ish(self):
        n = 10**4
        qs = [0.9, 1e-4]
        out = adjust_probabilities_for_cap(n, qs, t=4)
        assert len(out) <= len(qs) + 4

    def test_validates_t(self):
        with pytest.raises(ValueError):
            adjust_probabilities_for_cap(100, [0.5], t=0)


class TestDistributedSkeleton:
    def test_cross_validation_with_sequential(self):
        """Same PRF => identical cluster evolution, call for call."""
        g = erdos_renyi_gnp(200, 0.05, seed=18)
        seq = build_skeleton(g, D=4, prf=make_prf(99))
        dist = distributed_skeleton(g, D=4, seed=99)
        assert (
            seq.metadata["cluster_counts"] == dist.metadata["cluster_counts"]
        )
        assert abs(seq.size - dist.size) <= 0.05 * seq.size + 5

    def test_guarantees(self, any_graph):
        sp = distributed_skeleton(any_graph, D=4, seed=19)
        assert verify_subgraph(any_graph, sp.edges)
        assert verify_connectivity(any_graph, sp.subgraph())

    def test_distortion_bound(self):
        g = erdos_renyi_gnp(150, 0.07, seed=20)
        sp = distributed_skeleton(g, D=4, seed=21)
        bound = skeleton_distortion_bound(g.n, 4)
        assert sp.stretch(num_sources=20, seed=1).max_multiplicative <= bound

    def test_no_cap_violations_at_default_cap(self):
        g = erdos_renyi_gnp(200, 0.06, seed=22)
        sp = distributed_skeleton(g, D=4, seed=23)
        assert sp.metadata["network_stats"].violations == 0

    def test_budgeted_rounds_reported(self):
        g = grid_2d(8, 8)
        sp = distributed_skeleton(g, D=4, seed=24)
        stats = sp.metadata["network_stats"]
        assert sp.metadata["budgeted_rounds"] >= stats.rounds

    def test_path_graph(self):
        g = path(30)
        sp = distributed_skeleton(g, D=4, seed=25)
        assert verify_connectivity(g, sp.subgraph())

    def test_disconnected_graph(self):
        from repro.graphs import Graph

        g = Graph(edges=[(0, 1), (1, 2), (5, 6)])
        g.add_vertex(9)
        sp = distributed_skeleton(g, D=4, seed=26)
        assert verify_connectivity(g, sp.subgraph())
