"""Tests for the extremal high-girth graphs and the girth size bound."""

from __future__ import annotations

import pytest

from repro.baselines import greedy_spanner
from repro.graphs import girth, is_connected
from repro.graphs.extremal import (
    generalized_petersen,
    heawood,
    mcgee,
    petersen,
    polarity_free_incidence,
)


class TestNamedCages:
    def test_petersen(self):
        g = petersen()
        assert g.n == 10 and g.m == 15
        assert all(g.degree(v) == 3 for v in g.vertices())
        assert girth(g) == 5

    def test_heawood(self):
        g = heawood()
        assert g.n == 14 and g.m == 21
        assert all(g.degree(v) == 3 for v in g.vertices())
        assert girth(g) == 6

    def test_mcgee(self):
        g = mcgee()
        assert g.n == 24 and g.m == 36
        assert all(g.degree(v) == 3 for v in g.vertices())
        assert girth(g) == 7

    def test_generalized_petersen_family(self):
        g = generalized_petersen(8, 3)
        assert g.n == 16 and g.m == 24
        assert is_connected(g)

    def test_generalized_petersen_validation(self):
        with pytest.raises(ValueError):
            generalized_petersen(4, 2)


class TestProjectivePlaneIncidence:
    @pytest.mark.parametrize("q", [2, 3, 5])
    def test_structure(self, q):
        g = polarity_free_incidence(q)
        n_side = q * q + q + 1
        assert g.n == 2 * n_side
        assert g.m == (q + 1) * n_side
        assert all(g.degree(v) == q + 1 for v in g.vertices())
        assert girth(g) == 6
        assert is_connected(g)

    def test_q2_is_heawood_sized(self):
        g = polarity_free_incidence(2)
        assert g.n == 14 and g.m == 21

    def test_density_is_extremal(self):
        # m = Theta(n^{3/2}): the densest girth-6 graphs possible.
        g = polarity_free_incidence(5)
        assert g.m > 0.5 * (g.n / 2) ** 1.5

    def test_rejects_composite(self):
        with pytest.raises(ValueError):
            polarity_free_incidence(4)
        with pytest.raises(ValueError):
            polarity_free_incidence(1)


class TestGirthSizeBound:
    """The Sect. 1 mechanism: on girth > 2k graphs, spanners with
    alpha + beta <= 2k - 1 must keep EVERY edge."""

    @pytest.mark.parametrize(
        "graph_fn,k",
        [(petersen, 2), (heawood, 2), (mcgee, 3)],
    )
    def test_spanner_forced_to_keep_all_edges(self, graph_fn, k):
        g = graph_fn()
        sp = greedy_spanner(g, 2 * k - 1)
        assert sp.size == g.m

    def test_projective_plane_forces_dense_3_spanner(self):
        # girth 6 > 4: every 3-spanner keeps all (q+1)(q^2+q+1) edges —
        # the Omega(n^{3/2}) lower bound for k = 2.
        g = polarity_free_incidence(3)
        sp = greedy_spanner(g, 3)
        assert sp.size == g.m
        assert sp.size > (g.n / 2) ** 1.5 * 0.5

    def test_bound_is_tight_for_the_threshold(self):
        # One step past the girth: a (2k+1)-spanner may drop edges.
        g = petersen()  # girth 5
        sp = greedy_spanner(g, 5)
        assert sp.size < g.m
