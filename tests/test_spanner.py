"""Tests for the Spanner object, stretch measurement and verification."""

from __future__ import annotations

import pytest

from repro.graphs import Graph, cycle, grid_2d, path
from repro.spanner import (
    Spanner,
    distance_profile,
    pair_stretch,
    stretch_statistics,
    verify_connectivity,
    verify_spanner_guarantee,
    verify_subgraph,
)


def tree_spanner_of_cycle(n: int):
    g = cycle(n)
    edges = [(i, i + 1) for i in range(n - 1)]  # drop the closing edge
    return g, Spanner(g, edges, {"algorithm": "test"})


class TestSpannerObject:
    def test_size_and_density(self):
        g, sp = tree_spanner_of_cycle(10)
        assert sp.size == 9
        assert sp.density == pytest.approx(0.9)

    def test_rejects_foreign_edges(self):
        g = path(4)
        with pytest.raises(ValueError):
            Spanner(g, [(0, 2)])

    def test_edges_canonicalized(self):
        g = path(4)
        sp = Spanner(g, [(1, 0), (0, 1)])
        assert sp.edges == {(0, 1)}

    def test_subgraph_cached_and_complete(self):
        g, sp = tree_spanner_of_cycle(8)
        sub = sp.subgraph()
        assert sub is sp.subgraph()
        assert sub.n == g.n and sub.m == 7

    def test_repr_mentions_algorithm(self):
        _, sp = tree_spanner_of_cycle(5)
        assert "test" in repr(sp)

    def test_verify_shortcut(self):
        g, sp = tree_spanner_of_cycle(10)
        assert sp.verify(alpha=9)
        assert not sp.verify(alpha=1)


class TestStretchStatistics:
    def test_identity_spanner_has_unit_stretch(self):
        g = grid_2d(4, 4)
        stats = stretch_statistics(g, g)
        assert stats.max_multiplicative == 1.0
        assert stats.max_additive == 0.0
        assert stats.ok

    def test_tree_spanner_of_cycle_worst_pair(self):
        g, sp = tree_spanner_of_cycle(10)
        stats = stretch_statistics(g, sp.subgraph())
        # Pair (0, 9): distance 1 in cycle, 9 in the path.
        assert stats.max_multiplicative == 9.0
        assert stats.max_additive == 8.0

    def test_sampled_sources_subset(self):
        g = grid_2d(5, 5)
        stats = stretch_statistics(g, g, num_sources=3, seed=1)
        assert stats.num_pairs == 3 * 24

    def test_explicit_sources(self):
        g = path(6)
        stats = stretch_statistics(g, g, sources=[0])
        assert stats.num_pairs == 5

    def test_disconnection_detected(self):
        g = path(4)
        sub = g.edge_subgraph([(0, 1)])
        stats = stretch_statistics(g, sub)
        assert not stats.ok
        assert stats.disconnected_pairs > 0
        assert "DISCONNECTED" in str(stats)

    def test_mean_bounded_by_max(self):
        g, sp = tree_spanner_of_cycle(12)
        stats = stretch_statistics(g, sp.subgraph())
        assert stats.mean_multiplicative <= stats.max_multiplicative
        assert stats.mean_additive <= stats.max_additive


class TestPairStretch:
    def test_exact_values(self):
        g, sp = tree_spanner_of_cycle(10)
        mult, add = pair_stretch(g, sp.subgraph(), 0, 9)
        assert (mult, add) == (9.0, 8.0)

    def test_same_vertex(self):
        g = path(3)
        assert pair_stretch(g, g, 1, 1) == (1.0, 0.0)

    def test_disconnected_pair_is_inf(self):
        g = path(3)
        sub = g.edge_subgraph([])
        mult, add = pair_stretch(g, sub, 0, 2)
        assert mult == float("inf")

    def test_host_disconnection_rejected(self):
        g = Graph(vertices=[0, 1])
        with pytest.raises(ValueError):
            pair_stretch(g, g, 0, 1)


class TestDistanceProfile:
    def test_profile_keys_are_distances(self):
        g = path(6)
        profile = distance_profile(g, g)
        assert set(profile) == {1, 2, 3, 4, 5}
        for d, (count, disconnected, mx, mean) in profile.items():
            assert mx == mean == 1.0
            assert count > 0
            assert disconnected == 0

    def test_profile_shows_distance_dependence(self):
        # In the cycle-with-tree spanner the worst stretch happens at
        # host distance 1 (the deleted edge) and decays with distance.
        g, sp = tree_spanner_of_cycle(12)
        profile = distance_profile(g, sp.subgraph())
        assert profile[1][2] == 11.0
        assert profile[2][2] == 5.0
        assert profile[1][2] > profile[3][2] > profile[5][2]

    def test_disconnected_pairs_counted_not_poisoning(self):
        # Spanner misses the path's middle edge: pairs straddling it are
        # cut.  Their bucket means must stay finite and the cut pairs
        # must show up in the per-bucket disconnected count.
        g = path(4)
        sub = g.edge_subgraph({(0, 1), (2, 3)})
        profile = distance_profile(g, sub)
        assert profile[1] == (6, 2, 1.0, 1.0)
        assert profile[2] == (4, 4, 0.0, 0.0)
        assert profile[3] == (2, 2, 0.0, 0.0)
        for _, (_, _, mx, mean) in profile.items():
            assert mx != float("inf") and mean != float("inf")


class TestVerification:
    def test_verify_subgraph(self):
        g = path(4)
        assert verify_subgraph(g, [(0, 1), (2, 3)])
        assert not verify_subgraph(g, [(0, 2)])

    def test_verify_connectivity_exact_components(self):
        g = Graph(edges=[(0, 1), (2, 3)])
        assert verify_connectivity(g, g)
        broken = g.edge_subgraph([(0, 1)])
        assert not verify_connectivity(g, broken)

    def test_guarantee_pass_and_fail(self):
        g, sp = tree_spanner_of_cycle(10)
        ok, worst = verify_spanner_guarantee(g, sp.subgraph(), alpha=9)
        assert ok and worst is None
        ok, worst = verify_spanner_guarantee(g, sp.subgraph(), alpha=2)
        assert not ok
        u, v, dg, ds = worst
        assert ds > 2 * dg

    def test_guarantee_additive_form(self):
        g, sp = tree_spanner_of_cycle(10)
        ok, _ = verify_spanner_guarantee(
            g, sp.subgraph(), alpha=1.0, beta=8.0
        )
        assert ok
