"""Tests for repro.util: RNG plumbing, union-find, word measurement."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import UnionFind, ensure_rng, make_prf, message_words, spawn_rng


class TestEnsureRng:
    def test_int_seed_is_deterministic(self):
        assert ensure_rng(5).random() == ensure_rng(5).random()

    def test_different_seeds_differ(self):
        assert ensure_rng(1).random() != ensure_rng(2).random()

    def test_passthrough_of_existing_rng(self):
        rng = random.Random(3)
        assert ensure_rng(rng) is rng

    def test_none_gives_fresh_rng(self):
        assert isinstance(ensure_rng(None), random.Random)


class TestSpawnRng:
    def test_streams_are_independent_of_parent_consumption(self):
        parent1 = ensure_rng(9)
        child1 = spawn_rng(parent1)
        parent2 = ensure_rng(9)
        child2 = spawn_rng(parent2)
        assert child1.random() == child2.random()

    def test_distinct_streams_differ(self):
        parent = ensure_rng(9)
        a = spawn_rng(parent, stream=0)
        parent = ensure_rng(9)
        b = spawn_rng(parent, stream=1)
        assert a.random() != b.random()


class TestMakePrf:
    def test_deterministic_for_seed_and_keys(self):
        assert make_prf(4)(1, 2) == make_prf(4)(1, 2)

    def test_key_sensitivity(self):
        prf = make_prf(4)
        assert prf(1, 2) != prf(2, 1)

    def test_range(self):
        prf = make_prf(0)
        values = [prf(i) for i in range(200)]
        assert all(0 <= v < 1 for v in values)

    def test_roughly_uniform(self):
        prf = make_prf(123)
        values = [prf("u", i) for i in range(2000)]
        mean = sum(values) / len(values)
        assert 0.45 < mean < 0.55

    def test_shared_randomness_across_instances(self):
        # Two "processors" with the same seed agree on every decision.
        assert all(
            make_prf(77)(r, c) == make_prf(77)(r, c)
            for r in range(5)
            for c in range(5)
        )


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind(range(5))
        assert uf.n_components == 5
        assert not uf.connected(0, 1)

    def test_union_and_find(self):
        uf = UnionFind()
        assert uf.union(1, 2)
        assert uf.connected(1, 2)
        assert not uf.union(1, 2)

    def test_component_size(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        assert uf.component_size(1) == 3
        assert uf.component_size(3) == 3

    def test_lazy_add_on_find(self):
        uf = UnionFind()
        assert uf.find(42) == 42
        assert 42 in uf

    def test_representatives_cover_components(self):
        uf = UnionFind(range(6))
        uf.union(0, 1)
        uf.union(2, 3)
        reps = set(uf.representatives())
        assert len(reps) == uf.n_components == 4

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=60
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_naive_partition(self, pairs):
        uf = UnionFind(range(21))
        groups = {i: {i} for i in range(21)}
        pointer = {i: i for i in range(21)}
        for a, b in pairs:
            uf.union(a, b)
            ra, rb = pointer[a], pointer[b]
            if ra != rb:
                groups[ra] |= groups[rb]
                for x in groups[rb]:
                    pointer[x] = ra
                del groups[rb]
        for a in range(21):
            for b in range(21):
                assert uf.connected(a, b) == (pointer[a] == pointer[b])


class TestMessageWords:
    def test_none_is_free(self):
        assert message_words(None) == 0

    def test_scalars_cost_one(self):
        assert message_words(5) == 1
        assert message_words(2.5) == 1
        assert message_words(True) == 1
        assert message_words("tag") == 1

    def test_containers_sum(self):
        assert message_words((1, 2, 3)) == 3
        assert message_words([1, (2, 3)]) == 3
        assert message_words({1: 2, 3: (4, 5)}) == 5

    def test_opaque_objects_cost_one(self):
        assert message_words(object()) == 1

    @given(
        st.recursive(
            st.one_of(st.integers(), st.booleans(), st.text(max_size=3)),
            lambda inner: st.lists(inner, max_size=4).map(tuple),
            max_leaves=20,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_words_equals_leaf_count(self, payload):
        def leaves(x):
            if isinstance(x, tuple):
                return sum(leaves(i) for i in x)
            return 1

        assert message_words(payload) == leaves(payload)
