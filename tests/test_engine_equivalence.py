"""The hot-path equivalence oracle: fast loop == instrumented loop.

``Network.run`` dispatches to a specialized inner loop when there is no
fault plan and no observer (``simulator._run_clean``) and to the fully
instrumented loop otherwise (``_run_general``).  The optimization
contract is that the two are *indistinguishable*: identical protocol
outputs and identical :class:`NetworkStats` on every workload.  These
tests pin that contract across all five protocols — attaching a tracer
(which forces the general loop) must change nothing but the trace, and
fault-plan runs must replay byte-identically.
"""

from __future__ import annotations

from typing import Any

import pytest

from repro.distributed import FaultPlan
from repro.graphs import erdos_renyi_gnp
from repro.obs import Obs, PROTOCOLS, TraceRecorder, run_traced


def _host() -> Any:
    return erdos_renyi_gnp(60, 0.1, seed=7)


def _normalize(protocol: str, result: Any) -> Any:
    """Map a protocol result to a comparable value."""
    if protocol == "survey":
        return result  # the `known` edge map: plain comparable dict
    return sorted(result.edges)


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestFastPathEquivalence:
    def test_clean_run_matches_instrumented_run(self, protocol):
        """obs=None (fast loop) == obs=TraceRecorder (general loop)."""
        fast_result, fast_stats = run_traced(
            protocol, _host(), seed=11, obs=None
        )
        obs = Obs(recorder=TraceRecorder())
        slow_result, slow_stats = run_traced(
            protocol, _host(), seed=11, obs=obs
        )
        assert fast_stats == slow_stats
        assert _normalize(protocol, fast_result) == _normalize(
            protocol, slow_result
        )

    def test_faulty_run_is_obs_neutral(self, protocol):
        """With a fault plan both runs take the general loop; attaching
        an observer must still not perturb outcomes."""
        plan = FaultPlan(
            seed=5, drop_rate=0.05, delay_rate=0.05, reorder_rate=0.1
        )
        bare_result, bare_stats = run_traced(
            protocol, _host(), seed=11, obs=None, fault_plan=plan
        )
        obs = Obs(recorder=TraceRecorder())
        seen_result, seen_stats = run_traced(
            protocol, _host(), seed=11, obs=obs, fault_plan=plan
        )
        assert bare_stats == seen_stats
        assert _normalize(protocol, bare_result) == _normalize(
            protocol, seen_result
        )

    def test_faulty_trace_replays_byte_identically(self, protocol):
        traces = []
        for _ in range(2):
            recorder = TraceRecorder()
            run_traced(
                protocol,
                _host(),
                seed=11,
                obs=Obs(recorder=recorder),
                fault_plan=FaultPlan(seed=5, drop_rate=0.1, delay_rate=0.1),
            )
            traces.append(recorder.dumps())
        assert traces[0] == traces[1]
