"""The key invariant of Section 2, verified moment by moment.

"A key invariant maintained by this algorithm is that if C is a cluster
in any C_{i,j}, then S contains a spanning tree of pi^-1(C)."

We run the skeleton with preimage collection on and check, after *every*
Expand call, that every live cluster's original-vertex preimage is
connected using only the spanner edges selected *so far* — and moreover
within the cluster's own preimage (the spanning tree is internal).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_skeleton
from repro.graphs import Graph, erdos_renyi_gnp, grid_2d, hypercube
from repro.util import UnionFind


def _preimages_spanned(spanner) -> bool:
    preimages = spanner.metadata["preimages"]
    edge_snapshots = spanner.metadata["edge_snapshots"]
    for snapshot, edges in zip(preimages, edge_snapshots):
        for center, preimage in snapshot.items():
            if len(preimage) == 1:
                continue
            uf = UnionFind(preimage)
            for u, v in edges:
                if u in preimage and v in preimage:
                    uf.union(u, v)
            if uf.n_components != 1:
                return False
    return True


class TestKeyInvariant:
    def test_on_random_graph(self):
        g = erdos_renyi_gnp(150, 0.06, seed=1)
        sp = build_skeleton(g, D=4, seed=2, collect_preimages=True)
        assert _preimages_spanned(sp)

    def test_on_grid(self):
        g = grid_2d(10, 10)
        sp = build_skeleton(g, D=4, seed=3, collect_preimages=True)
        assert _preimages_spanned(sp)

    def test_on_hypercube(self):
        g = hypercube(6)
        sp = build_skeleton(g, D=4, seed=4, collect_preimages=True)
        assert _preimages_spanned(sp)

    def test_on_disconnected_graph(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3), (10, 11), (11, 12)])
        sp = build_skeleton(g, D=4, seed=5, collect_preimages=True)
        assert _preimages_spanned(sp)

    def test_snapshots_align(self):
        g = erdos_renyi_gnp(80, 0.08, seed=6)
        sp = build_skeleton(g, D=4, seed=7, collect_preimages=True)
        assert len(sp.metadata["preimages"]) == len(
            sp.metadata["edge_snapshots"]
        )
        assert len(sp.metadata["preimages"]) == sp.metadata["expand_calls"]

    def test_preimages_partition_live_vertices(self):
        g = erdos_renyi_gnp(100, 0.07, seed=8)
        sp = build_skeleton(g, D=4, seed=9, collect_preimages=True)
        for snapshot in sp.metadata["preimages"]:
            seen = set()
            for preimage in snapshot.values():
                assert not (seen & preimage)  # disjoint
                seen |= preimage
            assert seen <= set(g.vertices())

    def test_not_collected_by_default(self):
        g = grid_2d(5, 5)
        sp = build_skeleton(g, D=4, seed=10)
        assert "preimages" not in sp.metadata

    @given(
        st.integers(10, 60),
        st.floats(0.08, 0.3),
        st.integers(0, 500),
    )
    @settings(max_examples=15, deadline=None)
    def test_invariant_property(self, n, p, seed):
        g = erdos_renyi_gnp(n, p, seed=seed)
        sp = build_skeleton(g, D=4, seed=seed + 1, collect_preimages=True)
        assert _preimages_spanned(sp)
