"""Tests for the closed-form bounds of repro.analysis.theory.

Many of these check the paper's lemmas *as mathematical statements*:
Lemma 1's properties of the (s_i) sequence, the Fibonacci identity used
in Lemma 8, and Lemma 10's closed forms dominating Lemma 9's recurrences.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.theory import (
    GAMMA,
    PHI,
    critical_edge_discard_probability,
    fib,
    fib_sampling_probabilities,
    fibonacci_size_bound,
    fibonacci_spanner_order_max,
    golden_ratio_exponent,
    lemma9_recurrences,
    lemma10_c_bound,
    lemma10_i_bound,
    log_star,
    num_phases,
    s_sequence,
    skeleton_distortion_bound,
    skeleton_size_bound,
    skeleton_time_bound,
    theorem3_expected_stretch,
    theorem5_time_lower_bound,
    theorem6_time_lower_bound,
    theorem7_distortion_bound,
)


class TestLogStar:
    def test_known_values(self):
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4
        assert log_star(2**65536 if False else 10**100) == 5

    def test_monotone(self):
        values = [log_star(n) for n in (2, 10, 100, 10**6, 10**30)]
        assert values == sorted(values)


class TestSSequence:
    def test_first_terms(self):
        seq = s_sequence(4, 10**9)
        assert seq[0] == 4 and seq[1] == 4
        assert seq[2] == 4**4 == 256

    def test_growth_rule(self):
        seq = s_sequence(5, 10**12)
        for i in range(2, len(seq) - 1):
            assert seq[i] == seq[i - 1] ** seq[i - 1]

    def test_rejects_small_d(self):
        with pytest.raises(ValueError):
            s_sequence(3, 100)

    def test_lemma1_part2_log_identity(self):
        # log_b s_i = s_1 ... s_{i-1} log_b D.
        D = 4
        seq = s_sequence(D, 10**30)
        for i in range(1, min(3, len(seq))):
            product = 1
            for j in range(1, i):
                product *= seq[j]
            assert math.isclose(
                math.log(seq[i], 2), product * math.log(D, 2), rel_tol=1e-9
            )

    def test_lemma1_part3_lower_bound(self):
        # s_i >= 2^{i+1} s_1 ... s_{i-1}.
        seq = s_sequence(4, 10**40)
        for i in range(1, len(seq) - 1):
            product = 1
            for j in range(1, i):
                product *= seq[j]
            assert seq[i] >= 2 ** (i + 1) * product

    def test_lemma1_part1_phase_count(self):
        # L <= log* n - log* D + 1 for n of the special form.
        for D in (4, 8):
            seq = s_sequence(D, 10**12)
            # take n = s_1^2 s_2 (L = 2)
            n = seq[1] ** 2 * seq[2]
            assert num_phases(n, D) <= log_star(n) - log_star(D) + 1


class TestSkeletonBounds:
    def test_size_bound_scales_linearly_in_n(self):
        assert skeleton_size_bound(2000, 4) == pytest.approx(
            2 * skeleton_size_bound(1000, 4)
        )

    def test_size_bound_grows_with_d(self):
        assert skeleton_size_bound(1000, 8) > skeleton_size_bound(1000, 4)

    def test_size_bound_dominated_by_dn_over_e(self):
        n, D = 10**6, 64
        assert skeleton_size_bound(n, D) < n * (D / math.e) + 10 * n * math.log(D)

    def test_size_bound_requires_d4(self):
        with pytest.raises(ValueError):
            skeleton_size_bound(100, 3)

    def test_distortion_bound_decreases_with_d(self):
        assert skeleton_distortion_bound(10**6, 16) < skeleton_distortion_bound(
            10**6, 4
        )

    def test_distortion_bound_scales_with_inverse_eps(self):
        assert skeleton_distortion_bound(1000, 4, eps=0.5) == pytest.approx(
            2 * skeleton_distortion_bound(1000, 4, eps=1.0)
        )

    def test_time_bound_at_least_log(self):
        assert skeleton_time_bound(10**6, 4, 1.0) >= math.log2(10**6)


class TestFibonacci:
    def test_fib_values(self):
        assert [fib(k) for k in range(10)] == [0, 1, 1, 2, 3, 5, 8, 13, 21, 34]

    def test_fib_rejects_negative(self):
        with pytest.raises(ValueError):
            fib(-1)

    @given(st.integers(1, 30))
    def test_golden_identity(self, k):
        # phi F_k + 1 > F_{k+1} — the only Fibonacci property Lemma 8 uses.
        assert PHI * fib(k) + 1 > fib(k + 1)

    def test_order_max_grows(self):
        assert fibonacci_spanner_order_max(2**32) >= fibonacci_spanner_order_max(
            2**8
        )

    def test_golden_ratio_exponent(self):
        # o -> infinity drives the size exponent to 0.
        assert golden_ratio_exponent(8) < golden_ratio_exponent(3) < 1


class TestSamplingProbabilities:
    def test_monotone_decreasing(self):
        qs = fib_sampling_probabilities(10**5, 5, 10)
        assert all(q1 >= q2 for q1, q2 in zip(qs, qs[1:]))

    def test_within_unit_interval(self):
        qs = fib_sampling_probabilities(10**4, 4, 8)
        assert all(0 < q <= 1 for q in qs)

    def test_first_probability_formula(self):
        # q_1 = n^{-alpha} ell^{-phi} with f_1 = g_1 = 1, h_1 = 0.
        n, o, ell = 10**6, 4, 9
        alpha = golden_ratio_exponent(o)
        q1 = fib_sampling_probabilities(n, o, ell)[0]
        assert q1 == pytest.approx(n ** (-alpha) * ell ** (-PHI))

    def test_validation(self):
        with pytest.raises(ValueError):
            fib_sampling_probabilities(100, 0, 5)
        with pytest.raises(ValueError):
            fib_sampling_probabilities(100, 2, 1)

    def test_size_bound_monotone_in_order(self):
        # Higher order => sparser (smaller n-exponent term dominates).
        n = 10**9
        assert fibonacci_size_bound(n, 6, 10) < fibonacci_size_bound(n, 2, 10)


class TestLemma9And10:
    def test_base_cases(self):
        C, I = lemma9_recurrences(5, 1)
        assert I == [1, 6]
        assert C == [1, 7]

    @given(st.integers(1, 12), st.integers(2, 10))
    @settings(max_examples=60, deadline=None)
    def test_closed_forms_dominate_recurrences(self, ell, i_max):
        C, I = lemma9_recurrences(ell, i_max)
        for i in range(i_max + 1):
            assert I[i] <= lemma10_i_bound(ell, i) + 1e-6
            assert C[i] <= lemma10_c_bound(ell, i) + 1e-6

    def test_closed_forms_are_tight_for_ell1(self):
        C, I = lemma9_recurrences(1, 8)
        for i in range(9):
            # Lemma 10 claims I^i_1 = (2^{i+2} - 1 or 2)/3 exactly.
            assert I[i] == (2 ** (i + 2) - (1 if i % 2 == 0 else 2)) / 3
            assert C[i] == 2 ** (i + 1) - 1

    def test_c_over_ell_power_tends_to_three(self):
        # The third distortion stage: C^i_ell / ell^i -> ~3 for large ell.
        ell = 50
        C, _ = lemma9_recurrences(ell, 6)
        ratio = C[6] / ell**6
        assert 1 < ratio < 3.2


class TestTheorem7Bound:
    def test_stage_one(self):
        assert theorem7_distortion_bound(1, 4, 0.5) == 2**5

    def test_stage_two_at_2_to_o(self):
        o = 4
        assert theorem7_distortion_bound(2**o, o, 0.5) <= 3 * (o + 1)

    def test_stage_three(self):
        o = 3
        bound = theorem7_distortion_bound(5**o, o, 0.5)
        assert bound <= 3 + (6 * 5 - 2) / (5 * 3)

    def test_stage_four_tends_to_one(self):
        o = 2
        d = (3 * o / 0.25) ** o * 50
        assert theorem7_distortion_bound(int(d), o, 0.25) < 1.3

    def test_monotone_nonincreasing_in_distance(self):
        o, eps = 3, 0.5
        values = [
            theorem7_distortion_bound(d, o, eps)
            for d in (1, 2**o, 3**o, 5**o, 10**o, 100**o)
        ]
        assert values == sorted(values, reverse=True)

    def test_rejects_bad_distance(self):
        with pytest.raises(ValueError):
            theorem7_distortion_bound(0, 3, 0.5)


class TestLowerBoundPredictions:
    def test_theorem3_stretch_grows_with_distance(self):
        near = theorem3_expected_stretch(50, tau=2, c=2, mu=100)
        far = theorem3_expected_stretch(500, tau=2, c=2, mu=100)
        assert far - 500 > near - 50

    def test_theorem3_vacuous_for_short_distances(self):
        d = 10  # below 3 tau + 11
        assert theorem3_expected_stretch(d, tau=5, c=2, mu=10) <= d

    def test_theorem5_time_bound_shrinks_with_beta(self):
        assert theorem5_time_lower_bound(10**6, 0.1, 100) < (
            theorem5_time_lower_bound(10**6, 0.1, 4)
        )

    def test_theorem6_time_bound_grows_with_eps(self):
        assert theorem6_time_lower_bound(10**6, 0.1, 0.9) > (
            theorem6_time_lower_bound(10**6, 0.1, 0.3)
        )

    def test_discard_probability(self):
        assert critical_edge_discard_probability(2, 10) == pytest.approx(
            1 - 0.5 - 0.05
        )

    def test_gamma_constant(self):
        assert GAMMA == pytest.approx(math.log(2) - 1 / math.e)
