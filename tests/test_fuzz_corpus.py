"""Replay the committed fuzz corpus (``tests/fuzz_corpus/``).

Every corpus entry is a shrunk reproducer of a past fuzzer find or a
hand-picked regression case; on a healthy tree each must pass the full
oracle battery.  This is the regression suite the fuzzer distills —
new finds land here via ``python -m repro fuzz`` and stay forever.
"""

from __future__ import annotations

import os

import pytest

from repro.fuzz import FuzzCase, check_case, load_corpus

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "fuzz_corpus")

ENTRIES = load_corpus(CORPUS_DIR)


def test_corpus_is_not_empty():
    assert ENTRIES, f"no corpus entries under {CORPUS_DIR}"


def test_corpus_covers_every_protocol():
    protocols = {case.protocol for _, case, _ in ENTRIES}
    assert protocols == {
        "skeleton",
        "baswana_sen",
        "additive",
        "fibonacci",
        "survey",
        "deterministic",
        "churn",
    }


def test_corpus_includes_a_fault_case():
    assert any(case.fault is not None for _, case, _ in ENTRIES)


def test_corpus_includes_a_churn_stream_case():
    """At least one shrunk churn reproducer with a concrete stream."""
    streams = [
        case.churn
        for _, case, _ in ENTRIES
        if case.protocol == "churn"
    ]
    assert streams
    assert any("events" in churn for churn in streams)


@pytest.mark.parametrize(
    "path,case,restriction",
    ENTRIES,
    ids=[os.path.basename(p) for p, _, _ in ENTRIES],
)
def test_corpus_entry_passes_battery(path, case, restriction):
    failures = check_case(case, oracles=restriction)
    assert failures == [], f"{path} regressed: {failures}"


@pytest.mark.parametrize(
    "path,case,restriction",
    ENTRIES,
    ids=[os.path.basename(p) for p, _, _ in ENTRIES],
)
def test_corpus_entry_roundtrips(path, case, restriction):
    assert FuzzCase.from_json(case.to_json()) == case
    assert case.edges is not None, "corpus entries carry explicit edges"
