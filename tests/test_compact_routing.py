"""Tests for the Thorup–Zwick compact routing scheme."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.applications import CompactRouter
from repro.graphs import Graph, bfs_distances, erdos_renyi_gnp, grid_2d, path


class TestCompactRouter:
    def test_routes_are_real_paths(self):
        g = grid_2d(7, 7)
        router = CompactRouter(g, k=2, seed=1)
        for target in (5, 24, 48):
            route = router.route(0, target)
            assert route is not None
            assert route[0] == 0 and route[-1] == target
            assert router.verify_route(route)

    def test_stretch_bound(self):
        g = erdos_renyi_gnp(150, 0.06, seed=2)
        for k in (2, 3):
            router = CompactRouter(g, k=k, seed=3)
            truth = bfs_distances(g, 0)
            for v, d in sorted(truth.items())[:60]:
                if v == 0:
                    continue
                route = router.route(0, v)
                assert route is not None
                assert len(route) - 1 <= (2 * k - 1) * d

    def test_route_length_equals_oracle_estimate(self):
        g = grid_2d(6, 6)
        router = CompactRouter(g, k=2, seed=4)
        for v in (7, 20, 35):
            route = router.route(0, v)
            assert len(route) - 1 == router.oracle.query(0, v)

    def test_all_pairs_on_small_graph(self):
        g = erdos_renyi_gnp(40, 0.15, seed=5)
        router = CompactRouter(g, k=2, seed=6)
        for u in g.vertices():
            truth = bfs_distances(g, u)
            for v, d in truth.items():
                route = router.route(u, v)
                assert route is not None
                assert route[0] == u and route[-1] == v
                assert router.verify_route(route)
                assert len(route) - 1 <= 3 * d

    def test_same_vertex(self):
        router = CompactRouter(path(4), k=2, seed=7)
        assert router.route(2, 2) == [2]

    def test_disconnected(self):
        g = Graph(edges=[(0, 1), (3, 4)])
        router = CompactRouter(g, k=2, seed=8)
        assert router.route(0, 3) is None

    def test_tables_are_compact(self):
        g = erdos_renyi_gnp(300, 0.06, seed=9)
        k = 3
        router = CompactRouter(g, k=k, seed=10)
        # Mean table size ~ O(k n^{1/k}) entries, a tiny fraction of n.
        mean_entries = sum(
            router.table_entries(v) for v in g.vertices()
        ) / g.n
        assert mean_entries < 6 * k * g.n ** (1 / k)
        assert router.max_table_entries() < g.n

    def test_k1_routes_are_shortest(self):
        g = grid_2d(5, 5)
        router = CompactRouter(g, k=1, seed=11)
        truth = bfs_distances(g, 0)
        for v, d in truth.items():
            route = router.route(0, v)
            assert len(route) - 1 == d

    @given(st.integers(0, 400))
    @settings(max_examples=12, deadline=None)
    def test_property_routes_valid_and_bounded(self, seed):
        g = erdos_renyi_gnp(35, 0.15, seed=seed)
        router = CompactRouter(g, k=2, seed=seed + 1)
        truth = bfs_distances(g, 0)
        for v, d in truth.items():
            if v == 0:
                continue
            route = router.route(0, v)
            assert route is not None
            assert router.verify_route(route)
            assert len(route) - 1 <= 3 * d
