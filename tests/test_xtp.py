"""Tests for the X^t_p recurrence (Lemma 6, the Baswana–Sen correction)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.xtp import (
    monte_carlo_vertex_contribution,
    worst_case_q_schedule,
    x_tp,
    x_tp_closed_form,
)


def exact_expected_contribution(p: float, qs) -> float:
    """E[Y_p(q_1, ..., q_t)] via the paper's recurrence (Eq. 1)."""
    expectation = 0.0
    for q in reversed(qs):
        live = 1 - (1 - p) ** (q + 1)
        expectation = (
            live * expectation
            + q * (1 - p) ** (q + 1)
            + (1 - p) * (1 - (1 - p) ** q)
        )
    return expectation


class TestXtp:
    def test_base_case_zero(self):
        assert x_tp(0.5, 0) == 0.0

    def test_single_call_formula(self):
        # X^1_p < (1 - 2/e) + 1/(e p)  (Eq. 3).
        for p in (0.1, 0.25, 0.5):
            assert x_tp(p, 1) < (1 - 2 / math.e) + 1 / (math.e * p) + 1e-9

    def test_monotone_in_t(self):
        values = [x_tp(0.2, t) for t in range(6)]
        assert values == sorted(values)

    def test_decreasing_in_p(self):
        assert x_tp(0.1, 4) > x_tp(0.5, 4)

    @given(
        st.floats(0.05, 0.9),
        st.integers(1, 12),
    )
    @settings(max_examples=40, deadline=None)
    def test_closed_form_dominates(self, p, t):
        # Lemma 6: X^t_p <= p^{-1}(ln(t+1) - gamma) + t.
        assert x_tp(p, t) <= x_tp_closed_form(p, t) + 1e-9

    def test_closed_form_not_absurdly_loose(self):
        # The bound should be within a small factor of the recurrence.
        p, t = 0.25, 6
        assert x_tp_closed_form(p, t) < 3 * x_tp(p, t)

    def test_validation(self):
        with pytest.raises(ValueError):
            x_tp(0.0, 3)
        with pytest.raises(ValueError):
            x_tp(0.5, -1)
        with pytest.raises(ValueError):
            x_tp_closed_form(1.5, 3)


class TestExactExpectation:
    def test_recurrence_dominates_any_schedule(self):
        # X^t_p is the max over q-schedules of E[Y]; any specific schedule
        # must come in at or below it.
        p, t = 0.3, 5
        x = x_tp(p, t)
        for qs in ([1] * t, [5] * t, [0, 2, 4, 8, 16], [10, 0, 10, 0, 10]):
            assert exact_expected_contribution(p, qs) <= x + 1e-9

    def test_worst_case_schedule_achieves_x(self):
        p, t = 0.3, 4
        schedule = worst_case_q_schedule(p, t)
        achieved = exact_expected_contribution(p, schedule)
        assert achieved == pytest.approx(x_tp(p, t), rel=0.02)


class TestMonteCarlo:
    def test_matches_exact_expectation(self):
        p = 0.3
        qs = [4, 6, 8]
        exact = exact_expected_contribution(p, qs)
        estimate = monte_carlo_vertex_contribution(
            p, qs, trials=20_000, seed=5
        )
        assert estimate == pytest.approx(exact, rel=0.08)

    def test_zero_schedule(self):
        # q = 0 everywhere: the vertex dies on its first unsampled round
        # contributing nothing.
        assert monte_carlo_vertex_contribution(0.5, [0, 0, 0], trials=500,
                                               seed=1) == 0.0

    def test_bounded_by_closed_form(self):
        p, t = 0.25, 5
        schedule = worst_case_q_schedule(p, t)
        estimate = monte_carlo_vertex_contribution(
            p, schedule, trials=20_000, seed=9
        )
        assert estimate <= x_tp_closed_form(p, t) * 1.1
