"""Tests for the differential fuzzing harness (repro.fuzz).

Oracle checks are exercised both ways: honest protocols must pass, and
deliberately broken protocol stubs (monkeypatched into the runner) must
be caught by exactly the oracle that owns the broken property.  The
shrinker's acceptance bar: an injected size-accounting bug on a
complete host shrinks to a reproducer of at most 12 vertices.
"""

from __future__ import annotations

import itertools
import json
import math

import pytest

import repro.fuzz.runner as fuzz_runner
from repro.analysis.theory import skeleton_size_bound
from repro.fuzz import (
    FUZZ_PROTOCOLS,
    FuzzCase,
    ORACLE_NAMES,
    build_case_graph,
    case_stream,
    check_case,
    dumps_cases,
    load_corpus,
    materialize,
    replay_corpus,
    run_battery,
    save_reproducer,
    shrink_case,
)
from repro.fuzz.cli import main as fuzz_main
from repro.spanner import Spanner


def explicit_case(protocol, edges, params=None, fault=None, seed=7):
    """A FuzzCase pinned to an explicit edge list."""
    vertices = tuple(sorted({v for e in edges for v in e}))
    return FuzzCase(
        case_id=0,
        protocol=protocol,
        graph_kind="explicit",
        n=len(vertices),
        density=0.0,
        graph_seed=0,
        protocol_seed=seed,
        params=dict(params or {}),
        fault=fault,
        vertices=vertices,
        edges=tuple(sorted(edges)),
    )


def complete_edges(n):
    return tuple(itertools.combinations(range(n), 2))


def cycle_edges(n):
    return tuple(
        (i, (i + 1) % n) if i + 1 < n else (0, i) for i in range(n)
    )


class TestCaseStream:
    def test_same_seed_byte_identical(self):
        a = dumps_cases(case_stream(0, 40))
        b = dumps_cases(case_stream(0, 40))
        assert a == b

    def test_different_seed_differs(self):
        assert dumps_cases(case_stream(0, 20)) != dumps_cases(
            case_stream(1, 20)
        )

    def test_round_robin_covers_all_protocols(self):
        cases = case_stream(3, len(FUZZ_PROTOCOLS))
        assert tuple(c.protocol for c in cases) == FUZZ_PROTOCOLS

    def test_protocol_restriction(self):
        cases = case_stream(0, 6, protocols=["skeleton", "survey"])
        assert {c.protocol for c in cases} == {"skeleton", "survey"}

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            case_stream(0, 2, protocols=["nope"])

    def test_fault_fraction_zero_and_one(self):
        assert all(
            c.fault is None for c in case_stream(0, 20, fault_fraction=0.0)
        )
        # Churn cases are exempt: their stream's own crash/recover
        # events are the fault model, so they never get a FaultPlan.
        assert all(
            (c.fault is None) == (c.protocol == "churn")
            for c in case_stream(0, 20, fault_fraction=1.0)
        )

    def test_json_roundtrip(self):
        for case in case_stream(11, 10):
            frozen = materialize(case)
            for c in (case, frozen):
                assert FuzzCase.from_json(
                    json.loads(json.dumps(c.to_json()))
                ) == c

    def test_materialize_preserves_graph(self):
        for case in case_stream(5, 8):
            g = build_case_graph(case)
            frozen = materialize(case)
            fg = build_case_graph(frozen)
            assert sorted(g.vertices()) == sorted(fg.vertices())
            assert sorted(g.edges()) == sorted(fg.edges())


class TestHonestProtocolsPass:
    @pytest.mark.parametrize("protocol", FUZZ_PROTOCOLS)
    def test_small_case_passes_battery(self, protocol):
        cases = case_stream(41, 10, protocols=[protocol])
        case = min(cases, key=lambda c: c.n)
        assert check_case(case) == []


class TestOraclesCatchBrokenProtocols:
    def test_size_oracle_catches_all_edges_spanner(self, monkeypatch):
        monkeypatch.setattr(
            fuzz_runner,
            "distributed_skeleton",
            lambda graph, **kw: Spanner(
                graph, graph.edges(), {"algorithm": "buggy"}
            ),
        )
        case = explicit_case("skeleton", complete_edges(16),
                             params={"D": 4, "eps": 0.5})
        failures = check_case(case, oracles=("size",))
        assert [f.oracle for f in failures] == ["size"]
        assert "analytic budget" in failures[0].message

    def test_size_oracle_rounds_budget_up_to_whole_edges(self, monkeypatch):
        # Edge counts are integers: exactly ceil(budget) edges passes,
        # one more fails.  bound(12, D=4) = 62.59, so the threshold
        # sits between 63 and 64.
        bound = math.ceil(skeleton_size_bound(12, 4))
        assert bound == 63
        for size, ok in ((bound, True), (bound + 1, False)):
            edges = complete_edges(12)[:size]
            monkeypatch.setattr(
                fuzz_runner,
                "distributed_skeleton",
                lambda graph, **kw: Spanner(
                    graph, graph.edges(), {"algorithm": "boundary"}
                ),
            )
            case = explicit_case("skeleton", edges,
                                 params={"D": 4, "eps": 0.5})
            failures = check_case(case, oracles=("size",))
            assert (not failures) == ok, (size, failures)

    def test_size_oracle_exempts_degenerate_zero_center_sampling(
        self, monkeypatch
    ):
        # Lemma 6 bounds the expected size; when the first Expand call
        # samples no centers (cluster_counts == [0]) the honest
        # skeleton keeps every edge and the per-instance budget must
        # not fire.  The same output with healthy clustering is a bug.
        def all_edges(counts):
            return lambda graph, **kw: Spanner(
                graph, graph.edges(), {"cluster_counts": counts}
            )

        case = explicit_case(
            "skeleton", complete_edges(16), params={"D": 4, "eps": 0.5}
        )
        monkeypatch.setattr(
            fuzz_runner, "distributed_skeleton", all_edges([0])
        )
        assert check_case(case, oracles=("size",)) == []
        monkeypatch.setattr(
            fuzz_runner, "distributed_skeleton", all_edges([5, 1, 0])
        )
        assert [
            f.oracle for f in check_case(case, oracles=("size",))
        ] == ["size"]

    def test_stretch_oracle_catches_path_spanner_of_cycle(
        self, monkeypatch
    ):
        # A Hamiltonian path of a 12-cycle: connected, tiny, but the
        # deleted edge's endpoints sit at distance 11 > 2k - 1 = 3.
        path_edges = tuple((i, i + 1) for i in range(11))
        monkeypatch.setattr(
            fuzz_runner,
            "distributed_baswana_sen",
            lambda graph, k, **kw: Spanner(
                graph, path_edges, {"algorithm": "buggy"}
            ),
        )
        case = explicit_case(
            "baswana_sen", cycle_edges(12), params={"k": 2}
        )
        failures = check_case(case, oracles=("stretch",))
        assert [f.oracle for f in failures] == ["stretch"]

    def test_connectivity_oracle_catches_empty_spanner(self, monkeypatch):
        monkeypatch.setattr(
            fuzz_runner,
            "distributed_additive2",
            lambda graph, **kw: Spanner(graph, (), {"algorithm": "buggy"}),
        )
        case = explicit_case("additive", cycle_edges(8))
        failures = check_case(
            case, oracles=("stretch", "connectivity")
        )
        assert [f.oracle for f in failures] == ["connectivity"]

    def test_determinism_oracle_catches_flaky_protocol(self, monkeypatch):
        calls = itertools.count()
        base = cycle_edges(8)

        def flaky(graph, **kw):
            drop = next(calls) % 7
            return Spanner(
                graph,
                [e for i, e in enumerate(base) if i != drop],
                {"algorithm": "flaky"},
            )

        monkeypatch.setattr(
            fuzz_runner, "distributed_additive2", flaky
        )
        case = explicit_case("additive", base)
        failures = check_case(case, oracles=("determinism",))
        assert [f.oracle for f in failures] == ["determinism"]

    def test_fault_equivalence_oracle_catches_lossy_reliability(
        self, monkeypatch
    ):
        base = cycle_edges(8)

        def lossy(graph, **kw):
            edges = base if kw.get("fault_plan") is None else base[:-1]
            return Spanner(graph, edges, {"algorithm": "lossy"})

        monkeypatch.setattr(
            fuzz_runner, "distributed_additive2", lossy
        )
        case = explicit_case(
            "additive",
            base,
            fault={"seed": 3.0, "drop_rate": 0.1},
        )
        failures = check_case(case, oracles=("fault_equivalence",))
        assert [f.oracle for f in failures] == ["fault_equivalence"]

    def test_differential_oracle_catches_cluster_divergence(
        self, monkeypatch
    ):
        def wrong_clusters(graph, **kw):
            return Spanner(
                graph,
                graph.edges(),
                {"algorithm": "buggy", "cluster_counts": [999]},
            )

        monkeypatch.setattr(
            fuzz_runner, "distributed_skeleton", wrong_clusters
        )
        case = explicit_case(
            "skeleton", cycle_edges(10), params={"D": 4, "eps": 0.5}
        )
        failures = check_case(case, oracles=("differential",))
        assert [f.oracle for f in failures] == ["differential"]
        assert "cluster evolution" in failures[0].message

    def test_survey_coverage_oracle_catches_empty_knowledge(
        self, monkeypatch
    ):
        from repro.distributed.simulator import NetworkStats

        monkeypatch.setattr(
            fuzz_runner,
            "neighborhood_survey",
            lambda graph, radius, **kw: (
                {v: set() for v in graph.vertices()},
                NetworkStats(),
            ),
        )
        case = explicit_case(
            "survey", cycle_edges(8), params={"radius": 2}
        )
        failures = check_case(case, oracles=("connectivity",))
        assert [f.oracle for f in failures] == ["connectivity"]
        assert "misses edge" in failures[0].message

    def test_crashing_protocol_reported_not_raised(self, monkeypatch):
        def boom(graph, **kw):
            raise RuntimeError("kaboom")

        monkeypatch.setattr(fuzz_runner, "distributed_skeleton", boom)
        case = explicit_case(
            "skeleton", cycle_edges(8), params={"D": 4, "eps": 0.5}
        )
        failures = check_case(case)
        assert failures and failures[0].oracle == "crash"
        assert "kaboom" in failures[0].message

    def test_crash_finding_carries_full_traceback(self, monkeypatch):
        # A shrunk reproducer whose whole failure message is
        # "KeyError: 5" is undebuggable: the crash pseudo-oracle must
        # keep the traceback, including the raising frame's location.
        def boom(graph, **kw):
            raise KeyError(5)

        monkeypatch.setattr(fuzz_runner, "distributed_skeleton", boom)
        case = explicit_case(
            "skeleton", cycle_edges(8), params={"D": 4, "eps": 0.5}
        )
        failures = check_case(case)
        assert failures and failures[0].oracle == "crash"
        message = failures[0].message
        assert "KeyError: 5" in message
        assert "Traceback (most recent call last)" in message
        assert "boom" in message  # the raising frame is identified

    def test_churn_crash_finding_carries_full_traceback(self, monkeypatch):
        import repro.fuzz.oracles as fuzz_oracles

        def boom(*args, **kw):
            raise KeyError(7)

        monkeypatch.setattr(fuzz_oracles, "check_churn", boom)
        case = FuzzCase(
            case_id=0,
            protocol="churn",
            graph_kind="cycle",
            n=8,
            density=0.2,
            graph_seed=1,
            protocol_seed=1,
            params={"k": 2},
            churn={"batches": 2, "batch_size": 2, "stream_seed": 0},
        )
        failures = check_case(case)
        assert failures and failures[0].oracle == "crash"
        message = failures[0].message
        assert "KeyError: 7" in message
        assert "Traceback (most recent call last)" in message

    def test_unknown_oracle_rejected(self):
        case = explicit_case("additive", cycle_edges(6))
        with pytest.raises(ValueError):
            check_case(case, oracles=("not_an_oracle",))


class TestShrinker:
    @pytest.fixture()
    def all_edges_skeleton(self, monkeypatch):
        monkeypatch.setattr(
            fuzz_runner,
            "distributed_skeleton",
            lambda graph, **kw: Spanner(
                graph, graph.edges(), {"algorithm": "buggy"}
            ),
        )

    def test_injected_size_bug_shrinks_to_at_most_12_vertices(
        self, all_edges_skeleton
    ):
        case = explicit_case(
            "skeleton", complete_edges(20), params={"D": 4, "eps": 0.5}
        )
        failure = run_battery(case, oracles=("size",))
        assert failure is not None and failure.oracle == "size"
        result = shrink_case(case, failure)
        n = len(result.case.vertices)
        m = len(result.case.edges)
        assert n <= 12
        # The shrunk host must still fail: more edges than the bound.
        assert m > skeleton_size_bound(n, 4)
        assert result.failure.oracle == "size"
        assert "shrunk from n=20" in result.case.note

    def test_shrink_is_deterministic(self, all_edges_skeleton):
        case = explicit_case(
            "skeleton", complete_edges(14), params={"D": 4, "eps": 0.5}
        )
        failure = run_battery(case, oracles=("size",))
        a = shrink_case(case, failure)
        b = shrink_case(case, failure)
        assert a.case == b.case
        assert a.checks == b.checks

    def test_shrink_respects_check_budget(self, all_edges_skeleton):
        case = explicit_case(
            "skeleton", complete_edges(16), params={"D": 4, "eps": 0.5}
        )
        failure = run_battery(case, oracles=("size",))
        result = shrink_case(case, failure, max_checks=10)
        assert result.checks <= 10

    def test_shrink_drops_irrelevant_fault_spec(self, all_edges_skeleton):
        case = explicit_case(
            "skeleton",
            complete_edges(14),
            params={"D": 4, "eps": 0.5},
            fault={"seed": 5.0, "drop_rate": 0.05},
        )
        failure = run_battery(case, oracles=("size",))
        result = shrink_case(case, failure)
        assert result.case.fault is None


class TestCorpus:
    def test_save_load_replay_roundtrip(self, tmp_path):
        corpus = str(tmp_path / "corpus")
        case = materialize(
            min(
                case_stream(19, 5, protocols=["additive"]),
                key=lambda c: c.n,
            )
        )
        path = save_reproducer(case, None, corpus)
        entries = load_corpus(corpus)
        assert [(p, c) for p, c, _ in entries] == [(path, case)]
        results = replay_corpus(corpus)
        assert results and results[0][1] == []

    def test_replay_restricted_oracles(self, tmp_path):
        corpus = str(tmp_path / "corpus")
        case = explicit_case("additive", cycle_edges(8))
        path = save_reproducer(case, None, corpus)
        with open(path) as fh:
            payload = json.load(fh)
        payload["oracles"] = ["subgraph", "determinism"]
        with open(path, "w") as fh:
            json.dump(payload, fh)
        (_, _, restriction), = load_corpus(corpus)
        assert restriction == ("subgraph", "determinism")
        (_, failures), = replay_corpus(corpus)
        assert failures == []

    def test_unknown_schema_rejected(self, tmp_path):
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        (corpus / "bad.json").write_text('{"schema": 99}')
        with pytest.raises(ValueError):
            load_corpus(str(corpus))

    def test_missing_directory_is_empty(self, tmp_path):
        assert load_corpus(str(tmp_path / "nope")) == []
        assert replay_corpus(str(tmp_path / "nope")) == []


class TestCLI:
    def test_clean_sweep_exits_zero(self, capsys):
        assert fuzz_main(["--cases", "3", "--seed", "1", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "3 cases passed" in out

    def test_failure_exits_one_and_saves_reproducer(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setattr(
            fuzz_runner,
            "distributed_skeleton",
            lambda graph, **kw: Spanner(
                graph, graph.edges(), {"algorithm": "buggy"}
            ),
        )
        corpus = str(tmp_path / "corpus")
        code = fuzz_main(
            [
                "--cases", "5",
                "--seed", "0",
                "--protocols", "skeleton",
                "--corpus", corpus,
                "--quiet",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "reproducer:" in out
        assert len(load_corpus(corpus)) == 1

    def test_replay_empty_corpus(self, tmp_path, capsys):
        code = fuzz_main(
            ["--replay", "--corpus", str(tmp_path / "corpus")]
        )
        assert code == 0
        assert "no entries" in capsys.readouterr().out

    def test_oracle_names_exported(self):
        assert set(ORACLE_NAMES) == {
            "subgraph",
            "size",
            "stretch",
            "connectivity",
            "determinism",
            "fault_equivalence",
            "differential",
            "rand_vs_det",
        }
