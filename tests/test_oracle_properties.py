"""Property tests for the serving-facing oracle/router contracts.

The serving tier leans on three properties the unit suites only spot
check: query symmetry (what legitimizes unordered-pair cache keys),
the stretch envelope against exact BFS, and route well-formedness for
*every* returned route.  Hypothesis drives them across random hosts,
oracle parameters, and vertex pairs.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.applications import CompactRouter, DistanceOracle
from repro.applications.labeling import DistanceLabeling
from repro.graphs import bfs_distances, erdos_renyi_gnp

INF = float("inf")


def _host(n: int, seed: int):
    # Dense enough to usually connect, sparse enough to have real
    # multi-hop distances.
    return erdos_renyi_gnp(n, 4.0 / n, seed=seed)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=8, max_value=60),
    k=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=10**6),
    data=st.data(),
)
def test_oracle_query_is_symmetric(n, k, seed, data):
    graph = _host(n, seed)
    oracle = DistanceOracle(graph, k, seed=seed + 1)
    vertex = st.integers(min_value=0, max_value=n - 1)
    for _ in range(10):
        u, v = data.draw(vertex), data.draw(vertex)
        assert oracle.query(u, v) == oracle.query(v, u)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=8, max_value=50),
    k=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=10**6),
    source=st.integers(min_value=0, max_value=7),
)
def test_oracle_stretch_bound_vs_exact_bfs(n, k, seed, source):
    graph = _host(n, seed)
    oracle = DistanceOracle(graph, k, seed=seed + 1)
    truth = bfs_distances(graph, source)
    for v in sorted(graph.vertices()):
        exact = truth.get(v, INF)
        estimate = oracle.query(source, v)
        if exact == INF:
            assert estimate == INF
        elif v == source:
            assert estimate == 0
        else:
            assert exact <= estimate <= (2 * k - 1) * exact


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=8, max_value=50),
    k=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=10**6),
    data=st.data(),
)
def test_every_returned_route_verifies(n, k, seed, data):
    graph = _host(n, seed)
    router = CompactRouter(graph, k, seed=seed + 1)
    vertex = st.integers(min_value=0, max_value=n - 1)
    truth_cache = {}
    for _ in range(10):
        u, v = data.draw(vertex), data.draw(vertex)
        path = router.route(u, v)
        if u not in truth_cache:
            truth_cache[u] = bfs_distances(graph, u)
        reachable = v in truth_cache[u]
        if not reachable:
            assert path is None
            continue
        assert path is not None
        assert path[0] == u and path[-1] == v
        assert router.verify_route(path)  # every hop is a real edge
        # The scheme's own estimate is the route it actually takes.
        assert len(path) - 1 == router.oracle.query(u, v)


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=8, max_value=40),
    k=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=10**6),
    data=st.data(),
)
def test_labels_agree_with_oracle(n, k, seed, data):
    graph = _host(n, seed)
    oracle = DistanceOracle(graph, k, seed=seed + 1)
    labeling = DistanceLabeling.from_oracle(oracle)
    vertex = st.integers(min_value=0, max_value=n - 1)
    for _ in range(10):
        u, v = data.draw(vertex), data.draw(vertex)
        from_labels = labeling.query(labeling.label(u), labeling.label(v))
        assert from_labels == oracle.query(u, v)
