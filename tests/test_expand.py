"""Tests for the Expand procedure (Fig. 2) and Clustering."""

from __future__ import annotations

import pytest

from repro.core import Clustering, expand
from repro.graphs import Graph, complete, grid_2d, path, star


class TestClustering:
    def test_trivial(self):
        c = Clustering.trivial([1, 2, 3])
        assert c.num_clusters == 3
        assert c.center(2) == 2

    def test_members_inversion(self):
        c = Clustering({1: 9, 2: 9, 3: 3})
        assert c.members() == {9: [1, 2], 3: [3]}
        assert c.centers() == {9, 3}

    def test_completeness_check(self):
        c = Clustering({1: 1})
        assert c.is_complete_over([1])
        assert not c.is_complete_over([1, 2])

    def test_len_and_iter(self):
        c = Clustering({1: 1, 2: 1})
        assert len(c) == 2 and set(c) == {1, 2}


class TestExpandSemantics:
    def test_p_zero_kills_everyone(self):
        g = path(5)
        result = expand(g, Clustering.trivial(g.vertices()), 0.0)
        assert sorted(result.died) == list(range(5))
        assert len(result.clustering) == 0
        assert result.join_edges == []

    def test_p_zero_death_edges_cover_all_adjacent_clusters(self):
        g = path(4)  # 0-1-2-3, singleton clusters
        result = expand(g, Clustering.trivial(g.vertices()), 0.0)
        # Every vertex dumps one edge per neighbor cluster; union = all
        # edges of the path.
        assert set(result.death_edges) == g.edge_set()

    def test_all_sampled_means_no_edges(self):
        g = complete(5)
        result = expand(
            g,
            Clustering.trivial(g.vertices()),
            0.99,
            sampler=lambda c: True,
        )
        assert result.died == []
        assert result.selected_edges == []
        assert result.clustering.num_clusters == 5

    def test_join_prefers_min_center(self):
        # Star center 0 unsampled; leaves 1..4: only cluster {1} sampled.
        g = star(5)
        sampler = lambda c: c == 1
        result = expand(g, Clustering.trivial(g.vertices()), 0.5, sampler=sampler)
        # Vertex 0 joins cluster 1 via edge (0, 1).
        assert result.clustering.center(0) == 1
        assert (0, 1) in result.join_edges
        # Leaves 2..4 are adjacent only to cluster {0} (unsampled): die.
        assert sorted(result.died) == [2, 3, 4]

    def test_sampled_cluster_retains_members(self):
        g = path(3)
        clustering = Clustering({0: 0, 1: 0, 2: 2})
        result = expand(g, clustering, 0.5, sampler=lambda c: c == 0)
        assert result.clustering.center(0) == 0
        assert result.clustering.center(1) == 0
        # Vertex 2 joins sampled cluster 0 via its neighbor 1.
        assert result.clustering.center(2) == 0
        assert (1, 2) in result.join_edges

    def test_death_one_edge_per_cluster(self):
        # Vertex 0 has two neighbors in the same cluster: dying, it must
        # contribute exactly ONE edge to that cluster (min-id neighbor).
        g = Graph(edges=[(0, 1), (0, 2)])
        clustering = Clustering({0: 0, 1: 10, 2: 10})
        result = expand(g, clustering, 0.5, sampler=lambda c: False)
        assert sorted(result.died) == [0, 1, 2]
        # vertex 0: one edge to cluster 10; vertices 1, 2: one each to
        # cluster 0.  Without per-cluster dedup there would be 4 entries.
        assert len(result.death_edges) == 3
        assert result.death_edges.count((0, 1)) == 2  # from 0 and from 1

    def test_output_clustering_complete_over_survivors(self):
        g = grid_2d(4, 4)
        result = expand(
            g,
            Clustering.trivial(g.vertices()),
            0.3,
            seed=3,
        )
        survivors = set(g.vertices()) - set(result.died)
        assert set(result.clustering.cluster_of) == survivors
        # All output clusters are sampled input clusters.
        assert set(result.clustering.centers()) <= result.sampled

    def test_isolated_unsampled_vertex_dies_quietly(self):
        g = Graph(vertices=[7])
        result = expand(g, Clustering.trivial([7]), 0.0)
        assert result.died == [7]
        assert result.selected_edges == []

    def test_invalid_probability(self):
        g = path(2)
        with pytest.raises(ValueError):
            expand(g, Clustering.trivial(g.vertices()), 1.0)

    def test_seed_determinism(self):
        g = grid_2d(5, 5)
        r1 = expand(g, Clustering.trivial(g.vertices()), 0.4, seed=11)
        r2 = expand(g, Clustering.trivial(g.vertices()), 0.4, seed=11)
        assert r1.sampled == r2.sampled
        assert r1.join_edges == r2.join_edges
        assert r1.death_edges == r2.death_edges

    def test_radius_grows_by_one(self):
        # After one expand on singletons, sampled clusters span stars:
        # every member is within 1 hop of the center.
        g = grid_2d(5, 5)
        result = expand(g, Clustering.trivial(g.vertices()), 0.4, seed=2)
        for v, c in result.clustering.cluster_of.items():
            assert v == c or g.has_edge(v, c) or any(
                g.has_edge(v, u) and result.clustering.cluster_of.get(u) == c
                for u in g.neighbors(v)
            )
