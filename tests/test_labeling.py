"""Tests for the distance labeling scheme (intro application [26, 38])."""

from __future__ import annotations

import math


from repro.applications import DistanceLabeling
from repro.graphs import Graph, bfs_distances, erdos_renyi_gnp, grid_2d, path


class TestDistanceLabeling:
    def test_queries_use_only_labels(self):
        g = grid_2d(7, 7)
        labeling = DistanceLabeling(g, k=2, seed=1)
        # Extract labels, then forget the structure entirely.
        labels = {v: labeling.label(v) for v in g.vertices()}
        truth = bfs_distances(g, 0)
        for v, d in truth.items():
            if v == 0:
                continue
            est = DistanceLabeling.query(labels[0], labels[v])
            assert d <= est <= 3 * d

    def test_stretch_bound_over_k(self):
        g = erdos_renyi_gnp(150, 0.06, seed=2)
        for k in (2, 3):
            labeling = DistanceLabeling(g, k=k, seed=3)
            truth = bfs_distances(g, 0)
            for v, d in truth.items():
                if v == 0:
                    continue
                est = DistanceLabeling.query(
                    labeling.label(0), labeling.label(v)
                )
                assert d <= est <= (2 * k - 1) * d

    def test_k1_labels_are_exact_but_huge(self):
        g = path(12)
        labeling = DistanceLabeling(g, k=1, seed=4)
        for v in g.vertices():
            est = DistanceLabeling.query(
                labeling.label(0), labeling.label(v)
            )
            assert est == bfs_distances(g, 0)[v]
        # k=1 bunches are whole components: label size ~ 2n words.
        assert labeling.max_label_words >= 2 * g.n

    def test_labels_shrink_with_k(self):
        g = erdos_renyi_gnp(250, 0.08, seed=5)
        small_k = DistanceLabeling(g, k=1, seed=6)
        big_k = DistanceLabeling(g, k=3, seed=6)
        assert big_k.total_words < small_k.total_words

    def test_label_size_near_theory(self):
        g = erdos_renyi_gnp(300, 0.06, seed=7)
        k = 3
        labeling = DistanceLabeling(g, k=k, seed=8)
        # O(k n^{1/k}) entries => ~4 k n^{1/k} words with slack.
        bound = 10 * k * g.n ** (1 / k) * 2
        assert labeling.total_words / g.n <= bound

    def test_same_vertex_query(self):
        g = path(4)
        labeling = DistanceLabeling(g, k=2, seed=9)
        assert DistanceLabeling.query(
            labeling.label(2), labeling.label(2)
        ) == 0

    def test_disconnected_query(self):
        g = Graph(edges=[(0, 1), (5, 6)])
        labeling = DistanceLabeling(g, k=2, seed=10)
        assert DistanceLabeling.query(
            labeling.label(0), labeling.label(5)
        ) == math.inf
